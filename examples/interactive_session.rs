//! A scripted Ped session replaying the workshop workflow on the
//! index-array program (`onedim`): navigate by estimated cost, inspect the
//! scatter loop, see the pending dependences, assert the index array is a
//! permutation, watch them become rejected, parallelize, validate with the
//! run-time dependence checker, then undo everything.
//!
//! ```sh
//! cargo run -p ped-bench --example interactive_session
//! ```

use ped_core::{render, Assertion, DepFilter, Ped, SourceFilter};
use ped_runtime::{ExecConfig, Machine, ParallelMode};
use ped_transform::Xform;

fn main() {
    let w = ped_workloads::program_by_name("onedim").expect("suite program");
    let mut ped = Ped::open(w.source).unwrap();

    println!("=== navigation (performance-estimation ranked) ===");
    println!("{}", render::render_unit_overview(&mut ped, 0).unwrap());

    let scatter = ped.loops(0)[1].0;
    println!("=== the scatter loop, as analysis sees it ===");
    println!(
        "{}",
        render::render_loop_view(&mut ped, 0, scatter, &DepFilter::default(), &SourceFilter::All)
            .unwrap()
    );

    println!("=== power steering says ===");
    let d = ped.diagnose(0, scatter, &Xform::Parallelize).unwrap();
    println!("parallelize: {:?}\n", d.safe);

    println!("=== user: 'ind is a permutation' ===");
    let ind = ped.program().units[0].symbols.lookup("ind").unwrap();
    let n = ped.assert_fact(Assertion::Permutation { unit: 0, array: ind }).unwrap();
    println!("assertion deleted {n} pending dependence(s)\n");
    println!(
        "{}",
        render::render_loop_view(&mut ped, 0, scatter, &DepFilter::default(), &SourceFilter::All)
            .unwrap()
    );

    println!("=== parallelize and validate ===");
    ped.apply(0, scatter, &Xform::Parallelize).unwrap();
    let checked = ped
        .run(ExecConfig {
            mode: ParallelMode::Simulate(Machine::alliant8()),
            detect_races: true,
            ..Default::default()
        })
        .unwrap();
    println!("run-time dependence check: {} conflicts", checked.races.len());
    assert!(checked.races.is_empty());
    println!("output: {:?}\n", checked.printed);

    println!("=== undo ===");
    assert!(ped.undo());
    println!(
        "source restored, contains 'parallel do': {}",
        ped.source().contains("parallel do")
    );
}
