//! Quickstart: open a program, look at its dependences, parallelize a
//! loop, and run both versions.
//!
//! ```sh
//! cargo run -p ped-bench --example quickstart
//! ```

use ped_core::{render, DepFilter, Ped, SourceFilter};
use ped_runtime::{ExecConfig, ParallelMode};
use ped_transform::Xform;

const SRC: &str = "\
program quick
integer n
parameter (n = 1000)
real a(n), b(n)
real s
do i = 1, n
  b(i) = 0.5 * i
enddo
do i = 1, n
  a(i) = sqrt(b(i)) + 1.0
enddo
s = 0.0
do i = 1, n
  s = s + a(i)
enddo
print *, s
end
";

fn main() {
    // 1. Open the program in a Ped session.
    let mut ped = Ped::open(SRC).expect("parses");
    println!("opened program with {} loops\n", ped.loops(0).len());

    // 2. Look at the second loop's dependence view (the Ped window).
    let target = ped.loops(0)[1].0;
    let view =
        render::render_loop_view(&mut ped, 0, target, &DepFilter::default(), &SourceFilter::All)
            .unwrap();
    println!("{view}");

    // 3. Ask power steering about parallelization, then apply it.
    let diag = ped.diagnose(0, target, &Xform::Parallelize).unwrap();
    println!("parallelize? applicable={:?} safe={:?}\n", diag.applicable.is_ok(), diag.safe);
    ped.apply(0, target, &Xform::Parallelize).unwrap();

    // Also parallelize the reduction loop (recognized automatically).
    let red = ped.loops(0)[2].0;
    ped.apply(0, red, &Xform::Parallelize).unwrap();
    println!("transformed source:\n{}", ped.source());

    // 4. Run serial and parallel (real threads), compare.
    let serial = ped.run(ExecConfig::default()).unwrap();
    let threads =
        ped.run(ExecConfig { mode: ParallelMode::Threads(4), ..Default::default() }).unwrap();
    println!("serial output:   {:?}", serial.printed);
    println!("threaded output: {:?}", threads.printed);
    // The reduction reassociates across threads, so compare numerically.
    let a: f64 = serial.printed[0].parse().unwrap();
    let b: f64 = threads.printed[0].parse().unwrap();
    assert!((a - b).abs() < 1e-6 * a.abs());
    println!("outputs match (to reduction rounding) ✓");
}
