program scatter
integer n
parameter (n = 32)
real x(n), y(n)
integer idx(n)
real total
do i = 1, n
  x(i) = i * 1.0
  idx(i) = n - i + 1
enddo
do i = 1, n
  y(idx(i)) = x(i) * 2.0
enddo
total = 0.0
do i = 1, n
  total = total + y(i)
enddo
print *, total
end
