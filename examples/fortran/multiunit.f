program multiunit
integer n
parameter (n = 48)
real u(n), v(n)
real dot
call fill(u, n)
call fill(v, n)
call axpy(u, v, n)
dot = 0.0
call dotp(u, v, n, dot)
print *, dot
end

subroutine fill(a, n)
integer n
real a(n)
do i = 1, n
  a(i) = i * 0.5
enddo
end

subroutine axpy(a, b, n)
integer n
real a(n), b(n)
do i = 1, n
  a(i) = a(i) + 2.0 * b(i)
enddo
end

subroutine dotp(a, b, n, s)
integer n
real a(n), b(n)
real s
s = 0.0
do i = 1, n
  s = s + a(i) * b(i)
enddo
end
