program stencil
integer n, t, nsteps
parameter (n = 64, nsteps = 4)
real a(n), b(n)
do i = 1, n
  a(i) = 0.0
  b(i) = 0.0
enddo
a(1) = 1.0
a(n) = 1.0
do t = 1, nsteps
  do i = 2, n - 1
    b(i) = (a(i - 1) + a(i) + a(i + 1)) / 3.0
  enddo
  do i = 2, n - 1
    a(i) = b(i)
  enddo
enddo
print *, a(n / 2)
end
