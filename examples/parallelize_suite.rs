//! Parallelize the whole evaluation suite and measure real threaded
//! speedups on this host (contrast with the deterministic simulated
//! numbers from `cargo run -p ped-bench --bin speedups`).
//!
//! ```sh
//! cargo run --release -p ped-bench --example parallelize_suite
//! ```

use ped_bench::{apply_suite_assertions, parallelize_everything};
use ped_core::Ped;
use ped_runtime::{ExecConfig, ParallelMode};
use std::time::Instant;

/// Token-wise comparison tolerant of reduction reassociation.
fn outputs_match(a: &[String], b: &[String]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(x, y)| {
        let xs: Vec<&str> = x.split_whitespace().collect();
        let ys: Vec<&str> = y.split_whitespace().collect();
        xs.len() == ys.len()
            && xs.iter().zip(&ys).all(|(u, v)| {
                u == v
                    || match (u.parse::<f64>(), v.parse::<f64>()) {
                        (Ok(p), Ok(q)) => (p - q).abs() <= 1e-6 * p.abs().max(1.0),
                        _ => false,
                    }
            })
    })
}

fn main() {
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>9}  output",
        "program", "loops", "serial", "threads(4)", "outputs"
    );
    for w in ped_workloads::all_programs() {
        let mut ped = Ped::open(w.source).unwrap();
        apply_suite_assertions(&mut ped, w.name);
        let n = parallelize_everything(&mut ped);

        let t0 = Instant::now();
        let serial = ped.run(ExecConfig::default()).unwrap();
        let ts = t0.elapsed();

        let t0 = Instant::now();
        let par = ped
            .run(ExecConfig { mode: ParallelMode::Threads(4), ..Default::default() })
            .unwrap();
        let tp = t0.elapsed();

        println!(
            "{:<8} {:>6} {:>12?} {:>12?} {:>9}  {}",
            w.name,
            n,
            ts,
            tp,
            if outputs_match(&serial.printed, &par.printed) { "match ✓" } else { "DIFFER ✗" },
            serial.printed.join(" | ")
        );
        assert!(outputs_match(&serial.printed, &par.printed), "{} diverged", w.name);
    }
    println!("\n(the interpreter is the bottleneck at these program sizes; the");
    println!(" deterministic machine model in `--bin speedups` isolates the");
    println!(" parallelization shapes from host noise)");
}
