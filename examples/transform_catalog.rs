//! Tour of the transformation catalog: apply each transformation to a
//! small kernel and print the before/after source, verifying with the
//! interpreter that the output is unchanged.
//!
//! ```sh
//! cargo run -p ped-bench --example transform_catalog
//! ```

use ped_core::Ped;
use ped_runtime::ExecConfig;
use ped_transform::Xform;

fn demo(title: &str, src: &str, pick: impl Fn(&mut Ped) -> (usize, ped_fortran::StmtId, Xform)) {
    println!("════ {title} ════");
    let mut ped = Ped::open(src).unwrap();
    let before = ped.run(ExecConfig::default()).unwrap().printed;
    let (ui, target, xform) = pick(&mut ped);
    let diag = ped.diagnose(ui, target, &xform).unwrap();
    println!("advice: applicable={} safe={:?}", diag.applicable.is_ok(), diag.safe);
    match ped.apply(ui, target, &xform) {
        Ok(applied) => {
            println!("applied: {}", applied.description);
            println!("{}", ped.source());
            let after = ped.run(ExecConfig::default()).unwrap().printed;
            assert_eq!(before, after, "{title} changed semantics!");
            println!("outputs unchanged ✓\n");
        }
        Err(e) => println!("not applied: {e}\n"),
    }
}

fn main() {
    demo(
        "loop interchange",
        "program t\nreal a(20,30)\ns = 0.0\ndo i = 1, 20\ndo j = 1, 30\n\
         a(i,j) = i + 2 * j\nenddo\nenddo\ndo i = 1, 20\ndo j = 1, 30\ns = s + a(i,j)\nenddo\n\
         enddo\nprint *, s\nend\n",
        |ped| (0, ped.loops(0)[0].0, Xform::Interchange),
    );
    demo(
        "loop distribution",
        "program t\nreal a(50), b(50)\nb(1) = 1.0\ndo i = 2, 50\nb(i) = b(i-1) * 1.01\n\
         a(i) = i * 2.0\nenddo\nprint *, b(50), a(25)\nend\n",
        |ped| (0, ped.loops(0)[0].0, Xform::Distribute),
    );
    demo(
        "loop fusion",
        "program t\nreal a(40), b(40)\ndo i = 1, 40\na(i) = i * 1.0\nenddo\ndo i = 1, 40\n\
         b(i) = a(i) + 1.0\nenddo\nprint *, b(40)\nend\n",
        |ped| {
            let loops = ped.loops(0);
            (0, loops[0].0, Xform::Fuse { with: loops[1].0 })
        },
    );
    demo(
        "strip mining",
        "program t\nreal a(100)\ndo i = 1, 100\na(i) = i * 0.5\nenddo\nprint *, a(77)\nend\n",
        |ped| (0, ped.loops(0)[0].0, Xform::StripMine { size: 16 }),
    );
    demo(
        "unrolling",
        "program t\nreal a(64)\ndo i = 1, 64\na(i) = i * 3.0\nenddo\nprint *, a(64)\nend\n",
        |ped| (0, ped.loops(0)[0].0, Xform::Unroll { factor: 4 }),
    );
    demo(
        "loop reversal",
        "program t\nreal a(30)\ndo i = 1, 30\na(i) = i * 1.0\nenddo\nprint *, a(30)\nend\n",
        |ped| (0, ped.loops(0)[0].0, Xform::Reverse),
    );
    demo(
        "scalar expansion",
        "program t\nreal a(25), b(25)\ndo i = 1, 25\nt1 = i * 2.0\na(i) = t1\nb(i) = t1 + 1.0\n\
         enddo\nprint *, a(25), b(25)\nend\n",
        |ped| {
            let t1 = ped.program().units[0].symbols.lookup("t1").unwrap();
            (0, ped.loops(0)[0].0, Xform::ScalarExpand { var: t1 })
        },
    );
    demo(
        "induction variable substitution",
        "program t\nreal a(60)\nk = 0\ndo i = 1, 30\nk = k + 2\na(k) = i * 1.0\nenddo\n\
         print *, a(60), k\nend\n",
        |ped| {
            let k = ped.program().units[0].symbols.lookup("k").unwrap();
            (0, ped.loops(0)[0].0, Xform::IvSub { var: k })
        },
    );
    demo(
        "inlining (embedding)",
        "program t\nreal a(20)\ninteger n\nn = 20\ncall fill(a, n)\nprint *, a(20)\nend\n\
         subroutine fill(x, m)\ninteger m\nreal x(m)\ndo i = 1, m\nx(i) = i * 1.0\nenddo\n\
         return\nend\n",
        |ped| {
            let call = ped.program().units[0].body[1];
            (0, call, Xform::Inline { call })
        },
    );
    demo(
        "parallelize (with classification)",
        "program t\nreal a(80)\ns = 0.0\ndo i = 1, 80\nt1 = i * 0.5\na(i) = t1\ns = s + t1\n\
         enddo\nprint *, s\nend\n",
        |ped| (0, ped.loops(0)[0].0, Xform::Parallelize),
    );
    println!("catalog tour complete.");
}
