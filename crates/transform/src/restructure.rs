//! Statement-level restructuring: loop distribution, loop fusion, and
//! statement interchange.

use crate::edit::replace_stmt;
use crate::{Applied, Diagnosis, Profit, Safety, XformError};
use ped_dep::nest::NestCtx;
use ped_dep::vectors::Direction;
use ped_dep::{DepGraph, DepKind};
use ped_fortran::visit::{for_each_stmt, stmt_accesses, AccessKind};
use ped_fortran::{DoLoop, ProgramUnit, StmtId, StmtKind};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------- distribution ----

/// Diagnose loop distribution (always safe — the rewrite orders the new
/// loops by the dependence topological order and keeps cycles together).
pub fn diagnose_distribute(unit: &ProgramUnit, target: StmtId) -> Diagnosis {
    if !unit.is_loop(target) {
        return Diagnosis::not_applicable("target is not a DO loop");
    }
    let top: Vec<StmtId> = live_top(unit, target);
    if top.len() < 2 {
        return Diagnosis::not_applicable("body has fewer than two statements");
    }
    Diagnosis {
        applicable: Ok(()),
        safe: Safety::Safe,
        profitable: Profit::Yes(
            "separates sequential recurrences from parallelizable statements".into(),
        ),
    }
}

fn live_top(unit: &ProgramUnit, target: StmtId) -> Vec<StmtId> {
    unit.loop_of(target)
        .body
        .iter()
        .copied()
        .filter(|&s| !matches!(unit.stmt(s).kind, StmtKind::Removed))
        .collect()
}

/// Distribute the loop around the strongly connected components of the
/// statement-level dependence graph (Allen–Kennedy codegen order).
pub fn apply_distribute(
    unit: &mut ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
) -> Result<Applied, XformError> {
    if !unit.is_loop(target) {
        return Err(XformError("target is not a DO loop".into()));
    }
    let top = live_top(unit, target);
    if top.len() < 2 {
        return Err(XformError("body has fewer than two statements".into()));
    }
    // Map each dependence endpoint to its top-level statement.
    let owner = top_owner_map(unit, &top);
    // Build edges among top-level statements (ignore control deps inside).
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    for d in &graph.deps {
        if d.kind == DepKind::Input {
            continue;
        }
        let (Some(&a), Some(&b)) = (owner.get(&d.src), owner.get(&d.dst)) else { continue };
        if a != b {
            edges.insert((a, b));
        }
    }
    // Tarjan-free SCC via Kosaraju on a tiny graph.
    let n = top.len();
    let sccs = scc(n, &edges);
    // Topological order of components: components are emitted in an order
    // where all edges go forward; since `scc` returns components in reverse
    // topological order of the condensation, reverse it.
    let mut comp_of = vec![0usize; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci;
        }
    }
    // Order components topologically; stable by first statement position.
    let mut order: Vec<usize> = (0..sccs.len()).collect();
    order.sort_by_key(|&ci| sccs[ci].iter().min().copied().unwrap_or(0));
    // Ensure edges go forward; simple Kahn pass.
    let order = topo_components(&sccs, &edges, &comp_of).unwrap_or(order);

    let (var, lo, hi, step) = {
        let d = unit.loop_of(target);
        (d.var, d.lo.clone(), d.hi.clone(), d.step.clone())
    };
    let span = unit.stmt(target).span;
    let mut new_loops = Vec::new();
    for ci in order {
        let mut members: Vec<usize> = sccs[ci].clone();
        members.sort();
        let body: Vec<StmtId> = members.iter().map(|&v| top[v]).collect();
        let l = unit.alloc_stmt(
            StmtKind::Do(DoLoop {
                var,
                lo: lo.clone(),
                hi: hi.clone(),
                step: step.clone(),
                body,
                term_label: None,
                parallel: None,
            }),
            span,
        );
        new_loops.push(l);
    }
    if !replace_stmt(unit, target, &new_loops) {
        return Err(XformError("target not found".into()));
    }
    unit.stmt_mut(target).kind = StmtKind::Removed;
    Ok(Applied {
        description: format!("distributed into {} loops", new_loops.len()),
        new_stmts: new_loops,
    })
}

/// Map every nested statement to the index of its top-level owner.
fn top_owner_map(unit: &ProgramUnit, top: &[StmtId]) -> HashMap<StmtId, usize> {
    let mut owner = HashMap::new();
    for (i, &t) in top.iter().enumerate() {
        owner.insert(t, i);
        match &unit.stmt(t).kind {
            StmtKind::Do(d) => {
                for_each_stmt(unit, &d.body, &mut |s| {
                    owner.insert(s, i);
                });
            }
            StmtKind::If { arms, else_block } => {
                for (_, b) in arms {
                    for_each_stmt(unit, b, &mut |s| {
                        owner.insert(s, i);
                    });
                }
                if let Some(b) = else_block {
                    for_each_stmt(unit, b, &mut |s| {
                        owner.insert(s, i);
                    });
                }
            }
            _ => {}
        }
    }
    owner
}

/// Strongly connected components (Kosaraju) of a small digraph.
fn scc(n: usize, edges: &HashSet<(usize, usize)>) -> Vec<Vec<usize>> {
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for &(a, b) in edges {
        fwd[a].push(b);
        rev[b].push(a);
    }
    let mut visited = vec![false; n];
    let mut post = Vec::new();
    for s in 0..n {
        if !visited[s] {
            dfs_post(s, &fwd, &mut visited, &mut post);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for &s in post.iter().rev() {
        if comp[s] == usize::MAX {
            let ci = comps.len();
            let mut stack = vec![s];
            let mut members = Vec::new();
            comp[s] = ci;
            while let Some(v) = stack.pop() {
                members.push(v);
                for &w in &rev[v] {
                    if comp[w] == usize::MAX {
                        comp[w] = ci;
                        stack.push(w);
                    }
                }
            }
            comps.push(members);
        }
    }
    comps
}

fn dfs_post(s: usize, adj: &[Vec<usize>], visited: &mut [bool], post: &mut Vec<usize>) {
    let mut stack = vec![(s, 0usize)];
    visited[s] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < adj[v].len() {
            let w = adj[v][*i];
            *i += 1;
            if !visited[w] {
                visited[w] = true;
                stack.push((w, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
}

/// Kahn topological sort of the component condensation, tie-broken by the
/// smallest member for stable source order.
fn topo_components(
    sccs: &[Vec<usize>],
    edges: &HashSet<(usize, usize)>,
    comp_of: &[usize],
) -> Option<Vec<usize>> {
    let k = sccs.len();
    let mut indeg = vec![0usize; k];
    let mut adj: Vec<HashSet<usize>> = vec![HashSet::new(); k];
    for &(a, b) in edges {
        let (ca, cb) = (comp_of[a], comp_of[b]);
        if ca != cb && adj[ca].insert(cb) {
            indeg[cb] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..k).filter(|&c| indeg[c] == 0).collect();
    let mut out = Vec::with_capacity(k);
    while !ready.is_empty() {
        ready.sort_by_key(|&c| sccs[c].iter().min().copied().unwrap_or(0));
        let c = ready.remove(0);
        out.push(c);
        for &d in &adj[c] {
            indeg[d] -= 1;
            if indeg[d] == 0 {
                ready.push(d);
            }
        }
    }
    (out.len() == k).then_some(out)
}

// ---------------------------------------------------------------- fusion ----

/// Diagnose fusing `target` with the directly following loop `with`.
pub fn diagnose_fuse(unit: &ProgramUnit, target: StmtId, with: StmtId) -> Diagnosis {
    if !unit.is_loop(target) || !unit.is_loop(with) {
        return Diagnosis::not_applicable("both targets must be DO loops");
    }
    if !adjacent_in_some_block(unit, target, with) {
        return Diagnosis::not_applicable("loops are not adjacent in one block");
    }
    let (a, b) = (unit.loop_of(target), unit.loop_of(with));
    if a.var != b.var || a.lo != b.lo || a.hi != b.hi || a.step_expr() != b.step_expr() {
        return Diagnosis::not_applicable("loop controls differ");
    }
    // Fusion-preventing dependence: source in the first loop, sink in the
    // second, realized with direction `>` in the fused loop (the sink
    // iteration would run before its source).
    let nest = NestCtx::from_headers(unit, &[target], Box::new(|_| None));
    let acc1 = array_accesses(unit, target);
    let acc2 = array_accesses(unit, with);
    for (s1, w1, subs1) in &acc1 {
        for (s2, w2, subs2) in &acc2 {
            if !(w1 | w2) {
                continue;
            }
            let _ = (s1, s2);
            // Rewrite loop-var uses: both loops share `var`, so subscripts
            // are already comparable in the fused space.
            let outcome = ped_dep::driver::test_pair(subs1, subs2, &nest);
            if outcome.independent {
                continue;
            }
            for v in &outcome.vectors {
                if v.dirs.0[0].contains(Direction::Gt) {
                    return Diagnosis {
                        applicable: Ok(()),
                        safe: Safety::Unsafe(format!(
                            "fusion-preventing dependence with vector {}",
                            v.dirs
                        )),
                        profitable: Profit::Unknown,
                    };
                }
            }
        }
    }
    Diagnosis {
        applicable: Ok(()),
        safe: Safety::Safe,
        profitable: Profit::Yes("improves granularity and reuse across the bodies".into()),
    }
}

fn adjacent_in_some_block(unit: &ProgramUnit, a: StmtId, b: StmtId) -> bool {
    fn scan(unit: &ProgramUnit, block: &[StmtId], a: StmtId, b: StmtId) -> bool {
        let live: Vec<StmtId> = block
            .iter()
            .copied()
            .filter(|&s| !matches!(unit.stmt(s).kind, StmtKind::Removed))
            .collect();
        for w in live.windows(2) {
            if w[0] == a && w[1] == b {
                return true;
            }
        }
        for &s in block {
            match &unit.stmt(s).kind {
                StmtKind::Do(d) if scan(unit, &d.body, a, b) => return true,
                StmtKind::If { arms, else_block } => {
                    for (_, blk) in arms {
                        if scan(unit, blk, a, b) {
                            return true;
                        }
                    }
                    if let Some(blk) = else_block {
                        if scan(unit, blk, a, b) {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }
    scan(unit, &unit.body, a, b)
}

/// Subscripted array accesses inside a loop, with write flags.
#[allow(clippy::type_complexity)]
fn array_accesses(
    unit: &ProgramUnit,
    header: StmtId,
) -> Vec<(StmtId, bool, Vec<ped_fortran::Expr>)> {
    let mut out = Vec::new();
    let body = unit.loop_of(header).body.clone();
    for_each_stmt(unit, &body, &mut |sid| {
        for acc in stmt_accesses(unit, sid) {
            if let Some(subs) = acc.subs {
                if acc.kind != AccessKind::CallArg {
                    out.push((sid, acc.kind == AccessKind::Write, subs));
                }
            }
        }
    });
    out
}

/// Fuse `with` into `target` (bodies concatenated; `with` removed).
pub fn apply_fuse(
    unit: &mut ProgramUnit,
    target: StmtId,
    with: StmtId,
) -> Result<Applied, XformError> {
    let d = diagnose_fuse(unit, target, with);
    if let Err(e) = d.applicable {
        return Err(XformError(e));
    }
    let mut body2 = unit.loop_of(with).body.clone();
    unit.loop_of_mut(target).body.append(&mut body2);
    crate::edit::remove_stmt(unit, with);
    Ok(Applied { description: "fused loops".into(), new_stmts: Vec::new() })
}

// ------------------------------------------------- statement interchange ----

/// Diagnose swapping adjacent statements `a` and `b` inside the loop.
pub fn diagnose_stmt_interchange(
    unit: &ProgramUnit,
    _loop_header: StmtId,
    a: StmtId,
    b: StmtId,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if !adjacent_in_some_block(unit, a, b) {
        return Diagnosis::not_applicable("statements are not adjacent");
    }
    // Unsafe if a loop-independent dependence links them in either
    // direction (loop-carried ones are unaffected by in-iteration order
    // only when the carried level ordering still holds — conservatively we
    // also reject carried deps directly between the two statements).
    for d in &graph.deps {
        if !live(d.id) || d.kind == DepKind::Input {
            continue;
        }
        let links = (d.src == a && d.dst == b) || (d.src == b && d.dst == a);
        if links && d.level.is_none() {
            return Diagnosis {
                applicable: Ok(()),
                safe: Safety::Unsafe(format!(
                    "loop-independent {} dependence between the statements",
                    d.kind
                )),
                profitable: Profit::Unknown,
            };
        }
    }
    Diagnosis { applicable: Ok(()), safe: Safety::Safe, profitable: Profit::Unknown }
}

/// Swap two adjacent statements.
pub fn apply_stmt_interchange(
    unit: &mut ProgramUnit,
    _loop_header: StmtId,
    a: StmtId,
    b: StmtId,
) -> Result<Applied, XformError> {
    if !adjacent_in_some_block(unit, a, b) {
        return Err(XformError("statements are not adjacent".into()));
    }
    // Replace the pair [a, b] with [b, a]: splice via replace of `a` with
    // [b, a] and removal of the original b.
    fn swap_in(unit: &mut ProgramUnit, block: &mut [StmtId], a: StmtId, b: StmtId) -> bool {
        if let Some(p) = block.iter().position(|&s| s == a) {
            if block.get(p + 1) == Some(&b) {
                block.swap(p, p + 1);
                return true;
            }
        }
        for &sid in block.iter() {
            let mut kind = std::mem::replace(&mut unit.stmt_mut(sid).kind, StmtKind::Removed);
            let found = match &mut kind {
                StmtKind::Do(d) => swap_in(unit, &mut d.body, a, b),
                StmtKind::If { arms, else_block } => {
                    let mut f = false;
                    for (_, blk) in arms.iter_mut() {
                        if swap_in(unit, blk, a, b) {
                            f = true;
                            break;
                        }
                    }
                    if !f {
                        if let Some(blk) = else_block {
                            f = swap_in(unit, blk, a, b);
                        }
                    }
                    f
                }
                _ => false,
            };
            unit.stmt_mut(sid).kind = kind;
            if found {
                return true;
            }
        }
        false
    }
    let mut body = std::mem::take(&mut unit.body);
    let ok = swap_in(unit, &mut body, a, b);
    unit.body = body;
    if !ok {
        return Err(XformError("adjacent pair not found".into()));
    }
    Ok(Applied { description: "interchanged statements".into(), new_stmts: Vec::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dep::graph::{build_graph, GraphConfig};
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_unit;

    fn setup(src: &str) -> (ProgramUnit, StmtId, DepGraph) {
        let u = parse_program(src).unwrap().units.remove(0);
        let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let g = build_graph(&u, h, &GraphConfig::conservative());
        (u, h, g)
    }

    fn text(u: &ProgramUnit) -> String {
        let mut s = String::new();
        print_unit(u, &mut s);
        s
    }

    #[test]
    fn distribute_splits_recurrence_from_parallel() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100), b(100)\ndo i = 2, 100\na(i) = a(i-1) + 1.0\n\
             b(i) = b(i) * 2.0\nenddo\nend\n",
        );
        assert!(diagnose_distribute(&u, h).ok());
        let r = apply_distribute(&mut u, h, &g).unwrap();
        assert_eq!(r.new_stmts.len(), 2, "{}", text(&u));
        // The b-loop alone is now parallelizable.
        let g2 = build_graph(&u, r.new_stmts[1], &GraphConfig::conservative());
        assert!(g2.parallelizable(), "{}", text(&u));
        let g1 = build_graph(&u, r.new_stmts[0], &GraphConfig::conservative());
        assert!(!g1.parallelizable());
    }

    #[test]
    fn distribute_keeps_cycles_together() {
        // a and b form a cross-statement recurrence cycle: cannot split.
        let (mut u, h, g) = setup(
            "program t\nreal a(100), b(100)\ndo i = 2, 100\na(i) = b(i-1)\n\
             b(i) = a(i-1)\nenddo\nend\n",
        );
        let r = apply_distribute(&mut u, h, &g).unwrap();
        assert_eq!(r.new_stmts.len(), 1, "cycle must stay in one loop");
    }

    #[test]
    fn distribute_orders_by_dependence() {
        // s2 reads what s1 wrote in the same iteration: s1's loop first.
        let (mut u, h, g) = setup(
            "program t\nreal a(100), b(100)\ndo i = 1, 100\na(i) = 1.0\n\
             b(i) = a(i)\nenddo\nend\n",
        );
        let r = apply_distribute(&mut u, h, &g).unwrap();
        assert_eq!(r.new_stmts.len(), 2);
        let s = text(&u);
        let p1 = s.find("a(i) = 1.0").unwrap();
        let p2 = s.find("b(i) = a(i)").unwrap();
        assert!(p1 < p2, "{s}");
    }

    #[test]
    fn fuse_adjacent_identical_loops() {
        let (mut u, h, _) = setup(
            "program t\nreal a(100), b(100)\ndo i = 1, 100\na(i) = 1.0\nenddo\n\
             do i = 1, 100\nb(i) = a(i)\nenddo\nend\n",
        );
        let second = u.body[1];
        let d = diagnose_fuse(&u, h, second);
        assert!(d.ok(), "{d:?}");
        apply_fuse(&mut u, h, second).unwrap();
        let s = text(&u);
        assert_eq!(s.matches("do i = 1, 100").count(), 1, "{s}");
        assert!(s.contains("b(i) = a(i)"));
    }

    #[test]
    fn fusion_preventing_dependence_detected() {
        // Second loop reads a(i+1): iteration i of fused loop would read
        // a value the first loop has not produced yet (backward dep).
        let (u, h, _) = setup(
            "program t\nreal a(200), b(200)\ndo i = 1, 100\na(i) = 1.0\nenddo\n\
             do i = 1, 100\nb(i) = a(i+1)\nenddo\nend\n",
        );
        let second = u.body[1];
        let d = diagnose_fuse(&u, h, second);
        assert!(matches!(d.safe, Safety::Unsafe(_)), "{d:?}");
    }

    #[test]
    fn fuse_rejects_different_bounds() {
        let (u, h, _) = setup(
            "program t\nreal a(100), b(100)\ndo i = 1, 100\na(i) = 1.0\nenddo\n\
             do i = 1, 50\nb(i) = 2.0\nenddo\nend\n",
        );
        let second = u.body[1];
        assert!(diagnose_fuse(&u, h, second).applicable.is_err());
    }

    #[test]
    fn stmt_interchange_safety() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100), b(100), c(100)\ndo i = 1, 100\na(i) = 1.0\n\
             b(i) = 2.0\nc(i) = a(i)\nenddo\nend\n",
        );
        let body = u.loop_of(h).body.clone();
        // a-assign and b-assign are independent: swappable.
        let d = diagnose_stmt_interchange(&u, h, body[0], body[1], &g, &|_| true);
        assert!(d.ok(), "{d:?}");
        // b-assign and c-assign: c reads a — still fine (no dep b↔c).
        // a-assign and (swapped to adjacent) c-assign carry a true dep.
        apply_stmt_interchange(&mut u, h, body[0], body[1]).unwrap();
        let s = text(&u);
        let pb = s.find("b(i) = 2.0").unwrap();
        let pa = s.find("a(i) = 1.0").unwrap();
        assert!(pb < pa, "{s}");
        // Now a and c are adjacent with a true dependence.
        let g2 = build_graph(&u, h, &GraphConfig::conservative());
        let d2 = diagnose_stmt_interchange(&u, h, body[0], body[2], &g2, &|_| true);
        assert!(matches!(d2.safe, Safety::Unsafe(_)), "{d2:?}");
    }
}
