//! Loop-reordering transformations: interchange, reversal, skewing, strip
//! mining, unrolling, unroll-and-jam.

use crate::edit::{clone_stmt_subst, perfect_nest, replace_stmt};
use crate::{Applied, Diagnosis, Profit, Safety, XformError};
use ped_analysis::constants::{eval, Facts};
use ped_dep::vectors::Direction;
use ped_dep::DepGraph;
use ped_fortran::ast::Intrinsic;
use ped_fortran::{BinOp, DoLoop, Expr, ProgramUnit, StmtId, StmtKind};

/// Fold an expression to an integer using only literals and PARAMETERs.
fn const_int(unit: &ProgramUnit, e: &Expr) -> Option<i64> {
    match eval(unit, &Facts::new(), e)? {
        ped_fortran::symbols::Const::Int(v) => Some(v),
        _ => None,
    }
}

fn require_loop(unit: &ProgramUnit, target: StmtId) -> Result<(), String> {
    if unit.is_loop(target) {
        Ok(())
    } else {
        Err("target is not a DO loop".into())
    }
}

/// Does any live dependence have a direction vector that could realize
/// `(<, >)` on the first two levels? (The classic interchange-illegality
/// pattern.)
fn has_lt_gt(graph: &DepGraph, live: &dyn Fn(usize) -> bool) -> Option<String> {
    for d in &graph.deps {
        if !live(d.id) || d.dirs.len() < 2 {
            continue;
        }
        if d.dirs.0[0].contains(Direction::Lt) && d.dirs.0[1].contains(Direction::Gt) {
            return Some(format!(
                "dependence on {} with vector {} would be reversed",
                d.var.map(|v| graph_var_name(d, v)).unwrap_or_default(),
                d.dirs
            ));
        }
    }
    None
}

fn graph_var_name(_d: &ped_dep::Dependence, v: ped_fortran::SymId) -> String {
    format!("sym{}", v.0)
}

// ----------------------------------------------------------- interchange ----

/// Diagnose loop interchange of `target` with its immediately nested loop.
pub fn diagnose_interchange(
    unit: &ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if let Err(e) = require_loop(unit, target) {
        return Diagnosis::not_applicable(e);
    }
    let Some(inner) = perfect_nest(unit, target) else {
        return Diagnosis::not_applicable("loop is not perfectly nested");
    };
    // Rectangularity: inner bounds must not use the outer index.
    let outer_var = unit.loop_of(target).var;
    let di = unit.loop_of(inner);
    let mut rect = true;
    for e in [&di.lo, &di.hi].into_iter().chain(di.step.as_ref()) {
        ped_fortran::visit::walk_expr(e, &mut |x| {
            if matches!(x, Expr::Var(s) if *s == outer_var) {
                rect = false;
            }
        });
    }
    if !rect {
        return Diagnosis::not_applicable("inner bounds depend on the outer index (triangular)");
    }
    let safe = match has_lt_gt(graph, live) {
        Some(why) => Safety::Unsafe(why),
        None => Safety::Safe,
    };
    let profitable = profit_interchange(graph, live);
    Diagnosis { applicable: Ok(()), safe, profitable }
}

fn profit_interchange(graph: &DepGraph, live: &dyn Fn(usize) -> bool) -> Profit {
    let carried1 = graph.deps.iter().any(|d| live(d.id) && d.blocks_parallel());
    let carried2 = graph
        .deps
        .iter()
        .any(|d| live(d.id) && d.level == Some(2) && d.kind != ped_dep::DepKind::Input);
    match (carried1, carried2) {
        (true, false) => Profit::Yes(
            "inner loop is parallel; interchange moves parallelism outward for granularity"
                .into(),
        ),
        (false, _) => Profit::No("outer loop is already parallel".into()),
        _ => Profit::Unknown,
    }
}

/// Swap the loop controls of `target` and its nested loop.
pub fn apply_interchange(unit: &mut ProgramUnit, target: StmtId) -> Result<Applied, XformError> {
    let inner =
        perfect_nest(unit, target).ok_or_else(|| XformError("not perfectly nested".into()))?;
    let (ivar, ilo, ihi, istep) = {
        let d = unit.loop_of(inner);
        (d.var, d.lo.clone(), d.hi.clone(), d.step.clone())
    };
    let (ovar, olo, ohi, ostep) = {
        let d = unit.loop_of(target);
        (d.var, d.lo.clone(), d.hi.clone(), d.step.clone())
    };
    {
        let d = unit.loop_of_mut(target);
        d.var = ivar;
        d.lo = ilo;
        d.hi = ihi;
        d.step = istep;
        d.parallel = None;
    }
    {
        let d = unit.loop_of_mut(inner);
        d.var = ovar;
        d.lo = olo;
        d.hi = ohi;
        d.step = ostep;
        d.parallel = None;
    }
    Ok(Applied { description: "interchanged loop controls".into(), new_stmts: Vec::new() })
}

// -------------------------------------------------------------- reversal ----

/// Diagnose loop reversal.
pub fn diagnose_reverse(
    unit: &ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if let Err(e) = require_loop(unit, target) {
        return Diagnosis::not_applicable(e);
    }
    let carried = graph.deps.iter().find(|d| {
        live(d.id)
            && d.level == Some(1)
            && d.kind != ped_dep::DepKind::Input
            && !matches!(d.cause, ped_dep::DepCause::Control)
    });
    let safe = match carried {
        Some(d) => Safety::Unsafe(format!(
            "loop-carried {} dependence {} would be reversed",
            d.kind, d.dirs
        )),
        None => Safety::Safe,
    };
    Diagnosis {
        applicable: Ok(()),
        safe,
        profitable: Profit::Unknown,
    }
}

/// Reverse the iteration order of the loop.
pub fn apply_reverse(unit: &mut ProgramUnit, target: StmtId) -> Result<Applied, XformError> {
    if !unit.is_loop(target) {
        return Err(XformError("target is not a DO loop".into()));
    }
    let d = unit.loop_of_mut(target);
    let lo = d.lo.clone();
    let hi = d.hi.clone();
    d.lo = hi;
    d.hi = lo;
    d.step = Some(match d.step.take() {
        None => Expr::Int(-1),
        Some(Expr::Int(v)) => Expr::Int(-v),
        Some(e) => Expr::neg(e),
    });
    Ok(Applied { description: "reversed iteration order".into(), new_stmts: Vec::new() })
}

// -------------------------------------------------------------- skewing ----

/// Diagnose loop skewing of a perfect 2-nest (always safe; reshapes the
/// iteration space so interchange becomes legal on wavefronts).
pub fn diagnose_skew(unit: &ProgramUnit, target: StmtId, factor: i64) -> Diagnosis {
    if let Err(e) = require_loop(unit, target) {
        return Diagnosis::not_applicable(e);
    }
    if factor == 0 {
        return Diagnosis::not_applicable("skew factor must be non-zero");
    }
    if perfect_nest(unit, target).is_none() {
        return Diagnosis::not_applicable("loop is not perfectly nested");
    }
    Diagnosis {
        applicable: Ok(()),
        safe: Safety::Safe,
        profitable: Profit::Yes("skewing can legalize interchange for wavefront parallelism".into()),
    }
}

/// Skew the inner loop: `j' = j + f·i`, body references rewritten.
pub fn apply_skew(
    unit: &mut ProgramUnit,
    target: StmtId,
    factor: i64,
) -> Result<Applied, XformError> {
    let inner =
        perfect_nest(unit, target).ok_or_else(|| XformError("not perfectly nested".into()))?;
    let outer_var = unit.loop_of(target).var;
    let inner_var = unit.loop_of(inner).var;
    let shift = Expr::bin(BinOp::Mul, Expr::Int(factor), Expr::Var(outer_var));
    // Bounds: lo' = lo + f·i, hi' = hi + f·i.
    {
        let d = unit.loop_of_mut(inner);
        d.lo = Expr::bin(BinOp::Add, d.lo.clone(), shift.clone());
        d.hi = Expr::bin(BinOp::Add, d.hi.clone(), shift.clone());
    }
    // Body: j → (j − f·i).
    let unshift = Expr::bin(BinOp::Sub, Expr::Var(inner_var), shift);
    let body = unit.loop_of(inner).body.clone();
    for s in body {
        crate::edit::subst_var_in_stmt(unit, s, inner_var, &unshift);
    }
    Ok(Applied {
        description: format!("skewed inner loop by factor {factor}"),
        new_stmts: Vec::new(),
    })
}

// ----------------------------------------------------------- strip mining ----

/// Diagnose strip mining.
pub fn diagnose_stripmine(unit: &ProgramUnit, target: StmtId, size: i64) -> Diagnosis {
    if let Err(e) = require_loop(unit, target) {
        return Diagnosis::not_applicable(e);
    }
    if size < 2 {
        return Diagnosis::not_applicable("tile size must be at least 2");
    }
    let d = unit.loop_of(target);
    if d.step.as_ref().map(|s| !s.is_int(1)).unwrap_or(false) {
        return Diagnosis::not_applicable("only unit-step loops are strip mined");
    }
    Diagnosis {
        applicable: Ok(()),
        safe: Safety::Safe,
        profitable: Profit::Yes("creates a tile loop for scheduling/locality".into()),
    }
}

/// Strip-mine the loop into tiles of `size`.
pub fn apply_stripmine(
    unit: &mut ProgramUnit,
    target: StmtId,
    size: i64,
) -> Result<Applied, XformError> {
    if !unit.is_loop(target) {
        return Err(XformError("target is not a DO loop".into()));
    }
    let (var, lo, hi) = {
        let d = unit.loop_of(target);
        (d.var, d.lo.clone(), d.hi.clone())
    };
    let base = unit.symbols.name(var).to_string();
    let tile = crate::edit::fresh_scalar(unit, &format!("{base}t"), ped_fortran::Ty::Integer);
    // Inner: do var = tile, min(tile + size − 1, hi).
    {
        let d = unit.loop_of_mut(target);
        d.lo = Expr::Var(tile);
        d.hi = Expr::Intrinsic {
            op: Intrinsic::Min,
            args: vec![
                Expr::bin(BinOp::Add, Expr::Var(tile), Expr::Int(size - 1)),
                hi.clone(),
            ],
        };
        d.parallel = None;
    }
    let span = unit.stmt(target).span;
    let outer = unit.alloc_stmt(
        StmtKind::Do(DoLoop {
            var: tile,
            lo,
            hi,
            step: Some(Expr::Int(size)),
            body: vec![target],
            term_label: None,
            parallel: None,
        }),
        span,
    );
    if !replace_stmt(unit, target, &[outer]) {
        return Err(XformError("target not found in unit body".into()));
    }
    Ok(Applied {
        description: format!("strip mined with tile size {size}"),
        new_stmts: vec![outer],
    })
}

// -------------------------------------------------------------- unrolling ----

/// Diagnose unrolling by `factor` (requires a constant, divisible trip).
pub fn diagnose_unroll(unit: &ProgramUnit, target: StmtId, factor: u32) -> Diagnosis {
    if let Err(e) = require_loop(unit, target) {
        return Diagnosis::not_applicable(e);
    }
    if factor < 2 {
        return Diagnosis::not_applicable("unroll factor must be at least 2");
    }
    let d = unit.loop_of(target);
    let (Some(lo), Some(hi)) = (const_int(unit, &d.lo), const_int(unit, &d.hi)) else {
        return Diagnosis::not_applicable("loop bounds are not compile-time constants");
    };
    let step = match &d.step {
        None => 1,
        Some(e) => match const_int(unit, e) {
            Some(v) if v != 0 => v,
            _ => return Diagnosis::not_applicable("step is not a non-zero constant"),
        },
    };
    let trip = ((hi - lo + step) / step).max(0);
    if trip % factor as i64 != 0 {
        return Diagnosis::not_applicable(format!(
            "trip count {trip} is not divisible by {factor}"
        ));
    }
    Diagnosis {
        applicable: Ok(()),
        safe: Safety::Safe,
        profitable: Profit::Yes("reduces loop overhead and exposes scheduling freedom".into()),
    }
}

/// Unroll by `factor`: replicate the body with `var → var + k·step`.
pub fn apply_unroll(
    unit: &mut ProgramUnit,
    target: StmtId,
    factor: u32,
) -> Result<Applied, XformError> {
    let diag = diagnose_unroll(unit, target, factor);
    if let Err(e) = diag.applicable {
        return Err(XformError(e));
    }
    let (var, step_val, body) = {
        let d = unit.loop_of(target);
        let step = d.step.as_ref().map(|e| const_int(unit, e).expect("checked")).unwrap_or(1);
        (d.var, step, d.body.clone())
    };
    let mut new_stmts = Vec::new();
    let mut full_body = body.clone();
    for k in 1..factor as i64 {
        let offset = Expr::bin(BinOp::Add, Expr::Var(var), Expr::Int(k * step_val));
        for &s in &body {
            let copy = clone_stmt_subst(unit, s, var, &offset);
            new_stmts.push(copy);
            full_body.push(copy);
        }
    }
    {
        let d = unit.loop_of_mut(target);
        d.body = full_body;
        d.step = Some(Expr::Int(step_val * factor as i64));
    }
    Ok(Applied { description: format!("unrolled by {factor}"), new_stmts })
}

// --------------------------------------------------------- unroll and jam ----

/// Diagnose unroll-and-jam of a perfect 2-nest.
pub fn diagnose_unroll_and_jam(
    unit: &ProgramUnit,
    target: StmtId,
    factor: u32,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if let Err(e) = require_loop(unit, target) {
        return Diagnosis::not_applicable(e);
    }
    if perfect_nest(unit, target).is_none() {
        return Diagnosis::not_applicable("loop is not perfectly nested");
    }
    let base = diagnose_unroll(unit, target, factor);
    if let Err(e) = base.applicable {
        return Diagnosis::not_applicable(e);
    }
    // Jam legality matches interchange legality.
    let safe = match has_lt_gt(graph, live) {
        Some(why) => Safety::Unsafe(why),
        None => Safety::Safe,
    };
    Diagnosis {
        applicable: Ok(()),
        safe,
        profitable: Profit::Yes("improves register reuse across outer iterations".into()),
    }
}

/// Unroll the outer loop and jam the copies into the inner body.
pub fn apply_unroll_and_jam(
    unit: &mut ProgramUnit,
    target: StmtId,
    factor: u32,
) -> Result<Applied, XformError> {
    let inner =
        perfect_nest(unit, target).ok_or_else(|| XformError("not perfectly nested".into()))?;
    let diag = diagnose_unroll(unit, target, factor);
    if let Err(e) = diag.applicable {
        return Err(XformError(e));
    }
    let (ovar, ostep) = {
        let d = unit.loop_of(target);
        let step = d.step.as_ref().map(|e| const_int(unit, e).expect("checked")).unwrap_or(1);
        (d.var, step)
    };
    let inner_body = unit.loop_of(inner).body.clone();
    let mut new_stmts = Vec::new();
    let mut jammed = inner_body.clone();
    for k in 1..factor as i64 {
        let offset = Expr::bin(BinOp::Add, Expr::Var(ovar), Expr::Int(k * ostep));
        for &s in &inner_body {
            let copy = clone_stmt_subst(unit, s, ovar, &offset);
            new_stmts.push(copy);
            jammed.push(copy);
        }
    }
    unit.loop_of_mut(inner).body = jammed;
    unit.loop_of_mut(target).step = Some(Expr::Int(ostep * factor as i64));
    Ok(Applied { description: format!("unrolled outer by {factor} and jammed"), new_stmts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dep::graph::{build_graph, GraphConfig};
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_unit;

    fn setup(src: &str) -> (ProgramUnit, StmtId, DepGraph) {
        let u = parse_program(src).unwrap().units.remove(0);
        let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let g = build_graph(&u, h, &GraphConfig::conservative());
        (u, h, g)
    }

    fn text(u: &ProgramUnit) -> String {
        let mut s = String::new();
        print_unit(u, &mut s);
        s
    }

    const ALL: fn(usize) -> bool = |_| true;

    #[test]
    fn interchange_swaps_controls() {
        let (mut u, h, g) = setup(
            "program t\nreal a(10,20)\ndo i = 1, 10\ndo j = 1, 20\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        );
        let d = diagnose_interchange(&u, h, &g, &ALL);
        assert!(d.ok(), "{d:?}");
        apply_interchange(&mut u, h).unwrap();
        let s = text(&u);
        let i1 = s.find("do j = 1, 20").expect("outer j");
        let i2 = s.find("do i = 1, 10").expect("inner i");
        assert!(i1 < i2, "{s}");
    }

    #[test]
    fn interchange_unsafe_on_lt_gt() {
        let (u, h, g) = setup(
            "program t\nreal a(12,12)\ndo i = 2, 10\ndo j = 2, 10\n\
             a(i,j) = a(i-1,j+1)\nenddo\nenddo\nend\n",
        );
        let d = diagnose_interchange(&u, h, &g, &ALL);
        assert!(matches!(d.safe, Safety::Unsafe(_)), "{d:?}");
    }

    #[test]
    fn interchange_rejects_triangular() {
        let (u, h, g) = setup(
            "program t\nreal a(10,10)\ndo i = 1, 10\ndo j = 1, i\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        );
        let d = diagnose_interchange(&u, h, &g, &ALL);
        assert!(d.applicable.is_err());
    }

    #[test]
    fn reverse_safe_only_without_carried() {
        let (mut u, h, g) = setup(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = 2.0\nenddo\nend\n",
        );
        assert!(diagnose_reverse(&u, h, &g, &ALL).ok());
        apply_reverse(&mut u, h).unwrap();
        assert!(text(&u).contains("do i = 10, 1, -1"), "{}", text(&u));

        let (u2, h2, g2) = setup(
            "program t\nreal a(10)\ndo i = 2, 10\na(i) = a(i-1)\nenddo\nend\n",
        );
        assert!(matches!(diagnose_reverse(&u2, h2, &g2, &ALL).safe, Safety::Unsafe(_)));
    }

    #[test]
    fn stripmine_structure() {
        let (mut u, h, _) = setup(
            "program t\nreal a(100)\ndo i = 1, 100\na(i) = 1.0\nenddo\nend\n",
        );
        assert!(diagnose_stripmine(&u, h, 16).ok());
        apply_stripmine(&mut u, h, 16).unwrap();
        let s = text(&u);
        assert!(s.contains("do it$1 = 1, 100, 16"), "{s}");
        assert!(s.contains("do i = it$1, min(it$1 + 15, 100)"), "{s}");
    }

    #[test]
    fn unroll_replicates_and_strides() {
        let (mut u, h, _) = setup(
            "program t\nreal a(100)\ndo i = 1, 100\na(i) = 1.0\nenddo\nend\n",
        );
        assert!(diagnose_unroll(&u, h, 4).ok());
        let r = apply_unroll(&mut u, h, 4).unwrap();
        assert_eq!(r.new_stmts.len(), 3);
        let s = text(&u);
        assert!(s.contains("do i = 1, 100, 4"), "{s}");
        assert!(s.contains("a(i + 1) = 1.0"), "{s}");
        assert!(s.contains("a(i + 3) = 1.0"), "{s}");
    }

    #[test]
    fn unroll_rejects_indivisible() {
        let (u, h, _) = setup(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\nend\n",
        );
        assert!(diagnose_unroll(&u, h, 3).applicable.is_err());
    }

    #[test]
    fn skew_rewrites_bounds_and_body() {
        let (mut u, h, _) = setup(
            "program t\nreal a(10,30)\ndo i = 1, 10\ndo j = 1, 10\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        );
        assert!(diagnose_skew(&u, h, 1).ok());
        apply_skew(&mut u, h, 1).unwrap();
        let s = text(&u);
        assert!(s.contains("do j = 1 + 1 * i, 10 + 1 * i"), "{s}");
        assert!(s.contains("a(i, j - 1 * i) = 0.0"), "{s}");
    }

    #[test]
    fn unroll_and_jam_jams_inner() {
        let (mut u, h, g) = setup(
            "program t\nreal a(8,8), b(8,8)\ndo i = 1, 8\ndo j = 1, 8\n\
             a(i,j) = b(i,j)\nenddo\nenddo\nend\n",
        );
        assert!(diagnose_unroll_and_jam(&u, h, 2, &g, &ALL).ok());
        apply_unroll_and_jam(&mut u, h, 2).unwrap();
        let s = text(&u);
        assert!(s.contains("do i = 1, 8, 2"), "{s}");
        assert!(s.contains("a(i + 1, j) = b(i + 1, j)"), "{s}");
    }
}
