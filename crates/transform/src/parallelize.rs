//! Loop parallelization — the transformation Ped exists for.
//!
//! Diagnosis: the loop is safe to parallelize when no live loop-carried
//! dependence remains at level 1 (after user dependence marking upstream)
//! and every scalar is classifiable as loop index, read-only, private,
//! reduction, or substitutable induction. Application rewrites `DO` into
//! `PARALLEL DO` with `PRIVATE`, `REDUCTION`, and `LASTPRIVATE` clauses
//! derived from the classification — the same classification the variable
//! pane displays and lets the user override.

use crate::{Applied, Diagnosis, Profit, Safety, XformError};
use ped_analysis::scalars::ScalarClass;
use ped_dep::{DepGraph, Dependence};
use ped_fortran::{ParallelInfo, ProgramUnit, StmtId};

/// Diagnose parallelization of the loop at `target`.
pub fn diagnose(
    unit: &ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if !unit.is_loop(target) {
        return Diagnosis::not_applicable("target is not a DO loop");
    }
    if unit.loop_of(target).is_parallel() {
        return Diagnosis::not_applicable("loop is already parallel");
    }
    let blockers: Vec<&Dependence> =
        graph.deps.iter().filter(|d| live(d.id) && d.blocks_parallel()).collect();
    let safe = match blockers.first() {
        None => Safety::Safe,
        Some(d) => Safety::Unsafe(format!(
            "loop-carried {} dependence {} ↦ {} with vector {}{}",
            d.kind,
            d.src,
            d.dst,
            d.dirs,
            if d.proven { " (proven)" } else { " (pending — consider an assertion)" }
        )),
    };
    let profitable = if matches!(safe, Safety::Safe) {
        Profit::Yes("all iterations can run concurrently".into())
    } else {
        Profit::No(format!("{} blocking dependences", blockers.len()))
    };
    Diagnosis { applicable: Ok(()), safe, profitable }
}

/// Build the clause set for a `PARALLEL DO` at `target` from the graph's
/// scalar classification plus inner loop indices. Shared by [`apply`] and
/// array privatization (which seeds the same clauses, plus the array).
pub(crate) fn build_info(unit: &ProgramUnit, target: StmtId, graph: &DepGraph) -> ParallelInfo {
    let mut info = ParallelInfo::default();
    for (&sym, class) in &graph.scalar_classes {
        match class {
            ScalarClass::Private { needs_lastprivate } => {
                if *needs_lastprivate {
                    info.lastprivate.push(sym);
                } else {
                    info.private.push(sym);
                }
            }
            ScalarClass::Reduction(op) => info.reductions.push((*op, sym)),
            _ => {}
        }
    }
    // Inner loop indices must also be private per thread.
    let body = unit.loop_of(target).body.clone();
    ped_fortran::visit::for_each_stmt(unit, &body, &mut |sid| {
        if let ped_fortran::StmtKind::Do(d) = &unit.stmt(sid).kind {
            if !info.private.contains(&d.var) {
                info.private.push(d.var);
            }
        }
    });
    info.private.sort();
    info.private.dedup();
    info.lastprivate.sort();
    info.lastprivate.dedup();
    info.reductions.sort_by_key(|&(_, s)| s);
    info.reductions.dedup();
    info
}

/// Convert the loop to `PARALLEL DO`, attaching variable classification.
pub fn apply(
    unit: &mut ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
) -> Result<Applied, XformError> {
    if !unit.is_loop(target) {
        return Err(XformError("target is not a DO loop".into()));
    }
    let info = build_info(unit, target, graph);
    let description = format!(
        "parallel do with {} private, {} reduction, {} lastprivate variables",
        info.private.len(),
        info.reductions.len(),
        info.lastprivate.len()
    );
    unit.loop_of_mut(target).parallel = Some(info);
    Ok(Applied { description, new_stmts: Vec::new() })
}

/// Diagnose array privatization: give each iteration a private copy of
/// `var`, removing its carried dependences from the parallelization
/// obstacle set. Safe when the section analysis proved the array is fully
/// overwritten before any read in every iteration (no upward-exposed
/// reads) and dead after the loop — and, when the loop is not already
/// parallel, no *other* live dependence still blocks it.
pub fn diagnose_array_privatize(
    unit: &ProgramUnit,
    target: StmtId,
    var: ped_fortran::SymId,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if !unit.is_loop(target) {
        return Diagnosis::not_applicable("target is not a DO loop");
    }
    if !unit.symbols.sym(var).is_array() {
        return Diagnosis::not_applicable(format!(
            "{} is not an array",
            unit.symbols.name(var)
        ));
    }
    let Some(class) = graph.array_classes.get(&var) else {
        return Diagnosis::not_applicable(format!(
            "{} is not referenced in the loop",
            unit.symbols.name(var)
        ));
    };
    let name = unit.symbols.name(var);
    let safe = if !class.privatizable {
        let why = if !class.written {
            format!("{name} is never written in the loop")
        } else if class.live_after {
            format!("{name} is live after the loop (privatization would lose its final value)")
        } else {
            match class.reason {
                Some(r) => format!(
                    "{name} has upward-exposed reads ({r}): exposed {}, kill {}",
                    class.exposed_desc, class.kill_desc
                ),
                None => format!("{name} has upward-exposed reads"),
            }
        };
        Safety::Unsafe(why)
    } else {
        // Privatizing var removes its own edges; anything else still
        // blocking makes the resulting parallel loop unsafe.
        let other = graph
            .deps
            .iter()
            .find(|d| live(d.id) && d.blocks_parallel() && d.var != Some(var));
        match other {
            Some(d) if !unit.loop_of(target).is_parallel() => Safety::Unsafe(format!(
                "privatizing {name} still leaves a loop-carried {} dependence {} ↦ {}",
                d.kind, d.src, d.dst
            )),
            _ => Safety::Safe,
        }
    };
    let profitable = match safe {
        Safety::Safe => Profit::Yes(format!(
            "per-iteration private copy of {name} removes its carried dependences"
        )),
        Safety::Unsafe(_) => Profit::No("privatization alone does not unlock the loop".into()),
    };
    Diagnosis { applicable: Ok(()), safe, profitable }
}

/// Privatize the array: add `var` to the loop's `PRIVATE` clause,
/// promoting the loop to `PARALLEL DO` (with full scalar classification)
/// if it is not parallel yet.
pub fn apply_array_privatize(
    unit: &mut ProgramUnit,
    target: StmtId,
    var: ped_fortran::SymId,
    graph: &DepGraph,
) -> Result<Applied, XformError> {
    if !unit.is_loop(target) {
        return Err(XformError("target is not a DO loop".into()));
    }
    if !unit.symbols.sym(var).is_array() {
        return Err(XformError(format!("{} is not an array", unit.symbols.name(var))));
    }
    let name = unit.symbols.name(var).to_string();
    let lp = unit.loop_of(target);
    let (mut info, promoted) = match &lp.parallel {
        Some(existing) => (existing.clone(), false),
        None => (build_info(unit, target, graph), true),
    };
    if !info.private.contains(&var) {
        info.private.push(var);
        info.private.sort();
        info.private.dedup();
    }
    let description = if promoted {
        format!("parallel do with private array {name} ({} private total)", info.private.len())
    } else {
        format!("added {name} to the private clause")
    };
    unit.loop_of_mut(target).parallel = Some(info);
    Ok(Applied { description, new_stmts: Vec::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dep::graph::{build_graph, GraphConfig};
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_unit;

    fn setup(src: &str) -> (ProgramUnit, StmtId, DepGraph) {
        let u = parse_program(src).unwrap().units.remove(0);
        let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let g = build_graph(&u, h, &GraphConfig::conservative());
        (u, h, g)
    }

    fn text(u: &ProgramUnit) -> String {
        let mut s = String::new();
        print_unit(u, &mut s);
        s
    }

    #[test]
    fn simple_loop_parallelizes() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100), b(100)\ndo i = 1, 100\na(i) = b(i)\nenddo\nend\n",
        );
        let d = diagnose(&u, h, &g, &|_| true);
        assert!(d.ok(), "{d:?}");
        apply(&mut u, h, &g).unwrap();
        assert!(text(&u).contains("parallel do i = 1, 100"), "{}", text(&u));
    }

    #[test]
    fn recurrence_is_unsafe() {
        let (u, h, g) = setup(
            "program t\nreal a(100)\ndo i = 2, 100\na(i) = a(i-1)\nenddo\nend\n",
        );
        let d = diagnose(&u, h, &g, &|_| true);
        assert!(matches!(d.safe, Safety::Unsafe(ref m) if m.contains("proven")), "{d:?}");
    }

    #[test]
    fn user_marks_unlock_parallelization() {
        // Index-array loop: pending dependence; rejecting it (live = false)
        // flips the verdict — the dependence-marking workflow.
        let (u, h, g) = setup(
            "program t\nreal a(100)\ninteger ind(100)\ndo i = 1, 100\n\
             a(ind(i)) = a(ind(i)) + 1.0\nenddo\nend\n",
        );
        assert!(matches!(diagnose(&u, h, &g, &|_| true).safe, Safety::Unsafe(_)));
        let d = diagnose(&u, h, &g, &|_| false);
        assert!(d.ok(), "{d:?}");
    }

    #[test]
    fn clauses_attached() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100)\ns = 0.0\ndo i = 1, 100\nt1 = a(i) * 2.0\n\
             a(i) = t1\ns = s + t1\nenddo\nprint *, s\nend\n",
        );
        // t1 is both privatizable and feeds the reduction… reduction
        // recognition requires t1 free of s: s = s + t1 is a reduction on s.
        let d = diagnose(&u, h, &g, &|_| true);
        assert!(d.ok(), "{d:?}");
        apply(&mut u, h, &g).unwrap();
        let s = text(&u);
        assert!(s.contains("private(t1)"), "{s}");
        assert!(s.contains("reduction(+:s)"), "{s}");
    }

    #[test]
    fn lastprivate_when_live_out() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100)\ndo i = 1, 100\nt1 = a(i)\na(i) = t1 + 1.0\nenddo\n\
             print *, t1\nend\n",
        );
        apply(&mut u, h, &g).unwrap();
        assert!(text(&u).contains("lastprivate(t1)"), "{}", text(&u));
    }

    #[test]
    fn inner_loop_index_privatized() {
        let (mut u, h, g) = setup(
            "program t\nreal a(10,10)\ndo i = 1, 10\ndo j = 1, 10\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        );
        apply(&mut u, h, &g).unwrap();
        assert!(text(&u).contains("private(j)"), "{}", text(&u));
    }

    #[test]
    fn workspace_array_privatizes_and_promotes() {
        let (mut u, h, g) = setup(
            "program t\nreal w(32), a(16,32)\ndo is = 1, 16\ndo ip = 1, 32\n\
             w(ip) = real(is + ip)\nenddo\ndo ip = 1, 32\na(is,ip) = w(ip)\nenddo\n\
             enddo\nend\n",
        );
        let w = u.symbols.lookup("w").unwrap();
        let d = diagnose_array_privatize(&u, h, w, &g, &|_| true);
        assert!(d.ok(), "{d:?}");
        apply_array_privatize(&mut u, h, w, &g).unwrap();
        let s = text(&u);
        assert!(s.contains("parallel do is"), "{s}");
        assert!(s.contains("w") && s.contains("private("), "{s}");
        assert!(u.loop_of(h).parallel.as_ref().unwrap().private.contains(&w));
    }

    #[test]
    fn partial_kill_rejects_privatization() {
        // w(32) is read but never written: the exposed read names the gap.
        let (u, h, g) = setup(
            "program t\nreal w(32), a(16,32)\ndo is = 1, 16\ndo ip = 1, 31\n\
             w(ip) = real(is + ip)\nenddo\ndo ip = 1, 32\na(is,ip) = w(ip)\nenddo\n\
             enddo\nend\n",
        );
        let w = u.symbols.lookup("w").unwrap();
        let d = diagnose_array_privatize(&u, h, w, &g, &|_| true);
        assert!(
            matches!(d.safe, Safety::Unsafe(ref m) if m.contains("upward-exposed")),
            "{d:?}"
        );
    }

    #[test]
    fn live_after_array_rejects_privatization() {
        let (u, h, g) = setup(
            "program t\nreal w(32)\ndo is = 1, 16\ndo ip = 1, 32\n\
             w(ip) = real(is + ip)\nenddo\nenddo\nprint *, w(1)\nend\n",
        );
        let w = u.symbols.lookup("w").unwrap();
        let d = diagnose_array_privatize(&u, h, w, &g, &|_| true);
        assert!(
            matches!(d.safe, Safety::Unsafe(ref m) if m.contains("live after")),
            "{d:?}"
        );
    }

    #[test]
    fn already_parallel_loop_gains_private_clause() {
        let (mut u, h, g) = setup(
            "program t\nreal w(32), a(16,32)\nparallel do is = 1, 16\ndo ip = 1, 32\n\
             w(ip) = real(is + ip)\nenddo\ndo ip = 1, 32\na(is,ip) = w(ip)\nenddo\n\
             enddo\nend\n",
        );
        let w = u.symbols.lookup("w").unwrap();
        let before = u.loop_of(h).parallel.clone().unwrap_or_default();
        assert!(!before.private.contains(&w));
        apply_array_privatize(&mut u, h, w, &g).unwrap();
        assert!(u.loop_of(h).parallel.as_ref().unwrap().private.contains(&w));
    }

    #[test]
    fn already_parallel_rejected() {
        let (u, h, g) = setup(
            "program t\nreal a(10)\nparallel do i = 1, 10\na(i) = 0.0\nenddo\nend\n",
        );
        assert!(diagnose(&u, h, &g, &|_| true).applicable.is_err());
    }
}
