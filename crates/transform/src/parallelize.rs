//! Loop parallelization — the transformation Ped exists for.
//!
//! Diagnosis: the loop is safe to parallelize when no live loop-carried
//! dependence remains at level 1 (after user dependence marking upstream)
//! and every scalar is classifiable as loop index, read-only, private,
//! reduction, or substitutable induction. Application rewrites `DO` into
//! `PARALLEL DO` with `PRIVATE`, `REDUCTION`, and `LASTPRIVATE` clauses
//! derived from the classification — the same classification the variable
//! pane displays and lets the user override.

use crate::{Applied, Diagnosis, Profit, Safety, XformError};
use ped_analysis::scalars::ScalarClass;
use ped_dep::{DepGraph, Dependence};
use ped_fortran::{ParallelInfo, ProgramUnit, StmtId};

/// Diagnose parallelization of the loop at `target`.
pub fn diagnose(
    unit: &ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
    live: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    if !unit.is_loop(target) {
        return Diagnosis::not_applicable("target is not a DO loop");
    }
    if unit.loop_of(target).is_parallel() {
        return Diagnosis::not_applicable("loop is already parallel");
    }
    let blockers: Vec<&Dependence> =
        graph.deps.iter().filter(|d| live(d.id) && d.blocks_parallel()).collect();
    let safe = match blockers.first() {
        None => Safety::Safe,
        Some(d) => Safety::Unsafe(format!(
            "loop-carried {} dependence {} ↦ {} with vector {}{}",
            d.kind,
            d.src,
            d.dst,
            d.dirs,
            if d.proven { " (proven)" } else { " (pending — consider an assertion)" }
        )),
    };
    let profitable = if matches!(safe, Safety::Safe) {
        Profit::Yes("all iterations can run concurrently".into())
    } else {
        Profit::No(format!("{} blocking dependences", blockers.len()))
    };
    Diagnosis { applicable: Ok(()), safe, profitable }
}

/// Convert the loop to `PARALLEL DO`, attaching variable classification.
pub fn apply(
    unit: &mut ProgramUnit,
    target: StmtId,
    graph: &DepGraph,
) -> Result<Applied, XformError> {
    if !unit.is_loop(target) {
        return Err(XformError("target is not a DO loop".into()));
    }
    let mut info = ParallelInfo::default();
    for (&sym, class) in &graph.scalar_classes {
        match class {
            ScalarClass::Private { needs_lastprivate } => {
                if *needs_lastprivate {
                    info.lastprivate.push(sym);
                } else {
                    info.private.push(sym);
                }
            }
            ScalarClass::Reduction(op) => info.reductions.push((*op, sym)),
            _ => {}
        }
    }
    // Inner loop indices must also be private per thread.
    let body = unit.loop_of(target).body.clone();
    ped_fortran::visit::for_each_stmt(unit, &body, &mut |sid| {
        if let ped_fortran::StmtKind::Do(d) = &unit.stmt(sid).kind {
            if !info.private.contains(&d.var) {
                info.private.push(d.var);
            }
        }
    });
    info.private.sort();
    info.private.dedup();
    info.lastprivate.sort();
    info.lastprivate.dedup();
    info.reductions.sort_by_key(|&(_, s)| s);
    info.reductions.dedup();
    let description = format!(
        "parallel do with {} private, {} reduction, {} lastprivate variables",
        info.private.len(),
        info.reductions.len(),
        info.lastprivate.len()
    );
    unit.loop_of_mut(target).parallel = Some(info);
    Ok(Applied { description, new_stmts: Vec::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dep::graph::{build_graph, GraphConfig};
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_unit;

    fn setup(src: &str) -> (ProgramUnit, StmtId, DepGraph) {
        let u = parse_program(src).unwrap().units.remove(0);
        let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let g = build_graph(&u, h, &GraphConfig::conservative());
        (u, h, g)
    }

    fn text(u: &ProgramUnit) -> String {
        let mut s = String::new();
        print_unit(u, &mut s);
        s
    }

    #[test]
    fn simple_loop_parallelizes() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100), b(100)\ndo i = 1, 100\na(i) = b(i)\nenddo\nend\n",
        );
        let d = diagnose(&u, h, &g, &|_| true);
        assert!(d.ok(), "{d:?}");
        apply(&mut u, h, &g).unwrap();
        assert!(text(&u).contains("parallel do i = 1, 100"), "{}", text(&u));
    }

    #[test]
    fn recurrence_is_unsafe() {
        let (u, h, g) = setup(
            "program t\nreal a(100)\ndo i = 2, 100\na(i) = a(i-1)\nenddo\nend\n",
        );
        let d = diagnose(&u, h, &g, &|_| true);
        assert!(matches!(d.safe, Safety::Unsafe(ref m) if m.contains("proven")), "{d:?}");
    }

    #[test]
    fn user_marks_unlock_parallelization() {
        // Index-array loop: pending dependence; rejecting it (live = false)
        // flips the verdict — the dependence-marking workflow.
        let (u, h, g) = setup(
            "program t\nreal a(100)\ninteger ind(100)\ndo i = 1, 100\n\
             a(ind(i)) = a(ind(i)) + 1.0\nenddo\nend\n",
        );
        assert!(matches!(diagnose(&u, h, &g, &|_| true).safe, Safety::Unsafe(_)));
        let d = diagnose(&u, h, &g, &|_| false);
        assert!(d.ok(), "{d:?}");
    }

    #[test]
    fn clauses_attached() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100)\ns = 0.0\ndo i = 1, 100\nt1 = a(i) * 2.0\n\
             a(i) = t1\ns = s + t1\nenddo\nprint *, s\nend\n",
        );
        // t1 is both privatizable and feeds the reduction… reduction
        // recognition requires t1 free of s: s = s + t1 is a reduction on s.
        let d = diagnose(&u, h, &g, &|_| true);
        assert!(d.ok(), "{d:?}");
        apply(&mut u, h, &g).unwrap();
        let s = text(&u);
        assert!(s.contains("private(t1)"), "{s}");
        assert!(s.contains("reduction(+:s)"), "{s}");
    }

    #[test]
    fn lastprivate_when_live_out() {
        let (mut u, h, g) = setup(
            "program t\nreal a(100)\ndo i = 1, 100\nt1 = a(i)\na(i) = t1 + 1.0\nenddo\n\
             print *, t1\nend\n",
        );
        apply(&mut u, h, &g).unwrap();
        assert!(text(&u).contains("lastprivate(t1)"), "{}", text(&u));
    }

    #[test]
    fn inner_loop_index_privatized() {
        let (mut u, h, g) = setup(
            "program t\nreal a(10,10)\ndo i = 1, 10\ndo j = 1, 10\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        );
        apply(&mut u, h, &g).unwrap();
        assert!(text(&u).contains("private(j)"), "{}", text(&u));
    }

    #[test]
    fn already_parallel_rejected() {
        let (u, h, g) = setup(
            "program t\nreal a(10)\nparallel do i = 1, 10\na(i) = 0.0\nenddo\nend\n",
        );
        assert!(diagnose(&u, h, &g, &|_| true).applicable.is_err());
    }
}
