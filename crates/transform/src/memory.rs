//! Memory-oriented transformations: scalar expansion and induction-variable
//! substitution.
//!
//! Scalar expansion gives each iteration its own element of a compiler
//! temporary array, breaking the anti/output dependences a shared scalar
//! causes (the one transformation Blume & Eigenmann found consistently
//! profitable in KAP). Induction-variable substitution replaces `k = k + c`
//! chains with closed forms so subscripts become affine in the loop index.

use crate::edit::{fresh_scalar, remove_stmt, subst_var_in_stmt};
use crate::{Applied, Diagnosis, Profit, Safety, XformError};
use ped_analysis::scalars::{classify_scalars, ScalarClass};
use ped_fortran::symbols::ArrayDim;
use ped_fortran::{
    BinOp, Expr, LValue, ProgramUnit, StmtId, StmtKind, SymId,
};

// --------------------------------------------------------- scalar expand ----

/// Diagnose scalar expansion of `var` in the loop at `target`.
pub fn diagnose_scalar_expand(unit: &ProgramUnit, target: StmtId, var: SymId) -> Diagnosis {
    if !unit.is_loop(target) {
        return Diagnosis::not_applicable("target is not a DO loop");
    }
    if unit.symbols.sym(var).is_array() {
        return Diagnosis::not_applicable("variable is already an array");
    }
    let d = unit.loop_of(target);
    if var == d.var {
        return Diagnosis::not_applicable("cannot expand the loop index");
    }
    if !d.step_expr().is_int(1) {
        return Diagnosis::not_applicable("only unit-step loops are expanded");
    }
    // The scalar must actually be written in the loop.
    let classes = classify_scalars(unit, target, &|_| false);
    match classes.get(&var) {
        None => Diagnosis::not_applicable("variable is not referenced in the loop"),
        Some(ScalarClass::ReadOnly) => {
            Diagnosis::not_applicable("variable is read-only in the loop")
        }
        Some(class) => {
            // Live-out values: expansion keeps the last element, so a
            // final copy-out is emitted; that is only correct when the
            // scalar is assigned on every iteration path — the Private
            // classification already tracks exposure, and expansion of an
            // exposed (loop-carried) scalar changes semantics.
            let safe = match class {
                ScalarClass::Private { .. } | ScalarClass::Reduction(_) => Safety::Safe,
                _ => Safety::Unsafe(
                    "the scalar carries a cross-iteration value; expansion would break it"
                        .into(),
                ),
            };
            Diagnosis {
                applicable: Ok(()),
                safe,
                profitable: Profit::Yes(
                    "removes the scalar's anti and output dependences".into(),
                ),
            }
        }
    }
}

/// Expand `var` into `var$n(trip)` indexed by the normalized iteration.
pub fn apply_scalar_expand(
    unit: &mut ProgramUnit,
    target: StmtId,
    var: SymId,
) -> Result<Applied, XformError> {
    let diag = diagnose_scalar_expand(unit, target, var);
    if let Err(e) = diag.applicable {
        return Err(XformError(e));
    }
    let (loop_var, lo, hi) = {
        let d = unit.loop_of(target);
        (d.var, d.lo.clone(), d.hi.clone())
    };
    let ty = unit.symbols.sym(var).ty;
    let base = unit.symbols.name(var).to_string();
    let arr = fresh_scalar(unit, &format!("{base}x"), ty);
    // Extent: hi − lo + 1.
    let extent = Expr::bin(BinOp::Add, Expr::bin(BinOp::Sub, hi, lo.clone()), Expr::Int(1));
    unit.symbols.sym_mut(arr).dims = vec![ArrayDim::upto(extent.clone())];
    // Index: loop_var − lo + 1.
    let index = Expr::bin(
        BinOp::Add,
        Expr::bin(BinOp::Sub, Expr::Var(loop_var), lo),
        Expr::Int(1),
    );
    // Rewrite uses (expressions) and definitions (assignment lhs).
    let elem = Expr::ArrayRef { sym: arr, subs: vec![index.clone()] };
    let body = unit.loop_of(target).body.clone();
    for s in &body {
        rewrite_lhs(unit, *s, var, arr, &index);
        subst_var_in_stmt(unit, *s, var, &elem);
    }
    // Copy-out the final value for consumers after the loop.
    let last_index = extent;
    let copy = unit.alloc_stmt(
        StmtKind::Assign {
            lhs: LValue::Var(var),
            rhs: Expr::ArrayRef { sym: arr, subs: vec![last_index] },
        },
        ped_fortran::Span::synthetic(),
    );
    let seq = vec![target, copy];
    if !crate::edit::replace_stmt(unit, target, &seq) {
        return Err(XformError("target not found".into()));
    }
    Ok(Applied {
        description: format!("expanded {base} into {}", unit.symbols.name(arr)),
        new_stmts: vec![copy],
    })
}

/// Rewrite `var = …` into `arr(index) = …` recursively.
fn rewrite_lhs(unit: &mut ProgramUnit, stmt: StmtId, var: SymId, arr: SymId, index: &Expr) {
    let mut kind = std::mem::replace(&mut unit.stmt_mut(stmt).kind, StmtKind::Removed);
    match &mut kind {
        StmtKind::Assign { lhs, .. } => {
            if matches!(lhs, LValue::Var(s) if *s == var) {
                *lhs = LValue::ArrayElem(arr, vec![index.clone()]);
            }
        }
        StmtKind::Do(d) => {
            let body = d.body.clone();
            for &s in &body {
                rewrite_lhs(unit, s, var, arr, index);
            }
        }
        StmtKind::If { arms, else_block } => {
            for (_, b) in arms.iter() {
                for &s in b.iter() {
                    rewrite_lhs(unit, s, var, arr, index);
                }
            }
            if let Some(b) = else_block {
                for &s in b.iter() {
                    rewrite_lhs(unit, s, var, arr, index);
                }
            }
        }
        _ => {}
    }
    unit.stmt_mut(stmt).kind = kind;
}

// ------------------------------------------ induction variable substitution ----

/// Diagnose induction-variable substitution for `var`.
pub fn diagnose_ivsub(unit: &ProgramUnit, target: StmtId, var: SymId) -> Diagnosis {
    if !unit.is_loop(target) {
        return Diagnosis::not_applicable("target is not a DO loop");
    }
    let d = unit.loop_of(target);
    if !d.step_expr().is_int(1) {
        return Diagnosis::not_applicable("only unit-step loops are substituted");
    }
    let classes = classify_scalars(unit, target, &|_| true);
    match classes.get(&var) {
        Some(ScalarClass::AuxInduction { .. }) => Diagnosis {
            applicable: Ok(()),
            safe: Safety::Safe,
            profitable: Profit::Yes("subscripts become affine in the loop index".into()),
        },
        _ => Diagnosis::not_applicable("variable is not an auxiliary induction variable"),
    }
}

/// Replace the induction variable by its closed form and delete the update.
///
/// For `DO i = lo, hi` with top-level `k = k + c`, references before the
/// update see `k0 + c·(i − lo)` and references after see `k0 + c·(i − lo + 1)`;
/// after the loop `k = k0 + c·(hi − lo + 1)`. `k0` is `k`'s value at loop
/// entry, captured in a fresh scalar just before the loop.
pub fn apply_ivsub(
    unit: &mut ProgramUnit,
    target: StmtId,
    var: SymId,
) -> Result<Applied, XformError> {
    let diag = diagnose_ivsub(unit, target, var);
    if let Err(e) = diag.applicable {
        return Err(XformError(e));
    }
    let classes = classify_scalars(unit, target, &|_| true);
    let step = match classes.get(&var) {
        Some(ScalarClass::AuxInduction { step }) => step.clone(),
        _ => return Err(XformError("not an induction variable".into())),
    };
    let (loop_var, lo, hi, body) = {
        let d = unit.loop_of(target);
        (d.var, d.lo.clone(), d.hi.clone(), d.body.clone())
    };
    // Find the top-level update statement.
    let update = body
        .iter()
        .copied()
        .find(|&s| {
            matches!(&unit.stmt(s).kind,
                StmtKind::Assign { lhs: LValue::Var(v), .. } if *v == var)
        })
        .ok_or_else(|| XformError("update statement not found at the top level".into()))?;
    let upos = body.iter().position(|&s| s == update).expect("found above");

    // k0 = k just before the loop.
    let ty = unit.symbols.sym(var).ty;
    let base = unit.symbols.name(var).to_string();
    let k0 = fresh_scalar(unit, &format!("{base}0"), ty);
    let capture = unit.alloc_stmt(
        StmtKind::Assign { lhs: LValue::Var(k0), rhs: Expr::Var(var) },
        ped_fortran::Span::synthetic(),
    );

    // t = i − lo  (iterations completed before this one).
    let t = Expr::bin(BinOp::Sub, Expr::Var(loop_var), lo.clone());
    let before = closed_form(k0, &step, &t);
    let after = closed_form(k0, &step, &Expr::bin(BinOp::Add, t, Expr::Int(1)));
    for (pos, &s) in body.iter().enumerate() {
        if s == update {
            continue;
        }
        let form = if pos < upos { &before } else { &after };
        subst_var_in_stmt(unit, s, var, form);
    }
    remove_stmt(unit, update);

    // Final value after the loop: k = k0 + c·trip.
    let trip = Expr::bin(BinOp::Add, Expr::bin(BinOp::Sub, hi, lo), Expr::Int(1));
    let fin = unit.alloc_stmt(
        StmtKind::Assign { lhs: LValue::Var(var), rhs: closed_form(k0, &step, &trip) },
        ped_fortran::Span::synthetic(),
    );
    if !crate::edit::replace_stmt(unit, target, &[capture, target, fin]) {
        return Err(XformError("target not found".into()));
    }
    Ok(Applied {
        description: format!("substituted induction variable {base}"),
        new_stmts: vec![capture, fin],
    })
}

/// `k0 + step·count`
fn closed_form(k0: SymId, step: &Expr, count: &Expr) -> Expr {
    Expr::bin(
        BinOp::Add,
        Expr::Var(k0),
        Expr::bin(BinOp::Mul, step.clone(), count.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dep::graph::{build_graph, GraphConfig};
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_unit;

    fn setup(src: &str) -> (ProgramUnit, StmtId) {
        let u = parse_program(src).unwrap().units.remove(0);
        let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        (u, h)
    }

    fn text(u: &ProgramUnit) -> String {
        let mut s = String::new();
        print_unit(u, &mut s);
        s
    }

    #[test]
    fn expand_private_scalar() {
        let (mut u, h) = setup(
            "program t\nreal a(100), b(100)\ndo i = 1, 100\nt1 = b(i) * 2.0\n\
             a(i) = t1 + 1.0\nenddo\nend\n",
        );
        let t1 = u.symbols.lookup("t1").unwrap();
        assert!(diagnose_scalar_expand(&u, h, t1).ok());
        apply_scalar_expand(&mut u, h, t1).unwrap();
        let s = text(&u);
        assert!(s.contains("t1x$1(i - 1 + 1) = b(i) * 2.0"), "{s}");
        assert!(s.contains("a(i) = t1x$1(i - 1 + 1) + 1.0"), "{s}");
        assert!(s.contains("t1 = t1x$1(100 - 1 + 1)"), "copy-out: {s}");
        assert!(s.contains("real t1x$1(100 - 1 + 1)") || s.contains("t1x$1(100 - 1 + 1)"), "{s}");
    }

    #[test]
    fn expand_rejects_loop_carried_scalar() {
        let (u, h) = setup(
            "program t\nreal a(100)\ns = 0.0\ndo i = 1, 100\na(i) = s\ns = a(i) + 1.0\nenddo\nend\n",
        );
        let s = u.symbols.lookup("s").unwrap();
        let d = diagnose_scalar_expand(&u, h, s);
        assert!(matches!(d.safe, Safety::Unsafe(_)), "{d:?}");
    }

    #[test]
    fn expand_rejects_array_and_index() {
        let (u, h) = setup("program t\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\nend\n");
        let a = u.symbols.lookup("a").unwrap();
        let i = u.symbols.lookup("i").unwrap();
        assert!(diagnose_scalar_expand(&u, h, a).applicable.is_err());
        assert!(diagnose_scalar_expand(&u, h, i).applicable.is_err());
    }

    #[test]
    fn ivsub_substitutes_and_unlocks_parallelism() {
        let (mut u, h) = setup(
            "program t\nreal a(200)\nk = 0\ndo i = 1, 100\nk = k + 2\na(k) = 1.0\nenddo\n\
             print *, k\nend\n",
        );
        let k = u.symbols.lookup("k").unwrap();
        assert!(diagnose_ivsub(&u, h, k).ok());
        apply_ivsub(&mut u, h, k).unwrap();
        let s = text(&u);
        assert!(s.contains("k0$1 = k"), "{s}");
        assert!(s.contains("a(k0$1 + 2 * (i - 1 + 1)) = 1.0"), "{s}");
        assert!(s.contains("k = k0$1 + 2 * (100 - 1 + 1)"), "{s}");
        // After substitution the loop is parallel (stride-2 disjoint writes
        // are affine now; k0$1 is symbolic but the write-write distance
        // test sees equal symbolic parts cancel).
        let g = build_graph(&u, h, &GraphConfig::conservative());
        assert!(g.parallelizable(), "{s}\n{:?}", g.blocking());
    }

    #[test]
    fn ivsub_rejects_non_induction() {
        let (u, h) = setup(
            "program t\nreal a(100)\ns = 0.0\ndo i = 1, 100\ns = s + a(i)\nenddo\n\
             print *, s\nend\n",
        );
        let s = u.symbols.lookup("s").unwrap();
        assert!(diagnose_ivsub(&u, h, s).applicable.is_err(), "reduction is not induction");
    }
}
