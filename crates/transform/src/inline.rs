//! Procedure inlining ("embedding").
//!
//! The experiences paper lists embedding as a wanted-but-unimplemented
//! feature ("embedding and extraction are not currently implemented in
//! Ped"); we implement the restricted form that covers the workshop use
//! case — exposing a callee's loops to the caller's dependence analysis so
//! interchange across the call boundary becomes expressible:
//!
//! * every actual argument is a bare variable or whole array whose rank
//!   matches the formal's;
//! * the callee is a subroutine with at most a trailing `RETURN`;
//! * the callee's COMMON blocks must match the caller's declarations
//!   (member-for-member), or not exist.
//!
//! Callee locals are renamed fresh in the caller; formals are substituted
//! by the actual symbols.

use crate::edit::fresh_scalar;
use crate::{Applied, Diagnosis, Profit, Safety, XformError};
use ped_fortran::visit::{for_each_root_expr_of_stmt_mut, walk_expr_mut};
use ped_fortran::{
    Block, DoLoop, Expr, LValue, Program, ProgramUnit, StmtId, StmtKind, SymId,
};
use std::collections::HashMap;

/// Diagnose inlining the CALL at `call` (requires program context at apply
/// time; diagnosis checks the caller side only).
pub fn diagnose(unit: &ProgramUnit, call: StmtId) -> Diagnosis {
    let StmtKind::Call { args, .. } = &unit.stmt(call).kind else {
        return Diagnosis::not_applicable("target is not a CALL statement");
    };
    for a in args {
        if !matches!(a, Expr::Var(_)) {
            return Diagnosis::not_applicable(
                "only bare-variable actual arguments are supported",
            );
        }
    }
    Diagnosis {
        applicable: Ok(()),
        safe: Safety::Safe,
        profitable: Profit::Yes(
            "exposes the callee's loops to the caller's dependence analysis".into(),
        ),
    }
}

/// Inline the callee at `call` inside `program.units[unit_idx]`.
pub fn apply_in_program(
    program: &mut Program,
    unit_idx: usize,
    call: StmtId,
) -> Result<Applied, XformError> {
    let (callee_name, actuals) = {
        let unit = &program.units[unit_idx];
        match &unit.stmt(call).kind {
            StmtKind::Call { name, args } => (name.clone(), args.clone()),
            _ => return Err(XformError("target is not a CALL statement".into())),
        }
    };
    let callee_idx = program
        .unit_index(&callee_name)
        .ok_or_else(|| XformError(format!("callee {callee_name} is not in the program")))?;
    if callee_idx == unit_idx {
        return Err(XformError("recursive inlining is not supported".into()));
    }
    let callee = program.units[callee_idx].clone();
    if callee.kind != ped_fortran::UnitKind::Subroutine {
        return Err(XformError("only subroutines are inlined".into()));
    }
    if callee.args.len() != actuals.len() {
        return Err(XformError("argument count mismatch".into()));
    }

    // Build the symbol map callee → caller.
    let mut map: HashMap<SymId, SymId> = HashMap::new();
    {
        let caller = &mut program.units[unit_idx];
        for (pos, &formal) in callee.args.iter().enumerate() {
            let actual_sym = match &actuals[pos] {
                Expr::Var(s) => *s,
                _ => return Err(XformError("only bare-variable actuals are supported".into())),
            };
            let frank = callee.symbols.sym(formal).rank();
            let arank = caller.symbols.sym(actual_sym).rank();
            if frank != arank {
                return Err(XformError(format!(
                    "rank mismatch for argument {} ({arank} vs {frank})",
                    pos + 1
                )));
            }
            map.insert(formal, actual_sym);
        }
        // COMMON members map by (block, offset); locals get fresh names.
        for (id, sym) in callee.symbols.iter() {
            if map.contains_key(&id) {
                continue;
            }
            if let Some(c) = &sym.common {
                let found = caller
                    .symbols
                    .iter()
                    .find(|(_, s)| {
                        s.common.as_ref().map(|x| (x.block.as_str(), x.index))
                            == Some((c.block.as_str(), c.index))
                    })
                    .map(|(i, _)| i);
                match found {
                    Some(caller_sym) => {
                        map.insert(id, caller_sym);
                        continue;
                    }
                    None => {
                        return Err(XformError(format!(
                            "caller lacks COMMON /{}/ member {}",
                            c.block, sym.name
                        )))
                    }
                }
            }
            if sym.param.is_some() {
                // PARAMETER: recreate under a fresh name with the value.
                let fresh = fresh_scalar(caller, &sym.name, sym.ty);
                caller.symbols.sym_mut(fresh).param = sym.param;
                map.insert(id, fresh);
                continue;
            }
            let fresh = fresh_scalar(caller, &sym.name, sym.ty);
            caller.symbols.sym_mut(fresh).dims = sym.dims.clone();
            map.insert(id, fresh);
        }
    }

    // Copy the callee body into the caller arena with symbols remapped.
    let mut trailing_return_ok = true;
    check_returns(&callee, &callee.body, true, &mut trailing_return_ok);
    if !trailing_return_ok {
        return Err(XformError("callee has a RETURN that is not the final statement".into()));
    }
    let caller = &mut program.units[unit_idx];
    let new_body = copy_block(caller, &callee, &callee.body, &map);
    if !crate::edit::replace_stmt(caller, call, &new_body) {
        return Err(XformError("call statement not found".into()));
    }
    caller.stmt_mut(call).kind = StmtKind::Removed;
    Ok(Applied {
        description: format!("inlined {callee_name} ({} statements)", new_body.len()),
        new_stmts: new_body,
    })
}

/// Only a trailing top-level RETURN is allowed.
fn check_returns(callee: &ProgramUnit, block: &Block, top: bool, ok: &mut bool) {
    for (i, &s) in block.iter().enumerate() {
        match &callee.stmt(s).kind {
            StmtKind::Return if !(top && i == block.len() - 1) => *ok = false,
            StmtKind::Stop => *ok = false,
            StmtKind::Do(d) => check_returns(callee, &d.body, false, ok),
            StmtKind::If { arms, else_block } => {
                for (_, b) in arms {
                    check_returns(callee, b, false, ok);
                }
                if let Some(b) = else_block {
                    check_returns(callee, b, false, ok);
                }
            }
            _ => {}
        }
    }
}

fn copy_block(
    caller: &mut ProgramUnit,
    callee: &ProgramUnit,
    block: &Block,
    map: &HashMap<SymId, SymId>,
) -> Vec<StmtId> {
    let mut out = Vec::new();
    for &s in block {
        match &callee.stmt(s).kind {
            StmtKind::Return | StmtKind::Removed => continue,
            _ => {}
        }
        out.push(copy_stmt(caller, callee, s, map));
    }
    out
}

fn copy_stmt(
    caller: &mut ProgramUnit,
    callee: &ProgramUnit,
    s: StmtId,
    map: &HashMap<SymId, SymId>,
) -> StmtId {
    let span = callee.stmt(s).span;
    let kind = match &callee.stmt(s).kind {
        StmtKind::Do(d) => {
            let body = copy_block(caller, callee, &d.body, map);
            StmtKind::Do(DoLoop {
                var: map[&d.var],
                lo: d.lo.clone(),
                hi: d.hi.clone(),
                step: d.step.clone(),
                body,
                term_label: None,
                parallel: d.parallel.clone().map(|mut p| {
                    for v in p.private.iter_mut().chain(p.lastprivate.iter_mut()) {
                        *v = map[v];
                    }
                    for (_, v) in p.reductions.iter_mut() {
                        *v = map[v];
                    }
                    p
                }),
            })
        }
        StmtKind::If { arms, else_block } => {
            let arms = arms
                .iter()
                .map(|(c, b)| (c.clone(), copy_block(caller, callee, b, map)))
                .collect();
            let else_block = else_block.as_ref().map(|b| copy_block(caller, callee, b, map));
            StmtKind::If { arms, else_block }
        }
        other => other.clone(),
    };
    let mut kind = kind;
    // Remap symbols in expressions and lhs.
    for_each_root_expr_of_stmt_mut(&mut kind, &mut |e| remap_expr(e, map));
    if let StmtKind::Assign { lhs, .. } = &mut kind {
        match lhs {
            LValue::Var(v) => *v = map[v],
            LValue::ArrayElem(v, _) => *v = map[v],
        }
    }
    caller.alloc_stmt(kind, span)
}

fn remap_expr(e: &mut Expr, map: &HashMap<SymId, SymId>) {
    walk_expr_mut(e, &mut |node| match node {
        Expr::Var(s) => {
            if let Some(&m) = map.get(s) {
                *s = m;
            }
        }
        Expr::ArrayRef { sym, .. } => {
            if let Some(&m) = map.get(sym) {
                *sym = m;
            }
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_dep::graph::{build_graph, GraphConfig};
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_program;

    #[test]
    fn inline_simple_subroutine() {
        let mut p = parse_program(
            "program t\nreal a(100)\ninteger n\nn = 100\ncall fill(a, n)\nprint *, a(1)\nend\n\
             subroutine fill(x, m)\ninteger m\nreal x(m)\ndo i = 1, m\nx(i) = 1.0\nenddo\n\
             return\nend\n",
        )
        .unwrap();
        let call = p.units[0].body[1];
        let d = diagnose(&p.units[0], call);
        assert!(d.ok(), "{d:?}");
        apply_in_program(&mut p, 0, call).unwrap();
        let s = print_program(&p);
        let main_part = s.split("subroutine").next().unwrap();
        assert!(main_part.contains("do i$1 = 1, n"), "{main_part}");
        assert!(main_part.contains("a(i$1) = 1.0"), "{main_part}");
        assert!(!main_part.contains("call fill"), "{main_part}");
    }

    #[test]
    fn inline_rejects_expression_actuals() {
        let p = parse_program(
            "program t\nreal a(100)\ncall f(a(1))\nend\nsubroutine f(x)\nreal x\nx = 1.0\nend\n",
        )
        .unwrap();
        let call = p.units[0].body[0];
        assert!(diagnose(&p.units[0], call).applicable.is_err());
    }

    #[test]
    fn inline_exposes_parallel_loop() {
        // After inlining, the caller's loop nest is visible and the outer
        // loop can be analyzed directly (interchange across the boundary).
        let mut p = parse_program(
            "program t\nreal a(32,32)\ninteger n\nn = 32\ndo j = 1, 32\n\
             call col(a, n, j)\nenddo\nend\n\
             subroutine col(x, n, jc)\ninteger n, jc\nreal x(n, n)\ndo i = 1, n\n\
             x(i, jc) = 1.0\nenddo\nreturn\nend\n",
        )
        .unwrap();
        let call = {
            let u = &p.units[0];
            let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
            u.loop_of(h).body[0]
        };
        apply_in_program(&mut p, 0, call).unwrap();
        let u = &p.units[0];
        let h = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let g = build_graph(u, h, &GraphConfig::conservative());
        assert!(g.parallelizable(), "{}\n{:?}", print_program(&p), g.blocking());
    }

    #[test]
    fn inline_maps_common_members() {
        let mut p = parse_program(
            "program t\ncommon /ctl/ tol\ntol = 0.5\ncall bump()\nprint *, tol\nend\n\
             subroutine bump()\ncommon /ctl/ eps\neps = eps + 1.0\nreturn\nend\n",
        )
        .unwrap();
        let call = p.units[0].body[1];
        apply_in_program(&mut p, 0, call).unwrap();
        let s = print_program(&p);
        let main_part = s.split("subroutine").next().unwrap();
        assert!(main_part.contains("tol = tol + 1.0"), "{main_part}");
    }

    #[test]
    fn inline_rejects_midbody_return() {
        let mut p = parse_program(
            "program t\ncall f(x)\nend\nsubroutine f(a)\nreal a\nif (a .gt. 0.0) then\n\
             return\nendif\na = 1.0\nend\n",
        )
        .unwrap();
        let call = p.units[0].body[0];
        assert!(apply_in_program(&mut p, 0, call).is_err());
    }
}
