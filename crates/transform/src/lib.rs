//! # ped-transform — the power-steering transformation catalog
//!
//! "Ped supports a large set of transformations proven useful for
//! introducing, discovering, and exploiting parallelism and for enhancing
//! memory hierarchy use … a power steering paradigm: the user specifies the
//! transformations to be made, and the system provides advice and carries
//! out the mechanical details. The system advises whether the
//! transformation is applicable (is syntactically correct), safe (preserves
//! the semantics of the program) and profitable (contributes to
//! parallelization)."
//!
//! Every transformation in the catalog implements that triple:
//! [`diagnose`] returns a [`Diagnosis`] (applicable / safe / profitable,
//! with reasons), and [`apply`] performs the mechanical rewrite on the AST
//! — in place, preserving the statement ids of surviving statements so the
//! editor's dependence display and undo stack stay valid.
//!
//! Catalog (the SC'89 set plus the extensions the experiences paper calls
//! for): parallelize (with private/reduction/lastprivate classification),
//! loop interchange, loop distribution, loop fusion, loop reversal, loop
//! skewing, strip mining, unrolling, unroll-and-jam, scalar expansion,
//! induction-variable substitution, statement interchange, procedure
//! inlining (embedding), and array privatization (regular sections).

pub mod edit;
pub mod inline;
pub mod loops;
pub mod memory;
pub mod parallelize;
pub mod restructure;

use ped_dep::DepGraph;
use ped_fortran::{ProgramUnit, StmtId, SymId};

/// A transformation request.
#[derive(Debug, Clone, PartialEq)]
pub enum Xform {
    /// Convert the loop to `PARALLEL DO` with variable classification.
    Parallelize,
    /// Interchange the loop with its immediately nested loop.
    Interchange,
    /// Distribute the loop around the strongly connected components of its
    /// body dependences.
    Distribute,
    /// Fuse the loop with the given following loop.
    Fuse {
        /// Header of the loop to fuse with (must directly follow).
        with: StmtId,
    },
    /// Run the iterations backwards.
    Reverse,
    /// Skew the inner loop of a perfect 2-nest by `factor` × outer index.
    Skew {
        /// Skewing factor.
        factor: i64,
    },
    /// Strip-mine into tiles of the given size.
    StripMine {
        /// Tile size (> 1).
        size: i64,
    },
    /// Unroll by the given factor.
    Unroll {
        /// Unroll factor (> 1).
        factor: u32,
    },
    /// Unroll the outer loop of a perfect 2-nest and jam the copies.
    UnrollAndJam {
        /// Unroll factor (> 1).
        factor: u32,
    },
    /// Expand a scalar into a per-iteration array element.
    ScalarExpand {
        /// The scalar to expand.
        var: SymId,
    },
    /// Substitute an auxiliary induction variable by a closed form.
    IvSub {
        /// The induction variable.
        var: SymId,
    },
    /// Swap two adjacent statements of the loop body.
    StatementInterchange {
        /// First statement (must directly precede `b` in the same block).
        a: StmtId,
        /// Second statement.
        b: StmtId,
    },
    /// Inline (embed) the callee at the given CALL statement.
    Inline {
        /// The CALL statement.
        call: StmtId,
    },
    /// Give each iteration a private copy of an array whose every read is
    /// covered by a same-iteration overwrite (regular-section analysis).
    ArrayPrivatize {
        /// The array to privatize.
        var: SymId,
    },
}

impl Xform {
    /// Display name matching Ped's menu entries.
    pub fn name(&self) -> &'static str {
        match self {
            Xform::Parallelize => "parallelize",
            Xform::Interchange => "loop interchange",
            Xform::Distribute => "loop distribution",
            Xform::Fuse { .. } => "loop fusion",
            Xform::Reverse => "loop reversal",
            Xform::Skew { .. } => "loop skewing",
            Xform::StripMine { .. } => "strip mining",
            Xform::Unroll { .. } => "loop unrolling",
            Xform::UnrollAndJam { .. } => "unroll and jam",
            Xform::ScalarExpand { .. } => "scalar expansion",
            Xform::IvSub { .. } => "induction variable substitution",
            Xform::StatementInterchange { .. } => "statement interchange",
            Xform::Inline { .. } => "inlining",
            Xform::ArrayPrivatize { .. } => "array privatization",
        }
    }
}

/// Safety verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Safety {
    /// Semantics are preserved.
    Safe,
    /// Semantics may change; the reason names the offending dependence or
    /// condition. The user may overrule via dependence marking upstream.
    Unsafe(String),
}

/// Profitability advice (never blocks application — power steering leaves
/// the user in control).
#[derive(Debug, Clone, PartialEq)]
pub enum Profit {
    /// Expected to help, with the reason.
    Yes(String),
    /// Not expected to help.
    No(String),
    /// Depends on information the tool lacks.
    Unknown,
}

/// The advice triple for one transformation on one target.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Syntactically applicable?
    pub applicable: Result<(), String>,
    /// Semantics-preserving?
    pub safe: Safety,
    /// Worth doing?
    pub profitable: Profit,
}

impl Diagnosis {
    /// Applicable and safe.
    pub fn ok(&self) -> bool {
        self.applicable.is_ok() && self.safe == Safety::Safe
    }

    pub(crate) fn not_applicable(reason: impl Into<String>) -> Diagnosis {
        Diagnosis {
            applicable: Err(reason.into()),
            safe: Safety::Unsafe("not applicable".into()),
            profitable: Profit::Unknown,
        }
    }
}

/// Result of a successful application.
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// Human-readable description of what changed.
    pub description: String,
    /// Statements created by the rewrite.
    pub new_stmts: Vec<StmtId>,
}

/// Error applying a transformation (diagnosis said no, or the caller forced
/// an inapplicable rewrite).
#[derive(Debug, Clone, PartialEq)]
pub struct XformError(pub String);

impl std::fmt::Display for XformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for XformError {}

/// Diagnose a transformation against a target statement. `graph` is the
/// dependence graph of the target loop (or of the enclosing loop for
/// statement-level transformations); `live_blocking` is the set of
/// dependences still considered live after user marking (rejected
/// dependences removed) — pass `graph.blocking()` when no marks exist.
pub fn diagnose(
    unit: &ProgramUnit,
    target: StmtId,
    xform: &Xform,
    graph: &DepGraph,
    live_dep_ids: &dyn Fn(usize) -> bool,
) -> Diagnosis {
    match xform {
        Xform::Parallelize => parallelize::diagnose(unit, target, graph, live_dep_ids),
        Xform::Interchange => loops::diagnose_interchange(unit, target, graph, live_dep_ids),
        Xform::Distribute => restructure::diagnose_distribute(unit, target),
        Xform::Fuse { with } => restructure::diagnose_fuse(unit, target, *with),
        Xform::Reverse => loops::diagnose_reverse(unit, target, graph, live_dep_ids),
        Xform::Skew { factor } => loops::diagnose_skew(unit, target, *factor),
        Xform::StripMine { size } => loops::diagnose_stripmine(unit, target, *size),
        Xform::Unroll { factor } => loops::diagnose_unroll(unit, target, *factor),
        Xform::UnrollAndJam { factor } => {
            loops::diagnose_unroll_and_jam(unit, target, *factor, graph, live_dep_ids)
        }
        Xform::ScalarExpand { var } => memory::diagnose_scalar_expand(unit, target, *var),
        Xform::IvSub { var } => memory::diagnose_ivsub(unit, target, *var),
        Xform::StatementInterchange { a, b } => {
            restructure::diagnose_stmt_interchange(unit, target, *a, *b, graph, live_dep_ids)
        }
        Xform::Inline { call } => inline::diagnose(unit, *call),
        Xform::ArrayPrivatize { var } => {
            parallelize::diagnose_array_privatize(unit, target, *var, graph, live_dep_ids)
        }
    }
}

/// Apply a transformation. Callers normally [`diagnose`] first; `apply`
/// re-checks applicability (never safety — overruling safety is the user's
/// prerogative after dependence marking) and performs the rewrite.
pub fn apply(
    unit: &mut ProgramUnit,
    target: StmtId,
    xform: &Xform,
    graph: &DepGraph,
) -> Result<Applied, XformError> {
    match xform {
        Xform::Parallelize => parallelize::apply(unit, target, graph),
        Xform::Interchange => loops::apply_interchange(unit, target),
        Xform::Distribute => restructure::apply_distribute(unit, target, graph),
        Xform::Fuse { with } => restructure::apply_fuse(unit, target, *with),
        Xform::Reverse => loops::apply_reverse(unit, target),
        Xform::Skew { factor } => loops::apply_skew(unit, target, *factor),
        Xform::StripMine { size } => loops::apply_stripmine(unit, target, *size),
        Xform::Unroll { factor } => loops::apply_unroll(unit, target, *factor),
        Xform::UnrollAndJam { factor } => loops::apply_unroll_and_jam(unit, target, *factor),
        Xform::ScalarExpand { var } => memory::apply_scalar_expand(unit, target, *var),
        Xform::IvSub { var } => memory::apply_ivsub(unit, target, *var),
        Xform::StatementInterchange { a, b } => {
            restructure::apply_stmt_interchange(unit, target, *a, *b)
        }
        Xform::Inline { .. } => Err(XformError(
            "inlining needs whole-program access: use apply_inline".into(),
        )),
        Xform::ArrayPrivatize { var } => {
            parallelize::apply_array_privatize(unit, target, *var, graph)
        }
    }
}

/// Apply inlining (embedding): replace the CALL at `call` inside
/// `program.units[unit_idx]` with the callee's renamed body.
pub fn apply_inline(
    program: &mut ped_fortran::Program,
    unit_idx: usize,
    call: StmtId,
) -> Result<Applied, XformError> {
    inline::apply_in_program(program, unit_idx, call)
}
