//! In-place AST editing primitives shared by the catalog.
//!
//! All rewrites go through these helpers so the invariants hold everywhere:
//! statements are spliced, never re-allocated (ids of surviving statements
//! are stable), deleted statements become [`StmtKind::Removed`] tombstones,
//! and fresh symbols never collide with source names.

use ped_fortran::visit::for_each_root_expr_of_stmt_mut;
use ped_fortran::{Block, DoLoop, Expr, LValue, ProgramUnit, StmtId, StmtKind, SymId};

/// Locate the block containing `target` and replace that single statement
/// with `replacement` (splice). Returns false if the statement is not found.
pub fn replace_stmt(unit: &mut ProgramUnit, target: StmtId, replacement: &[StmtId]) -> bool {
    let mut body = std::mem::take(&mut unit.body);
    let found = splice(unit, &mut body, target, replacement);
    unit.body = body;
    found
}

fn splice(
    unit: &mut ProgramUnit,
    block: &mut Block,
    target: StmtId,
    replacement: &[StmtId],
) -> bool {
    if let Some(pos) = block.iter().position(|&s| s == target) {
        block.splice(pos..=pos, replacement.iter().copied());
        return true;
    }
    for &sid in block.iter() {
        // Temporarily move the nested blocks out to edit them.
        let mut kind = std::mem::replace(&mut unit.stmt_mut(sid).kind, StmtKind::Removed);
        let found = match &mut kind {
            StmtKind::Do(d) => splice(unit, &mut d.body, target, replacement),
            StmtKind::If { arms, else_block } => {
                let mut f = false;
                for (_, b) in arms.iter_mut() {
                    if splice(unit, b, target, replacement) {
                        f = true;
                        break;
                    }
                }
                if !f {
                    if let Some(b) = else_block {
                        f = splice(unit, b, target, replacement);
                    }
                }
                f
            }
            _ => false,
        };
        unit.stmt_mut(sid).kind = kind;
        if found {
            return true;
        }
    }
    false
}

/// Tombstone a statement (the arena keeps the slot).
pub fn remove_stmt(unit: &mut ProgramUnit, target: StmtId) -> bool {
    let found = replace_stmt(unit, target, &[]);
    if found {
        unit.stmt_mut(target).kind = StmtKind::Removed;
    }
    found
}

/// Deep-copy a statement (and its nested blocks) into new arena slots.
pub fn clone_stmt(unit: &mut ProgramUnit, src: StmtId) -> StmtId {
    let kind = unit.stmt(src).kind.clone();
    let span = unit.stmt(src).span;
    let kind = match kind {
        StmtKind::Do(d) => {
            let body = d.body.iter().map(|&s| clone_stmt(unit, s)).collect();
            StmtKind::Do(DoLoop { body, ..d })
        }
        StmtKind::If { arms, else_block } => {
            let arms = arms
                .into_iter()
                .map(|(c, b)| (c, b.iter().map(|&s| clone_stmt(unit, s)).collect()))
                .collect();
            let else_block =
                else_block.map(|b| b.iter().map(|&s| clone_stmt(unit, s)).collect());
            StmtKind::If { arms, else_block }
        }
        other => other,
    };
    unit.alloc_stmt(kind, span)
}

/// Deep-copy a statement and substitute `var → replacement` in every
/// expression of the copy.
pub fn clone_stmt_subst(
    unit: &mut ProgramUnit,
    src: StmtId,
    var: SymId,
    replacement: &Expr,
) -> StmtId {
    let copy = clone_stmt(unit, src);
    subst_var_in_stmt(unit, copy, var, replacement);
    copy
}

/// Substitute every occurrence of scalar `var` (as an expression) in a
/// statement and its nested statements with `replacement`. The replacement
/// may itself mention `var` — substitution never descends into inserted
/// replacements.
pub fn subst_var_in_stmt(unit: &mut ProgramUnit, stmt: StmtId, var: SymId, replacement: &Expr) {
    let mut kind = std::mem::replace(&mut unit.stmt_mut(stmt).kind, StmtKind::Removed);
    // Root expressions of this statement.
    for_each_root_expr_of_stmt_mut(&mut kind, &mut |e| subst_in_expr(e, var, replacement));
    // Nested statements.
    match &mut kind {
        StmtKind::Do(d) => {
            let body = d.body.clone();
            for &s in &body {
                subst_var_in_stmt(unit, s, var, replacement);
            }
        }
        StmtKind::If { arms, else_block } => {
            for (_, b) in arms.iter() {
                for &s in b.iter() {
                    subst_var_in_stmt(unit, s, var, replacement);
                }
            }
            if let Some(b) = else_block {
                for &s in b.iter() {
                    subst_var_in_stmt(unit, s, var, replacement);
                }
            }
        }
        _ => {}
    }
    unit.stmt_mut(stmt).kind = kind;
}

/// Substitute inside one expression tree, without descending into inserted
/// replacements.
pub fn subst_in_expr(e: &mut Expr, var: SymId, replacement: &Expr) {
    if matches!(e, Expr::Var(s) if *s == var) {
        *e = replacement.clone();
        return;
    }
    match e {
        Expr::ArrayRef { subs, .. } => {
            for s in subs {
                subst_in_expr(s, var, replacement);
            }
        }
        Expr::Bin { l, r, .. } => {
            subst_in_expr(l, var, replacement);
            subst_in_expr(r, var, replacement);
        }
        Expr::Un { e, .. } => subst_in_expr(e, var, replacement),
        Expr::Intrinsic { args, .. } | Expr::Call { args, .. } => {
            for a in args {
                subst_in_expr(a, var, replacement);
            }
        }
        _ => {}
    }
}

/// Create a fresh scalar symbol derived from `base` that collides with no
/// existing name.
pub fn fresh_scalar(unit: &mut ProgramUnit, base: &str, ty: ped_fortran::Ty) -> SymId {
    for n in 1..10_000 {
        let name = format!("{base}${n}");
        if unit.symbols.lookup(&name).is_none() {
            let id = unit.symbols.intern(&name);
            unit.symbols.sym_mut(id).ty = ty;
            unit.symbols.sym_mut(id).declared = true;
            return id;
        }
    }
    unreachable!("10k fresh-name collisions");
}

/// The lhs symbol a statement assigns, if it is a scalar assignment.
pub fn assigned_scalar(unit: &ProgramUnit, stmt: StmtId) -> Option<SymId> {
    match &unit.stmt(stmt).kind {
        StmtKind::Assign { lhs: LValue::Var(s), .. } => Some(*s),
        _ => None,
    }
}

/// True when the loop body is exactly one nested DO (a perfect 2-nest).
pub fn perfect_nest(unit: &ProgramUnit, header: StmtId) -> Option<StmtId> {
    let d = unit.loop_of(header);
    let live: Vec<StmtId> = d
        .body
        .iter()
        .copied()
        .filter(|&s| !matches!(unit.stmt(s).kind, StmtKind::Removed | StmtKind::Continue))
        .collect();
    match live.as_slice() {
        [inner] if unit.is_loop(*inner) => Some(*inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;
    use ped_fortran::printer::print_unit;

    fn unit(src: &str) -> ProgramUnit {
        parse_program(src).unwrap().units.remove(0)
    }

    fn text(u: &ProgramUnit) -> String {
        let mut s = String::new();
        print_unit(u, &mut s);
        s
    }

    #[test]
    fn replace_top_level() {
        let mut u = unit("program t\nx = 1.0\ny = 2.0\nend\n");
        let n = u.alloc_stmt(StmtKind::Continue, ped_fortran::Span::synthetic());
        let first = u.body[0];
        assert!(replace_stmt(&mut u, first, &[n]));
        assert!(text(&u).contains("continue"));
        assert!(!text(&u).contains("x = 1.0"));
    }

    #[test]
    fn replace_nested_in_loop() {
        let mut u = unit("program t\nreal a(5)\ndo i = 1, 5\na(i) = 1.0\nenddo\nend\n");
        let inner = u.loop_of(u.body[0]).body[0];
        assert!(remove_stmt(&mut u, inner));
        assert!(!text(&u).contains("a(i)"));
        assert_eq!(u.stmt(inner).kind, StmtKind::Removed);
    }

    #[test]
    fn replace_inside_if_arm() {
        let mut u = unit("program t\nif (x .gt. 0.0) then\ny = 1.0\nendif\nend\n");
        let iff = u.body[0];
        let inner = match &u.stmt(iff).kind {
            StmtKind::If { arms, .. } => arms[0].1[0],
            _ => unreachable!(),
        };
        assert!(remove_stmt(&mut u, inner));
        assert!(!text(&u).contains("y = 1.0"));
    }

    #[test]
    fn substitution_including_subscripts() {
        let mut u = unit("program t\nreal a(10)\na(k) = k + 1\nend\n");
        let k = u.symbols.lookup("k").unwrap();
        let stmt = u.body[0];
        subst_var_in_stmt(&mut u, stmt, k, &Expr::Int(3));
        let s = text(&u);
        assert!(s.contains("a(3) = 3 + 1"), "{s}");
    }

    #[test]
    fn clone_subst_replaces_without_descending() {
        let mut u = unit("program t\nreal a(10)\ndo i = 1, 5\na(i) = i\nenddo\nend\n");
        let i = u.symbols.lookup("i").unwrap();
        let hdr = u.body[0];
        let inner = u.loop_of(hdr).body[0];
        // i → i + 1: the replacement mentions i, which must not recurse.
        let copy = clone_stmt_subst(
            &mut u,
            inner,
            i,
            &Expr::bin(ped_fortran::BinOp::Add, Expr::Var(i), Expr::Int(1)),
        );
        assert_ne!(copy, inner);
        u.loop_of_mut(hdr).body.push(copy);
        let s = text(&u);
        assert!(s.contains("a(i + 1) = i + 1"), "{s}");
        assert!(s.contains("a(i) = i"), "original untouched: {s}");
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut u = unit("program t\nx = 1.0\nend\n");
        let a = fresh_scalar(&mut u, "t", ped_fortran::Ty::Real);
        let b = fresh_scalar(&mut u, "t", ped_fortran::Ty::Real);
        assert_ne!(a, b);
        assert_ne!(u.symbols.name(a), u.symbols.name(b));
    }

    #[test]
    fn perfect_nest_detection() {
        let u = unit(
            "program t\nreal a(5,5)\ndo i = 1, 5\ndo j = 1, 5\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        );
        assert!(perfect_nest(&u, u.body[0]).is_some());
        let u2 = unit(
            "program t\nreal a(5,5)\ndo i = 1, 5\nx = 1.0\ndo j = 1, 5\na(i,j) = x\nenddo\n\
             enddo\nend\n",
        );
        assert!(perfect_nest(&u2, u2.body[0]).is_none());
    }
}
