//! Parse and semantic errors produced by the front end.

use crate::span::LineNo;

/// Result alias used throughout the front end.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while lexing or parsing Fortran source.
///
/// Ped reports errors against physical source lines so the editor can
/// highlight the offending statement; we carry the same information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Physical line the error was detected on (0 if unknown).
    pub line: LineNo,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Construct an error at a known source line.
    pub fn at(line: LineNo, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line != 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::at(12, "expected ENDDO");
        assert_eq!(e.to_string(), "line 12: expected ENDDO");
    }

    #[test]
    fn display_without_line() {
        let e = ParseError::at(0, "empty program");
        assert_eq!(e.to_string(), "empty program");
    }
}
