//! Lexical tokens.
//!
//! Fortran keywords are not reserved words; the lexer produces [`Token::Ident`]
//! for every name and the parser matches keywords case-insensitively by
//! spelling. Numeric literals distinguish `REAL` (`E` exponent or plain `.`)
//! from `DOUBLE PRECISION` (`D` exponent) spellings because Ped's printer
//! must reproduce them.

/// One lexical token of a logical Fortran line.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or (unreserved) keyword, lower-cased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal; `double` records a `D` exponent spelling.
    Real { value: f64, double: bool },
    /// Character literal (content between quotes, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Colon,
    /// `=`
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    /// `**`
    Pow,
    /// `//` string concatenation (accepted, used only in PRINT items).
    Concat,
    /// `.lt.` or `<`
    Lt,
    /// `.le.` or `<=`
    Le,
    /// `.gt.` or `>`
    Gt,
    /// `.ge.` or `>=`
    Ge,
    /// `.eq.` or `==`
    EqEq,
    /// `.ne.` or `/=`
    Ne,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// `.true.`
    True,
    /// `.false.`
    False,
}

impl Token {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the identifier `kw` (which must be lower-case).
    pub fn is_kw(&self, kw: &str) -> bool {
        debug_assert_eq!(kw, kw.to_ascii_lowercase());
        matches!(self, Token::Ident(s) if s == kw)
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Real { value, double } => {
                if *double {
                    write!(f, "{value:?}D0")
                } else {
                    write!(f, "{value:?}")
                }
            }
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Colon => write!(f, ":"),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Pow => write!(f, "**"),
            Token::Concat => write!(f, "//"),
            Token::Lt => write!(f, ".lt."),
            Token::Le => write!(f, ".le."),
            Token::Gt => write!(f, ".gt."),
            Token::Ge => write!(f, ".ge."),
            Token::EqEq => write!(f, ".eq."),
            Token::Ne => write!(f, ".ne."),
            Token::And => write!(f, ".and."),
            Token::Or => write!(f, ".or."),
            Token::Not => write!(f, ".not."),
            Token::True => write!(f, ".true."),
            Token::False => write!(f, ".false."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_helpers() {
        let t = Token::Ident("do".into());
        assert!(t.is_kw("do"));
        assert!(!t.is_kw("if"));
        assert_eq!(t.as_ident(), Some("do"));
        assert_eq!(Token::Comma.as_ident(), None);
    }
}
