//! Abstract syntax tree.
//!
//! Statements live in a per-unit arena ([`ProgramUnit::stmts`]) and blocks
//! are vectors of [`StmtId`]. Stable statement identities are what make the
//! editor core's dependence graph, undo stack, and incremental reanalysis
//! possible: a transformation may splice blocks and retype statements, but a
//! surviving statement keeps its id, so dependence endpoints and user marks
//! attached to it remain valid — exactly the property Ped's internal program
//! representation maintained across edits.

use crate::span::Span;
use crate::symbols::{SymbolTable, SymId};

/// Stable identifier of a statement inside one program unit's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Index into the statement arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StmtId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An ordered sequence of statements (a loop body, an IF arm, a unit body).
pub type Block = Vec<StmtId>;

/// A whole Fortran program: one main unit plus subroutines/functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Program units in source order.
    pub units: Vec<ProgramUnit>,
}

impl Program {
    /// Find a unit by (case-insensitive) name.
    pub fn unit(&self, name: &str) -> Option<&ProgramUnit> {
        let key = name.to_ascii_lowercase();
        self.units.iter().find(|u| u.name == key)
    }

    /// Find a unit mutably by name.
    pub fn unit_mut(&mut self, name: &str) -> Option<&mut ProgramUnit> {
        let key = name.to_ascii_lowercase();
        self.units.iter_mut().find(|u| u.name == key)
    }

    /// Index of a unit by name.
    pub fn unit_index(&self, name: &str) -> Option<usize> {
        let key = name.to_ascii_lowercase();
        self.units.iter().position(|u| u.name == key)
    }

    /// The main program unit, if present.
    pub fn main(&self) -> Option<&ProgramUnit> {
        self.units.iter().find(|u| u.kind == UnitKind::Main)
    }
}

/// The kind of a program unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// `PROGRAM` (or unnamed main).
    Main,
    /// `SUBROUTINE`.
    Subroutine,
    /// `FUNCTION` returning its declared type.
    Function(crate::symbols::Ty),
}

/// Members of one `COMMON` block as declared in a unit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonBlock {
    /// Block name; `""` for blank common.
    pub name: String,
    /// Member symbols in declaration order.
    pub members: Vec<SymId>,
}

/// One program unit: name, dummy arguments, symbols, and the statement arena.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramUnit {
    /// Lower-cased unit name.
    pub name: String,
    /// Main / subroutine / function.
    pub kind: UnitKind,
    /// Dummy arguments, in order.
    pub args: Vec<SymId>,
    /// Symbol table for this unit.
    pub symbols: SymbolTable,
    /// Statement arena. Entries are never removed, only tombstoned with
    /// [`StmtKind::Removed`], so `StmtId`s stay stable across edits.
    pub stmts: Vec<Stmt>,
    /// Executable body: top-level statement list.
    pub body: Block,
    /// `COMMON` blocks declared in this unit.
    pub commons: Vec<CommonBlock>,
}

impl ProgramUnit {
    /// Create an empty unit.
    pub fn new(name: &str, kind: UnitKind) -> Self {
        ProgramUnit {
            name: name.to_ascii_lowercase(),
            kind,
            args: Vec::new(),
            symbols: SymbolTable::new(),
            stmts: Vec::new(),
            body: Vec::new(),
            commons: Vec::new(),
        }
    }

    /// Allocate a statement in the arena and return its id.
    pub fn alloc_stmt(&mut self, kind: StmtKind, span: Span) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(Stmt { id, label: None, span, kind });
        id
    }

    /// Immutable statement access.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        &self.stmts[id.index()]
    }

    /// Mutable statement access.
    pub fn stmt_mut(&mut self, id: StmtId) -> &mut Stmt {
        &mut self.stmts[id.index()]
    }

    /// The `DoLoop` of a statement known to be a loop. Panics otherwise.
    pub fn loop_of(&self, id: StmtId) -> &DoLoop {
        match &self.stmt(id).kind {
            StmtKind::Do(d) => d,
            other => panic!("{id} is not a DO loop: {other:?}"),
        }
    }

    /// Mutable variant of [`Self::loop_of`].
    pub fn loop_of_mut(&mut self, id: StmtId) -> &mut DoLoop {
        match &mut self.stmt_mut(id).kind {
            StmtKind::Do(d) => d,
            other => panic!("{id} is not a DO loop: {other:?}"),
        }
    }

    /// True if the statement is a DO loop.
    pub fn is_loop(&self, id: StmtId) -> bool {
        matches!(self.stmt(id).kind, StmtKind::Do(_))
    }
}

/// A statement node in the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Arena identity.
    pub id: StmtId,
    /// Numeric statement label, if any.
    pub label: Option<u32>,
    /// Physical source span ([`Span::synthetic`] when built in memory).
    pub span: Span,
    /// The statement proper.
    pub kind: StmtKind,
}

/// Statement forms of the structured subset.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `lhs = rhs`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Right-hand side.
        rhs: Expr,
    },
    /// Block IF: `IF (c1) THEN … ELSE IF (c2) THEN … ELSE … ENDIF`.
    /// `arms` pairs each condition with its block; `else_block` is the
    /// trailing unconditional arm. A logical IF parses as one arm whose
    /// block holds a single statement.
    If {
        /// `(condition, block)` pairs, first is the `IF`, rest `ELSE IF`s.
        arms: Vec<(Expr, Block)>,
        /// `ELSE` block, if present.
        else_block: Option<Block>,
    },
    /// `DO` / `PARALLEL DO` loop.
    Do(DoLoop),
    /// `CALL name(args)`.
    Call {
        /// Callee name (resolved against the program at analysis time).
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `RETURN`
    Return,
    /// `STOP`
    Stop,
    /// `CONTINUE` (no-op; loop terminators)
    Continue,
    /// `PRINT *, items`
    Print {
        /// Output list items.
        items: Vec<Expr>,
    },
    /// Tombstone left where a transformation deleted a statement.
    Removed,
}

/// Reduction operators recognized for `REDUCTION` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// `+`
    Sum,
    /// `*`
    Product,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

impl std::fmt::Display for RedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RedOp::Sum => "+",
            RedOp::Product => "*",
            RedOp::Min => "min",
            RedOp::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// Parallel-dialect annotations on a `PARALLEL DO`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParallelInfo {
    /// Variables given a per-iteration private copy.
    pub private: Vec<SymId>,
    /// Reduction variables with their combining operator.
    pub reductions: Vec<(RedOp, SymId)>,
    /// Private variables whose final-iteration value is copied out.
    pub lastprivate: Vec<SymId>,
}

/// A `DO` loop: `DO var = lo, hi [, step]` with a body block.
#[derive(Debug, Clone, PartialEq)]
pub struct DoLoop {
    /// Loop index variable.
    pub var: SymId,
    /// Initial value expression.
    pub lo: Expr,
    /// Final value expression.
    pub hi: Expr,
    /// Step expression; `None` means 1.
    pub step: Option<Expr>,
    /// Loop body.
    pub body: Block,
    /// Label of the terminal statement for `DO label` form (printing detail).
    pub term_label: Option<u32>,
    /// `Some` when this is a `PARALLEL DO`.
    pub parallel: Option<ParallelInfo>,
}

impl DoLoop {
    /// The step expression, defaulting to 1.
    pub fn step_expr(&self) -> Expr {
        self.step.clone().unwrap_or(Expr::Int(1))
    }

    /// True if this loop is marked parallel.
    pub fn is_parallel(&self) -> bool {
        self.parallel.is_some()
    }
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(SymId),
    /// Array element `a(subs…)`.
    ArrayElem(SymId, Vec<Expr>),
}

impl LValue {
    /// The assigned symbol.
    pub fn sym(&self) -> SymId {
        match self {
            LValue::Var(s) => *s,
            LValue::ArrayElem(s, _) => *s,
        }
    }

    /// Subscripts, if this is an array element.
    pub fn subs(&self) -> Option<&[Expr]> {
        match self {
            LValue::Var(_) => None,
            LValue::ArrayElem(_, subs) => Some(subs),
        }
    }
}

/// Intrinsic functions of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Intrinsic {
    Min,
    Max,
    Mod,
    Abs,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Log,
    Float,
    Int,
    Dble,
    Sign,
}

impl Intrinsic {
    /// Parse an intrinsic name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "min" | "min0" | "amin1" | "dmin1" => Intrinsic::Min,
            "max" | "max0" | "amax1" | "dmax1" => Intrinsic::Max,
            "mod" | "amod" => Intrinsic::Mod,
            "abs" | "iabs" | "dabs" => Intrinsic::Abs,
            "sqrt" | "dsqrt" => Intrinsic::Sqrt,
            "sin" | "dsin" => Intrinsic::Sin,
            "cos" | "dcos" => Intrinsic::Cos,
            "exp" | "dexp" => Intrinsic::Exp,
            "log" | "alog" | "dlog" => Intrinsic::Log,
            "float" | "real" => Intrinsic::Float,
            "int" | "ifix" | "idint" => Intrinsic::Int,
            "dble" => Intrinsic::Dble,
            "sign" | "isign" | "dsign" => Intrinsic::Sign,
            _ => return None,
        })
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Mod => "mod",
            Intrinsic::Abs => "abs",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Float => "float",
            Intrinsic::Int => "int",
            Intrinsic::Dble => "dble",
            Intrinsic::Sign => "sign",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    Concat,
}

impl BinOp {
    /// True for `<`, `<=`, `>`, `>=`, `==`, `/=`.
    pub fn is_relational(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }

    /// True for `+ - * / **`.
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Pow)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// `REAL` literal.
    Real(f64),
    /// `DOUBLE PRECISION` literal (`1D0` spelling).
    Double(f64),
    /// `.TRUE.` / `.FALSE.`.
    Logical(bool),
    /// Character literal (PRINT lists only).
    Str(String),
    /// Scalar variable reference.
    Var(SymId),
    /// Array element reference.
    ArrayRef {
        /// Array symbol.
        sym: SymId,
        /// Subscript expressions, one per dimension.
        subs: Vec<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        e: Box<Expr>,
    },
    /// Intrinsic function application.
    Intrinsic {
        /// Which intrinsic.
        op: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// User function reference.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Build `l op r`.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin { op, l: Box::new(l), r: Box::new(r) }
    }

    /// Build `-e`.
    #[allow(clippy::should_implement_trait)] // builder helper, not an operator impl
    pub fn neg(e: Expr) -> Expr {
        Expr::Un { op: UnOp::Neg, e: Box::new(e) }
    }

    /// Integer literal value, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the expression is exactly the integer `v`.
    pub fn is_int(&self, v: i64) -> bool {
        self.as_int() == Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_allocation_is_stable() {
        let mut u = ProgramUnit::new("T", UnitKind::Main);
        let a = u.alloc_stmt(StmtKind::Continue, Span::synthetic());
        let b = u.alloc_stmt(StmtKind::Stop, Span::synthetic());
        assert_ne!(a, b);
        assert_eq!(u.stmt(a).kind, StmtKind::Continue);
        u.stmt_mut(a).kind = StmtKind::Removed;
        assert_eq!(u.stmt(b).kind, StmtKind::Stop);
        assert_eq!(u.name, "t");
    }

    #[test]
    fn lvalue_sym() {
        let s = SymId(3);
        assert_eq!(LValue::Var(s).sym(), s);
        assert_eq!(LValue::ArrayElem(s, vec![Expr::Int(1)]).sym(), s);
        assert!(LValue::Var(s).subs().is_none());
    }

    #[test]
    fn intrinsic_names_round_trip() {
        for op in [
            Intrinsic::Min,
            Intrinsic::Max,
            Intrinsic::Mod,
            Intrinsic::Abs,
            Intrinsic::Sqrt,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::Float,
            Intrinsic::Int,
            Intrinsic::Dble,
            Intrinsic::Sign,
        ] {
            assert_eq!(Intrinsic::from_name(op.name()), Some(op));
        }
        assert_eq!(Intrinsic::from_name("nosuch"), None);
    }

    #[test]
    fn step_defaults_to_one() {
        let d = DoLoop {
            var: SymId(0),
            lo: Expr::Int(1),
            hi: Expr::Int(10),
            step: None,
            body: vec![],
            term_label: None,
            parallel: None,
        };
        assert!(d.step_expr().is_int(1));
        assert!(!d.is_parallel());
    }
}
