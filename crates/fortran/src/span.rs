//! Source locations.
//!
//! Ped annotates analysis results onto source lines (the "book metaphor"),
//! so every statement carries the 1-based line number of the first physical
//! line it came from. Programmatically built ASTs use line 0.

/// 1-based physical source line number; 0 for synthesized statements.
pub type LineNo = u32;

/// A half-open range of physical source lines `[first, last]` covered by a
/// logical statement (continuation lines make this span more than one line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First physical line of the statement.
    pub first: LineNo,
    /// Last physical line of the statement (equal to `first` when there are
    /// no continuations).
    pub last: LineNo,
}

impl Span {
    /// A span covering a single physical line.
    pub fn line(n: LineNo) -> Self {
        Span { first: n, last: n }
    }

    /// The synthetic span used for statements built in memory.
    pub fn synthetic() -> Self {
        Span { first: 0, last: 0 }
    }

    /// True if this span refers to real source text.
    pub fn is_real(&self) -> bool {
        self.first != 0
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.first == self.last {
            write!(f, "line {}", self.first)
        } else {
            write!(f, "lines {}-{}", self.first, self.last)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_single_line() {
        assert_eq!(Span::line(7).to_string(), "line 7");
    }

    #[test]
    fn display_range() {
        assert_eq!(Span { first: 3, last: 5 }.to_string(), "lines 3-5");
    }

    #[test]
    fn synthetic_is_not_real() {
        assert!(!Span::synthetic().is_real());
        assert!(Span::line(1).is_real());
    }
}
