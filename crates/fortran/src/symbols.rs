//! Per-unit symbol tables.
//!
//! Each program unit owns a [`SymbolTable`]. Names are interned to dense
//! [`SymId`]s so analyses can use flat vectors indexed by symbol. Fortran
//! implicit typing (I–N integer, otherwise real) applies to undeclared
//! names, exactly as Ped's front end assumed.

use std::collections::HashMap;

use crate::ast::Expr;

/// Dense identifier for a symbol within one program unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

impl SymId {
    /// Index into per-symbol vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fortran base types in the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    Integer,
    Real,
    Double,
    Logical,
}

impl Ty {
    /// Implicit type for an undeclared name (first-letter rule).
    pub fn implicit_for(name: &str) -> Ty {
        match name.chars().next() {
            Some(c) if ('i'..='n').contains(&c.to_ascii_lowercase()) => Ty::Integer,
            _ => Ty::Real,
        }
    }

    /// True for `REAL` and `DOUBLE PRECISION`.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::Real | Ty::Double)
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ty::Integer => "integer",
            Ty::Real => "real",
            Ty::Double => "double precision",
            Ty::Logical => "logical",
        };
        write!(f, "{s}")
    }
}

/// A compile-time constant value (from `PARAMETER`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    Int(i64),
    Real(f64),
    Logical(bool),
}

impl Const {
    /// Integer view, if this constant is an integer.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Const::Int(v) => Some(v),
            _ => None,
        }
    }
}

/// One dimension of an array declaration: `lo:hi`, `hi` alone (lo = 1), or
/// `*` (assumed size, final dimension of a dummy array).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDim {
    /// Lower bound (defaults to 1).
    pub lo: Expr,
    /// Upper bound; `None` means assumed size (`*`).
    pub hi: Option<Expr>,
}

impl ArrayDim {
    /// `1:hi` dimension.
    pub fn upto(hi: Expr) -> Self {
        ArrayDim { lo: Expr::Int(1), hi: Some(hi) }
    }
}

/// Storage location of a symbol inside a `COMMON` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommonLoc {
    /// Common block name (`//` blank common is named `""`).
    pub block: String,
    /// Position of this symbol within the block's member list.
    pub index: usize,
}

/// A named entity of a program unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Symbol {
    /// Lower-cased source name.
    pub name: String,
    /// Base type (implicit if not declared).
    pub ty: Ty,
    /// Array dimensions; empty for scalars.
    pub dims: Vec<ArrayDim>,
    /// Position in the dummy-argument list, if this is a dummy argument.
    pub arg_index: Option<usize>,
    /// `COMMON` placement, if any.
    pub common: Option<CommonLoc>,
    /// `PARAMETER` constant value, if any.
    pub param: Option<Const>,
    /// True once an explicit type declaration was seen.
    pub declared: bool,
}

impl Symbol {
    /// True if the symbol is an array.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Number of array dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// Interning symbol table for one program unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymbolTable {
    syms: Vec<Symbol>,
    by_name: HashMap<String, SymId>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name` (case-insensitive), creating an implicitly-typed scalar
    /// on first sight.
    pub fn intern(&mut self, name: &str) -> SymId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.by_name.get(&key) {
            return id;
        }
        let id = SymId(self.syms.len() as u32);
        self.syms.push(Symbol {
            ty: Ty::implicit_for(&key),
            name: key.clone(),
            dims: Vec::new(),
            arg_index: None,
            common: None,
            param: None,
            declared: false,
        });
        self.by_name.insert(key, id);
        id
    }

    /// Look up an existing symbol without creating it.
    pub fn lookup(&self, name: &str) -> Option<SymId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Immutable access; panics on a foreign `SymId`.
    pub fn sym(&self, id: SymId) -> &Symbol {
        &self.syms[id.index()]
    }

    /// Mutable access; panics on a foreign `SymId`.
    pub fn sym_mut(&mut self, id: SymId) -> &mut Symbol {
        &mut self.syms[id.index()]
    }

    /// Name of a symbol.
    pub fn name(&self, id: SymId) -> &str {
        &self.syms[id.index()].name
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Iterate `(SymId, &Symbol)` in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SymId, &Symbol)> {
        self.syms.iter().enumerate().map(|(i, s)| (SymId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_typing() {
        assert_eq!(Ty::implicit_for("i"), Ty::Integer);
        assert_eq!(Ty::implicit_for("n2"), Ty::Integer);
        assert_eq!(Ty::implicit_for("x"), Ty::Real);
        assert_eq!(Ty::implicit_for("alpha"), Ty::Real);
    }

    #[test]
    fn intern_is_case_insensitive_and_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("Foo");
        let b = t.intern("FOO");
        assert_eq!(a, b);
        assert_eq!(t.name(a), "foo");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn lookup_does_not_create() {
        let t = SymbolTable::new();
        assert_eq!(t.lookup("x"), None);
    }

    #[test]
    fn array_rank() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        t.sym_mut(a).dims = vec![ArrayDim::upto(Expr::Int(10)), ArrayDim::upto(Expr::Int(20))];
        assert!(t.sym(a).is_array());
        assert_eq!(t.sym(a).rank(), 2);
    }
}
