//! Pretty printer.
//!
//! Emits canonical free-form source that re-parses to a structurally
//! equivalent program (`print ∘ parse ∘ print = print`, checked by property
//! tests). Ped regenerated source after every transformation — this module
//! is what makes our transformed ASTs visible as Fortran again.

use crate::ast::*;
use crate::symbols::{Const, SymbolTable, Ty};

/// Print a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, u) in p.units.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_unit(u, &mut out);
    }
    out
}

/// Print a single program unit.
pub fn print_unit(u: &ProgramUnit, out: &mut String) {
    match u.kind {
        UnitKind::Main => {
            out.push_str(&format!("program {}\n", u.name));
        }
        UnitKind::Subroutine => {
            out.push_str(&format!("subroutine {}({})\n", u.name, arg_list(u)));
        }
        UnitKind::Function(ty) => {
            out.push_str(&format!("{} function {}({})\n", ty, u.name, arg_list(u)));
        }
    }
    print_decls(u, out);
    for &s in &u.body {
        print_stmt(u, s, 1, out);
    }
    out.push_str("end\n");
}

fn arg_list(u: &ProgramUnit) -> String {
    u.args.iter().map(|&a| u.symbols.name(a).to_string()).collect::<Vec<_>>().join(", ")
}

fn print_decls(u: &ProgramUnit, out: &mut String) {
    // Type declarations (grouped by type, in symbol order).
    for ty in [Ty::Integer, Ty::Real, Ty::Double, Ty::Logical] {
        let mut items = Vec::new();
        for (id, sym) in u.symbols.iter() {
            // The function result variable is typed by the unit header.
            if matches!(u.kind, UnitKind::Function(_)) && sym.name == u.name {
                continue;
            }
            if sym.ty != ty {
                continue;
            }
            let needs_decl = sym.declared || sym.is_array();
            if !needs_decl {
                continue;
            }
            let _ = id;
            let mut item = sym.name.clone();
            if sym.is_array() {
                let dims: Vec<String> = sym
                    .dims
                    .iter()
                    .map(|d| {
                        let lo_is_one = d.lo.is_int(1);
                        match (&d.hi, lo_is_one) {
                            (Some(hi), true) => print_expr(u, hi),
                            (Some(hi), false) => {
                                format!("{}:{}", print_expr(u, &d.lo), print_expr(u, hi))
                            }
                            (None, true) => "*".to_string(),
                            (None, false) => format!("{}:*", print_expr(u, &d.lo)),
                        }
                    })
                    .collect();
                item.push_str(&format!("({})", dims.join(", ")));
            }
            items.push(item);
        }
        if !items.is_empty() {
            out.push_str(&format!("  {} {}\n", ty, items.join(", ")));
        }
    }
    // PARAMETER constants.
    let params: Vec<String> = u
        .symbols
        .iter()
        .filter_map(|(_, s)| s.param.map(|v| format!("{} = {}", s.name, print_const(v))))
        .collect();
    if !params.is_empty() {
        out.push_str(&format!("  parameter ({})\n", params.join(", ")));
    }
    // COMMON blocks.
    for blk in &u.commons {
        let members: Vec<String> =
            blk.members.iter().map(|&m| u.symbols.name(m).to_string()).collect();
        if blk.name.is_empty() {
            out.push_str(&format!("  common // {}\n", members.join(", ")));
        } else {
            out.push_str(&format!("  common /{}/ {}\n", blk.name, members.join(", ")));
        }
    }
}

fn print_const(v: Const) -> String {
    match v {
        Const::Int(i) => i.to_string(),
        Const::Real(r) => fmt_real(r),
        Const::Logical(true) => ".true.".to_string(),
        Const::Logical(false) => ".false.".to_string(),
    }
}

/// Print one statement (and its nested blocks) at the given indent level.
pub fn print_stmt(u: &ProgramUnit, id: StmtId, indent: usize, out: &mut String) {
    let st = u.stmt(id);
    if matches!(st.kind, StmtKind::Removed) {
        return;
    }
    let pad = "  ".repeat(indent);
    let lead = match st.label {
        Some(l) => format!("{l} {pad}"),
        None => format!("  {pad}"),
    };
    match &st.kind {
        StmtKind::Assign { lhs, rhs } => {
            let l = match lhs {
                LValue::Var(s) => u.symbols.name(*s).to_string(),
                LValue::ArrayElem(s, subs) => {
                    format!("{}({})", u.symbols.name(*s), print_expr_list(u, subs))
                }
            };
            out.push_str(&format!("{lead}{l} = {}\n", print_expr(u, rhs)));
        }
        StmtKind::If { arms, else_block } => {
            // A single-arm IF whose block is one simple statement could be a
            // logical IF, but we always print block form for stability.
            for (i, (cond, block)) in arms.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{lead}if ({}) then\n", print_expr(u, cond)));
                } else {
                    out.push_str(&format!(
                        "  {pad}else if ({}) then\n",
                        print_expr(u, cond)
                    ));
                }
                for &s in block {
                    print_stmt(u, s, indent + 1, out);
                }
            }
            if let Some(block) = else_block {
                out.push_str(&format!("  {pad}else\n"));
                for &s in block {
                    print_stmt(u, s, indent + 1, out);
                }
            }
            out.push_str(&format!("  {pad}endif\n"));
        }
        StmtKind::Do(d) => {
            let head = if d.is_parallel() { "parallel do" } else { "do" };
            // Use the labelled form only when the final body statement still
            // carries the terminating label.
            let labelled_form = d.term_label.is_some()
                && d.body.last().map(|&s| u.stmt(s).label) == Some(d.term_label);
            let mut line = format!("{lead}{head} ");
            if labelled_form {
                line.push_str(&format!("{} ", d.term_label.expect("checked")));
            }
            line.push_str(&format!(
                "{} = {}, {}",
                u.symbols.name(d.var),
                print_expr(u, &d.lo),
                print_expr(u, &d.hi)
            ));
            if let Some(step) = &d.step {
                line.push_str(&format!(", {}", print_expr(u, step)));
            }
            if let Some(par) = &d.parallel {
                if !par.private.is_empty() {
                    let names: Vec<&str> =
                        par.private.iter().map(|&s| u.symbols.name(s)).collect();
                    line.push_str(&format!(" private({})", names.join(", ")));
                }
                for (op, sym) in &par.reductions {
                    line.push_str(&format!(" reduction({}:{})", op, u.symbols.name(*sym)));
                }
                if !par.lastprivate.is_empty() {
                    let names: Vec<&str> =
                        par.lastprivate.iter().map(|&s| u.symbols.name(s)).collect();
                    line.push_str(&format!(" lastprivate({})", names.join(", ")));
                }
            }
            out.push_str(&line);
            out.push('\n');
            for &s in &d.body {
                print_stmt(u, s, indent + 1, out);
            }
            if !labelled_form {
                out.push_str(&format!("  {pad}enddo\n"));
            }
        }
        StmtKind::Call { name, args } => {
            if args.is_empty() {
                out.push_str(&format!("{lead}call {name}()\n"));
            } else {
                out.push_str(&format!("{lead}call {name}({})\n", print_expr_list(u, args)));
            }
        }
        StmtKind::Return => out.push_str(&format!("{lead}return\n")),
        StmtKind::Stop => out.push_str(&format!("{lead}stop\n")),
        StmtKind::Continue => out.push_str(&format!("{lead}continue\n")),
        StmtKind::Print { items } => {
            if items.is_empty() {
                out.push_str(&format!("{lead}print *\n"));
            } else {
                out.push_str(&format!("{lead}print *, {}\n", print_expr_list(u, items)));
            }
        }
        StmtKind::Removed => {}
    }
}

fn print_expr_list(u: &ProgramUnit, es: &[Expr]) -> String {
    es.iter().map(|e| print_expr(u, e)).collect::<Vec<_>>().join(", ")
}

/// Print an expression with minimal parentheses.
pub fn print_expr(u: &ProgramUnit, e: &Expr) -> String {
    print_prec(&u.symbols, e, 0)
}

/// Print an expression given only a symbol table (used by analyses that hold
/// a table but not the unit).
pub fn print_expr_with(symbols: &SymbolTable, e: &Expr) -> String {
    print_prec(symbols, e, 0)
}

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Bin { op, .. } => match op {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 4,
            BinOp::Add | BinOp::Sub | BinOp::Concat => 5,
            BinOp::Mul | BinOp::Div => 6,
            BinOp::Pow => 8,
        },
        Expr::Un { op: UnOp::Neg, .. } => 5,
        Expr::Un { op: UnOp::Not, .. } => 3,
        _ => 10,
    }
}

fn print_prec(sy: &SymbolTable, e: &Expr, min: u8) -> String {
    let p = prec(e);
    let body = match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => fmt_real(*v),
        Expr::Double(v) => fmt_double(*v),
        Expr::Logical(true) => ".true.".into(),
        Expr::Logical(false) => ".false.".into(),
        Expr::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Expr::Var(s) => sy.name(*s).to_string(),
        Expr::ArrayRef { sym, subs } => {
            let subs: Vec<String> = subs.iter().map(|s| print_prec(sy, s, 0)).collect();
            format!("{}({})", sy.name(*sym), subs.join(", "))
        }
        Expr::Bin { op, l, r } => {
            let (lmin, rmin) = match op {
                BinOp::Pow => (p + 1, p),
                _ => (p, p + 1),
            };
            let ops = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Pow => "**",
                BinOp::Lt => ".lt.",
                BinOp::Le => ".le.",
                BinOp::Gt => ".gt.",
                BinOp::Ge => ".ge.",
                BinOp::Eq => ".eq.",
                BinOp::Ne => ".ne.",
                BinOp::And => ".and.",
                BinOp::Or => ".or.",
                BinOp::Concat => "//",
            };
            format!("{} {} {}", print_prec(sy, l, lmin), ops, print_prec(sy, r, rmin))
        }
        Expr::Un { op: UnOp::Neg, e } => format!("-{}", print_prec(sy, e, 6)),
        Expr::Un { op: UnOp::Not, e } => format!(".not. {}", print_prec(sy, e, 3)),
        Expr::Intrinsic { op, args } => {
            let args: Vec<String> = args.iter().map(|a| print_prec(sy, a, 0)).collect();
            format!("{}({})", op.name(), args.join(", "))
        }
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(|a| print_prec(sy, a, 0)).collect();
            format!("{}({})", name, args.join(", "))
        }
    };
    if p < min {
        format!("({body})")
    } else {
        body
    }
}

/// Shortest-round-trip REAL literal spelling.
fn fmt_real(v: f64) -> String {
    let s = format!("{v:?}");
    if s.contains('e') || s.contains('.') {
        s
    } else {
        format!("{s}.0")
    }
}

/// DOUBLE PRECISION spelling (`D` exponent).
fn fmt_double(v: f64) -> String {
    let s = format!("{v:?}");
    if s.contains('e') {
        s.replace('e', "d")
    } else {
        format!("{s}d0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn fixpoint(src: &str) {
        let p1 = parse_program(src).expect("parse 1");
        let s1 = print_program(&p1);
        let p2 = parse_program(&s1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{s1}"));
        let s2 = print_program(&p2);
        assert_eq!(s1, s2, "printer not a fixpoint");
    }

    #[test]
    fn simple_program_fixpoint() {
        fixpoint(
            "program t\ninteger n\nparameter (n = 10)\nreal a(n)\ndo i = 1, n\na(i) = 2.0 * i\n\
             enddo\nend\n",
        );
    }

    #[test]
    fn parallel_do_clauses_fixpoint() {
        fixpoint(
            "program t\nreal a(100), s\nparallel do i = 1, 100 private(t1) reduction(+:s)\n\
             t1 = a(i)\ns = s + t1\nenddo\nend\n",
        );
    }

    #[test]
    fn if_elseif_else_fixpoint() {
        fixpoint(
            "program t\nif (x .lt. 1.0) then\ny = 1.0\nelse if (x .lt. 2.0) then\ny = 2.0\n\
             else\ny = 3.0\nendif\nend\n",
        );
    }

    #[test]
    fn labelled_do_fixpoint() {
        fixpoint("program t\nreal a(10)\ndo 10 i = 1, 10\na(i) = 0.0\n10 continue\nend\n");
    }

    #[test]
    fn precedence_minimal_parens() {
        let p = parse_program("program t\nx = a - (b - c)\ny = (a + b) * c\nz = -a ** 2\nend\n")
            .unwrap();
        let s = print_program(&p);
        assert!(s.contains("x = a - (b - c)"), "{s}");
        assert!(s.contains("y = (a + b) * c"), "{s}");
        assert!(s.contains("z = -a ** 2"), "{s}");
    }

    #[test]
    fn subroutine_and_common_fixpoint() {
        fixpoint(
            "subroutine sweep(a, n)\ninteger n\nreal a(n)\ncommon /ctl/ tol, itmax\n\
             do i = 1, n\na(i) = a(i) + tol\nenddo\nreturn\nend\n",
        );
    }

    #[test]
    fn function_fixpoint() {
        fixpoint(
            "real function norm(v, n)\ninteger n\nreal v(n)\nnorm = 0.0\ndo i = 1, n\n\
             norm = norm + v(i) * v(i)\nenddo\nnorm = sqrt(norm)\nend\n",
        );
    }

    #[test]
    fn double_literal_spelling() {
        let p = parse_program("program t\nx = 1.5d0\nend\n").unwrap();
        let s = print_program(&p);
        assert!(s.contains("1.5d0"), "{s}");
    }
}
