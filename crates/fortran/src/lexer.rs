//! Line scanner and tokenizer.
//!
//! Fortran is a line-oriented language: the unit of parsing is the *logical
//! line* — a statement possibly spread over continuation lines, with an
//! optional numeric label. The scanner assembles logical lines (stripping
//! comments and joining continuations) and the tokenizer lexes each one.
//!
//! Two source forms are supported, mirroring what Ped's front end accepted:
//!
//! * **free form** (our canonical form, what the pretty printer emits):
//!   `!` starts a comment, a trailing `&` continues the statement onto the
//!   next line, and an optional statement label is a leading integer;
//! * **fixed form** (classic F77): `C`, `c`, `*` or `!` in column 1 start a
//!   comment line, columns 1–5 hold the label, a non-blank non-zero column 6
//!   marks a continuation line, and the statement body is columns 7–72.

use crate::error::{ParseError, Result};
use crate::span::Span;
use crate::token::Token;

/// Source form accepted by [`scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceForm {
    /// `!` comments, `&` continuation.
    Free,
    /// Column-1 comments, column-6 continuation, columns 1–5 labels.
    Fixed,
}

/// One logical line: an optional label, its tokens, and the physical span.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalLine {
    /// Statement label, if any (`10 CONTINUE`).
    pub label: Option<u32>,
    /// Tokens of the statement body.
    pub tokens: Vec<Token>,
    /// Physical lines this statement occupies.
    pub span: Span,
}

/// Scan an entire source file into logical lines.
pub fn scan(src: &str, form: SourceForm) -> Result<Vec<LogicalLine>> {
    let raw = collect_raw_lines(src, form)?;
    let mut out = Vec::with_capacity(raw.len());
    for (first, last, text) in raw {
        let mut toks = tokenize(&text, first)?;
        let label = extract_label(&mut toks);
        if toks.is_empty() && label.is_none() {
            continue;
        }
        out.push(LogicalLine { label, tokens: toks, span: Span { first, last } });
    }
    Ok(out)
}

/// A leading integer token on a statement is its label (expression statements
/// cannot begin with an integer literal in this subset).
fn extract_label(tokens: &mut Vec<Token>) -> Option<u32> {
    match tokens.first() {
        Some(Token::Int(v)) if tokens.len() > 1 => {
            let v = *v;
            if (0..=99999).contains(&v) {
                tokens.remove(0);
                Some(v as u32)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Join continuations and strip comments; returns (first_line, last_line, text).
fn collect_raw_lines(src: &str, form: SourceForm) -> Result<Vec<(u32, u32, String)>> {
    let mut out: Vec<(u32, u32, String)> = Vec::new();
    // True when the previous free-form line ended with `&`.
    let mut pending_cont = false;
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        match form {
            SourceForm::Free => {
                let mut text = strip_bang_comment(line).to_string();
                let mut continues = false;
                let trimmed = text.trim_end();
                if let Some(stripped) = trimmed.strip_suffix('&') {
                    continues = true;
                    text = stripped.to_string();
                }
                if text.trim().is_empty() && !continues {
                    continue;
                }
                if pending_cont {
                    let last = out.last_mut().expect("continuation implies a previous line");
                    last.1 = lineno;
                    last.2.push(' ');
                    last.2.push_str(&text);
                } else {
                    out.push((lineno, lineno, text));
                }
                pending_cont = continues;
            }
            SourceForm::Fixed => {
                let bytes: Vec<char> = line.chars().collect();
                if bytes.is_empty() {
                    continue;
                }
                if matches!(bytes[0], 'C' | 'c' | '*' | '!') {
                    continue;
                }
                let text = strip_bang_comment(line);
                let chars: Vec<char> = text.chars().collect();
                let body: String = chars.iter().skip(6).take(66).collect();
                let label_field: String = chars.iter().take(5).collect();
                let is_cont = chars.len() > 5 && chars[5] != ' ' && chars[5] != '0';
                if is_cont {
                    match out.last_mut() {
                        Some(prev) => {
                            prev.1 = lineno;
                            prev.2.push(' ');
                            prev.2.push_str(&body);
                        }
                        None => {
                            return Err(ParseError::at(
                                lineno,
                                "continuation line with no statement to continue",
                            ))
                        }
                    }
                } else {
                    if label_field.trim().is_empty() && body.trim().is_empty() {
                        continue;
                    }
                    // Keep the label as leading text so extract_label sees it.
                    let mut text = String::new();
                    if !label_field.trim().is_empty() {
                        text.push_str(label_field.trim());
                        text.push(' ');
                    }
                    text.push_str(&body);
                    out.push((lineno, lineno, text));
                }
            }
        }
    }
    Ok(out)
}

/// Remove a `!` comment, respecting character literals.
fn strip_bang_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '\'' => in_str = !in_str,
            '!' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Tokenize the body of one logical line.
pub fn tokenize(text: &str, lineno: u32) -> Result<Vec<Token>> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let n = chars.len();
    let mut out = Vec::new();
    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        match c {
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                out.push(Token::Colon);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                if i + 1 < n && chars[i + 1] == '*' {
                    out.push(Token::Pow);
                    i += 2;
                } else {
                    out.push(Token::Star);
                    i += 1;
                }
            }
            '/' => {
                if i + 1 < n && chars[i + 1] == '/' {
                    out.push(Token::Concat);
                    i += 2;
                } else if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Slash);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::EqEq);
                    i += 2;
                } else {
                    out.push(Token::Assign);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (tok, next) = lex_string(&chars, i, lineno)?;
                out.push(tok);
                i = next;
            }
            '.' => {
                // Either a dotted operator (.lt., .and., ...) or a real like `.5`.
                if let Some((tok, next)) = lex_dotted_op(&chars, i) {
                    out.push(tok);
                    i = next;
                } else if i + 1 < n && chars[i + 1].is_ascii_digit() {
                    let (tok, next) = lex_number(&chars, i, lineno)?;
                    out.push(tok);
                    i = next;
                } else {
                    return Err(ParseError::at(lineno, format!("unexpected '.' in `{text}`")));
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(&chars, i, lineno)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect::<String>().to_ascii_lowercase();
                out.push(Token::Ident(word));
            }
            other => {
                return Err(ParseError::at(lineno, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

fn lex_string(chars: &[char], start: usize, lineno: u32) -> Result<(Token, usize)> {
    let mut i = start + 1;
    let n = chars.len();
    let mut s = String::new();
    while i < n {
        if chars[i] == '\'' {
            if i + 1 < n && chars[i + 1] == '\'' {
                s.push('\'');
                i += 2;
            } else {
                return Ok((Token::Str(s), i + 1));
            }
        } else {
            s.push(chars[i]);
            i += 1;
        }
    }
    Err(ParseError::at(lineno, "unterminated character literal"))
}

/// Recognize `.lt.`, `.le.`, `.gt.`, `.ge.`, `.eq.`, `.ne.`, `.and.`, `.or.`,
/// `.not.`, `.true.`, `.false.` (case-insensitive).
fn lex_dotted_op(chars: &[char], start: usize) -> Option<(Token, usize)> {
    let rest: String = chars[start..].iter().take(8).collect::<String>().to_ascii_lowercase();
    let table: [(&str, Token); 11] = [
        (".false.", Token::False),
        (".true.", Token::True),
        (".and.", Token::And),
        (".not.", Token::Not),
        (".or.", Token::Or),
        (".lt.", Token::Lt),
        (".le.", Token::Le),
        (".gt.", Token::Gt),
        (".ge.", Token::Ge),
        (".eq.", Token::EqEq),
        (".ne.", Token::Ne),
    ];
    for (pat, tok) in table {
        if rest.starts_with(pat) {
            return Some((tok, start + pat.len()));
        }
    }
    None
}

fn lex_number(chars: &[char], start: usize, lineno: u32) -> Result<(Token, usize)> {
    let n = chars.len();
    let mut i = start;
    let mut digits = String::new();
    while i < n && chars[i].is_ascii_digit() {
        digits.push(chars[i]);
        i += 1;
    }
    let mut is_real = false;
    let mut frac = String::new();
    if i < n && chars[i] == '.' {
        // Don't consume `.` if it begins a dotted operator (e.g. `1.eq.`).
        if lex_dotted_op(chars, i).is_none() {
            is_real = true;
            i += 1;
            while i < n && chars[i].is_ascii_digit() {
                frac.push(chars[i]);
                i += 1;
            }
        }
    }
    let mut exp = String::new();
    let mut double = false;
    if i < n && matches!(chars[i], 'e' | 'E' | 'd' | 'D') {
        let mut j = i + 1;
        let mut sign = String::new();
        if j < n && (chars[j] == '+' || chars[j] == '-') {
            sign.push(chars[j]);
            j += 1;
        }
        let mut ds = String::new();
        while j < n && chars[j].is_ascii_digit() {
            ds.push(chars[j]);
            j += 1;
        }
        if !ds.is_empty() {
            double = matches!(chars[i], 'd' | 'D');
            is_real = true;
            exp = format!("e{sign}{ds}");
            i = j;
        }
    }
    if is_real {
        let text = format!("{digits}.{frac}{exp}", frac = if frac.is_empty() { "0" } else { &frac });
        let value: f64 = text
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("bad real literal `{text}`")))?;
        Ok((Token::Real { value, double }, i))
    } else {
        let value: i64 = digits
            .parse()
            .map_err(|_| ParseError::at(lineno, format!("integer literal out of range `{digits}`")))?;
        Ok((Token::Int(value), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s, 1).unwrap()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("a = b + 1"),
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Ident("b".into()),
                Token::Plus,
                Token::Int(1)
            ]
        );
    }

    #[test]
    fn keywords_lowercased() {
        assert_eq!(toks("DO I")[0], Token::Ident("do".into()));
    }

    #[test]
    fn real_literals() {
        assert_eq!(toks("1.5"), vec![Token::Real { value: 1.5, double: false }]);
        assert_eq!(toks("2.5e2"), vec![Token::Real { value: 250.0, double: false }]);
        assert_eq!(toks("1d0"), vec![Token::Real { value: 1.0, double: true }]);
        assert_eq!(toks(".25"), vec![Token::Real { value: 0.25, double: false }]);
        assert_eq!(toks("3."), vec![Token::Real { value: 3.0, double: false }]);
    }

    #[test]
    fn dotted_ops() {
        assert_eq!(
            toks("a .lt. b .and. .not. c"),
            vec![
                Token::Ident("a".into()),
                Token::Lt,
                Token::Ident("b".into()),
                Token::And,
                Token::Not,
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn integer_dot_operator() {
        // `1 .eq. 2` written without spaces: `1.eq.2`
        assert_eq!(toks("1.eq.2"), vec![Token::Int(1), Token::EqEq, Token::Int(2)]);
    }

    #[test]
    fn modern_relationals() {
        assert_eq!(
            toks("a <= b /= c"),
            vec![Token::Ident("a".into()), Token::Le, Token::Ident("b".into()), Token::Ne, Token::Ident("c".into())]
        );
    }

    #[test]
    fn pow_vs_star() {
        assert_eq!(toks("a ** 2 * b").iter().filter(|t| **t == Token::Pow).count(), 1);
    }

    #[test]
    fn strings_with_escape() {
        assert_eq!(toks("'don''t'"), vec![Token::Str("don't".into())]);
    }

    #[test]
    fn free_form_scan_label_and_continuation() {
        let src = "x = 1 + &\n    2\n10 continue ! trailing comment\n! full comment\n";
        let lines = scan(src, SourceForm::Free).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].span, Span { first: 1, last: 2 });
        assert_eq!(lines[0].label, None);
        assert_eq!(lines[1].label, Some(10));
        assert!(lines[1].tokens[0].is_kw("continue"));
    }

    #[test]
    fn fixed_form_scan() {
        let src = "\
C     a comment
      DO 10 I = 1, N
      X(I) = X(I) + 1
     &     + 2
   10 CONTINUE
";
        let lines = scan(src, SourceForm::Fixed).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].tokens[0].is_kw("do"));
        assert_eq!(lines[1].span, Span { first: 3, last: 4 });
        assert_eq!(lines[2].label, Some(10));
    }

    #[test]
    fn bang_comment_inside_string_kept() {
        assert_eq!(toks("'a!b'"), vec![Token::Str("a!b".into())]);
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(tokenize("'oops", 3).is_err());
    }

    #[test]
    fn error_on_stray_char() {
        assert!(tokenize("a ? b", 1).is_err());
    }
}
