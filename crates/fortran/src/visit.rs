//! AST walkers shared by every analysis.
//!
//! Three families:
//!
//! * statement walkers over nested blocks (pre-order, matching source order);
//! * expression walkers (immutable and mutable) over one statement;
//! * variable-access collection: the flat list of reads/writes a statement
//!   performs, which is the raw material for def-use chains and dependence
//!   testing. Call-statement arguments are conservatively `ReadWrite` until
//!   interprocedural MOD/REF analysis refines them — exactly the "assume a
//!   dependence exists if it cannot prove otherwise" rule of the paper.

use crate::ast::*;
use crate::symbols::SymId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Visit every statement id in `block` and its nested blocks, pre-order.
pub fn for_each_stmt(unit: &ProgramUnit, block: &Block, f: &mut impl FnMut(StmtId)) {
    for &id in block {
        f(id);
        match &unit.stmt(id).kind {
            StmtKind::If { arms, else_block } => {
                for (_, b) in arms {
                    for_each_stmt(unit, b, f);
                }
                if let Some(b) = else_block {
                    for_each_stmt(unit, b, f);
                }
            }
            StmtKind::Do(d) => for_each_stmt(unit, &d.body, f),
            _ => {}
        }
    }
}

/// All statement ids in `block`, recursively, in pre-order.
pub fn stmts_recursive(unit: &ProgramUnit, block: &Block) -> Vec<StmtId> {
    let mut out = Vec::new();
    for_each_stmt(unit, block, &mut |id| out.push(id));
    out
}

/// Visit every expression of one statement (not descending into nested
/// statements). The left-hand side of an assignment is visited as an
/// expression too (its subscripts are expressions).
pub fn for_each_expr_of_stmt(kind: &StmtKind, f: &mut impl FnMut(&Expr)) {
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            if let LValue::ArrayElem(_, subs) = lhs {
                for s in subs {
                    walk_expr(s, f);
                }
            }
            walk_expr(rhs, f);
        }
        StmtKind::If { arms, .. } => {
            for (cond, _) in arms {
                walk_expr(cond, f);
            }
        }
        StmtKind::Do(d) => {
            walk_expr(&d.lo, f);
            walk_expr(&d.hi, f);
            if let Some(s) = &d.step {
                walk_expr(s, f);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        StmtKind::Print { items } => {
            for e in items {
                walk_expr(e, f);
            }
        }
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue | StmtKind::Removed => {}
    }
}

/// Pre-order walk of one expression tree.
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::ArrayRef { subs, .. } => {
            for s in subs {
                walk_expr(s, f);
            }
        }
        Expr::Bin { l, r, .. } => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        Expr::Un { e, .. } => walk_expr(e, f),
        Expr::Intrinsic { args, .. } | Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        _ => {}
    }
}

/// Mutable pre-order walk of one expression tree.
pub fn walk_expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::ArrayRef { subs, .. } => {
            for s in subs {
                walk_expr_mut(s, f);
            }
        }
        Expr::Bin { l, r, .. } => {
            walk_expr_mut(l, f);
            walk_expr_mut(r, f);
        }
        Expr::Un { e, .. } => walk_expr_mut(e, f),
        Expr::Intrinsic { args, .. } | Expr::Call { args, .. } => {
            for a in args {
                walk_expr_mut(a, f);
            }
        }
        _ => {}
    }
}

/// Visit each *root* expression of one statement mutably, without
/// descending into subexpressions — for rewrites (like substitution) that
/// manage their own recursion and must not re-visit replaced nodes.
pub fn for_each_root_expr_of_stmt_mut(kind: &mut StmtKind, f: &mut impl FnMut(&mut Expr)) {
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            if let LValue::ArrayElem(_, subs) = lhs {
                for s in subs {
                    f(s);
                }
            }
            f(rhs);
        }
        StmtKind::If { arms, .. } => {
            for (cond, _) in arms {
                f(cond);
            }
        }
        StmtKind::Do(d) => {
            f(&mut d.lo);
            f(&mut d.hi);
            if let Some(s) = &mut d.step {
                f(s);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                f(a);
            }
        }
        StmtKind::Print { items } => {
            for e in items {
                f(e);
            }
        }
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue | StmtKind::Removed => {}
    }
}

/// Visit every expression of one statement mutably.
pub fn for_each_expr_of_stmt_mut(kind: &mut StmtKind, f: &mut impl FnMut(&mut Expr)) {
    match kind {
        StmtKind::Assign { lhs, rhs } => {
            if let LValue::ArrayElem(_, subs) = lhs {
                for s in subs {
                    walk_expr_mut(s, f);
                }
            }
            walk_expr_mut(rhs, f);
        }
        StmtKind::If { arms, .. } => {
            for (cond, _) in arms {
                walk_expr_mut(cond, f);
            }
        }
        StmtKind::Do(d) => {
            walk_expr_mut(&mut d.lo, f);
            walk_expr_mut(&mut d.hi, f);
            if let Some(s) = &mut d.step {
                walk_expr_mut(s, f);
            }
        }
        StmtKind::Call { args, .. } => {
            for a in args {
                walk_expr_mut(a, f);
            }
        }
        StmtKind::Print { items } => {
            for e in items {
                walk_expr_mut(e, f);
            }
        }
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue | StmtKind::Removed => {}
    }
}

// ------------------------------------------------------------ accesses ----

/// How a statement touches a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Value is read.
    Read,
    /// Value is written.
    Write,
    /// Passed to a procedure that may read and/or write it (refined later by
    /// interprocedural MOD/REF analysis).
    CallArg,
}

impl AccessKind {
    /// Conservatively, may this access read the variable?
    pub fn may_read(self) -> bool {
        !matches!(self, AccessKind::Write)
    }

    /// Conservatively, may this access write the variable?
    pub fn may_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One variable access performed by a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Statement performing the access.
    pub stmt: StmtId,
    /// Variable accessed.
    pub sym: SymId,
    /// Subscripts if an array element; `None` for scalars and whole arrays.
    pub subs: Option<Vec<Expr>>,
    /// Read / write / call-argument.
    pub kind: AccessKind,
}

/// Collect accesses of a single statement (no recursion into nested blocks;
/// a DO statement contributes its index-variable write and bound reads, an
/// IF contributes its condition reads).
pub fn stmt_accesses(unit: &ProgramUnit, id: StmtId) -> Vec<Access> {
    let mut out = Vec::new();
    let st = unit.stmt(id);
    match &st.kind {
        StmtKind::Assign { lhs, rhs } => {
            match lhs {
                LValue::Var(s) => {
                    out.push(Access { stmt: id, sym: *s, subs: None, kind: AccessKind::Write })
                }
                LValue::ArrayElem(s, subs) => {
                    for e in subs {
                        collect_reads(id, e, &mut out);
                    }
                    out.push(Access {
                        stmt: id,
                        sym: *s,
                        subs: Some(subs.clone()),
                        kind: AccessKind::Write,
                    });
                }
            }
            collect_reads(id, rhs, &mut out);
        }
        StmtKind::If { arms, .. } => {
            for (cond, _) in arms {
                collect_reads(id, cond, &mut out);
            }
        }
        StmtKind::Do(d) => {
            collect_reads(id, &d.lo, &mut out);
            collect_reads(id, &d.hi, &mut out);
            if let Some(s) = &d.step {
                collect_reads(id, s, &mut out);
            }
            out.push(Access { stmt: id, sym: d.var, subs: None, kind: AccessKind::Write });
        }
        StmtKind::Call { args, .. } => {
            collect_call_args(id, args, &mut out);
        }
        StmtKind::Print { items } => {
            for e in items {
                collect_reads(id, e, &mut out);
            }
        }
        StmtKind::Return | StmtKind::Stop | StmtKind::Continue | StmtKind::Removed => {}
    }
    out
}

/// Collect read accesses from an expression; user-function arguments that
/// are bare variables or array elements become `CallArg`.
fn collect_reads(stmt: StmtId, e: &Expr, out: &mut Vec<Access>) {
    match e {
        Expr::Var(s) => {
            out.push(Access { stmt, sym: *s, subs: None, kind: AccessKind::Read })
        }
        Expr::ArrayRef { sym, subs } => {
            for s in subs {
                collect_reads(stmt, s, out);
            }
            out.push(Access { stmt, sym: *sym, subs: Some(subs.clone()), kind: AccessKind::Read });
        }
        Expr::Bin { l, r, .. } => {
            collect_reads(stmt, l, out);
            collect_reads(stmt, r, out);
        }
        Expr::Un { e, .. } => collect_reads(stmt, e, out),
        Expr::Intrinsic { args, .. } => {
            for a in args {
                collect_reads(stmt, a, out);
            }
        }
        Expr::Call { args, .. } => collect_call_args(stmt, args, out),
        _ => {}
    }
}

fn collect_call_args(stmt: StmtId, args: &[Expr], out: &mut Vec<Access>) {
    for a in args {
        match a {
            Expr::Var(s) => {
                out.push(Access { stmt, sym: *s, subs: None, kind: AccessKind::CallArg })
            }
            Expr::ArrayRef { sym, subs } => {
                for s in subs {
                    collect_reads(stmt, s, out);
                }
                out.push(Access {
                    stmt,
                    sym: *sym,
                    subs: Some(subs.clone()),
                    kind: AccessKind::CallArg,
                });
            }
            // An expression argument is passed by value-result of a
            // temporary: only a read of its operands.
            other => collect_reads(stmt, other, out),
        }
    }
}

// ----------------------------------------------------------- loop tree ----

/// One node of a unit's loop nesting tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNode {
    /// The DO statement.
    pub stmt: StmtId,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
    /// Enclosing loop, if any.
    pub parent: Option<StmtId>,
    /// Directly nested loops, in source order.
    pub children: Vec<StmtId>,
    /// Structural fingerprint of the nest rooted here; see
    /// [`loop_fingerprint`].
    pub fingerprint: u64,
}

/// The loop nesting forest of a unit, in pre-order.
pub fn loop_tree(unit: &ProgramUnit) -> Vec<LoopNode> {
    let mut out = Vec::new();
    collect_loops(unit, &unit.body, 1, None, &mut out);
    out
}

/// A stable structural fingerprint of the loop nest rooted at `header`:
/// the pre-order statement subtree (ids, full statement kinds — which
/// covers bounds, bodies, and parallel marks) plus the declaration of
/// every symbol the subtree references (name, type, dimensions, COMMON
/// membership, PARAMETER value). Two equal fingerprints mean the nest
/// contributes identical *intra-subtree* analysis input; everything a
/// dependence graph reads from outside the subtree (constants reaching
/// the header, liveness past the loop, control context) is deliberately
/// excluded and must be fingerprinted by the caller.
pub fn loop_fingerprint(unit: &ProgramUnit, header: StmtId) -> u64 {
    let mut h = DefaultHasher::new();
    let body = match &unit.stmt(header).kind {
        StmtKind::Do(d) => std::slice::from_ref(&header)
            .iter()
            .copied()
            .chain(stmts_recursive(unit, &d.body))
            .collect::<Vec<_>>(),
        // Not a loop header: fingerprint just the one statement.
        _ => vec![header],
    };
    let mut syms: Vec<SymId> = Vec::new();
    for &id in &body {
        let st = unit.stmt(id);
        id.0.hash(&mut h);
        st.label.hash(&mut h);
        format!("{:?}", st.kind).hash(&mut h);
        for acc in stmt_accesses(unit, id) {
            syms.push(acc.sym);
        }
    }
    syms.sort_unstable();
    syms.dedup();
    for s in syms {
        let sym = unit.symbols.sym(s);
        s.0.hash(&mut h);
        sym.name.hash(&mut h);
        format!("{sym:?}").hash(&mut h);
    }
    h.finish()
}

fn collect_loops(
    unit: &ProgramUnit,
    block: &Block,
    depth: usize,
    parent: Option<StmtId>,
    out: &mut Vec<LoopNode>,
) {
    for &id in block {
        match &unit.stmt(id).kind {
            StmtKind::Do(d) => {
                let my_index = out.len();
                out.push(LoopNode {
                    stmt: id,
                    depth,
                    parent,
                    children: Vec::new(),
                    fingerprint: loop_fingerprint(unit, id),
                });
                if let Some(p) = parent {
                    if let Some(pn) = out.iter_mut().find(|n| n.stmt == p) {
                        pn.children.push(id);
                    }
                }
                collect_loops(unit, &d.body, depth + 1, Some(id), out);
                let _ = my_index;
            }
            StmtKind::If { arms, else_block } => {
                for (_, b) in arms {
                    collect_loops(unit, b, depth, parent, out);
                }
                if let Some(b) = else_block {
                    collect_loops(unit, b, depth, parent, out);
                }
            }
            _ => {}
        }
    }
}

/// The loops enclosing `target` (outermost first), found by searching from
/// the unit body. Returns `None` if the statement is not in the body tree.
pub fn enclosing_loops(unit: &ProgramUnit, target: StmtId) -> Option<Vec<StmtId>> {
    fn search(
        unit: &ProgramUnit,
        block: &Block,
        target: StmtId,
        stack: &mut Vec<StmtId>,
    ) -> bool {
        for &id in block {
            if id == target {
                return true;
            }
            match &unit.stmt(id).kind {
                StmtKind::Do(d) => {
                    stack.push(id);
                    if search(unit, &d.body, target, stack) {
                        return true;
                    }
                    stack.pop();
                }
                StmtKind::If { arms, else_block } => {
                    for (_, b) in arms {
                        if search(unit, b, target, stack) {
                            return true;
                        }
                    }
                    if let Some(b) = else_block {
                        if search(unit, b, target, stack) {
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }
    let mut stack = Vec::new();
    if search(unit, &unit.body, target, &mut stack) {
        Some(stack)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sample() -> ProgramUnit {
        parse_program(
            "program t\nreal a(10,10), s\ndo i = 1, 10\ndo j = 1, 10\na(i,j) = a(i,j) + s\n\
             enddo\nenddo\nif (s .gt. 0.0) then\ns = 0.0\nendif\nend\n",
        )
        .unwrap()
        .units
        .remove(0)
    }

    #[test]
    fn stmt_walk_visits_all() {
        let u = sample();
        let ids = stmts_recursive(&u, &u.body);
        // do, do, assign, if, assign
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn loop_tree_shape() {
        let u = sample();
        let tree = loop_tree(&u);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].depth, 1);
        assert_eq!(tree[1].depth, 2);
        assert_eq!(tree[1].parent, Some(tree[0].stmt));
        assert_eq!(tree[0].children, vec![tree[1].stmt]);
    }

    #[test]
    fn accesses_of_assignment() {
        let u = sample();
        let assign = stmts_recursive(&u, &u.body)
            .into_iter()
            .find(|&id| matches!(u.stmt(id).kind, StmtKind::Assign { .. }))
            .unwrap();
        let acc = stmt_accesses(&u, assign);
        let a = u.symbols.lookup("a").unwrap();
        let writes: Vec<_> =
            acc.iter().filter(|x| x.kind == AccessKind::Write).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].sym, a);
        // reads: i, j (subscripts, twice), a(i,j), s
        assert!(acc.iter().any(|x| x.sym == a && x.kind == AccessKind::Read));
    }

    #[test]
    fn do_stmt_writes_index() {
        let u = sample();
        let outer = loop_tree(&u)[0].stmt;
        let acc = stmt_accesses(&u, outer);
        let i = u.symbols.lookup("i").unwrap();
        assert!(acc
            .iter()
            .any(|x| x.sym == i && x.kind == AccessKind::Write));
    }

    #[test]
    fn call_args_are_callargs() {
        let mut p = parse_program("program t\nreal x, y(5)\ncall f(x, y, x + 1.0)\nend\n").unwrap();
        let u = p.units.remove(0);
        let call = u.body[0];
        let acc = stmt_accesses(&u, call);
        let x = u.symbols.lookup("x").unwrap();
        let y = u.symbols.lookup("y").unwrap();
        assert!(acc.iter().any(|a| a.sym == x && a.kind == AccessKind::CallArg));
        assert!(acc.iter().any(|a| a.sym == y && a.kind == AccessKind::CallArg));
        // x + 1.0 argument is a plain read of x.
        assert!(acc.iter().any(|a| a.sym == x && a.kind == AccessKind::Read));
    }

    #[test]
    fn loop_fingerprint_is_stable_and_structural() {
        let u1 = sample();
        let u2 = sample();
        let t1 = loop_tree(&u1);
        let t2 = loop_tree(&u2);
        // Deterministic across parses of the same source.
        assert_eq!(t1[0].fingerprint, t2[0].fingerprint);
        assert_eq!(t1[1].fingerprint, t2[1].fingerprint);
        // Inner and outer nests hash differently.
        assert_ne!(t1[0].fingerprint, t1[1].fingerprint);
        assert_eq!(t1[0].fingerprint, loop_fingerprint(&u1, t1[0].stmt));
    }

    #[test]
    fn loop_fingerprint_sees_body_and_sibling_edits() {
        let two = |mid: &str| {
            parse_program(&format!(
                "program t\nreal a(10), b(10)\ndo i = 1, 10\na(i) = {mid}\nenddo\n\
                 do j = 1, 10\nb(j) = 0.0\nenddo\nend\n"
            ))
            .unwrap()
            .units
            .remove(0)
        };
        let base = two("1.0");
        let edited = two("2.0");
        let tb = loop_tree(&base);
        let te = loop_tree(&edited);
        // The edited nest changes its fingerprint...
        assert_ne!(tb[0].fingerprint, te[0].fingerprint);
        // ...the untouched sibling keeps its own.
        assert_eq!(tb[1].fingerprint, te[1].fingerprint);
    }

    #[test]
    fn enclosing_loops_found() {
        let u = sample();
        let tree = loop_tree(&u);
        let assign = stmts_recursive(&u, &u.body)
            .into_iter()
            .find(|&id| matches!(u.stmt(id).kind, StmtKind::Assign { .. }))
            .unwrap();
        let enc = enclosing_loops(&u, assign).unwrap();
        assert_eq!(enc, vec![tree[0].stmt, tree[1].stmt]);
    }
}
