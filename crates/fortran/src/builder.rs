//! Programmatic AST construction.
//!
//! The synthetic workload suite and the transformation unit tests build
//! programs directly rather than via source text. The builder keeps a block
//! stack so nested loops and IF arms read naturally:
//!
//! ```
//! use ped_fortran::builder::{UnitBuilder, ex};
//! let mut b = UnitBuilder::main("saxpy");
//! let n = b.param_int("n", 100);
//! let a = b.real_array("a", &[100]);
//! let x = b.real_scalar("x");
//! let i = b.int_scalar("i");
//! b.do_loop(i, ex::int(1), ex::var(n), |b| {
//!     b.assign(ex::elem(a, vec![ex::var(i)]), ex::mul(ex::var(x), ex::var(i)));
//! });
//! let unit = b.finish();
//! assert_eq!(unit.body.len(), 1);
//! ```

use crate::ast::*;
use crate::span::Span;
use crate::symbols::{ArrayDim, Const, SymId, Ty};

/// Expression construction helpers.
pub mod ex {
    use super::*;

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Real literal.
    pub fn real(v: f64) -> Expr {
        Expr::Real(v)
    }

    /// Variable reference.
    pub fn var(s: SymId) -> Expr {
        Expr::Var(s)
    }

    /// Array element expression.
    pub fn idx(sym: SymId, subs: Vec<Expr>) -> Expr {
        Expr::ArrayRef { sym, subs }
    }

    /// Array element l-value.
    pub fn elem(sym: SymId, subs: Vec<Expr>) -> LValue {
        LValue::ArrayElem(sym, subs)
    }

    /// Scalar l-value.
    pub fn lv(sym: SymId) -> LValue {
        LValue::Var(sym)
    }

    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Div, a, b)
    }

    /// `a ** b`
    pub fn pow(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Pow, a, b)
    }

    /// Relational comparison.
    pub fn cmp(op: BinOp, a: Expr, b: Expr) -> Expr {
        debug_assert!(op.is_relational());
        Expr::bin(op, a, b)
    }

    /// Intrinsic application.
    pub fn call(op: Intrinsic, args: Vec<Expr>) -> Expr {
        Expr::Intrinsic { op, args }
    }
}

/// Incremental builder for one program unit.
pub struct UnitBuilder {
    unit: ProgramUnit,
    /// Stack of open blocks; index 0 is the unit body.
    blocks: Vec<Block>,
}

impl UnitBuilder {
    /// Start a main program.
    pub fn main(name: &str) -> Self {
        UnitBuilder { unit: ProgramUnit::new(name, UnitKind::Main), blocks: vec![Vec::new()] }
    }

    /// Start a subroutine with the given dummy-argument names. Argument
    /// symbols are returned in order.
    pub fn subroutine(name: &str, args: &[&str]) -> (Self, Vec<SymId>) {
        let mut b = UnitBuilder {
            unit: ProgramUnit::new(name, UnitKind::Subroutine),
            blocks: vec![Vec::new()],
        };
        let ids = b.install_args(args);
        (b, ids)
    }

    /// Start a function of the given result type; returns the builder, the
    /// result symbol, and the argument symbols.
    pub fn function(name: &str, ty: Ty, args: &[&str]) -> (Self, SymId, Vec<SymId>) {
        let mut b = UnitBuilder {
            unit: ProgramUnit::new(name, UnitKind::Function(ty)),
            blocks: vec![Vec::new()],
        };
        let ret = b.unit.symbols.intern(name);
        b.unit.symbols.sym_mut(ret).ty = ty;
        b.unit.symbols.sym_mut(ret).declared = true;
        let ids = b.install_args(args);
        (b, ret, ids)
    }

    fn install_args(&mut self, args: &[&str]) -> Vec<SymId> {
        let mut ids = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let s = self.unit.symbols.intern(a);
            self.unit.symbols.sym_mut(s).arg_index = Some(i);
            self.unit.args.push(s);
            ids.push(s);
        }
        ids
    }

    /// Access to the unit under construction (e.g. to adjust symbols).
    pub fn unit_mut(&mut self) -> &mut ProgramUnit {
        &mut self.unit
    }

    // ------------------------------------------------------- symbols ----

    /// Declare an integer scalar.
    pub fn int_scalar(&mut self, name: &str) -> SymId {
        self.scalar(name, Ty::Integer)
    }

    /// Declare a real scalar.
    pub fn real_scalar(&mut self, name: &str) -> SymId {
        self.scalar(name, Ty::Real)
    }

    /// Declare a scalar of the given type.
    pub fn scalar(&mut self, name: &str, ty: Ty) -> SymId {
        let s = self.unit.symbols.intern(name);
        self.unit.symbols.sym_mut(s).ty = ty;
        self.unit.symbols.sym_mut(s).declared = true;
        s
    }

    /// Declare a real array with constant extents (lower bounds 1).
    pub fn real_array(&mut self, name: &str, dims: &[i64]) -> SymId {
        self.array(name, Ty::Real, dims)
    }

    /// Declare an integer array with constant extents.
    pub fn int_array(&mut self, name: &str, dims: &[i64]) -> SymId {
        self.array(name, Ty::Integer, dims)
    }

    /// Declare an array of the given type with constant extents.
    pub fn array(&mut self, name: &str, ty: Ty, dims: &[i64]) -> SymId {
        let s = self.scalar(name, ty);
        self.unit.symbols.sym_mut(s).dims =
            dims.iter().map(|&d| ArrayDim::upto(Expr::Int(d))).collect();
        s
    }

    /// Declare an array with symbolic extents.
    pub fn array_dims(&mut self, name: &str, ty: Ty, dims: Vec<ArrayDim>) -> SymId {
        let s = self.scalar(name, ty);
        self.unit.symbols.sym_mut(s).dims = dims;
        s
    }

    /// Declare an integer `PARAMETER` constant.
    pub fn param_int(&mut self, name: &str, v: i64) -> SymId {
        let s = self.scalar(name, Ty::Integer);
        self.unit.symbols.sym_mut(s).param = Some(Const::Int(v));
        s
    }

    /// Place symbols in a `COMMON` block.
    pub fn common(&mut self, block: &str, members: &[SymId]) {
        for (i, &m) in members.iter().enumerate() {
            self.unit.symbols.sym_mut(m).common = Some(crate::symbols::CommonLoc {
                block: block.to_ascii_lowercase(),
                index: i,
            });
        }
        self.unit.commons.push(CommonBlock {
            name: block.to_ascii_lowercase(),
            members: members.to_vec(),
        });
    }

    // ---------------------------------------------------- statements ----

    fn push(&mut self, kind: StmtKind) -> StmtId {
        let id = self.unit.alloc_stmt(kind, Span::synthetic());
        self.blocks.last_mut().expect("block stack never empty").push(id);
        id
    }

    /// `lhs = rhs`
    pub fn assign(&mut self, lhs: LValue, rhs: Expr) -> StmtId {
        self.push(StmtKind::Assign { lhs, rhs })
    }

    /// `DO var = lo, hi` with a body built by `f`.
    pub fn do_loop(
        &mut self,
        var: SymId,
        lo: Expr,
        hi: Expr,
        f: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.do_loop_step(var, lo, hi, None, f)
    }

    /// `DO var = lo, hi, step` with a body built by `f`.
    pub fn do_loop_step(
        &mut self,
        var: SymId,
        lo: Expr,
        hi: Expr,
        step: Option<Expr>,
        f: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.blocks.push(Vec::new());
        f(self);
        let body = self.blocks.pop().expect("pushed above");
        self.push(StmtKind::Do(DoLoop {
            var,
            lo,
            hi,
            step,
            body,
            term_label: None,
            parallel: None,
        }))
    }

    /// `IF (cond) THEN … ENDIF`.
    pub fn if_then(&mut self, cond: Expr, f: impl FnOnce(&mut Self)) -> StmtId {
        self.blocks.push(Vec::new());
        f(self);
        let block = self.blocks.pop().expect("pushed above");
        self.push(StmtKind::If { arms: vec![(cond, block)], else_block: None })
    }

    /// `IF (cond) THEN … ELSE … ENDIF`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) -> StmtId {
        self.blocks.push(Vec::new());
        then_f(self);
        let then_b = self.blocks.pop().expect("pushed above");
        self.blocks.push(Vec::new());
        else_f(self);
        let else_b = self.blocks.pop().expect("pushed above");
        self.push(StmtKind::If { arms: vec![(cond, then_b)], else_block: Some(else_b) })
    }

    /// `CALL name(args)`.
    pub fn call(&mut self, name: &str, args: Vec<Expr>) -> StmtId {
        self.push(StmtKind::Call { name: name.to_ascii_lowercase(), args })
    }

    /// `PRINT *, items`.
    pub fn print(&mut self, items: Vec<Expr>) -> StmtId {
        self.push(StmtKind::Print { items })
    }

    /// `RETURN`.
    pub fn ret(&mut self) -> StmtId {
        self.push(StmtKind::Return)
    }

    /// `CONTINUE`.
    pub fn cont(&mut self) -> StmtId {
        self.push(StmtKind::Continue)
    }

    /// Finish, returning the completed unit.
    pub fn finish(mut self) -> ProgramUnit {
        assert_eq!(self.blocks.len(), 1, "unclosed block in builder");
        self.unit.body = self.blocks.pop().expect("checked");
        self.unit
    }
}

/// Assemble a [`Program`] from units.
pub fn program(units: Vec<ProgramUnit>) -> Program {
    Program { units }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;

    #[test]
    fn built_program_prints_and_reparses() {
        let mut b = UnitBuilder::main("t");
        let n = b.param_int("n", 8);
        let a = b.real_array("a", &[8]);
        let i = b.int_scalar("i");
        b.do_loop(i, ex::int(1), ex::var(n), |b| {
            b.assign(ex::elem(a, vec![ex::var(i)]), ex::real(1.0));
        });
        let p = program(vec![b.finish()]);
        let s = print_program(&p);
        let p2 = crate::parser::parse_program(&s).expect("reparse");
        assert_eq!(print_program(&p2), s);
    }

    #[test]
    fn subroutine_args_in_order() {
        let (b, args) = UnitBuilder::subroutine("f", &["x", "n"]);
        let u = b.finish();
        assert_eq!(u.args, args);
        assert_eq!(u.symbols.sym(args[1]).arg_index, Some(1));
    }

    #[test]
    fn function_result_symbol() {
        let (mut b, ret, _) = UnitBuilder::function("g", Ty::Real, &["x"]);
        b.assign(ex::lv(ret), ex::real(0.0));
        let u = b.finish();
        assert_eq!(u.symbols.name(ret), "g");
        assert!(matches!(u.kind, UnitKind::Function(Ty::Real)));
    }

    #[test]
    #[should_panic(expected = "unclosed block")]
    fn unclosed_block_panics() {
        let mut b = UnitBuilder::main("t");
        b.blocks.push(Vec::new());
        let _ = b.finish();
    }

    #[test]
    fn if_else_builds_two_blocks() {
        let mut b = UnitBuilder::main("t");
        let x = b.real_scalar("x");
        b.if_else(
            ex::cmp(BinOp::Gt, ex::var(x), ex::real(0.0)),
            |b| {
                b.assign(ex::lv(x), ex::real(1.0));
            },
            |b| {
                b.assign(ex::lv(x), ex::real(2.0));
            },
        );
        let u = b.finish();
        match &u.stmt(u.body[0]).kind {
            StmtKind::If { arms, else_block } => {
                assert_eq!(arms.len(), 1);
                assert_eq!(arms[0].1.len(), 1);
                assert_eq!(else_block.as_ref().map(|b| b.len()), Some(1));
            }
            other => panic!("expected IF, got {other:?}"),
        }
    }
}
