//! # ped-fortran — the Fortran 77 front end for the ParaScope Editor reproduction
//!
//! The ParaScope Editor (Ped) operates on scientific Fortran programs. This
//! crate provides the substrate every other crate builds on:
//!
//! * a lexer and parser for a structured Fortran 77 subset ([`parse_program`]),
//!   accepting both fixed-form (column-6 continuation, `C` comments) and
//!   free-form (`&` continuation, `!` comments) sources;
//! * an arena-based AST ([`ast`]) with stable statement identifiers, which the
//!   editor core uses for incremental invalidation and the transformation
//!   catalog uses for in-place rewriting;
//! * per-unit symbol tables ([`symbols`]) with Fortran implicit typing,
//!   `COMMON` blocks, `PARAMETER` constants, and dummy arguments;
//! * a pretty printer ([`printer`]) whose output round-trips through the
//!   parser (checked by property tests);
//! * a programmatic builder ([`builder`]) used by the synthetic workload
//!   suite and by transformation unit tests;
//! * AST walkers ([`visit`]) shared by all analyses.
//!
//! ## Subset
//!
//! Structured Fortran 77: `PROGRAM`/`SUBROUTINE`/`FUNCTION` units, type
//! declarations, `DIMENSION`, `PARAMETER`, `COMMON`, `DO` loops (with
//! `ENDDO` or a labelled terminal statement), block and logical `IF`,
//! assignment, `CALL`, `RETURN`, `STOP`, `CONTINUE`, `PRINT *`, and the
//! parallel dialect `PARALLEL DO` with `PRIVATE`/`REDUCTION`/`LASTPRIVATE`
//! clauses (Ped's stand-in for IBM Parallel Fortran). Unstructured `GOTO`
//! is outside the subset — see DESIGN.md.
//!
//! Tokens must be blank-separated where ambiguous (we do not implement the
//! full "blanks are insignificant" fixed-form rule; none of the analyses
//! depend on it).

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod symbols;
pub mod token;
pub mod visit;

pub use ast::{
    BinOp, Block, DoLoop, Expr, Intrinsic, LValue, ParallelInfo, Program, ProgramUnit, RedOp,
    Stmt, StmtId, StmtKind, UnOp, UnitKind,
};
pub use error::{ParseError, Result};
pub use parser::parse_program;
pub use printer::print_program;
pub use span::{LineNo, Span};
pub use symbols::{SymId, Symbol, SymbolTable, Ty};

/// Parse a single source file into a [`Program`] and immediately pretty-print
/// it back; convenience used in tests to assert round-trip stability.
pub fn reprint(src: &str) -> Result<String> {
    Ok(print_program(&parse_program(src)?))
}
