//! Recursive-descent parser from logical lines to the AST.
//!
//! The grammar is statement-oriented: each logical line is classified by its
//! leading tokens, block constructs (`DO`, block `IF`) consume following
//! lines until their terminator. Declarations must precede executable
//! statements within a unit (standard Fortran 77 ordering).

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::{scan, LogicalLine, SourceForm};
use crate::span::Span;
use crate::symbols::{ArrayDim, CommonLoc, Const, Ty};
use crate::token::Token;

/// Parse free-form source (the canonical form; `!` comments, `&` continuation).
pub fn parse_program(src: &str) -> Result<Program> {
    parse_with_form(src, SourceForm::Free)
}

/// Parse classic fixed-form source (column-6 continuation, `C` comments).
pub fn parse_program_fixed(src: &str) -> Result<Program> {
    parse_with_form(src, SourceForm::Fixed)
}

/// Parse with an explicit source form.
pub fn parse_with_form(src: &str, form: SourceForm) -> Result<Program> {
    let lines = scan(src, form)?;
    let mut p = Parser { lines, pos: 0 };
    let mut program = Program::default();
    while !p.at_end() {
        program.units.push(p.parse_unit()?);
    }
    if program.units.is_empty() {
        return Err(ParseError::at(0, "empty program"));
    }
    Ok(program)
}

struct Parser {
    lines: Vec<LogicalLine>,
    pos: usize,
}

/// Cursor over one logical line's tokens.
struct Cur<'a> {
    toks: &'a [Token],
    pos: usize,
    line: u32,
}

impl<'a> Cur<'a> {
    fn new(l: &'a LogicalLine) -> Self {
        Cur { toks: &l.tokens, pos: 0, line: l.span.first }
    }

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(tok) if tok.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found {}", self.describe_here())))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err(format!("expected identifier, found {}", self.describe_here())))
            }
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{t}`"),
            None => "end of statement".to_string(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(self.line, msg.into())
    }

    fn done(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err(format!("trailing tokens starting at {}", self.describe_here())))
        }
    }
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.lines.len()
    }

    fn cur_line(&self) -> &LogicalLine {
        &self.lines[self.pos]
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn line_err(&self, msg: impl Into<String>) -> ParseError {
        let line = if self.at_end() {
            self.lines.last().map(|l| l.span.last).unwrap_or(0)
        } else {
            self.cur_line().span.first
        };
        ParseError::at(line, msg.into())
    }

    // ---------------------------------------------------------- units ----

    fn parse_unit(&mut self) -> Result<ProgramUnit> {
        let header = self.cur_line().clone();
        let mut c = Cur::new(&header);
        let mut unit;
        if c.eat_kw("program") {
            let name = c.expect_ident()?;
            c.done()?;
            self.advance();
            unit = ProgramUnit::new(&name, UnitKind::Main);
        } else if c.eat_kw("subroutine") {
            let name = c.expect_ident()?;
            let args = parse_arg_names(&mut c)?;
            c.done()?;
            self.advance();
            unit = ProgramUnit::new(&name, UnitKind::Subroutine);
            install_args(&mut unit, &args);
        } else if let Some((ty, consumed)) = peek_function_header(&mut c)? {
            let name = c.expect_ident()?;
            let args = parse_arg_names(&mut c)?;
            c.done()?;
            self.advance();
            let ty = ty.unwrap_or_else(|| Ty::implicit_for(&name));
            unit = ProgramUnit::new(&name, UnitKind::Function(ty));
            // The function name acts as the result variable.
            let ret = unit.symbols.intern(&name);
            unit.symbols.sym_mut(ret).ty = ty;
            unit.symbols.sym_mut(ret).declared = true;
            install_args(&mut unit, &args);
            debug_assert!(consumed > 0);
        } else {
            // Implicit main program without a PROGRAM line.
            unit = ProgramUnit::new("main", UnitKind::Main);
        }

        // Declarations, then executable statements, until END.
        self.parse_declarations(&mut unit)?;
        let mut body = Vec::new();
        loop {
            if self.at_end() {
                return Err(self.line_err("missing END at end of unit"));
            }
            if is_unit_end(self.cur_line()) {
                self.advance();
                break;
            }
            let id = self.parse_stmt(&mut unit)?;
            body.push(id);
        }
        unit.body = body;
        Ok(unit)
    }

    fn parse_declarations(&mut self, unit: &mut ProgramUnit) -> Result<()> {
        loop {
            if self.at_end() {
                return Ok(());
            }
            let line = self.cur_line().clone();
            let mut c = Cur::new(&line);
            let first = match c.peek() {
                Some(Token::Ident(s)) => s.clone(),
                _ => return Ok(()),
            };
            match first.as_str() {
                "integer" | "real" | "logical" => {
                    c.next();
                    let mut ty = match first.as_str() {
                        "integer" => Ty::Integer,
                        "real" => Ty::Real,
                        _ => Ty::Logical,
                    };
                    // `real*8` spelling.
                    if c.eat(&Token::Star) {
                        if let Some(Token::Int(8)) = c.peek() {
                            if ty == Ty::Real {
                                ty = Ty::Double;
                            }
                        }
                        c.next();
                    }
                    // Could actually be a typed FUNCTION header handled in
                    // parse_unit; here it must be a declaration list.
                    self.parse_decl_list(unit, &mut c, ty)?;
                    self.advance();
                }
                "double" => {
                    c.next();
                    if !c.eat_kw("precision") {
                        return Err(c.err("expected PRECISION after DOUBLE"));
                    }
                    self.parse_decl_list(unit, &mut c, Ty::Double)?;
                    self.advance();
                }
                "dimension" => {
                    c.next();
                    loop {
                        let name = c.expect_ident()?;
                        let sym = unit.symbols.intern(&name);
                        let dims = parse_dims(unit, &mut c)?;
                        if dims.is_empty() {
                            return Err(c.err(format!("DIMENSION {name} lacks bounds")));
                        }
                        unit.symbols.sym_mut(sym).dims = dims;
                        if !c.eat(&Token::Comma) {
                            break;
                        }
                    }
                    c.done()?;
                    self.advance();
                }
                "parameter" => {
                    c.next();
                    c.expect(&Token::LParen)?;
                    loop {
                        let name = c.expect_ident()?;
                        c.expect(&Token::Assign)?;
                        let e = parse_expr(unit, &mut c)?;
                        let value = fold_const(unit, &e).ok_or_else(|| {
                            c.err(format!("PARAMETER {name} is not a constant expression"))
                        })?;
                        let sym = unit.symbols.intern(&name);
                        unit.symbols.sym_mut(sym).param = Some(value);
                        unit.symbols.sym_mut(sym).declared = true;
                        if let Const::Real(_) = value {
                            if unit.symbols.sym(sym).ty == Ty::Integer
                                && !matches!(value, Const::Int(_))
                            {
                                return Err(c.err(format!("real PARAMETER for integer {name}")));
                            }
                        }
                        if !c.eat(&Token::Comma) {
                            break;
                        }
                    }
                    c.expect(&Token::RParen)?;
                    c.done()?;
                    self.advance();
                }
                "common" => {
                    c.next();
                    while !c.at_end() {
                        let block = if c.eat(&Token::Slash) {
                            let name = c.expect_ident()?;
                            c.expect(&Token::Slash)?;
                            name
                        } else {
                            // `//` introduces blank common; consume if present.
                            c.eat(&Token::Concat);
                            String::new()
                        };
                        let mut members = Vec::new();
                        loop {
                            let name = c.expect_ident()?;
                            let sym = unit.symbols.intern(&name);
                            let dims = parse_dims(unit, &mut c)?;
                            if !dims.is_empty() {
                                unit.symbols.sym_mut(sym).dims = dims;
                            }
                            members.push(sym);
                            if !c.eat(&Token::Comma) {
                                break;
                            }
                            // A `/` after a comma starts the next block.
                            if matches!(c.peek(), Some(Token::Slash) | Some(Token::Concat)) {
                                break;
                            }
                        }
                        for (i, &m) in members.iter().enumerate() {
                            unit.symbols.sym_mut(m).common =
                                Some(CommonLoc { block: block.clone(), index: i });
                        }
                        let existing =
                            unit.commons.iter_mut().find(|b| b.name == block.to_ascii_lowercase());
                        match existing {
                            Some(b) => b.members.extend(members),
                            None => unit.commons.push(CommonBlock {
                                name: block.to_ascii_lowercase(),
                                members,
                            }),
                        }
                    }
                    self.advance();
                }
                "implicit" => {
                    // `implicit none` accepted and ignored (we always track
                    // declaredness; analyses don't depend on it).
                    self.advance();
                }
                _ => return Ok(()),
            }
        }
    }

    fn parse_decl_list(&mut self, unit: &mut ProgramUnit, c: &mut Cur, ty: Ty) -> Result<()> {
        loop {
            let name = c.expect_ident()?;
            let sym = unit.symbols.intern(&name);
            unit.symbols.sym_mut(sym).ty = ty;
            unit.symbols.sym_mut(sym).declared = true;
            let dims = parse_dims(unit, c)?;
            if !dims.is_empty() {
                unit.symbols.sym_mut(sym).dims = dims;
            }
            if !c.eat(&Token::Comma) {
                break;
            }
        }
        c.done()
    }

    // ----------------------------------------------------- statements ----

    /// Parse one executable statement (consuming following lines for block
    /// constructs) and return its arena id.
    fn parse_stmt(&mut self, unit: &mut ProgramUnit) -> Result<StmtId> {
        let line = self.cur_line().clone();
        let label = line.label;
        let span = line.span;
        let mut c = Cur::new(&line);
        let id = self.parse_stmt_from_cursor(unit, &mut c, span)?;
        unit.stmt_mut(id).label = label;
        Ok(id)
    }

    /// Parse a statement from a cursor positioned at its first token. The
    /// cursor may be mid-line (logical IF bodies). Consumes `self.lines` for
    /// block constructs; the caller must have NOT advanced past the current
    /// line — this function advances as needed.
    fn parse_stmt_from_cursor(
        &mut self,
        unit: &mut ProgramUnit,
        c: &mut Cur,
        span: Span,
    ) -> Result<StmtId> {
        let first = match c.peek() {
            Some(Token::Ident(s)) => s.clone(),
            _ => return Err(c.err(format!("expected a statement, found {}", c.describe_here()))),
        };
        match first.as_str() {
            "do" if is_do_header(c) => self.parse_do(unit, c, span, None),
            "parallel" if matches!(c.peek_at(1), Some(t) if t.is_kw("do")) => {
                c.next();
                self.parse_do(unit, c, span, Some(ParallelInfo::default()))
            }
            "if" => self.parse_if(unit, c, span),
            "call" => {
                c.next();
                let name = c.expect_ident()?;
                let args = if c.eat(&Token::LParen) {
                    let a = parse_expr_list(unit, c, &Token::RParen)?;
                    c.expect(&Token::RParen)?;
                    a
                } else {
                    Vec::new()
                };
                c.done()?;
                self.advance();
                Ok(unit.alloc_stmt(StmtKind::Call { name, args }, span))
            }
            "return" => {
                c.next();
                c.done()?;
                self.advance();
                Ok(unit.alloc_stmt(StmtKind::Return, span))
            }
            "stop" => {
                c.next();
                // Optional stop code ignored semantically but must parse.
                if !c.at_end() {
                    c.next();
                }
                c.done()?;
                self.advance();
                Ok(unit.alloc_stmt(StmtKind::Stop, span))
            }
            "continue" => {
                c.next();
                c.done()?;
                self.advance();
                Ok(unit.alloc_stmt(StmtKind::Continue, span))
            }
            "print" => {
                c.next();
                c.expect(&Token::Star)?;
                let items = if c.eat(&Token::Comma) {
                    parse_expr_list_to_end(unit, c)?
                } else {
                    Vec::new()
                };
                c.done()?;
                self.advance();
                Ok(unit.alloc_stmt(StmtKind::Print { items }, span))
            }
            _ => {
                // Assignment.
                let name = c.expect_ident()?;
                let sym = unit.symbols.intern(&name);
                let lhs = if c.eat(&Token::LParen) {
                    let subs = parse_expr_list(unit, c, &Token::RParen)?;
                    c.expect(&Token::RParen)?;
                    LValue::ArrayElem(sym, subs)
                } else {
                    LValue::Var(sym)
                };
                c.expect(&Token::Assign)?;
                let rhs = parse_expr(unit, c)?;
                c.done()?;
                self.advance();
                Ok(unit.alloc_stmt(StmtKind::Assign { lhs, rhs }, span))
            }
        }
    }

    /// Parse `DO [label] var = lo, hi [, step]` plus clauses, then the body.
    /// The cursor sits at the `do` keyword.
    fn parse_do(
        &mut self,
        unit: &mut ProgramUnit,
        c: &mut Cur,
        span: Span,
        mut parallel: Option<ParallelInfo>,
    ) -> Result<StmtId> {
        c.next(); // `do`
        let term_label = match c.peek() {
            Some(Token::Int(v)) => {
                let v = *v as u32;
                c.next();
                Some(v)
            }
            _ => None,
        };
        let var_name = c.expect_ident()?;
        let var = unit.symbols.intern(&var_name);
        c.expect(&Token::Assign)?;
        let lo = parse_expr(unit, c)?;
        c.expect(&Token::Comma)?;
        let hi = parse_expr(unit, c)?;
        let step =
            if c.eat(&Token::Comma) { Some(parse_expr(unit, c)?) } else { None };
        // PARALLEL DO clauses.
        if let Some(info) = parallel.as_mut() {
            loop {
                if c.eat_kw("private") {
                    c.expect(&Token::LParen)?;
                    loop {
                        let n = c.expect_ident()?;
                        info.private.push(unit.symbols.intern(&n));
                        if !c.eat(&Token::Comma) {
                            break;
                        }
                    }
                    c.expect(&Token::RParen)?;
                } else if c.eat_kw("lastprivate") {
                    c.expect(&Token::LParen)?;
                    loop {
                        let n = c.expect_ident()?;
                        info.lastprivate.push(unit.symbols.intern(&n));
                        if !c.eat(&Token::Comma) {
                            break;
                        }
                    }
                    c.expect(&Token::RParen)?;
                } else if c.eat_kw("reduction") {
                    c.expect(&Token::LParen)?;
                    let op = match c.next() {
                        Some(Token::Plus) => RedOp::Sum,
                        Some(Token::Star) => RedOp::Product,
                        Some(Token::Ident(s)) if s == "min" => RedOp::Min,
                        Some(Token::Ident(s)) if s == "max" => RedOp::Max,
                        _ => return Err(c.err("expected +, *, MIN or MAX in REDUCTION")),
                    };
                    c.expect(&Token::Colon)?;
                    loop {
                        let n = c.expect_ident()?;
                        info.reductions.push((op, unit.symbols.intern(&n)));
                        if !c.eat(&Token::Comma) {
                            break;
                        }
                    }
                    c.expect(&Token::RParen)?;
                } else {
                    break;
                }
            }
        }
        c.done()?;
        self.advance();

        // Body: until ENDDO, or until the statement labelled `term_label`.
        let mut body = Vec::new();
        loop {
            if self.at_end() {
                return Err(self.line_err("unterminated DO loop"));
            }
            let line = self.cur_line();
            if let Some(tl) = term_label {
                if line.label == Some(tl) {
                    // The labelled terminal statement belongs to the body.
                    let id = self.parse_stmt(unit)?;
                    body.push(id);
                    break;
                }
            } else if is_enddo(line) {
                self.advance();
                break;
            }
            if is_unit_end(line) {
                return Err(self.line_err("unterminated DO loop (found END)"));
            }
            body.push(self.parse_stmt(unit)?);
        }
        Ok(unit.alloc_stmt(
            StmtKind::Do(DoLoop { var, lo, hi, step, body, term_label, parallel }),
            span,
        ))
    }

    /// Parse block IF / logical IF. Cursor sits at `if`.
    fn parse_if(&mut self, unit: &mut ProgramUnit, c: &mut Cur, span: Span) -> Result<StmtId> {
        c.next(); // `if`
        c.expect(&Token::LParen)?;
        let cond = parse_expr(unit, c)?;
        c.expect(&Token::RParen)?;
        if c.eat_kw("then") {
            c.done()?;
            self.advance();
            // Block IF.
            let mut arms: Vec<(Expr, Block)> = vec![(cond, Vec::new())];
            let mut else_block: Option<Block> = None;
            loop {
                if self.at_end() {
                    return Err(self.line_err("unterminated IF block"));
                }
                let line = self.cur_line().clone();
                if is_endif(&line) {
                    self.advance();
                    break;
                }
                if let Some(else_cond) = parse_else_header(unit, &line)? {
                    self.advance();
                    match else_cond {
                        Some(cond2) => arms.push((cond2, Vec::new())),
                        None => {
                            if else_block.is_some() {
                                return Err(self.line_err("duplicate ELSE"));
                            }
                            else_block = Some(Vec::new());
                        }
                    }
                    continue;
                }
                if is_unit_end(&line) {
                    return Err(self.line_err("unterminated IF block (found END)"));
                }
                let id = self.parse_stmt(unit)?;
                match &mut else_block {
                    Some(b) => b.push(id),
                    None => arms.last_mut().expect("at least one arm").1.push(id),
                }
            }
            Ok(unit.alloc_stmt(StmtKind::If { arms, else_block }, span))
        } else {
            // Logical IF: the rest of the line is a single statement.
            // parse_stmt_from_cursor advances self.pos, which is what we want
            // since the inner statement is on this same line.
            let inner = self.parse_stmt_from_cursor(unit, c, span)?;
            Ok(unit.alloc_stmt(
                StmtKind::If { arms: vec![(cond, vec![inner])], else_block: None },
                span,
            ))
        }
    }
}

// ------------------------------------------------------------- helpers ----

fn install_args(unit: &mut ProgramUnit, args: &[String]) {
    for (i, a) in args.iter().enumerate() {
        let sym = unit.symbols.intern(a);
        unit.symbols.sym_mut(sym).arg_index = Some(i);
        unit.args.push(sym);
    }
}

fn parse_arg_names(c: &mut Cur) -> Result<Vec<String>> {
    let mut args = Vec::new();
    if c.eat(&Token::LParen) && !c.eat(&Token::RParen) {
        loop {
            args.push(c.expect_ident()?);
            if !c.eat(&Token::Comma) {
                break;
            }
        }
        c.expect(&Token::RParen)?;
    }
    Ok(args)
}

/// Detect `[type] function name(...)` headers; returns declared type (None
/// for untyped `FUNCTION`) and tokens consumed, leaving the cursor at the
/// function name. Returns Ok(None) if this is not a function header.
fn peek_function_header(c: &mut Cur) -> Result<Option<(Option<Ty>, usize)>> {
    let start = c.pos;
    let ty = match c.peek() {
        Some(t) if t.is_kw("function") => {
            c.next();
            None
        }
        Some(t) if t.is_kw("integer") || t.is_kw("real") || t.is_kw("logical") => {
            let ty = if t.is_kw("integer") {
                Ty::Integer
            } else if t.is_kw("real") {
                Ty::Real
            } else {
                Ty::Logical
            };
            if matches!(c.peek_at(1), Some(t2) if t2.is_kw("function")) {
                c.next();
                c.next();
                Some(ty)
            } else {
                return Ok(None);
            }
        }
        Some(t)
            if t.is_kw("double")
                && matches!(c.peek_at(1), Some(t2) if t2.is_kw("precision"))
                && matches!(c.peek_at(2), Some(t3) if t3.is_kw("function")) =>
        {
            c.next();
            c.next();
            c.next();
            Some(Ty::Double)
        }
        _ => return Ok(None),
    };
    Ok(Some((ty, c.pos - start)))
}

/// `DO` header check: distinguishes `do i = 1, n` from an assignment to a
/// variable named `do` (never occurs in practice, but keep parsing honest).
fn is_do_header(c: &Cur) -> bool {
    match c.peek_at(1) {
        Some(Token::Assign) => false,
        Some(Token::LParen) => false, // do(i) = …  array named do
        _ => true,
    }
}

fn is_unit_end(line: &LogicalLine) -> bool {
    line.tokens.len() == 1 && line.tokens[0].is_kw("end")
}

fn is_enddo(line: &LogicalLine) -> bool {
    match line.tokens.as_slice() {
        [t] if t.is_kw("enddo") => true,
        [a, b] if a.is_kw("end") && b.is_kw("do") => true,
        _ => false,
    }
}

fn is_endif(line: &LogicalLine) -> bool {
    match line.tokens.as_slice() {
        [t] if t.is_kw("endif") => true,
        [a, b] if a.is_kw("end") && b.is_kw("if") => true,
        _ => false,
    }
}

/// Recognize `ELSE`, `ELSEIF (c) THEN`, `ELSE IF (c) THEN` headers.
/// Returns `Some(Some(cond))` for else-if, `Some(None)` for plain else.
fn parse_else_header(unit: &mut ProgramUnit, line: &LogicalLine) -> Result<Option<Option<Expr>>> {
    let mut c = Cur::new(line);
    if c.eat_kw("elseif") || (c.eat_kw("else") && c.eat_kw("if")) {
        c.expect(&Token::LParen)?;
        let cond = parse_expr(unit, &mut c)?;
        c.expect(&Token::RParen)?;
        if !c.eat_kw("then") {
            return Err(c.err("expected THEN after ELSE IF (…)"));
        }
        c.done()?;
        return Ok(Some(Some(cond)));
    }
    // `c` may have consumed `else` above when not followed by `if`.
    let mut c = Cur::new(line);
    if c.eat_kw("else") && c.at_end() {
        return Ok(Some(None));
    }
    Ok(None)
}

/// Parse array declarator dims `(d, d, …)`; empty vec if no paren follows.
fn parse_dims(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Vec<ArrayDim>> {
    let mut dims = Vec::new();
    if c.eat(&Token::LParen) {
        loop {
            if c.eat(&Token::Star) {
                dims.push(ArrayDim { lo: Expr::Int(1), hi: None });
            } else {
                let first = parse_expr(unit, c)?;
                if c.eat(&Token::Colon) {
                    if c.eat(&Token::Star) {
                        dims.push(ArrayDim { lo: first, hi: None });
                    } else {
                        let hi = parse_expr(unit, c)?;
                        dims.push(ArrayDim { lo: first, hi: Some(hi) });
                    }
                } else {
                    dims.push(ArrayDim::upto(first));
                }
            }
            if !c.eat(&Token::Comma) {
                break;
            }
        }
        c.expect(&Token::RParen)?;
    }
    Ok(dims)
}

// ---------------------------------------------------------- expressions ----

/// Parse a comma-separated expression list, stopping before `end_tok`.
fn parse_expr_list(unit: &mut ProgramUnit, c: &mut Cur, end_tok: &Token) -> Result<Vec<Expr>> {
    let mut out = Vec::new();
    if c.peek() == Some(end_tok) {
        return Ok(out);
    }
    loop {
        out.push(parse_expr(unit, c)?);
        if !c.eat(&Token::Comma) {
            break;
        }
    }
    Ok(out)
}

fn parse_expr_list_to_end(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Vec<Expr>> {
    let mut out = Vec::new();
    loop {
        out.push(parse_expr(unit, c)?);
        if !c.eat(&Token::Comma) {
            break;
        }
    }
    Ok(out)
}

/// Full expression grammar entry point (lowest precedence: `.OR.`).
fn parse_expr(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    parse_or(unit, c)
}

fn parse_or(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    let mut l = parse_and(unit, c)?;
    while c.eat(&Token::Or) {
        let r = parse_and(unit, c)?;
        l = Expr::bin(BinOp::Or, l, r);
    }
    Ok(l)
}

fn parse_and(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    let mut l = parse_not(unit, c)?;
    while c.eat(&Token::And) {
        let r = parse_not(unit, c)?;
        l = Expr::bin(BinOp::And, l, r);
    }
    Ok(l)
}

fn parse_not(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    if c.eat(&Token::Not) {
        let e = parse_not(unit, c)?;
        Ok(Expr::Un { op: UnOp::Not, e: Box::new(e) })
    } else {
        parse_rel(unit, c)
    }
}

fn parse_rel(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    let l = parse_arith(unit, c)?;
    let op = match c.peek() {
        Some(Token::Lt) => Some(BinOp::Lt),
        Some(Token::Le) => Some(BinOp::Le),
        Some(Token::Gt) => Some(BinOp::Gt),
        Some(Token::Ge) => Some(BinOp::Ge),
        Some(Token::EqEq) => Some(BinOp::Eq),
        Some(Token::Ne) => Some(BinOp::Ne),
        _ => None,
    };
    match op {
        Some(op) => {
            c.next();
            let r = parse_arith(unit, c)?;
            Ok(Expr::bin(op, l, r))
        }
        None => Ok(l),
    }
}

fn parse_arith(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    // Leading unary +/-.
    let mut l = if c.eat(&Token::Minus) {
        Expr::neg(parse_term(unit, c)?)
    } else {
        let _ = c.eat(&Token::Plus);
        parse_term(unit, c)?
    };
    loop {
        if c.eat(&Token::Plus) {
            let r = parse_term(unit, c)?;
            l = Expr::bin(BinOp::Add, l, r);
        } else if c.eat(&Token::Minus) {
            let r = parse_term(unit, c)?;
            l = Expr::bin(BinOp::Sub, l, r);
        } else if c.eat(&Token::Concat) {
            let r = parse_term(unit, c)?;
            l = Expr::bin(BinOp::Concat, l, r);
        } else {
            return Ok(l);
        }
    }
}

fn parse_term(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    let mut l = parse_factor(unit, c)?;
    loop {
        if c.eat(&Token::Star) {
            let r = parse_factor(unit, c)?;
            l = Expr::bin(BinOp::Mul, l, r);
        } else if c.eat(&Token::Slash) {
            let r = parse_factor(unit, c)?;
            l = Expr::bin(BinOp::Div, l, r);
        } else {
            return Ok(l);
        }
    }
}

fn parse_factor(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    let base = parse_primary(unit, c)?;
    if c.eat(&Token::Pow) {
        // `**` is right-associative; unary minus binds looser: -a**2 = -(a**2).
        let exp = if c.eat(&Token::Minus) {
            Expr::neg(parse_factor(unit, c)?)
        } else {
            parse_factor(unit, c)?
        };
        Ok(Expr::bin(BinOp::Pow, base, exp))
    } else {
        Ok(base)
    }
}

fn parse_primary(unit: &mut ProgramUnit, c: &mut Cur) -> Result<Expr> {
    match c.next().cloned() {
        Some(Token::Int(v)) => Ok(Expr::Int(v)),
        Some(Token::Real { value, double }) => {
            Ok(if double { Expr::Double(value) } else { Expr::Real(value) })
        }
        Some(Token::True) => Ok(Expr::Logical(true)),
        Some(Token::False) => Ok(Expr::Logical(false)),
        Some(Token::Str(s)) => Ok(Expr::Str(s)),
        Some(Token::LParen) => {
            let e = parse_expr(unit, c)?;
            c.expect(&Token::RParen)?;
            Ok(e)
        }
        Some(Token::Minus) => Ok(Expr::neg(parse_factor(unit, c)?)),
        Some(Token::Ident(name)) => {
            if c.eat(&Token::LParen) {
                let args = parse_expr_list(unit, c, &Token::RParen)?;
                c.expect(&Token::RParen)?;
                // Declared array → element reference; intrinsic → intrinsic
                // call; otherwise a user function reference.
                if let Some(sym) = unit.symbols.lookup(&name) {
                    if unit.symbols.sym(sym).is_array() {
                        return Ok(Expr::ArrayRef { sym, subs: args });
                    }
                }
                if let Some(op) = Intrinsic::from_name(&name) {
                    return Ok(Expr::Intrinsic { op, args });
                }
                Ok(Expr::Call { name, args })
            } else {
                Ok(Expr::Var(unit.symbols.intern(&name)))
            }
        }
        other => {
            let what = match other {
                Some(t) => format!("`{t}`"),
                None => "end of statement".into(),
            };
            Err(c.err(format!("expected expression, found {what}")))
        }
    }
}

/// Fold a constant expression to a value (used for PARAMETER).
fn fold_const(unit: &ProgramUnit, e: &Expr) -> Option<Const> {
    match e {
        Expr::Int(v) => Some(Const::Int(*v)),
        Expr::Real(v) | Expr::Double(v) => Some(Const::Real(*v)),
        Expr::Logical(b) => Some(Const::Logical(*b)),
        Expr::Var(s) => unit.symbols.sym(*s).param,
        Expr::Un { op: UnOp::Neg, e } => match fold_const(unit, e)? {
            Const::Int(v) => Some(Const::Int(-v)),
            Const::Real(v) => Some(Const::Real(-v)),
            Const::Logical(_) => None,
        },
        Expr::Bin { op, l, r } => {
            let l = fold_const(unit, l)?;
            let r = fold_const(unit, r)?;
            match (l, r) {
                (Const::Int(a), Const::Int(b)) => Some(Const::Int(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Pow => a.checked_pow(u32::try_from(b).ok()?)?,
                    _ => return None,
                })),
                (Const::Real(a), Const::Real(b)) => Some(Const::Real(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                    _ => return None,
                })),
                (Const::Real(a), Const::Int(b)) => Some(Const::Real(match op {
                    BinOp::Add => a + b as f64,
                    BinOp::Sub => a - b as f64,
                    BinOp::Mul => a * b as f64,
                    BinOp::Div => a / b as f64,
                    BinOp::Pow => a.powi(b as i32),
                    _ => return None,
                })),
                (Const::Int(a), Const::Real(b)) => Some(Const::Real(match op {
                    BinOp::Add => a as f64 + b,
                    BinOp::Sub => a as f64 - b,
                    BinOp::Mul => a as f64 * b,
                    BinOp::Div => a as f64 / b,
                    BinOp::Pow => (a as f64).powf(b),
                    _ => return None,
                })),
                _ => None,
            }
        }
        _ => None,
    }
}
