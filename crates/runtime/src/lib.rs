//! # ped-runtime — the execution substrate
//!
//! The paper's users ran their parallelized codes on an 8-processor
//! Alliant FX/8 or a Cray Y-MP; our stand-in is an interpreter for the
//! `ped-fortran` subset with three execution modes:
//!
//! * **serial** — reference semantics, with loop-level profiling (the role
//!   gprof / Forge loop profiles played for the workshop users) and a
//!   virtual-time cost model;
//! * **simulated parallel** — deterministic: `PARALLEL DO` loops execute
//!   sequentially but are *charged* as a P-processor static schedule
//!   (fork + max-chunk + barrier), so speedup curves and crossover points
//!   are stable across host machines — this mode regenerates the paper's
//!   performance shapes;
//! * **real parallel** — `PARALLEL DO` iterations actually run on a
//!   persistent pool of host threads (see [`pool`]) built once per run and
//!   reused by every parallel loop: per-worker deques with chunk-level
//!   work stealing, selectable schedules (static / dynamic / guided), and
//!   deterministic merges that keep threaded output bit-identical to
//!   serial execution, with private/reduction/lastprivate semantics. All
//!   storage cells are relaxed atomics, so concurrent element access is
//!   data-race-free by construction; *correctness* of a parallelization is
//!   still the analysis' job, which is why the
//!   [`racedetect`](interp::ExecConfig::detect_races) mode exists: it
//!   re-runs a parallel loop sequentially while recording per-iteration
//!   access sets and reports genuine cross-iteration conflicts — the
//!   "run-time dependence testing" the paper's related work points to, and
//!   the safety net for user-deleted dependences.

pub mod bytecode;
pub mod interp;
pub mod machine;
pub mod memory;
pub mod pool;
pub mod shadow;
pub mod value;

pub use interp::{Engine, ExecConfig, Interp, MemorySnapshot, ParallelMode, RtError, RunResult};
pub use machine::Machine;
pub use memory::{ArrayCell, Cell, Frame};
pub use pool::{SchedStats, Schedule};
pub use shadow::{LoopObs, ObsKind, ObsStat, ShadowLog};
pub use value::Value;
