//! The interpreter: serial, simulated-parallel, and threaded execution.

use crate::machine::Machine;
use crate::memory::{Cell, Frame};
use crate::pool::{plan_chunks, Chunk, ChunkQueues, Pool, SchedStats, Schedule, StepBudget};
use crate::shadow::{ShadowChunk, ShadowLog, ShadowRec};
use crate::value::Value;
use ped_fortran::ast::Intrinsic;
use ped_fortran::symbols::Const;
use ped_fortran::{
    BinOp, Expr, LValue, Program, ProgramUnit, RedOp, StmtId, StmtKind, SymId, Ty, UnOp,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How `PARALLEL DO` loops execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParallelMode {
    /// Ignore annotations; pure reference semantics.
    Serial,
    /// Sequential execution charged as a P-processor schedule (deterministic).
    Simulate(Machine),
    /// Real host threads.
    Threads(usize),
}

/// Which execution engine runs program bodies.
///
/// Both engines implement one semantics — "two engines, one semantics" is
/// enforced by differential property tests — but they trade differently:
/// the register **bytecode** engine lowers every unit once at
/// [`Interp::new`] (names resolved to frame slots, subscripts to
/// stride+offset fast paths, per-node cost model coalesced into one charge
/// per straight-line region) and is the default; the **tree** walker
/// interprets the AST directly and stays on as the differential oracle,
/// and is the only engine for `Simulate` mode and the race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Compile to register bytecode first (see [`crate::bytecode`]), then
    /// execute the compact form. Default.
    #[default]
    Bytecode,
    /// Walk the AST directly (the reference oracle).
    Tree,
}

impl Engine {
    /// Stable lower-case name (used by the profile report's `engine` field
    /// and the `--engine` CLI flag).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Bytecode => "bytecode",
            Engine::Tree => "tree",
        }
    }

    /// Parse a CLI spelling.
    pub fn from_name(s: &str) -> Option<Engine> {
        match s {
            "bytecode" => Some(Engine::Bytecode),
            "tree" => Some(Engine::Tree),
            _ => None,
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Parallel-loop handling.
    pub mode: ParallelMode,
    /// Record per-iteration access sets of parallel loops and report
    /// cross-iteration conflicts (Simulate mode only).
    pub detect_races: bool,
    /// How Threads mode cuts parallel loops into chunks.
    pub schedule: Schedule,
    /// Abort after this many statement executions (runaway guard). The cap
    /// is global: in Threads mode it is shared by all workers combined.
    pub max_steps: u64,
    /// Shadow-memory access logging: record every touch per loop
    /// iteration and derive the observed cross-iteration dependence set
    /// (see [`crate::shadow`]). Works in every mode; the result lands in
    /// [`RunResult::shadow`].
    pub shadow: bool,
    /// Which engine executes program bodies (see [`Engine`]). Requests for
    /// the bytecode engine fall back to the tree walker in the modes only
    /// it supports — check [`ExecConfig::effective_engine`].
    pub engine: Engine,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            mode: ParallelMode::Serial,
            detect_races: false,
            schedule: Schedule::default(),
            max_steps: 500_000_000,
            shadow: false,
            engine: Engine::default(),
        }
    }
}

impl ExecConfig {
    /// The engine that will actually run: simulated-parallel charging and
    /// the race detector are tree-walker instrumentation, so those modes
    /// pin the tree engine regardless of the request.
    pub fn effective_engine(&self) -> Engine {
        if self.detect_races || matches!(self.mode, ParallelMode::Simulate(_)) {
            Engine::Tree
        } else {
            self.engine
        }
    }
}

/// A runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct RtError {
    /// Description, including the offending unit.
    pub message: String,
    /// Statements executed before the error (across all threads).
    pub steps: u64,
}

impl RtError {
    pub(crate) fn new(msg: impl Into<String>) -> RtError {
        RtError { message: msg.into(), steps: 0 }
    }
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RtError {}

/// Per-loop execution statistics (the loop-level profile Ped's users got
/// from Forge; feeds performance-estimation-based navigation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopStats {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Total iterations executed.
    pub iterations: u64,
    /// Virtual operations spent inside (inclusive).
    pub ops: f64,
    /// Wall-clock nanoseconds spent inside (inclusive). For a loop
    /// executed *within* parallel chunks this sums across workers, i.e.
    /// it is CPU time; for a top-level `PARALLEL DO` it is the real
    /// elapsed time the submitting thread waited, which is what the E14
    /// measured-speedup comparison reads.
    pub wall_ns: u64,
}

/// A cross-iteration conflict found by the run-time dependence checker.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Unit containing the loop.
    pub unit: String,
    /// The `PARALLEL DO` statement.
    pub loop_stmt: StmtId,
    /// Conflicting variable name.
    pub var: String,
    /// Flat element index (0 for scalars).
    pub element: usize,
}

/// Result of running a program.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Lines produced by `PRINT *`.
    pub printed: Vec<String>,
    /// Virtual time (op count, with parallel charging applied).
    pub vtime: f64,
    /// Statements executed.
    pub steps: u64,
    /// Loop-level profile keyed by (unit name, DO statement).
    pub profile: HashMap<(String, StmtId), LoopStats>,
    /// Conflicts found by race detection.
    pub races: Vec<RaceReport>,
    /// Scheduler counters (all zero outside Threads mode).
    pub sched: SchedStats,
    /// Observed-dependence log (present iff [`ExecConfig::shadow`]).
    pub shadow: Option<ShadowLog>,
}

/// Final memory of the main unit, captured by [`Interp::run_with_memory`]:
/// one `(name, element bits)` entry per bound symbol, sorted by name.
/// Arrays dump every element in column-major order; scalars are
/// single-element vectors. Bits compare exactly, so two snapshots agree
/// iff the final memories are bit-identical.
pub type MemorySnapshot = Vec<(String, Vec<u64>)>;

pub(crate) enum Flow {
    Normal,
    Return,
    Stop,
}

/// Access window of one (cell, element): (any_write, wmin, wmax, amin, amax).
type AccessWindow = (bool, u64, u64, u64, u64);

/// Per-iteration access recording for the race detector.
struct RaceRec {
    excluded: std::collections::HashSet<usize>,
    /// (cell ptr, element) → access window across iterations.
    locs: HashMap<(usize, usize), AccessWindow>,
    names: HashMap<usize, (usize, SymId)>,
    /// Keeps every recorded cell alive so freed-cell addresses are never
    /// reused for new cells (which would alias distinct per-invocation
    /// locals and produce false conflicts).
    keep: Vec<Arc<Cell>>,
    iter: u64,
}

/// One `PARALLEL DO` invocation packaged for the worker pool. Fully owned
/// payload (the loop is cloned; the frame's cells are `Arc`s), so a job
/// outlives the submitting stack frame without lifetime juggling.
pub(crate) struct LoopJob {
    unit_idx: usize,
    d: ped_fortran::DoLoop,
    vals: Vec<i64>,
    /// The submitting frame; workers overlay private slots on a clone.
    base_frame: Frame,
    info: ped_fortran::ParallelInfo,
    budget: Arc<StepBudget>,
    queues: ChunkQueues,
    chunks_stolen: AtomicU64,
    outs: Mutex<Vec<ChunkOut>>,
    /// Index into the unit's compiled-loop table when the bytecode engine
    /// submitted this job: workers execute the compiled body instead of
    /// walking the cloned AST in `d`.
    cdo: Option<u32>,
}

/// What one executed chunk hands back for the deterministic merge.
struct ChunkOut {
    /// First iteration offset — the merge sort key (iteration order).
    start: usize,
    worker: usize,
    iters: u64,
    printed: Vec<String>,
    steps: u64,
    vtime: f64,
    profile: HashMap<(String, StmtId), LoopStats>,
    /// Per-iteration reduction contributions:
    /// `[reduction][iteration-in-chunk]`.
    red_contribs: Vec<Vec<RedContrib>>,
    /// Values of the lastprivate cells when the chunk finished.
    lastprivates: Vec<(SymId, Value)>,
    /// Shadow observations (raw events + inner-loop log) of the chunk.
    shadow: Option<ShadowChunk>,
    err: Option<RtError>,
}

/// One iteration's contribution to a reduction variable.
enum RedContrib {
    /// Recognized accumulation operands, in execution order. The merge
    /// replays `cur = cur ⊕ x` per operand, which reproduces the serial
    /// fold bit-for-bit even when one iteration accumulates several times
    /// (e.g. an inner serial loop summing into the reduction variable).
    Ops(Vec<Value>),
    /// Fallback when some store to the cell was not a recognized
    /// accumulation: the iteration's whole effect folded from the
    /// identity. Exact for single accumulations and for min/max (which
    /// are associative-commutative even in floats).
    Delta(Value),
}

/// A reduction cell observed during chunk execution so accumulation
/// operands can be logged at their store sites (see [`RedContrib`]).
pub(crate) struct RedWatch {
    cell: Arc<Cell>,
    op: RedOp,
    /// Operands logged since the last iteration boundary.
    log: Vec<Value>,
    /// Cleared when a store bypassed the accumulation recognizer.
    clean: bool,
}

pub(crate) struct ExecState<'a> {
    pub(crate) printed: Vec<String>,
    pub(crate) vtime: f64,
    pub(crate) steps: u64,
    /// The global statement budget, shared with every worker.
    budget: Arc<StepBudget>,
    /// Steps claimed from the budget but not yet spent by `tick`.
    pub(crate) granted: u64,
    pub(crate) profile: HashMap<(String, StmtId), LoopStats>,
    races: Vec<RaceReport>,
    rec: Option<RaceRec>,
    pub(crate) in_parallel: bool,
    /// The worker pool, when Threads mode spawned one for this run.
    pool: Option<&'a Pool<LoopJob>>,
    sched: SchedStats,
    /// Reduction cells under operand logging (non-empty only while a
    /// worker executes a chunk of a loop with reductions).
    pub(crate) red_watch: Vec<RedWatch>,
    /// Shadow-memory recorder (present iff `ExecConfig::shadow`).
    pub(crate) shadow: Option<Box<ShadowRec>>,
}

impl<'a> ExecState<'a> {
    fn new(budget: Arc<StepBudget>) -> ExecState<'a> {
        ExecState {
            printed: Vec::new(),
            vtime: 0.0,
            steps: 0,
            budget,
            granted: 0,
            profile: HashMap::new(),
            races: Vec::new(),
            rec: None,
            in_parallel: false,
            pool: None,
            sched: SchedStats::default(),
            red_watch: Vec::new(),
            shadow: None,
        }
    }

    /// Index of the reduction watch bound to exactly this cell, if any.
    pub(crate) fn watched(&self, cell: &Arc<Cell>) -> Option<usize> {
        self.red_watch.iter().position(|w| Arc::ptr_eq(&w.cell, cell))
    }

    pub(crate) fn tick(&mut self, ops: f64) -> Result<(), RtError> {
        self.vtime += ops;
        if self.granted == 0 {
            // Refill in blocks so the shared counter is touched rarely.
            self.granted = self.budget.acquire(crate::pool::BUDGET_BLOCK);
            if self.granted == 0 {
                return Err(RtError::new("statement step limit exceeded"));
            }
        }
        self.granted -= 1;
        self.steps += 1;
        Ok(())
    }

    /// Hand unspent steps back to the shared budget.
    pub(crate) fn release_grant(&mut self) {
        self.budget.release(self.granted);
        self.granted = 0;
    }

    /// Record the per-iteration store to a DO variable. Shadow-only: the
    /// race detector keeps its historical exclusion of loop indexes, but
    /// the shadow log needs the write so an enclosing parallel scope can
    /// observe an index the parallelization failed to privatize.
    pub(crate) fn record_var_store(&mut self, cell: &Arc<Cell>, unit_idx: usize, sym: SymId) {
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.record(cell, 0, true, unit_idx, sym);
        }
    }

    pub(crate) fn record(
        &mut self,
        cell: &Arc<Cell>,
        element: usize,
        write: bool,
        unit_idx: usize,
        sym: SymId,
    ) {
        if let Some(sh) = self.shadow.as_deref_mut() {
            sh.record(cell, element, write, unit_idx, sym);
        }
        let Some(rec) = self.rec.as_mut() else { return };
        let ptr = Arc::as_ptr(cell) as usize;
        if rec.excluded.contains(&ptr) {
            return;
        }
        if let std::collections::hash_map::Entry::Vacant(e) = rec.names.entry(ptr) {
            e.insert((unit_idx, sym));
            rec.keep.push(cell.clone());
        }
        let e = rec.locs.entry((ptr, element)).or_insert((
            false,
            u64::MAX,
            0,
            rec.iter,
            rec.iter,
        ));
        if write {
            e.0 = true;
            e.1 = e.1.min(rec.iter);
            e.2 = e.2.max(rec.iter);
        }
        e.3 = e.3.min(rec.iter);
        e.4 = e.4.max(rec.iter);
    }
}

/// The interpreter for one program.
pub struct Interp<'p> {
    pub(crate) program: &'p Program,
    pub(crate) config: ExecConfig,
    commons: HashMap<String, Vec<Arc<Cell>>>,
    /// Lowered form of every unit, built once when the effective engine is
    /// [`Engine::Bytecode`] (see [`crate::bytecode`]).
    pub(crate) compiled: Option<crate::bytecode::CompiledProgram<'p>>,
}

impl<'p> Interp<'p> {
    /// Build an interpreter; allocates COMMON storage and, for the
    /// bytecode engine, lowers every unit to register code.
    pub fn new(program: &'p Program, config: ExecConfig) -> Result<Interp<'p>, RtError> {
        let mut commons: HashMap<String, Vec<Arc<Cell>>> = HashMap::new();
        for unit in &program.units {
            for blk in &unit.commons {
                let cells = commons.entry(blk.name.clone()).or_default();
                for (i, &m) in blk.members.iter().enumerate() {
                    if cells.len() <= i {
                        let sym = unit.symbols.sym(m);
                        let cell = if sym.is_array() {
                            let dims = static_dims(unit, m)?;
                            alloc_array(sym.ty, dims, &sym.name, &unit.name)?
                        } else {
                            Cell::scalar(sym.ty)
                        };
                        cells.push(cell);
                    }
                }
            }
        }
        let compiled = (config.effective_engine() == Engine::Bytecode)
            .then(|| crate::bytecode::compile_program(program, config.shadow));
        Ok(Interp { program, config, commons, compiled })
    }

    /// Run the main program.
    pub fn run(&self) -> Result<RunResult, RtError> {
        Ok(self.run_inner(false)?.0)
    }

    /// Run the main program and also capture its final memory (see
    /// [`MemorySnapshot`]) — the oracle the equivalence tests compare
    /// across execution modes.
    pub fn run_with_memory(&self) -> Result<(RunResult, MemorySnapshot), RtError> {
        let (r, m) = self.run_inner(true)?;
        Ok((r, m.unwrap_or_default()))
    }

    fn run_inner(
        &self,
        want_memory: bool,
    ) -> Result<(RunResult, Option<MemorySnapshot>), RtError> {
        let main_idx = self
            .program
            .units
            .iter()
            .position(|u| u.kind == ped_fortran::UnitKind::Main)
            .ok_or_else(|| RtError::new("no main program unit"))?;
        // The worker pool is built lazily in the sense that a run whose
        // program has no parallel loop (or isn't in Threads mode) never
        // spawns a thread. When it is built, it is built once and reused
        // by every PARALLEL DO of the run: fork cost per loop is a condvar
        // wakeup, not nthreads thread spawns.
        let workers = match self.config.mode {
            ParallelMode::Threads(n) if self.has_parallel_loop() => n.max(1),
            _ => 0,
        };
        if workers == 0 {
            return self.run_main(main_idx, None, want_memory);
        }
        let pool: Pool<LoopJob> = Pool::new(workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let pool = &pool;
                scope.spawn(move || self.worker_main(pool, w));
            }
            let out = self.run_main(main_idx, Some(&pool), want_memory);
            pool.shutdown();
            out
        })
    }

    fn run_main(
        &self,
        main_idx: usize,
        pool: Option<&Pool<LoopJob>>,
        want_memory: bool,
    ) -> Result<(RunResult, Option<MemorySnapshot>), RtError> {
        let mut state = ExecState::new(Arc::new(StepBudget::new(self.config.max_steps)));
        state.pool = pool;
        if self.config.shadow {
            state.shadow = Some(Box::new(ShadowRec::serial()));
        }
        let res = self.make_frame(main_idx, &[], &mut state).and_then(|frame| {
            let flow = if self.compiled.is_some() {
                self.bexec_unit(main_idx, &frame, &mut state)
            } else {
                self.exec_unit(main_idx, &frame, &mut state)
            };
            flow.map(|_| frame)
        });
        match res {
            Ok(frame) => {
                let mem = want_memory.then(|| self.snapshot_memory(main_idx, &frame));
                Ok((
                    RunResult {
                        printed: state.printed,
                        vtime: state.vtime,
                        steps: state.steps,
                        profile: state.profile,
                        races: state.races,
                        sched: state.sched,
                        shadow: state.shadow.take().map(|s| s.into_log()),
                    },
                    mem,
                ))
            }
            Err(mut e) => {
                e.steps = state.steps;
                Err(e)
            }
        }
    }

    /// Does any unit contain a `PARALLEL DO`? Decides whether Threads mode
    /// spawns workers at all.
    fn has_parallel_loop(&self) -> bool {
        self.program.units.iter().any(|u| {
            let mut found = false;
            ped_fortran::visit::for_each_stmt(u, &u.body, &mut |sid| {
                if let StmtKind::Do(d) = &u.stmt(sid).kind {
                    found |= d.is_parallel();
                }
            });
            found
        })
    }

    fn snapshot_memory(&self, unit_idx: usize, frame: &Frame) -> MemorySnapshot {
        let unit = &self.program.units[unit_idx];
        let mut out: MemorySnapshot = Vec::new();
        for (id, sym) in unit.symbols.iter() {
            let Some(cell) = frame.get(id) else { continue };
            let bits = if cell.is_array() {
                let a = cell.as_array();
                (0..a.len()).map(|i| a.load_flat(i).to_bits()).collect()
            } else {
                vec![cell.load_scalar().to_bits()]
            };
            out.push((sym.name.clone(), bits));
        }
        out.sort();
        out
    }

    /// Worker thread body: serve `PARALLEL DO` jobs until shutdown.
    fn worker_main(&self, pool: &Pool<LoopJob>, worker: usize) {
        let mut generation = 0u64;
        while let Some(job) = pool.next_job(&mut generation) {
            self.run_job_chunks(&job, worker);
            pool.finish_job();
        }
    }

    /// One worker's share of a job: bind per-worker private slots once,
    /// then drain chunks (own deque first, stealing when it runs dry).
    fn run_job_chunks(&self, job: &LoopJob, worker: usize) {
        let unit = &self.program.units[job.unit_idx];
        let mut fr = job.base_frame.clone();
        let var_cell = Cell::scalar(Ty::Integer);
        fr.bind(job.d.var, var_cell.clone());
        for &s in job.info.private.iter().chain(job.info.lastprivate.iter()) {
            // Private arrays (section-proven privatization) get a fresh
            // zeroed copy shaped like the shared cell; scalars a fresh slot.
            match fr.get(s).filter(|c| c.is_array()) {
                Some(base) => {
                    let a = base.as_array();
                    let (ty, dims) = (a.ty, a.dims.clone());
                    fr.bind(s, Cell::array(ty, dims));
                }
                None => fr.bind(s, Cell::scalar(unit.symbols.sym(s).ty)),
            }
        }
        let mut red_cells = Vec::with_capacity(job.info.reductions.len());
        for &(op, s) in &job.info.reductions {
            let ty = unit.symbols.sym(s).ty;
            let c = Cell::scalar(ty);
            fr.bind(s, c.clone());
            red_cells.push((op, ty, c));
        }
        let last_cells: Vec<(SymId, Arc<Cell>)> = job
            .info
            .lastprivate
            .iter()
            .map(|&s| (s, fr.get(s).expect("bound above").clone()))
            .collect();
        while let Some((chunk, stolen)) = job.queues.take(worker) {
            if stolen {
                job.chunks_stolen.fetch_add(1, Ordering::Relaxed);
            }
            let out = self.exec_chunk(job, chunk, worker, &fr, &var_cell, &red_cells, &last_cells);
            job.outs.lock().unwrap().push(out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_chunk(
        &self,
        job: &LoopJob,
        chunk: Chunk,
        worker: usize,
        fr: &Frame,
        var_cell: &Arc<Cell>,
        red_cells: &[(RedOp, Ty, Arc<Cell>)],
        last_cells: &[(SymId, Arc<Cell>)],
    ) -> ChunkOut {
        let mut st = ExecState::new(job.budget.clone());
        st.in_parallel = true;
        if self.config.shadow {
            // The chunk's event tap stands in for the parallel loop's
            // scope (which lives on the submitting thread); worker-local
            // rebindings are its exclusion set, mirroring the serial
            // scope's masking of the same names.
            let mut excluded = std::collections::HashSet::new();
            excluded.insert(Arc::as_ptr(var_cell) as usize);
            for &s in job.info.private.iter().chain(job.info.lastprivate.iter()) {
                if let Some(c) = fr.get(s) {
                    excluded.insert(Arc::as_ptr(c) as usize);
                }
            }
            for (_, _, c) in red_cells {
                excluded.insert(Arc::as_ptr(c) as usize);
            }
            st.shadow = Some(Box::new(ShadowRec::tapped(excluded)));
        }
        st.red_watch = red_cells
            .iter()
            .map(|(op, _, c)| RedWatch { cell: c.clone(), op: *op, log: Vec::new(), clean: true })
            .collect();
        let mut red_contribs: Vec<Vec<RedContrib>> =
            red_cells.iter().map(|_| Vec::with_capacity(chunk.len)).collect();
        // Bytecode jobs carry the compiled body: workers execute register
        // code, not an AST walk. The register file is reused across the
        // chunk's iterations.
        let cbody = job.cdo.and_then(|ci| {
            let cu = &self.compiled.as_ref()?.units[job.unit_idx];
            Some((cu.loop_body(ci), cu.nregs(), cu.loop_fast(ci)))
        });
        // Straight-line bodies with no shadow tap run in fast form (see
        // `bexec_do`): cells resolved once per chunk, iterations charged
        // in bulk, the iteration variable kept in flight with the cell
        // updated at chunk end. Reduction loops qualify only when every
        // accumulator store was recognized at compile time (`red_ok`):
        // spliced `RedLog` ops then record the accumulation operands
        // into per-worker buffers — the same operand stream `red_assign`
        // would have logged — so the merge's serial-fold replay stays
        // bit-identical without a per-store slow-path escape.
        let unit_ref = &self.program.units[job.unit_idx];
        let fast = match cbody {
            Some((_, _, Some(fb)))
                if st.shadow.is_none() && (st.red_watch.is_empty() || fb.red_ok) =>
            {
                self.fast_resolve(fb, fr, var_cell).map(|ctx| (fb, ctx))
            }
            _ => None,
        };
        // Operand buffers RedLog ops append to during fast iterations;
        // flushed into `red_contribs` as one `Ops` run whenever the slow
        // path takes over (and once at chunk end), preserving global
        // iteration order across fast/slow transitions.
        let log_red = fast.is_some() && !red_cells.is_empty();
        let mut red_bufs: Vec<Vec<Value>> = red_cells.iter().map(|_| Vec::new()).collect();
        let nregs = fast
            .as_ref()
            .map_or(cbody.map_or(0, |(_, n, _)| n), |(fb, _)| fb.nregs.max(cbody.unwrap().1));
        let mut regs = vec![Value::Int(0); nregs];
        let typed = match &fast {
            Some((fb, ctx)) if ctx.typed_ok => fb.typed.as_ref(),
            _ => None,
        };
        let (mut fregs, mut iregs) = match (&fast, typed) {
            (Some((fb, _)), Some(_)) => (vec![0f64; fb.nregs], vec![0i64; fb.nslots()]),
            _ => (Vec::new(), Vec::new()),
        };
        let mut promoted = false;
        let mut err = None;
        let mut iters = 0u64;
        let mut k = 0usize;
        while k < chunk.len {
            // Typed burst: shadow taps never coexist with the typed tier,
            // and reductions reach it only in `red_ok` form (operands
            // logged by `RedLog`) — so the per-iteration setup below is
            // all dead and every iteration the grant covers runs in one
            // call.
            if let (Some(tb), Some((fb, ctx))) = (typed, &fast) {
                if st.granted >= fb.steps {
                    if !promoted {
                        tb.prologue(fb, ctx, &mut fregs, &mut iregs);
                        promoted = true;
                    }
                    let vals =
                        job.vals[chunk.start + k..chunk.start + chunk.len].iter().copied();
                    let mut done = 0u64;
                    let r = self.typed_run(
                        unit_ref, fb, tb, ctx, &mut st, &mut fregs, &iregs, vals, &mut done,
                        if log_red { Some(&mut red_bufs[..]) } else { None },
                    );
                    k += done as usize;
                    iters += done;
                    if let Err((cf, e)) = r {
                        tb.flush(fb, ctx, &fregs);
                        var_cell.store_scalar(Value::Int(cf));
                        err = Some(e);
                        break;
                    }
                    continue;
                }
            }
            let cur = job.vals[chunk.start + k];
            let ran_fast = match &fast {
                // (typed bodies never reach here: the burst above covers
                // every grant-covered iteration, and a short grant routes
                // through the slow path for its refill/abort.)
                Some((fb, ctx)) if typed.is_none() && st.granted >= fb.steps => {
                    if !promoted {
                        fb.prologue(ctx, &mut regs);
                        promoted = true;
                    }
                    let bufs = if log_red { Some(&mut red_bufs[..]) } else { None };
                    if let Err(e) =
                        self.fast_iter(unit_ref, fb, ctx, &mut st, &mut regs, cur, bufs)
                    {
                        fb.flush(ctx, &regs);
                        var_cell.store_scalar(Value::Int(cur));
                        err = Some(e);
                        break;
                    }
                    true
                }
                _ => false,
            };
            if !ran_fast {
                if promoted {
                    if let Some((fb, ctx)) = &fast {
                        match typed {
                            Some(tb) => tb.flush(fb, ctx, &fregs),
                            None => fb.flush(ctx, &regs),
                        }
                    }
                    promoted = false;
                }
                // Operands logged by preceding fast iterations land as one
                // `Ops` run before this slow iteration's contribution —
                // the merge's flattened fold preserves iteration order.
                flush_red(&mut red_bufs, &mut red_contribs);
                // Each slow iteration accumulates into a fresh identity
                // while the store sites log the actual operands (see
                // `red_assign`). The merge replays operands — or, when a
                // store defeated the recognizer, the iteration's delta —
                // in global iteration order: the same fold the serial loop
                // performs, which is what makes float reductions
                // bit-identical to serial no matter the chunking,
                // schedule, or thread count. (Fast iterations skip this:
                // the promoted flush above may have parked a meaningless
                // accumulated register value in the cell, and the re-seed
                // restores the slow path's invariant.)
                for (op, ty, c) in red_cells {
                    c.store_scalar(red_identity(*op, *ty));
                }
                for w in &mut st.red_watch {
                    w.log.clear();
                    w.clean = true;
                }
                if let Some(sh) = st.shadow.as_deref_mut() {
                    sh.set_tap_iter((chunk.start + k) as u64);
                }
                if let Err(e) = st.tick(2.0) {
                    err = Some(e);
                    break;
                }
                st.record_var_store(var_cell, job.unit_idx, job.d.var);
                var_cell.store_scalar(Value::Int(cur));
                let flow = match cbody {
                    Some((block, _, _)) => {
                        self.bexec_block(job.unit_idx, block, fr, &mut st, &mut regs)
                    }
                    None => self.exec_block(job.unit_idx, &job.d.body, fr, &mut st),
                };
                match flow {
                    Ok(Flow::Normal) => {}
                    Ok(_) => {
                        err = Some(RtError::new(
                            "RETURN/STOP inside a PARALLEL DO is not supported",
                        ));
                        break;
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
                for (i, (_, _, c)) in red_cells.iter().enumerate() {
                    let w = &mut st.red_watch[i];
                    red_contribs[i].push(if w.clean {
                        RedContrib::Ops(std::mem::take(&mut w.log))
                    } else {
                        RedContrib::Delta(c.load_scalar())
                    });
                }
            }
            iters += 1;
            k += 1;
        }
        // Trailing fast iterations' operands (no slow iteration followed
        // to flush them). Faulted chunks may flush partial logs too —
        // harmless, since an erroring run returns before the merge ever
        // replays contributions.
        flush_red(&mut red_bufs, &mut red_contribs);
        if promoted {
            // Reconcile promoted scalars before anything can look at the
            // worker's cells (the lastprivate capture below reads them).
            if let Some((fb, ctx)) = &fast {
                match typed {
                    Some(tb) => tb.flush(fb, ctx, &fregs),
                    None => fb.flush(ctx, &regs),
                }
            }
        }
        if fast.is_some() && iters > 0 && err.is_none() {
            // Fast iterations keep the loop variable in flight; land the
            // last executed value in the worker's cell (what a slow chunk
            // would have left there). Fault paths already stored theirs.
            var_cell.store_scalar(Value::Int(job.vals[chunk.start + iters as usize - 1]));
        }
        st.release_grant();
        // Capture lastprivate values now — the cells are reused by this
        // worker's next chunk.
        let lastprivates = last_cells.iter().map(|(s, c)| (*s, c.load_scalar())).collect();
        ChunkOut {
            start: chunk.start,
            worker,
            iters,
            printed: st.printed,
            steps: st.steps,
            vtime: st.vtime,
            profile: st.profile,
            red_contribs,
            lastprivates,
            shadow: st.shadow.take().map(|sh| sh.into_chunk()),
            err,
        }
    }

    /// Allocate a frame for a unit invocation; `bound` pairs formal symbols
    /// with pre-bound cells (actual arguments).
    pub(crate) fn make_frame(
        &self,
        unit_idx: usize,
        bound: &[(SymId, Arc<Cell>)],
        state: &mut ExecState<'_>,
    ) -> Result<Frame, RtError> {
        let unit = &self.program.units[unit_idx];
        let mut frame = Frame::with_capacity(unit.symbols.len());
        for (s, c) in bound {
            frame.bind(*s, c.clone());
        }
        // COMMON members alias global storage.
        for blk in &unit.commons {
            let cells = &self.commons[&blk.name];
            for (i, &m) in blk.members.iter().enumerate() {
                frame.bind(m, cells[i].clone());
            }
        }
        // Locals (anything unbound, except PARAMETERs).
        for (id, sym) in unit.symbols.iter() {
            if frame.get(id).is_some() || sym.param.is_some() {
                continue;
            }
            let cell = if sym.is_array() {
                let mut dims = Vec::with_capacity(sym.dims.len());
                for d in &sym.dims {
                    let lo = self.eval(unit_idx, &d.lo, &frame, state)?.as_int();
                    let hi = match &d.hi {
                        Some(e) => self.eval(unit_idx, e, &frame, state)?.as_int(),
                        None => {
                            return Err(RtError::new(format!(
                                "assumed-size local array {} in {}",
                                sym.name, unit.name
                            )))
                        }
                    };
                    dims.push((lo, hi));
                }
                alloc_array(sym.ty, dims, &sym.name, &unit.name)?
            } else {
                Cell::scalar(sym.ty)
            };
            frame.bind(id, cell);
        }
        Ok(frame)
    }

    fn exec_unit(
        &self,
        unit_idx: usize,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Flow, RtError> {
        let body = self.program.units[unit_idx].body.clone();
        self.exec_block(unit_idx, &body, frame, state)
    }

    fn exec_block(
        &self,
        unit_idx: usize,
        block: &[StmtId],
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Flow, RtError> {
        for &sid in block {
            match self.exec_stmt(unit_idx, sid, frame, state)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        unit_idx: usize,
        sid: StmtId,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        state.tick(1.0)?;
        match &unit.stmt(sid).kind {
            StmtKind::Assign { lhs, rhs } => {
                // Scalar stores to a watched reduction cell go through the
                // operand recognizer (cell identity, so cross-unit stores
                // through arguments and COMMON are caught too).
                if !state.red_watch.is_empty() {
                    if let LValue::Var(s) = lhs {
                        let cell = self.cell(unit, frame, *s)?.clone();
                        if let Some(wi) =
                            state.red_watch.iter().position(|w| Arc::ptr_eq(&w.cell, &cell))
                        {
                            self.red_assign(unit_idx, wi, *s, rhs, &cell, frame, state)?;
                            return Ok(Flow::Normal);
                        }
                    }
                }
                let v = self.eval(unit_idx, rhs, frame, state)?;
                match lhs {
                    LValue::Var(s) => {
                        let cell = self.cell(unit, frame, *s)?;
                        state.record(cell, 0, true, unit_idx, *s);
                        cell.store_scalar(v);
                    }
                    LValue::ArrayElem(s, subs) => {
                        let mut idx = Vec::with_capacity(subs.len());
                        for e in subs {
                            idx.push(self.eval(unit_idx, e, frame, state)?.as_int());
                        }
                        let cell = self.cell(unit, frame, *s)?;
                        let arr = cell.as_array();
                        let flat = arr.linearize(&idx).ok_or_else(|| {
                            RtError::new(format!(
                                "subscript out of bounds: {}({idx:?}) in {}",
                                unit.symbols.name(*s),
                                unit.name
                            ))
                        })?;
                        state.record(cell, flat, true, unit_idx, *s);
                        arr.store_flat(flat, v);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { arms, else_block } => {
                for (cond, blk) in arms {
                    if self.eval(unit_idx, cond, frame, state)?.as_logical() {
                        return self.exec_block(unit_idx, blk, frame, state);
                    }
                }
                if let Some(blk) = else_block {
                    return self.exec_block(unit_idx, blk, frame, state);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Do(_) => self.exec_do(unit_idx, sid, frame, state),
            StmtKind::Call { name, args } => {
                self.exec_call(unit_idx, name, args, frame, state)?;
                Ok(Flow::Normal)
            }
            StmtKind::Print { items } => {
                let mut parts = Vec::with_capacity(items.len());
                for e in items {
                    match e {
                        Expr::Str(s) => parts.push(s.clone()),
                        _ => parts.push(self.eval(unit_idx, e, frame, state)?.display()),
                    }
                }
                state.printed.push(parts.join(" "));
                Ok(Flow::Normal)
            }
            StmtKind::Return => Ok(Flow::Return),
            StmtKind::Stop => Ok(Flow::Stop),
            StmtKind::Continue | StmtKind::Removed => Ok(Flow::Normal),
        }
    }

    /// Values the loop variable takes, computed once at entry (F77 rules).
    fn iteration_values(
        &self,
        unit_idx: usize,
        d: &ped_fortran::DoLoop,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Vec<i64>, RtError> {
        let lo = self.eval(unit_idx, &d.lo, frame, state)?.as_int();
        let hi = self.eval(unit_idx, &d.hi, frame, state)?.as_int();
        let step = match &d.step {
            None => 1,
            Some(e) => self.eval(unit_idx, e, frame, state)?.as_int(),
        };
        if step == 0 {
            return Err(RtError::new("DO step is zero"));
        }
        let mut vals = Vec::new();
        let mut x = lo;
        if step > 0 {
            while x <= hi {
                vals.push(x);
                x += step;
            }
        } else {
            while x >= hi {
                vals.push(x);
                x += step;
            }
        }
        Ok(vals)
    }

    fn exec_do(
        &self,
        unit_idx: usize,
        sid: StmtId,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let d = unit.loop_of(sid).clone();
        let vals = self.iteration_values(unit_idx, &d, frame, state)?;
        let vt0 = state.vtime;
        let wall0 = Instant::now();
        let key = (unit.name.clone(), sid);

        if state.shadow.is_some() {
            // A parallel loop's shadow scope masks exactly what Threads
            // mode rebinds per worker: its variable plus the clause cells.
            // A serial DO rebinds nothing — its index is an ordinary
            // shared cell whose per-iteration store must stay visible to
            // enclosing scopes (a missing private() on an inner loop's
            // index is a real race the checker has to observe).
            let (excluded, true_only) = match &d.parallel {
                Some(info) => {
                    shadow_masks(self.cell(unit, frame, d.var)?, info, frame)
                }
                None => Default::default(),
            };
            if let Some(sh) = state.shadow.as_mut() {
                sh.push_scope(sid, excluded, true_only);
            }
        }

        let flow = if d.is_parallel() && !state.in_parallel {
            match self.config.mode {
                ParallelMode::Serial => self.run_serial(unit_idx, &d, &vals, frame, state)?,
                ParallelMode::Simulate(machine) => {
                    self.run_simulated(unit_idx, sid, &d, &vals, frame, state, machine)?
                }
                ParallelMode::Threads(_) => {
                    self.run_threads(unit_idx, &d, &vals, frame, state, None)?
                }
            }
        } else {
            self.run_serial(unit_idx, &d, &vals, frame, state)?
        };

        if let Some(sh) = state.shadow.as_deref_mut() {
            let prog = self.program;
            sh.pop_scope(&unit.name, vals.len() as u64, |u, s| {
                prog.units[u].symbols.name(s).to_string()
            });
        }
        let entry = state.profile.entry(key).or_default();
        entry.invocations += 1;
        entry.iterations += vals.len() as u64;
        entry.ops += state.vtime - vt0;
        entry.wall_ns += wall0.elapsed().as_nanos() as u64;
        Ok(flow)
    }

    fn run_serial(
        &self,
        unit_idx: usize,
        d: &ped_fortran::DoLoop,
        vals: &[i64],
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let var_cell = self.cell(unit, frame, d.var)?.clone();
        for (k, &v) in vals.iter().enumerate() {
            if let Some(sh) = state.shadow.as_deref_mut() {
                sh.set_iter(k as u64);
            }
            state.tick(2.0)?;
            state.record_var_store(&var_cell, unit_idx, d.var);
            var_cell.store_scalar(Value::Int(v));
            match self.exec_block(unit_idx, &d.body, frame, state)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_simulated(
        &self,
        unit_idx: usize,
        sid: StmtId,
        d: &ped_fortran::DoLoop,
        vals: &[i64],
        frame: &Frame,
        state: &mut ExecState<'_>,
        machine: Machine,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let var_cell = self.cell(unit, frame, d.var)?.clone();
        // Exclusion set: cells the parallel semantics privatize.
        let prev_rec = state.rec.take();
        if self.config.detect_races {
            let mut excluded = std::collections::HashSet::new();
            excluded.insert(Arc::as_ptr(&var_cell) as usize);
            if let Some(info) = &d.parallel {
                for &s in info
                    .private
                    .iter()
                    .chain(info.lastprivate.iter())
                    .chain(info.reductions.iter().map(|(_, s)| s))
                {
                    if let Some(c) = frame.get(s) {
                        excluded.insert(Arc::as_ptr(c) as usize);
                    }
                }
            }
            state.rec = Some(RaceRec {
                excluded,
                locs: HashMap::new(),
                names: HashMap::new(),
                keep: Vec::new(),
                iter: 0,
            });
        }
        let vt0 = state.vtime;
        let mut iter_costs = Vec::with_capacity(vals.len());
        let mut flow = Flow::Normal;
        state.in_parallel = true;
        for (k, &v) in vals.iter().enumerate() {
            if let Some(rec) = state.rec.as_mut() {
                rec.iter = k as u64;
            }
            if let Some(sh) = state.shadow.as_deref_mut() {
                sh.set_iter(k as u64);
            }
            let t0 = state.vtime;
            state.tick(2.0)?;
            state.record_var_store(&var_cell, unit_idx, d.var);
            var_cell.store_scalar(Value::Int(v));
            match self.exec_block(unit_idx, &d.body, frame, state) {
                Ok(Flow::Normal) => {}
                Ok(other) => {
                    flow = other;
                    iter_costs.push(state.vtime - t0);
                    break;
                }
                Err(e) => {
                    state.in_parallel = false;
                    state.rec = prev_rec;
                    return Err(e);
                }
            }
            iter_costs.push(state.vtime - t0);
        }
        state.in_parallel = false;
        // Harvest races.
        if let Some(rec) = state.rec.take() {
            for (&(ptr, element), &(any_write, wmin, wmax, amin, amax)) in &rec.locs {
                if any_write && (amin < wmax || wmin < amax) {
                    let var = rec
                        .names
                        .get(&ptr)
                        .map(|&(ui, s)| {
                            self.program.units[ui].symbols.name(s).to_string()
                        })
                        .unwrap_or_else(|| "?".to_string());
                    state.races.push(RaceReport {
                        unit: unit.name.clone(),
                        loop_stmt: sid,
                        var,
                        element,
                    });
                }
            }
            state.races.sort_by_key(|r| (r.var.clone(), r.element));
            state.races.dedup();
        }
        state.rec = prev_rec;
        // Replace the serial charge with the machine schedule.
        state.vtime = vt0 + machine.parallel_charge(&iter_costs);
        Ok(flow)
    }

    /// Dispatch a `PARALLEL DO` to the persistent worker pool and merge
    /// the chunk results deterministically: printed lines in iteration
    /// order, reductions recombined in serial fold order (per-iteration
    /// deltas), lastprivate from the chunk holding the final iteration.
    /// Threaded output is therefore bit-identical to serial execution.
    pub(crate) fn run_threads(
        &self,
        unit_idx: usize,
        d: &ped_fortran::DoLoop,
        vals: &[i64],
        frame: &Frame,
        state: &mut ExecState<'_>,
        cdo: Option<u32>,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let Some(pool) = state.pool else {
            // No pool for this run (defensive): reference semantics.
            return self.run_serial(unit_idx, d, vals, frame, state);
        };
        if vals.is_empty() {
            return Ok(Flow::Normal);
        }
        let n = pool.workers();
        let chunks = plan_chunks(self.config.schedule, vals.len(), n);
        let job = Arc::new(LoopJob {
            unit_idx,
            d: d.clone(),
            vals: vals.to_vec(),
            base_frame: frame.clone(),
            info: d.parallel.clone().unwrap_or_default(),
            budget: state.budget.clone(),
            queues: ChunkQueues::seed(&chunks, n),
            chunks_stolen: AtomicU64::new(0),
            outs: Mutex::new(Vec::with_capacity(chunks.len())),
            cdo,
        });
        pool.run_job(job.clone());

        let mut outs = std::mem::take(&mut *job.outs.lock().unwrap());
        outs.sort_by_key(|o| o.start);

        // Fold executed statements in before any error return, so budget
        // accounting covers aborted chunks too.
        for o in &outs {
            state.steps += o.steps;
        }
        state.sched.parallel_loops += 1;
        state.sched.chunks_executed += outs.len() as u64;
        state.sched.chunks_stolen += job.chunks_stolen.load(Ordering::Relaxed);
        if state.sched.worker_iterations.len() < n {
            state.sched.worker_iterations.resize(n, 0);
        }
        // Parallel time charge: the busiest worker's total.
        let mut worker_vtime = vec![0.0f64; n];
        for o in &outs {
            state.sched.worker_iterations[o.worker] += o.iters;
            worker_vtime[o.worker] += o.vtime;
        }
        state.vtime += worker_vtime.iter().copied().fold(0.0, f64::max);
        for o in &outs {
            for (k, v) in &o.profile {
                let e = state.profile.entry(k.clone()).or_default();
                e.invocations += v.invocations;
                e.iterations += v.iterations;
                e.ops += v.ops;
                e.wall_ns += v.wall_ns;
            }
        }
        // First error in iteration order wins.
        if let Some(e) = outs.iter().find_map(|o| o.err.clone()) {
            return Err(e);
        }
        for o in &outs {
            state.printed.extend_from_slice(&o.printed);
        }
        // Shadow merge: replay each chunk's event stream — in iteration
        // (chunk-start) order — through this thread's scope stack, whose
        // innermost scope is this loop's; fold worker inner-loop logs.
        // The concatenated stream equals the serial access stream, so the
        // observation is deterministic and mode-independent.
        if let Some(sh) = state.shadow.as_deref_mut() {
            for o in &mut outs {
                if let Some(chunk) = o.shadow.take() {
                    sh.absorb_chunk(chunk);
                }
            }
        }
        // Reductions: replay each iteration's logged accumulation operands
        // (or its fallback delta) in global iteration order — exactly the
        // serial fold, bit for bit.
        for (ri, &(op, s)) in job.info.reductions.iter().enumerate() {
            let cell = self.cell(unit, frame, s)?;
            let mut cur = cell.load_scalar();
            for o in &outs {
                for contrib in &o.red_contribs[ri] {
                    match contrib {
                        RedContrib::Ops(xs) => {
                            for &x in xs {
                                cur = combine(op, cur, x);
                            }
                        }
                        RedContrib::Delta(d) => cur = combine(op, cur, *d),
                    }
                }
            }
            cell.store_scalar(cur);
        }
        // Lastprivate: the chunk containing the final iteration.
        if let Some(last_out) = outs.last() {
            for &(s, v) in &last_out.lastprivates {
                self.cell(unit, frame, s)?.store_scalar(v);
            }
        }
        // The loop variable's final value: the serial interpreter leaves
        // it at the last executed iteration value, so match that exactly.
        if let Some(&last) = vals.last() {
            self.cell(unit, frame, d.var)?.store_scalar(Value::Int(last));
        }
        Ok(Flow::Normal)
    }

    fn exec_call(
        &self,
        unit_idx: usize,
        name: &str,
        args: &[Expr],
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Option<Value>, RtError> {
        let unit = &self.program.units[unit_idx];
        let callee_idx = self
            .program
            .unit_index(name)
            .ok_or_else(|| RtError::new(format!("call to unknown procedure {name}")))?;
        let callee = &self.program.units[callee_idx];
        if callee.args.len() != args.len() {
            return Err(RtError::new(format!(
                "{name} expects {} arguments, got {}",
                callee.args.len(),
                args.len()
            )));
        }
        state.tick(8.0)?; // call overhead
        let mut bound: Vec<(SymId, Arc<Cell>)> = Vec::with_capacity(args.len());
        // Copy-out obligations: (caller cell, flat index, temp cell).
        let mut writebacks: Vec<(Arc<Cell>, usize, Arc<Cell>)> = Vec::new();
        for (&formal, actual) in callee.args.iter().zip(args) {
            match actual {
                Expr::Var(s) if unit.symbols.sym(*s).param.is_none() => {
                    // Binding by reference is not itself a data access; the
                    // callee's actual reads/writes are recorded as they run.
                    let cell = self.cell(unit, frame, *s)?.clone();
                    bound.push((formal, cell));
                }
                Expr::Var(s) => {
                    // PARAMETER constant: pass by value in a temp cell.
                    let tmp = Cell::scalar(callee.symbols.sym(formal).ty);
                    tmp.store_scalar(const_value(
                        unit.symbols.sym(*s).param.expect("checked above"),
                    ));
                    bound.push((formal, tmp));
                }
                Expr::ArrayRef { sym, subs } => {
                    // Element passed by reference: copy-in/copy-out.
                    let mut idx = Vec::with_capacity(subs.len());
                    for e in subs {
                        idx.push(self.eval(unit_idx, e, frame, state)?.as_int());
                    }
                    let cell = self.cell(unit, frame, *sym)?.clone();
                    let arr = cell.as_array();
                    let flat = arr.linearize(&idx).ok_or_else(|| {
                        RtError::new(format!(
                            "argument subscript out of bounds in call to {name}"
                        ))
                    })?;
                    state.record(&cell, flat, true, unit_idx, *sym);
                    let tmp = Cell::scalar(callee.symbols.sym(formal).ty);
                    tmp.store_scalar(arr.load_flat(flat));
                    writebacks.push((cell.clone(), flat, tmp.clone()));
                    bound.push((formal, tmp));
                }
                other => {
                    let v = self.eval(unit_idx, other, frame, state)?;
                    let tmp = Cell::scalar(callee.symbols.sym(formal).ty);
                    tmp.store_scalar(v);
                    bound.push((formal, tmp));
                }
            }
        }
        let callee_frame = self.make_frame(callee_idx, &bound, state)?;
        if let Flow::Stop = self.exec_unit(callee_idx, &callee_frame, state)? {
            return Err(RtError::new("STOP inside a procedure"));
        }
        for (cell, flat, tmp) in writebacks {
            cell.as_array().store_flat(flat, tmp.load_scalar());
        }
        // Function result.
        if let ped_fortran::UnitKind::Function(_) = callee.kind {
            let ret = callee
                .symbols
                .lookup(&callee.name)
                .ok_or_else(|| RtError::new(format!("function {name} has no result var")))?;
            let v = callee_frame
                .get(ret)
                .ok_or_else(|| RtError::new("unbound function result"))?
                .load_scalar();
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    /// Store to a watched reduction cell. When `rhs` has the recognized
    /// accumulation shape `cell ⊕ x₁ ⊕ x₂ …`, only the operands are
    /// evaluated (the spine merely reloads the cell) and they are logged
    /// so the merge can replay the exact serial fold — this is what keeps
    /// iterations that accumulate *several times* (an inner serial loop
    /// summing into the reduction variable, say) bit-identical to serial.
    /// Any other store voids the iteration's log; it falls back to the
    /// per-iteration delta.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn red_assign(
        &self,
        unit_idx: usize,
        wi: usize,
        sym: SymId,
        rhs: &Expr,
        cell: &Arc<Cell>,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<(), RtError> {
        let op = state.red_watch[wi].op;
        let mut operands = Vec::new();
        if self.match_accum(unit_idx, rhs, frame, op, cell, &mut operands) {
            // Charge what the plain evaluation would have: one node per
            // spine operator plus the reload of the cell itself.
            state.vtime += operands.len() as f64 + 1.0;
            let mut vals = Vec::with_capacity(operands.len());
            for e in &operands {
                vals.push(self.eval(unit_idx, e, frame, state)?);
            }
            // The recognizer replaced the spine reload with a direct load;
            // the shadow log still needs the read-then-write the plain
            // evaluation would have recorded (inner serial scopes observe
            // the accumulator exactly as they do in serial execution).
            state.record(cell, 0, false, unit_idx, sym);
            let mut v = cell.load_scalar();
            for &x in &vals {
                v = combine(op, v, x);
            }
            state.red_watch[wi].log.extend(vals);
            state.record(cell, 0, true, unit_idx, sym);
            cell.store_scalar(v);
        } else {
            state.red_watch[wi].clean = false;
            let v = self.eval(unit_idx, rhs, frame, state)?;
            state.record(cell, 0, true, unit_idx, sym);
            cell.store_scalar(v);
        }
        Ok(())
    }

    /// Recognize `e` as an accumulation spine over the watched cell:
    /// `cell`, `spine ⊕ x`, or `x ⊕ spine-var` (IEEE `+` and `*` commute
    /// bitwise, so both orientations fold identically). Operands are
    /// pushed in serial application order; each must be pure (no calls —
    /// a call could read or write the cell) and must not read the cell.
    fn match_accum<'e>(
        &self,
        unit_idx: usize,
        e: &'e Expr,
        frame: &Frame,
        op: RedOp,
        cell: &Arc<Cell>,
        out: &mut Vec<&'e Expr>,
    ) -> bool {
        let spine_op = match op {
            RedOp::Sum => BinOp::Add,
            RedOp::Product => BinOp::Mul,
            // MIN/MAX are exactly associative-commutative, so the delta
            // fallback already matches serial bit-for-bit.
            _ => return false,
        };
        match e {
            Expr::Var(s) => self.resolves_to(unit_idx, *s, frame, cell),
            Expr::Bin { op: b, l, r } if *b == spine_op => {
                let mark = out.len();
                if self.match_accum(unit_idx, l, frame, op, cell, out) {
                    if self.expr_avoids(unit_idx, r, frame, cell) {
                        out.push(r);
                        return true;
                    }
                    out.truncate(mark);
                    return false;
                }
                if matches!(&**r, Expr::Var(s) if self.resolves_to(unit_idx, *s, frame, cell))
                    && self.expr_avoids(unit_idx, l, frame, cell)
                {
                    out.push(l);
                    return true;
                }
                false
            }
            _ => false,
        }
    }

    /// True when `s` is a runtime variable bound to exactly this cell.
    fn resolves_to(&self, unit_idx: usize, s: SymId, frame: &Frame, cell: &Arc<Cell>) -> bool {
        self.program.units[unit_idx].symbols.sym(s).param.is_none()
            && frame.get(s).is_some_and(|c| Arc::ptr_eq(c, cell))
    }

    /// Pure and cell-free: no calls anywhere, and no load of the watched
    /// scalar. Array cells are distinct allocations from any scalar cell,
    /// so walking their subscripts suffices.
    fn expr_avoids(&self, unit_idx: usize, e: &Expr, frame: &Frame, cell: &Arc<Cell>) -> bool {
        match e {
            Expr::Int(_) | Expr::Real(_) | Expr::Double(_) | Expr::Logical(_) | Expr::Str(_) => {
                true
            }
            Expr::Var(s) => !self.resolves_to(unit_idx, *s, frame, cell),
            Expr::ArrayRef { subs, .. } => {
                subs.iter().all(|x| self.expr_avoids(unit_idx, x, frame, cell))
            }
            Expr::Un { e, .. } => self.expr_avoids(unit_idx, e, frame, cell),
            Expr::Bin { l, r, .. } => {
                self.expr_avoids(unit_idx, l, frame, cell)
                    && self.expr_avoids(unit_idx, r, frame, cell)
            }
            Expr::Intrinsic { args, .. } => {
                args.iter().all(|x| self.expr_avoids(unit_idx, x, frame, cell))
            }
            Expr::Call { .. } => false,
        }
    }

    pub(crate) fn cell<'f>(
        &self,
        unit: &ProgramUnit,
        frame: &'f Frame,
        sym: SymId,
    ) -> Result<&'f Arc<Cell>, RtError> {
        frame.get(sym).ok_or_else(|| {
            RtError::new(format!("unbound symbol {} in {}", unit.symbols.name(sym), unit.name))
        })
    }

    fn eval(
        &self,
        unit_idx: usize,
        e: &Expr,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Value, RtError> {
        let unit = &self.program.units[unit_idx];
        state.vtime += 1.0;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v) | Expr::Double(v) => Ok(Value::Real(*v)),
            Expr::Logical(b) => Ok(Value::Logical(*b)),
            Expr::Str(_) => Err(RtError::new("character value outside PRINT")),
            Expr::Var(s) => {
                if let Some(c) = unit.symbols.sym(*s).param {
                    return Ok(const_value(c));
                }
                let cell = self.cell(unit, frame, *s)?;
                state.record(cell, 0, false, unit_idx, *s);
                Ok(cell.load_scalar())
            }
            Expr::ArrayRef { sym, subs } => {
                let mut idx = Vec::with_capacity(subs.len());
                for s in subs {
                    idx.push(self.eval(unit_idx, s, frame, state)?.as_int());
                }
                let cell = self.cell(unit, frame, *sym)?;
                let arr = cell.as_array();
                let flat = arr.linearize(&idx).ok_or_else(|| {
                    RtError::new(format!(
                        "subscript out of bounds: {}({idx:?}) in {}",
                        unit.symbols.name(*sym),
                        unit.name
                    ))
                })?;
                state.record(cell, flat, false, unit_idx, *sym);
                Ok(arr.load_flat(flat))
            }
            Expr::Un { op: UnOp::Neg, e } => {
                let v = self.eval(unit_idx, e, frame, state)?;
                eval_neg(v)
            }
            Expr::Un { op: UnOp::Not, e } => {
                let v = self.eval(unit_idx, e, frame, state)?;
                Ok(Value::Logical(!v.as_logical()))
            }
            Expr::Bin { op, l, r } => {
                let lv = self.eval(unit_idx, l, frame, state)?;
                // Short-circuit logicals for speed (F77 leaves order free).
                if *op == BinOp::And && !lv.as_logical() {
                    return Ok(Value::Logical(false));
                }
                if *op == BinOp::Or && lv.as_logical() {
                    return Ok(Value::Logical(true));
                }
                let rv = self.eval(unit_idx, r, frame, state)?;
                eval_bin(*op, lv, rv)
            }
            Expr::Intrinsic { op, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(unit_idx, a, frame, state)?);
                }
                state.vtime += 6.0;
                eval_intrinsic(*op, &vals)
            }
            Expr::Call { name, args } => {
                let v = self.exec_call(unit_idx, name, args, frame, state)?;
                v.ok_or_else(|| RtError::new(format!("{name} is a subroutine, not a function")))
            }
        }
    }
}

/// Unary negation, shared by both engines. Integer negation wraps
/// (`-i64::MIN` stays `i64::MIN`, Fortran's usual two's-complement story)
/// rather than tripping Rust's debug overflow panic.
pub(crate) fn eval_neg(v: Value) -> Result<Value, RtError> {
    match v {
        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
        Value::Real(r) => Ok(Value::Real(-r)),
        Value::Logical(_) => Err(RtError::new("negating a LOGICAL")),
    }
}

pub(crate) fn const_value(c: Const) -> Value {
    match c {
        Const::Int(v) => Value::Int(v),
        Const::Real(v) => Value::Real(v),
        Const::Logical(b) => Value::Logical(b),
    }
}

fn red_identity(op: RedOp, ty: Ty) -> Value {
    match (op, ty) {
        (RedOp::Sum, Ty::Integer) => Value::Int(0),
        (RedOp::Sum, _) => Value::Real(0.0),
        (RedOp::Product, Ty::Integer) => Value::Int(1),
        (RedOp::Product, _) => Value::Real(1.0),
        (RedOp::Min, Ty::Integer) => Value::Int(i64::MAX),
        (RedOp::Min, _) => Value::Real(f64::INFINITY),
        (RedOp::Max, Ty::Integer) => Value::Int(i64::MIN),
        (RedOp::Max, _) => Value::Real(f64::NEG_INFINITY),
    }
}

fn combine(op: RedOp, a: Value, b: Value) -> Value {
    match op {
        RedOp::Sum => num2(a, b, |x, y| x + y, |x, y| x + y),
        RedOp::Product => num2(a, b, |x, y| x * y, |x, y| x * y),
        RedOp::Min => num2(a, b, i64::min, f64::min),
        RedOp::Max => num2(a, b, i64::max, f64::max),
    }
}

/// Drain fast-path reduction operand buffers into the chunk's ordered
/// contribution lists: each non-empty buffer becomes one `Ops` run,
/// exactly as if `red_assign` had logged the same operands.
fn flush_red(bufs: &mut [Vec<Value>], contribs: &mut [Vec<RedContrib>]) {
    for (b, c) in bufs.iter_mut().zip(contribs.iter_mut()) {
        if !b.is_empty() {
            c.push(RedContrib::Ops(std::mem::take(b)));
        }
    }
}

#[inline]
pub(crate) fn num2(
    a: Value,
    b: Value,
    fi: impl Fn(i64, i64) -> i64,
    fr: impl Fn(f64, f64) -> f64,
) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(fi(x, y)),
        _ => Value::Real(fr(a.as_real(), b.as_real())),
    }
}

#[inline]
pub(crate) fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, RtError> {
    use BinOp::*;
    match op {
        Add => Ok(num2(l, r, |a, b| a.wrapping_add(b), |a, b| a + b)),
        Sub => Ok(num2(l, r, |a, b| a.wrapping_sub(b), |a, b| a - b)),
        Mul => Ok(num2(l, r, |a, b| a.wrapping_mul(b), |a, b| a * b)),
        Div => match (l, r) {
            (Value::Int(_), Value::Int(0)) => Err(RtError::new("integer division by zero")),
            (Value::Int(i64::MIN), Value::Int(-1)) => {
                Err(RtError::new("integer division overflow"))
            }
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            _ => Ok(Value::Real(l.as_real() / r.as_real())),
        },
        Pow => match (l, r) {
            (Value::Int(a), Value::Int(b)) if b >= 0 => {
                Ok(Value::Int(a.wrapping_pow(b.min(63) as u32)))
            }
            _ => Ok(Value::Real(l.as_real().powf(r.as_real()))),
        },
        Lt | Le | Gt | Ge | Eq | Ne => {
            let res = match (l, r) {
                (Value::Int(a), Value::Int(b)) => cmp(op, a.partial_cmp(&b)),
                _ => cmp(op, l.as_real().partial_cmp(&r.as_real())),
            };
            Ok(Value::Logical(res))
        }
        And => Ok(Value::Logical(l.as_logical() && r.as_logical())),
        Or => Ok(Value::Logical(l.as_logical() || r.as_logical())),
        Concat => Err(RtError::new("character concatenation outside PRINT")),
    }
}

fn cmp(op: BinOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord),
        (BinOp::Lt, Some(Less))
            | (BinOp::Le, Some(Less | Equal))
            | (BinOp::Gt, Some(Greater))
            | (BinOp::Ge, Some(Greater | Equal))
            | (BinOp::Eq, Some(Equal))
            | (BinOp::Ne, Some(Less | Greater))
    )
}

pub(crate) fn eval_intrinsic(op: Intrinsic, vals: &[Value]) -> Result<Value, RtError> {
    use Intrinsic::*;
    let need = |n: usize| -> Result<(), RtError> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(RtError::new(format!("{} expects {n} arguments", op.name())))
        }
    };
    match op {
        Min | Max => {
            if vals.is_empty() {
                return Err(RtError::new("MIN/MAX need arguments"));
            }
            let mut acc = vals[0];
            for &v in &vals[1..] {
                acc = match op {
                    Min => num2(acc, v, i64::min, f64::min),
                    _ => num2(acc, v, i64::max, f64::max),
                };
            }
            Ok(acc)
        }
        Mod => {
            need(2)?;
            match (vals[0], vals[1]) {
                (Value::Int(_), Value::Int(0)) => Err(RtError::new("MOD by zero")),
                // wrapping_rem: MOD(i64::MIN, -1) is 0, not a panic.
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_rem(b))),
                (a, b) => Ok(Value::Real(a.as_real() % b.as_real())),
            }
        }
        Abs => {
            need(1)?;
            Ok(match vals[0] {
                // wrapping_abs: ABS(i64::MIN) wraps to itself, never panics.
                Value::Int(v) => Value::Int(v.wrapping_abs()),
                v => Value::Real(v.as_real().abs()),
            })
        }
        Sqrt => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().sqrt()))
        }
        Sin => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().sin()))
        }
        Cos => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().cos()))
        }
        Exp => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().exp()))
        }
        Log => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().ln()))
        }
        Float | Dble => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real()))
        }
        Int => {
            need(1)?;
            Ok(Value::Int(vals[0].as_int()))
        }
        Sign => {
            need(2)?;
            let mag = vals[0].as_real().abs();
            let s = if vals[1].as_real() < 0.0 { -mag } else { mag };
            Ok(match (vals[0], vals[1]) {
                (Value::Int(a), Value::Int(b)) => {
                    let m = a.wrapping_abs();
                    Value::Int(if b < 0 { m.wrapping_neg() } else { m })
                }
                _ => Value::Real(s),
            })
        }
    }
}

/// Allocate an array cell with validated dimensions: a bound list whose
/// element count overflows or exceeds the allocation cap becomes a named
/// `RtError` instead of a panic/abort inside `ArrayCell::new`.
pub(crate) fn alloc_array(
    ty: Ty,
    dims: Vec<(i64, i64)>,
    name: &str,
    unit: &str,
) -> Result<Arc<Cell>, RtError> {
    if crate::memory::ArrayCell::checked_len(&dims).is_none() {
        return Err(RtError::new(format!(
            "array {name} in {unit} has dimensions too large to allocate"
        )));
    }
    Ok(Cell::array(ty, dims))
}

/// Evaluate constant array dims for COMMON allocation (literals/PARAMETERs).
fn static_dims(unit: &ProgramUnit, sym: SymId) -> Result<Vec<(i64, i64)>, RtError> {
    let mut out = Vec::new();
    for d in &unit.symbols.sym(sym).dims {
        let lo = static_int(unit, &d.lo)?;
        let hi = match &d.hi {
            Some(e) => static_int(unit, e)?,
            None => return Err(RtError::new("assumed-size COMMON array")),
        };
        out.push((lo, hi));
    }
    Ok(out)
}

/// Split a parallel loop's clause cells into the shadow-scope mask pair:
/// the loop variable and scalar clause cells are fully `excluded` (Threads
/// mode rebinds them per worker, so no mode can observe them), while
/// private *array* cells go in `true_only` — the scope keeps watching them
/// for carried flow, the observed witness that a section-proven (or
/// user-forced) array privatization was invalid. Shared by the tree walker
/// and the bytecode engine so both observe identically.
pub(crate) fn shadow_masks(
    var_cell: &Arc<Cell>,
    info: &ped_fortran::ParallelInfo,
    frame: &Frame,
) -> (std::collections::HashSet<usize>, std::collections::HashSet<usize>) {
    let mut excluded = std::collections::HashSet::new();
    let mut true_only = std::collections::HashSet::new();
    excluded.insert(Arc::as_ptr(var_cell) as usize);
    for &s in info
        .private
        .iter()
        .chain(info.lastprivate.iter())
        .chain(info.reductions.iter().map(|(_, s)| s))
    {
        if let Some(c) = frame.get(s) {
            let ptr = Arc::as_ptr(c) as usize;
            if c.is_array() {
                true_only.insert(ptr);
            } else {
                excluded.insert(ptr);
            }
        }
    }
    (excluded, true_only)
}

fn static_int(unit: &ProgramUnit, e: &Expr) -> Result<i64, RtError> {
    match ped_analysis::constants::eval(unit, &ped_analysis::constants::Facts::new(), e) {
        Some(Const::Int(v)) => Ok(v),
        _ => Err(RtError::new("COMMON array bound is not a constant")),
    }
}

/// Parse-and-run helper used across tests and benches.
pub fn run_source(src: &str, config: ExecConfig) -> Result<RunResult, RtError> {
    let program =
        ped_fortran::parse_program(src).map_err(|e| RtError::new(format!("parse: {e}")))?;
    Interp::new(&program, config)?.run()
}

/// Like [`run_source`], but also captures the main unit's final memory.
pub fn run_source_with_memory(
    src: &str,
    config: ExecConfig,
) -> Result<(RunResult, MemorySnapshot), RtError> {
    let program =
        ped_fortran::parse_program(src).map_err(|e| RtError::new(format!("parse: {e}")))?;
    Interp::new(&program, config)?.run_with_memory()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunResult {
        run_source(src, ExecConfig::default()).expect("run failed")
    }

    #[test]
    fn arithmetic_and_print() {
        let r = run("program t\nx = 2.0\ny = x ** 2 + 1.0\nn = 7 / 2\nprint *, y, n\nend\n");
        assert_eq!(r.printed, vec!["5.0 3"]);
    }

    #[test]
    fn loops_and_arrays() {
        let r = run(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = i * 2.0\nenddo\ns = 0.0\n\
             do i = 1, 10\ns = s + a(i)\nenddo\nprint *, s\nend\n",
        );
        assert_eq!(r.printed, vec!["110.0"]);
    }

    #[test]
    fn two_dim_column_major() {
        let r = run(
            "program t\nreal a(3,3)\ndo j = 1, 3\ndo i = 1, 3\na(i,j) = i * 10 + j\nenddo\n\
             enddo\nprint *, a(2,3)\nend\n",
        );
        assert_eq!(r.printed, vec!["23.0"]);
    }

    #[test]
    fn if_elseif_else() {
        let r = run(
            "program t\nx = 5.0\nif (x .lt. 0.0) then\nprint *, 'neg'\nelse if (x .lt. 10.0) then\n\
             print *, 'small'\nelse\nprint *, 'big'\nendif\nend\n",
        );
        assert_eq!(r.printed, vec!["small"]);
    }

    #[test]
    fn subroutine_by_reference() {
        let r = run(
            "program t\nreal a(5)\ncall fill(a, 5)\nprint *, a(1), a(5)\nend\n\
             subroutine fill(x, n)\ninteger n\nreal x(n)\ndo i = 1, n\nx(i) = i * 1.0\nenddo\nend\n",
        );
        assert_eq!(r.printed, vec!["1.0 5.0"]);
    }

    #[test]
    fn function_result() {
        let r = run(
            "program t\nreal v(4)\ndo i = 1, 4\nv(i) = 1.0\nenddo\nprint *, norm2(v, 4)\nend\n\
             real function norm2(x, n)\ninteger n\nreal x(n)\nnorm2 = 0.0\ndo i = 1, n\n\
             norm2 = norm2 + x(i) * x(i)\nenddo\nnorm2 = sqrt(norm2)\nend\n",
        );
        assert_eq!(r.printed, vec!["2.0"]);
    }

    #[test]
    fn common_shared_between_units() {
        let r = run(
            "program t\ncommon /c/ g\ng = 1.0\ncall bump()\ncall bump()\nprint *, g\nend\n\
             subroutine bump()\ncommon /c/ h\nh = h + 1.0\nend\n",
        );
        assert_eq!(r.printed, vec!["3.0"]);
    }

    #[test]
    fn out_of_bounds_caught() {
        let e = run_source(
            "program t\nreal a(5)\na(6) = 1.0\nend\n",
            ExecConfig::default(),
        )
        .unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");
    }

    #[test]
    fn step_limit_catches_runaway() {
        let e = run_source(
            "program t\nreal a(5)\ndo i = 1, 1000000\ndo j = 1, 1000000\na(1) = 1.0\nenddo\nenddo\nend\n",
            ExecConfig { max_steps: 10_000, ..ExecConfig::default() },
        )
        .unwrap_err();
        assert!(e.message.contains("step limit"), "{e}");
    }

    #[test]
    fn parameters_fold() {
        let r = run(
            "program t\ninteger n\nparameter (n = 4)\nreal a(n)\ndo i = 1, n\na(i) = 1.0\nenddo\n\
             print *, n\nend\n",
        );
        assert_eq!(r.printed, vec!["4"]);
    }

    #[test]
    fn do_with_step_and_negative() {
        let r = run(
            "program t\nk = 0\ndo i = 1, 10, 3\nk = k + 1\nenddo\nm = 0\ndo i = 5, 1, -2\n\
             m = m + 1\nenddo\nprint *, k, m\nend\n",
        );
        assert_eq!(r.printed, vec!["4 3"]);
    }

    #[test]
    fn parallel_threads_match_serial() {
        let src = "program t\nreal a(1000), b(1000)\ndo i = 1, 1000\nb(i) = i * 1.0\nenddo\n\
                   parallel do i = 1, 1000 private(t1)\nt1 = b(i) * 2.0\na(i) = t1 + 1.0\nenddo\n\
                   s = 0.0\ndo i = 1, 1000\ns = s + a(i)\nenddo\nprint *, s\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(4), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(serial.printed, par.printed);
    }

    #[test]
    fn parallel_reduction_matches_serial() {
        let src = "program t\nreal a(1000)\ndo i = 1, 1000\na(i) = 1.5\nenddo\ns = 0.0\n\
                   parallel do i = 1, 1000 reduction(+:s)\ns = s + a(i)\nenddo\nprint *, s\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(8), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(serial.printed, par.printed);
        assert_eq!(par.printed, vec!["1500.0"]);
    }

    #[test]
    fn lastprivate_writes_back() {
        let src = "program t\nreal a(100)\nparallel do i = 1, 100 lastprivate(t1)\n\
                   t1 = i * 1.0\na(i) = t1\nenddo\nprint *, t1\nend\n";
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(4), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(par.printed, vec!["100.0"]);
    }

    #[test]
    fn threaded_step_budget_is_global() {
        // The budget is one shared atomic pool: however many workers run,
        // the total number of executed statements can never exceed
        // max_steps (the old per-thread budgets allowed ~nthreads× that).
        let src = "program t\nreal a(100000)\nparallel do i = 1, 100000\na(i) = i * 1.0\nenddo\nend\n";
        let e = run_source(
            src,
            ExecConfig {
                mode: ParallelMode::Threads(4),
                max_steps: 10_000,
                ..ExecConfig::default()
            },
        )
        .unwrap_err();
        assert!(e.message.contains("step limit"), "{e}");
        assert!(e.steps > 0 && e.steps <= 10_000, "executed {} steps > cap", e.steps);
    }

    #[test]
    fn nested_parallel_runs_serially_under_threads() {
        let src = "program t\nreal a(64,64)\nparallel do j = 1, 64 private(i)\n\
                   parallel do i = 1, 64\na(i,j) = i * 1.0 + j\nenddo\nenddo\n\
                   s = 0.0\ndo j = 1, 64\ndo i = 1, 64\ns = s + a(i,j)\nenddo\nenddo\n\
                   print *, s\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(4), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(serial.printed, par.printed);
        // Only the outer loop was dispatched to the pool: the inner
        // PARALLEL DO ran serially inside the workers (in_parallel guard).
        assert_eq!(par.sched.parallel_loops, 1);
        // Its iterations are still charged, to its own profile entry,
        // inside the outer loop's inclusive ops.
        let program = ped_fortran::parse_program(src).unwrap();
        let unit = &program.units[0];
        let tree = ped_fortran::visit::loop_tree(unit);
        let outer = tree.iter().find(|n| n.depth == 1 && !n.children.is_empty()).unwrap();
        let inner_sid = outer.children[0];
        let outer_st = par.profile[&(unit.name.clone(), outer.stmt)];
        let inner_st = par.profile[&(unit.name.clone(), inner_sid)];
        assert_eq!(outer_st.iterations, 64);
        assert_eq!(inner_st.iterations, 64 * 64);
        assert_eq!(inner_st.invocations, 64);
        // The outer entry's ops are the parallel (busiest-worker) charge —
        // smaller than the inner entries' serial sum, but present.
        assert!(outer_st.ops > 0.0);
        assert!(inner_st.ops > 0.0);
    }

    #[test]
    fn threads_and_schedules_bit_identical_to_serial() {
        // Sum of squares of 0.1*i: the float fold is order-sensitive, so
        // string equality (full-precision Debug formatting) means the
        // threaded combine reproduced the serial fold bit for bit.
        let src = "program t\nreal a(777)\nparallel do i = 1, 777\na(i) = 0.1 * i\nenddo\n\
                   s = 0.0\nparallel do i = 1, 777 reduction(+:s)\ns = s + a(i) * a(i)\nenddo\n\
                   print *, s\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        for k in [1usize, 2, 3, 4, 8] {
            for schedule in [Schedule::Static, Schedule::Dynamic(5), Schedule::Guided] {
                let par = run_source(
                    src,
                    ExecConfig {
                        mode: ParallelMode::Threads(k),
                        schedule,
                        ..ExecConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(serial.printed, par.printed, "threads={k} schedule={schedule}");
                assert_eq!(par.sched.parallel_loops, 2);
                assert!(par.sched.chunks_executed > 0);
            }
        }
    }

    #[test]
    fn multi_accumulation_reduction_bit_identical() {
        // Each parallel iteration folds several operands into the reduction
        // variable through an inner serial loop (the spec77 `energy` shape).
        // Per-iteration delta merging would differ in the last ulp; operand
        // logging must replay the exact serial fold.
        let src = "program t\nreal a(40)\nparallel do i = 1, 40\na(i) = 0.3 * i\nenddo\n\
                   e = 0.0\nparallel do i = 1, 40 reduction(+:e) lastprivate(j)\n\
                   do j = 1, 7\ne = e + a(i) * 0.1 * j\nenddo\nenddo\n\
                   print *, e\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        for k in [2usize, 3, 4] {
            for schedule in [Schedule::Static, Schedule::Dynamic(3), Schedule::Guided] {
                let par = run_source(
                    src,
                    ExecConfig {
                        mode: ParallelMode::Threads(k),
                        schedule,
                        ..ExecConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(serial.printed, par.printed, "threads={k} schedule={schedule}");
            }
        }
    }

    #[test]
    fn run_with_memory_matches_across_modes() {
        let src = "program t\nreal a(50)\nparallel do i = 1, 50\na(i) = i * 2.0\nenddo\n\
                   print *, a(25)\nend\n";
        let (rs, ms) = run_source_with_memory(src, ExecConfig::default()).unwrap();
        let (rt, mt) = run_source_with_memory(
            src,
            ExecConfig { mode: ParallelMode::Threads(3), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(rs.printed, rt.printed);
        assert_eq!(ms, mt, "final memory must be bit-identical");
        assert!(ms.iter().any(|(n, bits)| n == "a" && bits.len() == 50));
    }

    #[test]
    fn simulate_charges_less_than_serial_sum() {
        let src = "program t\nreal a(10000)\nparallel do i = 1, 10000\n\
                   a(i) = sqrt(i * 1.0)\nenddo\nprint *, a(100)\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let sim = run_source(
            src,
            ExecConfig {
                mode: ParallelMode::Simulate(Machine::with_procs(8)),
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.printed, sim.printed);
        let speedup = serial.vtime / sim.vtime;
        assert!(speedup > 4.0, "speedup was {speedup}");
    }

    #[test]
    fn race_detector_flags_bad_parallelization() {
        // A genuine recurrence wrongly marked parallel.
        let src = "program t\nreal a(100)\na(1) = 1.0\nparallel do i = 2, 100\n\
                   a(i) = a(i-1) + 1.0\nenddo\nprint *, a(100)\nend\n";
        let sim = run_source(
            src,
            ExecConfig {
                mode: ParallelMode::Simulate(Machine::alliant8()),
                detect_races: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(!sim.races.is_empty(), "race must be detected");
        assert_eq!(sim.races[0].var, "a");
    }

    #[test]
    fn race_detector_clean_on_good_parallelization() {
        let src = "program t\nreal a(100), b(100)\nparallel do i = 1, 100 private(t1)\n\
                   t1 = i * 1.0\na(i) = t1\nenddo\nprint *, a(5)\nend\n";
        let _ = src;
        let sim = run_source(
            "program t\nreal a(100)\nparallel do i = 1, 100 private(t1)\nt1 = i * 1.0\n\
             a(i) = t1\nenddo\nprint *, a(5)\nend\n",
            ExecConfig {
                mode: ParallelMode::Simulate(Machine::alliant8()),
                detect_races: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(sim.races.is_empty(), "{:?}", sim.races);
    }

    #[test]
    fn profile_counts_loops() {
        let r = run(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\ndo i = 1, 5\na(i) = 2.0\n\
             enddo\nend\n",
        );
        let mut iters: Vec<u64> = r.profile.values().map(|s| s.iterations).collect();
        iters.sort();
        assert_eq!(iters, vec![5, 10]);
    }

    #[test]
    fn intrinsics_work() {
        let r = run(
            "program t\nprint *, max(1, 7, 3), min(2.0, 1.5), mod(10, 3), abs(-4)\nend\n",
        );
        assert_eq!(r.printed, vec!["7 1.5 1 4"]);
    }

    #[test]
    fn shadow_off_by_default_and_absent_from_result() {
        let r = run("program t\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\nend\n");
        assert!(r.shadow.is_none());
    }

    #[test]
    fn shadow_observes_recurrence() {
        use crate::shadow::ObsKind;
        let src = "program t\nreal a(50)\na(1) = 1.0\ndo i = 2, 50\na(i) = a(i-1) + 1.0\n\
                   enddo\nprint *, a(50)\nend\n";
        let r = run_source(src, ExecConfig { shadow: true, ..ExecConfig::default() }).unwrap();
        let log = r.shadow.expect("shadow log");
        let obs = log.loops.values().find(|l| !l.carried.is_empty()).expect("observed deps");
        let flow = obs.carried[&("a".to_string(), ObsKind::True)];
        assert_eq!((flow.count, flow.min_dist, flow.max_dist), (48, 1, 1));
    }

    #[test]
    fn shadow_clean_on_privatized_parallel_loop() {
        let src = "program t\nreal a(40)\nparallel do i = 1, 40 private(t1)\nt1 = i * 2.0\n\
                   a(i) = t1 + 1.0\nenddo\nprint *, a(7)\nend\n";
        let r = run_source(src, ExecConfig { shadow: true, ..ExecConfig::default() }).unwrap();
        let log = r.shadow.unwrap();
        assert_eq!(log.loops.len(), 1);
        let obs = log.loops.values().next().unwrap();
        assert!(obs.carried.is_empty(), "{:?}", obs.carried);
        assert_eq!((obs.invocations, obs.iterations), (1, 40));
    }

    #[test]
    fn shadow_unprivatized_scalar_is_observed() {
        // The same loop without the private clause: t1 crosses iterations.
        let src = "program t\nreal a(40)\nparallel do i = 1, 40\nt1 = i * 2.0\n\
                   a(i) = t1 + 1.0\nenddo\nprint *, a(7)\nend\n";
        let r = run_source(src, ExecConfig { shadow: true, ..ExecConfig::default() }).unwrap();
        let log = r.shadow.unwrap();
        let obs = log.loops.values().next().unwrap();
        assert!(
            obs.carried.keys().any(|(n, _)| n == "t1"),
            "expected observed dep on t1: {:?}",
            obs.carried
        );
    }

    #[test]
    fn shadow_log_identical_across_modes_and_schedules() {
        // Parallel loops with private scalars, a reduction, an inner
        // serial loop, and a serial recurrence: the observed log must be
        // bit-identical whether executed serially, simulated, or threaded
        // under any schedule (events replay in serial iteration order).
        let src = "program t\nreal a(60), b(60)\ndo i = 1, 60\nb(i) = 0.1 * i\nenddo\n\
                   parallel do i = 1, 60 private(t1) lastprivate(j)\nt1 = b(i) * 2.0\n\
                   do j = 1, 5\na(i) = b(i) + t1 * j\nenddo\nenddo\n\
                   s = 0.0\nparallel do i = 1, 60 reduction(+:s)\ns = s + a(i)\nenddo\n\
                   a(1) = 0.0\ndo i = 2, 60\na(i) = a(i-1) + b(i)\nenddo\nprint *, s, a(60)\nend\n";
        let base = run_source(src, ExecConfig { shadow: true, ..ExecConfig::default() })
            .unwrap()
            .shadow
            .unwrap();
        assert!(base.observed_deps() > 0);
        let sim = run_source(
            src,
            ExecConfig {
                shadow: true,
                mode: ParallelMode::Simulate(Machine::alliant8()),
                ..ExecConfig::default()
            },
        )
        .unwrap()
        .shadow
        .unwrap();
        assert_eq!(base, sim);
        for k in [2usize, 4] {
            for schedule in [Schedule::Static, Schedule::Dynamic(7), Schedule::Guided] {
                let par = run_source(
                    src,
                    ExecConfig {
                        shadow: true,
                        mode: ParallelMode::Threads(k),
                        schedule,
                        ..ExecConfig::default()
                    },
                )
                .unwrap()
                .shadow
                .unwrap();
                assert_eq!(base, par, "threads={k} schedule={schedule}");
            }
        }
    }

    #[test]
    fn element_argument_copy_in_out() {
        let r = run(
            "program t\nreal a(3)\na(2) = 5.0\ncall twice(a(2))\nprint *, a(2)\nend\n\
             subroutine twice(x)\nreal x\nx = x * 2.0\nend\n",
        );
        assert_eq!(r.printed, vec!["10.0"]);
    }

    /// Regression (shrunk from spec77's energy routine): a reduction
    /// accumulated inside an inner serial loop. Workers route the store
    /// through the operand recognizer, which used to bypass shadow
    /// recording entirely — the inner loop's scope observed the
    /// accumulator under serial execution but not under Threads, so the
    /// logs diverged.
    #[test]
    fn shadow_sees_reduction_accumulator_in_inner_loop_across_modes() {
        use crate::shadow::ObsKind;
        let src = "program t\nreal a(12)\nreal s\ndo i = 1, 12\na(i) = 0.5 * i\nenddo\n\
                   s = 0.0\nparallel do j = 1, 6 private(i) reduction(+:s)\ndo i = 1, 12\n\
                   s = s + a(i)\nenddo\nenddo\nprint *, s\nend\n";
        let serial =
            run_source(src, ExecConfig { shadow: true, ..ExecConfig::default() }).unwrap();
        // The accumulating inner loop runs 6 invocations x 12 iterations.
        let inner = serial
            .shadow
            .as_ref()
            .unwrap()
            .loops
            .values()
            .find(|l| l.iterations == 72)
            .unwrap();
        assert!(
            inner.carried.contains_key(&("s".to_string(), ObsKind::True)),
            "inner loop must observe the accumulator: {:?}",
            inner.carried
        );
        let par = run_source(
            src,
            ExecConfig {
                shadow: true,
                mode: ParallelMode::Threads(3),
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.shadow, par.shadow);
        assert_eq!(serial.printed, par.printed);
    }

    /// Regression (shrunk from the stripped-`private(i)` mutation of
    /// spec77's init routine): an inner serial loop's index that the
    /// parallel loop fails to privatize is a shared cell every worker
    /// writes. The old scope masking excluded every loop's own variable,
    /// so the parallel scope never saw the carried write-write and the
    /// checker called the race-y program clean.
    #[test]
    fn shadow_observes_unprivatized_inner_loop_index_at_parallel_scope() {
        use crate::shadow::ObsKind;
        let src = "program t\nreal a(6, 6)\nparallel do j = 1, 6\ndo i = 1, 6\n\
                   a(i, j) = 1.0\nenddo\nenddo\nprint *, a(3, 3)\nend\n";
        let r = run_source(src, ExecConfig { shadow: true, ..ExecConfig::default() }).unwrap();
        let log = r.shadow.unwrap();
        // The parallel loop is the one entered once for 6 iterations.
        let par_of =
            |log: &ShadowLog| log.loops.values().find(|l| l.invocations == 1).cloned().unwrap();
        let par = par_of(&log);
        assert!(
            par.carried.contains_key(&("i".to_string(), ObsKind::Output)),
            "parallel scope must see the shared index: {:?}",
            par.carried
        );
        // With the clause the index is worker-local: invisible outward,
        // still observed by the inner loop's own scope.
        let fixed = src.replace("parallel do j = 1, 6", "parallel do j = 1, 6 private(i)");
        let r = run_source(&fixed, ExecConfig { shadow: true, ..ExecConfig::default() })
            .unwrap();
        let log = r.shadow.unwrap();
        let par = par_of(&log);
        assert!(
            par.carried.keys().all(|(n, _)| n != "i"),
            "privatized index must be masked: {:?}",
            par.carried
        );
        let inner = log.loops.values().find(|l| l.invocations == 6).unwrap();
        assert!(inner.carried.contains_key(&("i".to_string(), ObsKind::Output)));
    }
}
