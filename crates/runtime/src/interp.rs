//! The interpreter: serial, simulated-parallel, and threaded execution.

use crate::machine::Machine;
use crate::memory::{Cell, Frame};
use crate::value::Value;
use ped_fortran::ast::Intrinsic;
use ped_fortran::symbols::Const;
use ped_fortran::{
    BinOp, Expr, LValue, Program, ProgramUnit, RedOp, StmtId, StmtKind, SymId, Ty, UnOp,
};
use std::collections::HashMap;
use std::sync::Arc;

/// How `PARALLEL DO` loops execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParallelMode {
    /// Ignore annotations; pure reference semantics.
    Serial,
    /// Sequential execution charged as a P-processor schedule (deterministic).
    Simulate(Machine),
    /// Real host threads.
    Threads(usize),
}

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Parallel-loop handling.
    pub mode: ParallelMode,
    /// Record per-iteration access sets of parallel loops and report
    /// cross-iteration conflicts (Simulate mode only).
    pub detect_races: bool,
    /// Abort after this many statement executions (runaway guard).
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { mode: ParallelMode::Serial, detect_races: false, max_steps: 500_000_000 }
    }
}

/// A runtime error.
#[derive(Debug, Clone, PartialEq)]
pub struct RtError {
    /// Description, including the offending unit.
    pub message: String,
}

impl RtError {
    fn new(msg: impl Into<String>) -> RtError {
        RtError { message: msg.into() }
    }
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RtError {}

/// Per-loop execution statistics (the loop-level profile Ped's users got
/// from Forge; feeds performance-estimation-based navigation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoopStats {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Total iterations executed.
    pub iterations: u64,
    /// Virtual operations spent inside (inclusive).
    pub ops: f64,
}

/// A cross-iteration conflict found by the run-time dependence checker.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Unit containing the loop.
    pub unit: String,
    /// The `PARALLEL DO` statement.
    pub loop_stmt: StmtId,
    /// Conflicting variable name.
    pub var: String,
    /// Flat element index (0 for scalars).
    pub element: usize,
}

/// Result of running a program.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Lines produced by `PRINT *`.
    pub printed: Vec<String>,
    /// Virtual time (op count, with parallel charging applied).
    pub vtime: f64,
    /// Statements executed.
    pub steps: u64,
    /// Loop-level profile keyed by (unit name, DO statement).
    pub profile: HashMap<(String, StmtId), LoopStats>,
    /// Conflicts found by race detection.
    pub races: Vec<RaceReport>,
}

enum Flow {
    Normal,
    Return,
    Stop,
}

/// Access window of one (cell, element): (any_write, wmin, wmax, amin, amax).
type AccessWindow = (bool, u64, u64, u64, u64);

/// Per-iteration access recording for the race detector.
struct RaceRec {
    excluded: std::collections::HashSet<usize>,
    /// (cell ptr, element) → access window across iterations.
    locs: HashMap<(usize, usize), AccessWindow>,
    names: HashMap<usize, (usize, SymId)>,
    /// Keeps every recorded cell alive so freed-cell addresses are never
    /// reused for new cells (which would alias distinct per-invocation
    /// locals and produce false conflicts).
    keep: Vec<Arc<Cell>>,
    iter: u64,
}

struct ExecState {
    printed: Vec<String>,
    vtime: f64,
    steps: u64,
    max_steps: u64,
    profile: HashMap<(String, StmtId), LoopStats>,
    races: Vec<RaceReport>,
    rec: Option<RaceRec>,
    in_parallel: bool,
}

impl ExecState {
    fn new(max_steps: u64) -> ExecState {
        ExecState {
            printed: Vec::new(),
            vtime: 0.0,
            steps: 0,
            max_steps,
            profile: HashMap::new(),
            races: Vec::new(),
            rec: None,
            in_parallel: false,
        }
    }

    fn tick(&mut self, ops: f64) -> Result<(), RtError> {
        self.vtime += ops;
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(RtError::new("statement step limit exceeded"));
        }
        Ok(())
    }

    fn record(&mut self, cell: &Arc<Cell>, element: usize, write: bool, unit_idx: usize, sym: SymId) {
        let Some(rec) = self.rec.as_mut() else { return };
        let ptr = Arc::as_ptr(cell) as usize;
        if rec.excluded.contains(&ptr) {
            return;
        }
        if let std::collections::hash_map::Entry::Vacant(e) = rec.names.entry(ptr) {
            e.insert((unit_idx, sym));
            rec.keep.push(cell.clone());
        }
        let e = rec.locs.entry((ptr, element)).or_insert((
            false,
            u64::MAX,
            0,
            rec.iter,
            rec.iter,
        ));
        if write {
            e.0 = true;
            e.1 = e.1.min(rec.iter);
            e.2 = e.2.max(rec.iter);
        }
        e.3 = e.3.min(rec.iter);
        e.4 = e.4.max(rec.iter);
    }
}

/// The interpreter for one program.
pub struct Interp<'p> {
    program: &'p Program,
    config: ExecConfig,
    commons: HashMap<String, Vec<Arc<Cell>>>,
}

impl<'p> Interp<'p> {
    /// Build an interpreter; allocates COMMON storage.
    pub fn new(program: &'p Program, config: ExecConfig) -> Result<Interp<'p>, RtError> {
        let mut commons: HashMap<String, Vec<Arc<Cell>>> = HashMap::new();
        for unit in &program.units {
            for blk in &unit.commons {
                let cells = commons.entry(blk.name.clone()).or_default();
                for (i, &m) in blk.members.iter().enumerate() {
                    if cells.len() <= i {
                        let sym = unit.symbols.sym(m);
                        let cell = if sym.is_array() {
                            let dims = static_dims(unit, m)?;
                            Cell::array(sym.ty, dims)
                        } else {
                            Cell::scalar(sym.ty)
                        };
                        cells.push(cell);
                    }
                }
            }
        }
        Ok(Interp { program, config, commons })
    }

    /// Run the main program.
    pub fn run(&self) -> Result<RunResult, RtError> {
        let main_idx = self
            .program
            .units
            .iter()
            .position(|u| u.kind == ped_fortran::UnitKind::Main)
            .ok_or_else(|| RtError::new("no main program unit"))?;
        let mut state = ExecState::new(self.config.max_steps);
        let frame = self.make_frame(main_idx, &[], &mut state)?;
        self.exec_unit(main_idx, &frame, &mut state)?;
        Ok(RunResult {
            printed: state.printed,
            vtime: state.vtime,
            steps: state.steps,
            profile: state.profile,
            races: state.races,
        })
    }

    /// Allocate a frame for a unit invocation; `bound` pairs formal symbols
    /// with pre-bound cells (actual arguments).
    fn make_frame(
        &self,
        unit_idx: usize,
        bound: &[(SymId, Arc<Cell>)],
        state: &mut ExecState,
    ) -> Result<Frame, RtError> {
        let unit = &self.program.units[unit_idx];
        let mut frame = Frame::with_capacity(unit.symbols.len());
        for (s, c) in bound {
            frame.bind(*s, c.clone());
        }
        // COMMON members alias global storage.
        for blk in &unit.commons {
            let cells = &self.commons[&blk.name];
            for (i, &m) in blk.members.iter().enumerate() {
                frame.bind(m, cells[i].clone());
            }
        }
        // Locals (anything unbound, except PARAMETERs).
        for (id, sym) in unit.symbols.iter() {
            if frame.get(id).is_some() || sym.param.is_some() {
                continue;
            }
            let cell = if sym.is_array() {
                let mut dims = Vec::with_capacity(sym.dims.len());
                for d in &sym.dims {
                    let lo = self.eval(unit_idx, &d.lo, &frame, state)?.as_int();
                    let hi = match &d.hi {
                        Some(e) => self.eval(unit_idx, e, &frame, state)?.as_int(),
                        None => {
                            return Err(RtError::new(format!(
                                "assumed-size local array {} in {}",
                                sym.name, unit.name
                            )))
                        }
                    };
                    dims.push((lo, hi));
                }
                Cell::array(sym.ty, dims)
            } else {
                Cell::scalar(sym.ty)
            };
            frame.bind(id, cell);
        }
        Ok(frame)
    }

    fn exec_unit(
        &self,
        unit_idx: usize,
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Flow, RtError> {
        let body = self.program.units[unit_idx].body.clone();
        self.exec_block(unit_idx, &body, frame, state)
    }

    fn exec_block(
        &self,
        unit_idx: usize,
        block: &[StmtId],
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Flow, RtError> {
        for &sid in block {
            match self.exec_stmt(unit_idx, sid, frame, state)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        unit_idx: usize,
        sid: StmtId,
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        state.tick(1.0)?;
        match &unit.stmt(sid).kind {
            StmtKind::Assign { lhs, rhs } => {
                let v = self.eval(unit_idx, rhs, frame, state)?;
                match lhs {
                    LValue::Var(s) => {
                        let cell = self.cell(unit, frame, *s)?;
                        state.record(cell, 0, true, unit_idx, *s);
                        cell.store_scalar(v);
                    }
                    LValue::ArrayElem(s, subs) => {
                        let mut idx = Vec::with_capacity(subs.len());
                        for e in subs {
                            idx.push(self.eval(unit_idx, e, frame, state)?.as_int());
                        }
                        let cell = self.cell(unit, frame, *s)?;
                        let arr = cell.as_array();
                        let flat = arr.linearize(&idx).ok_or_else(|| {
                            RtError::new(format!(
                                "subscript out of bounds: {}({idx:?}) in {}",
                                unit.symbols.name(*s),
                                unit.name
                            ))
                        })?;
                        state.record(cell, flat, true, unit_idx, *s);
                        arr.store_flat(flat, v);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { arms, else_block } => {
                for (cond, blk) in arms {
                    if self.eval(unit_idx, cond, frame, state)?.as_logical() {
                        return self.exec_block(unit_idx, blk, frame, state);
                    }
                }
                if let Some(blk) = else_block {
                    return self.exec_block(unit_idx, blk, frame, state);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Do(_) => self.exec_do(unit_idx, sid, frame, state),
            StmtKind::Call { name, args } => {
                self.exec_call(unit_idx, name, args, frame, state)?;
                Ok(Flow::Normal)
            }
            StmtKind::Print { items } => {
                let mut parts = Vec::with_capacity(items.len());
                for e in items {
                    match e {
                        Expr::Str(s) => parts.push(s.clone()),
                        _ => parts.push(self.eval(unit_idx, e, frame, state)?.display()),
                    }
                }
                state.printed.push(parts.join(" "));
                Ok(Flow::Normal)
            }
            StmtKind::Return => Ok(Flow::Return),
            StmtKind::Stop => Ok(Flow::Stop),
            StmtKind::Continue | StmtKind::Removed => Ok(Flow::Normal),
        }
    }

    /// Values the loop variable takes, computed once at entry (F77 rules).
    fn iteration_values(
        &self,
        unit_idx: usize,
        d: &ped_fortran::DoLoop,
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Vec<i64>, RtError> {
        let lo = self.eval(unit_idx, &d.lo, frame, state)?.as_int();
        let hi = self.eval(unit_idx, &d.hi, frame, state)?.as_int();
        let step = match &d.step {
            None => 1,
            Some(e) => self.eval(unit_idx, e, frame, state)?.as_int(),
        };
        if step == 0 {
            return Err(RtError::new("DO step is zero"));
        }
        let mut vals = Vec::new();
        let mut x = lo;
        if step > 0 {
            while x <= hi {
                vals.push(x);
                x += step;
            }
        } else {
            while x >= hi {
                vals.push(x);
                x += step;
            }
        }
        Ok(vals)
    }

    fn exec_do(
        &self,
        unit_idx: usize,
        sid: StmtId,
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let d = unit.loop_of(sid).clone();
        let vals = self.iteration_values(unit_idx, &d, frame, state)?;
        let vt0 = state.vtime;
        let key = (unit.name.clone(), sid);

        let flow = if d.is_parallel() && !state.in_parallel {
            match self.config.mode {
                ParallelMode::Serial => self.run_serial(unit_idx, &d, &vals, frame, state)?,
                ParallelMode::Simulate(machine) => {
                    self.run_simulated(unit_idx, sid, &d, &vals, frame, state, machine)?
                }
                ParallelMode::Threads(n) => {
                    self.run_threads(unit_idx, &d, &vals, frame, state, n)?
                }
            }
        } else {
            self.run_serial(unit_idx, &d, &vals, frame, state)?
        };

        let entry = state.profile.entry(key).or_default();
        entry.invocations += 1;
        entry.iterations += vals.len() as u64;
        entry.ops += state.vtime - vt0;
        Ok(flow)
    }

    fn run_serial(
        &self,
        unit_idx: usize,
        d: &ped_fortran::DoLoop,
        vals: &[i64],
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let var_cell = self.cell(unit, frame, d.var)?.clone();
        for &v in vals {
            state.tick(2.0)?;
            var_cell.store_scalar(Value::Int(v));
            match self.exec_block(unit_idx, &d.body, frame, state)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_simulated(
        &self,
        unit_idx: usize,
        sid: StmtId,
        d: &ped_fortran::DoLoop,
        vals: &[i64],
        frame: &Frame,
        state: &mut ExecState,
        machine: Machine,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let var_cell = self.cell(unit, frame, d.var)?.clone();
        // Exclusion set: cells the parallel semantics privatize.
        let prev_rec = state.rec.take();
        if self.config.detect_races {
            let mut excluded = std::collections::HashSet::new();
            excluded.insert(Arc::as_ptr(&var_cell) as usize);
            if let Some(info) = &d.parallel {
                for &s in info
                    .private
                    .iter()
                    .chain(info.lastprivate.iter())
                    .chain(info.reductions.iter().map(|(_, s)| s))
                {
                    if let Some(c) = frame.get(s) {
                        excluded.insert(Arc::as_ptr(c) as usize);
                    }
                }
            }
            state.rec = Some(RaceRec {
                excluded,
                locs: HashMap::new(),
                names: HashMap::new(),
                keep: Vec::new(),
                iter: 0,
            });
        }
        let vt0 = state.vtime;
        let mut iter_costs = Vec::with_capacity(vals.len());
        let mut flow = Flow::Normal;
        state.in_parallel = true;
        for (k, &v) in vals.iter().enumerate() {
            if let Some(rec) = state.rec.as_mut() {
                rec.iter = k as u64;
            }
            let t0 = state.vtime;
            state.tick(2.0)?;
            var_cell.store_scalar(Value::Int(v));
            match self.exec_block(unit_idx, &d.body, frame, state) {
                Ok(Flow::Normal) => {}
                Ok(other) => {
                    flow = other;
                    iter_costs.push(state.vtime - t0);
                    break;
                }
                Err(e) => {
                    state.in_parallel = false;
                    state.rec = prev_rec;
                    return Err(e);
                }
            }
            iter_costs.push(state.vtime - t0);
        }
        state.in_parallel = false;
        // Harvest races.
        if let Some(rec) = state.rec.take() {
            for (&(ptr, element), &(any_write, wmin, wmax, amin, amax)) in &rec.locs {
                if any_write && (amin < wmax || wmin < amax) {
                    let var = rec
                        .names
                        .get(&ptr)
                        .map(|&(ui, s)| {
                            self.program.units[ui].symbols.name(s).to_string()
                        })
                        .unwrap_or_else(|| "?".to_string());
                    state.races.push(RaceReport {
                        unit: unit.name.clone(),
                        loop_stmt: sid,
                        var,
                        element,
                    });
                }
            }
            state.races.sort_by_key(|r| (r.var.clone(), r.element));
            state.races.dedup();
        }
        state.rec = prev_rec;
        // Replace the serial charge with the machine schedule.
        state.vtime = vt0 + machine.parallel_charge(&iter_costs);
        Ok(flow)
    }

    fn run_threads(
        &self,
        unit_idx: usize,
        d: &ped_fortran::DoLoop,
        vals: &[i64],
        frame: &Frame,
        state: &mut ExecState,
        nthreads: usize,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let n = nthreads.max(1);
        let info = d.parallel.clone().unwrap_or_default();
        let chunk = vals.len().div_ceil(n).max(1);
        let chunks: Vec<&[i64]> = vals.chunks(chunk).collect();

        struct ChunkOut {
            state: ExecState,
            reductions: Vec<(RedOp, SymId, Value)>,
            lastprivates: Vec<(SymId, Value)>,
            has_last: bool,
            err: Option<RtError>,
        }

        let remaining = state.max_steps.saturating_sub(state.steps);
        let per_thread_budget = remaining; // each thread shares the global cap loosely
        let outs: Vec<ChunkOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (ci, ch) in chunks.iter().enumerate() {
                let info = info.clone();
                let is_last_chunk = ci == chunks.len() - 1;
                let base_frame = frame.clone();
                handles.push(scope.spawn(move || {
                    let mut st = ExecState::new(per_thread_budget);
                    st.in_parallel = true;
                    let mut fr = base_frame;
                    // Private copies.
                    let var_cell = Cell::scalar(Ty::Integer);
                    fr.bind(d.var, var_cell.clone());
                    for &s in info.private.iter().chain(info.lastprivate.iter()) {
                        let ty = self.program.units[unit_idx].symbols.sym(s).ty;
                        fr.bind(s, Cell::scalar(ty));
                    }
                    let mut red_cells = Vec::new();
                    for &(op, s) in &info.reductions {
                        let ty = self.program.units[unit_idx].symbols.sym(s).ty;
                        let c = Cell::scalar(ty);
                        c.store_scalar(red_identity(op, ty));
                        fr.bind(s, c.clone());
                        red_cells.push((op, s, c));
                    }
                    let mut err = None;
                    for &v in *ch {
                        if st.tick(2.0).is_err() {
                            err = Some(RtError::new("step limit in parallel chunk"));
                            break;
                        }
                        var_cell.store_scalar(Value::Int(v));
                        match self.exec_block(unit_idx, &d.body, &fr, &mut st) {
                            Ok(Flow::Normal) => {}
                            Ok(_) => {
                                err = Some(RtError::new(
                                    "RETURN/STOP inside a PARALLEL DO is not supported",
                                ));
                                break;
                            }
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    let reductions = red_cells
                        .iter()
                        .map(|(op, s, c)| (*op, *s, c.load_scalar()))
                        .collect();
                    let lastprivates = info
                        .lastprivate
                        .iter()
                        .map(|&s| (s, fr.get(s).expect("bound above").load_scalar()))
                        .collect();
                    ChunkOut {
                        state: st,
                        reductions,
                        lastprivates,
                        has_last: is_last_chunk,
                        err,
                    }
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // Merge: first error wins; printed output in chunk order; vtime is
        // the max thread time (plus what we already had).
        let mut max_vt = 0.0f64;
        for out in &outs {
            if let Some(e) = &out.err {
                return Err(e.clone());
            }
            max_vt = max_vt.max(out.state.vtime);
        }
        for out in &outs {
            state.printed.extend(out.state.printed.iter().cloned());
            state.steps += out.state.steps;
            for (k, v) in &out.state.profile {
                let e = state.profile.entry(k.clone()).or_default();
                e.invocations += v.invocations;
                e.iterations += v.iterations;
                e.ops += v.ops;
            }
        }
        state.vtime += max_vt;
        // Combine reductions in chunk order (deterministic float sums).
        for out in &outs {
            for &(op, s, v) in &out.reductions {
                let cell = self.cell(unit, frame, s)?;
                let cur = cell.load_scalar();
                cell.store_scalar(combine(op, cur, v));
            }
        }
        for out in &outs {
            if out.has_last {
                for &(s, v) in &out.lastprivates {
                    self.cell(unit, frame, s)?.store_scalar(v);
                }
            }
        }
        // The loop variable's final value (F77 leaves it past the end).
        if let Some(&last) = vals.last() {
            self.cell(unit, frame, d.var)?.store_scalar(Value::Int(last + 1));
        }
        Ok(Flow::Normal)
    }

    fn exec_call(
        &self,
        unit_idx: usize,
        name: &str,
        args: &[Expr],
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Option<Value>, RtError> {
        let unit = &self.program.units[unit_idx];
        let callee_idx = self
            .program
            .unit_index(name)
            .ok_or_else(|| RtError::new(format!("call to unknown procedure {name}")))?;
        let callee = &self.program.units[callee_idx];
        if callee.args.len() != args.len() {
            return Err(RtError::new(format!(
                "{name} expects {} arguments, got {}",
                callee.args.len(),
                args.len()
            )));
        }
        state.tick(8.0)?; // call overhead
        let mut bound: Vec<(SymId, Arc<Cell>)> = Vec::with_capacity(args.len());
        // Copy-out obligations: (caller cell, flat index, temp cell).
        let mut writebacks: Vec<(Arc<Cell>, usize, Arc<Cell>)> = Vec::new();
        for (&formal, actual) in callee.args.iter().zip(args) {
            match actual {
                Expr::Var(s) if unit.symbols.sym(*s).param.is_none() => {
                    // Binding by reference is not itself a data access; the
                    // callee's actual reads/writes are recorded as they run.
                    let cell = self.cell(unit, frame, *s)?.clone();
                    bound.push((formal, cell));
                }
                Expr::Var(s) => {
                    // PARAMETER constant: pass by value in a temp cell.
                    let tmp = Cell::scalar(callee.symbols.sym(formal).ty);
                    tmp.store_scalar(const_value(
                        unit.symbols.sym(*s).param.expect("checked above"),
                    ));
                    bound.push((formal, tmp));
                }
                Expr::ArrayRef { sym, subs } => {
                    // Element passed by reference: copy-in/copy-out.
                    let mut idx = Vec::with_capacity(subs.len());
                    for e in subs {
                        idx.push(self.eval(unit_idx, e, frame, state)?.as_int());
                    }
                    let cell = self.cell(unit, frame, *sym)?.clone();
                    let arr = cell.as_array();
                    let flat = arr.linearize(&idx).ok_or_else(|| {
                        RtError::new(format!(
                            "argument subscript out of bounds in call to {name}"
                        ))
                    })?;
                    state.record(&cell, flat, true, unit_idx, *sym);
                    let tmp = Cell::scalar(callee.symbols.sym(formal).ty);
                    tmp.store_scalar(arr.load_flat(flat));
                    writebacks.push((cell.clone(), flat, tmp.clone()));
                    bound.push((formal, tmp));
                }
                other => {
                    let v = self.eval(unit_idx, other, frame, state)?;
                    let tmp = Cell::scalar(callee.symbols.sym(formal).ty);
                    tmp.store_scalar(v);
                    bound.push((formal, tmp));
                }
            }
        }
        let callee_frame = self.make_frame(callee_idx, &bound, state)?;
        if let Flow::Stop = self.exec_unit(callee_idx, &callee_frame, state)? {
            return Err(RtError::new("STOP inside a procedure"));
        }
        for (cell, flat, tmp) in writebacks {
            cell.as_array().store_flat(flat, tmp.load_scalar());
        }
        // Function result.
        if let ped_fortran::UnitKind::Function(_) = callee.kind {
            let ret = callee
                .symbols
                .lookup(&callee.name)
                .ok_or_else(|| RtError::new(format!("function {name} has no result var")))?;
            let v = callee_frame
                .get(ret)
                .ok_or_else(|| RtError::new("unbound function result"))?
                .load_scalar();
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    fn cell<'f>(
        &self,
        unit: &ProgramUnit,
        frame: &'f Frame,
        sym: SymId,
    ) -> Result<&'f Arc<Cell>, RtError> {
        frame.get(sym).ok_or_else(|| {
            RtError::new(format!("unbound symbol {} in {}", unit.symbols.name(sym), unit.name))
        })
    }

    fn eval(
        &self,
        unit_idx: usize,
        e: &Expr,
        frame: &Frame,
        state: &mut ExecState,
    ) -> Result<Value, RtError> {
        let unit = &self.program.units[unit_idx];
        state.vtime += 1.0;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v) | Expr::Double(v) => Ok(Value::Real(*v)),
            Expr::Logical(b) => Ok(Value::Logical(*b)),
            Expr::Str(_) => Err(RtError::new("character value outside PRINT")),
            Expr::Var(s) => {
                if let Some(c) = unit.symbols.sym(*s).param {
                    return Ok(const_value(c));
                }
                let cell = self.cell(unit, frame, *s)?;
                state.record(cell, 0, false, unit_idx, *s);
                Ok(cell.load_scalar())
            }
            Expr::ArrayRef { sym, subs } => {
                let mut idx = Vec::with_capacity(subs.len());
                for s in subs {
                    idx.push(self.eval(unit_idx, s, frame, state)?.as_int());
                }
                let cell = self.cell(unit, frame, *sym)?;
                let arr = cell.as_array();
                let flat = arr.linearize(&idx).ok_or_else(|| {
                    RtError::new(format!(
                        "subscript out of bounds: {}({idx:?}) in {}",
                        unit.symbols.name(*sym),
                        unit.name
                    ))
                })?;
                state.record(cell, flat, false, unit_idx, *sym);
                Ok(arr.load_flat(flat))
            }
            Expr::Un { op: UnOp::Neg, e } => {
                let v = self.eval(unit_idx, e, frame, state)?;
                Ok(match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Real(r) => Value::Real(-r),
                    Value::Logical(_) => return Err(RtError::new("negating a LOGICAL")),
                })
            }
            Expr::Un { op: UnOp::Not, e } => {
                let v = self.eval(unit_idx, e, frame, state)?;
                Ok(Value::Logical(!v.as_logical()))
            }
            Expr::Bin { op, l, r } => {
                let lv = self.eval(unit_idx, l, frame, state)?;
                // Short-circuit logicals for speed (F77 leaves order free).
                if *op == BinOp::And && !lv.as_logical() {
                    return Ok(Value::Logical(false));
                }
                if *op == BinOp::Or && lv.as_logical() {
                    return Ok(Value::Logical(true));
                }
                let rv = self.eval(unit_idx, r, frame, state)?;
                eval_bin(*op, lv, rv)
            }
            Expr::Intrinsic { op, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(unit_idx, a, frame, state)?);
                }
                state.vtime += 6.0;
                eval_intrinsic(*op, &vals)
            }
            Expr::Call { name, args } => {
                let v = self.exec_call(unit_idx, name, args, frame, state)?;
                v.ok_or_else(|| RtError::new(format!("{name} is a subroutine, not a function")))
            }
        }
    }
}

fn const_value(c: Const) -> Value {
    match c {
        Const::Int(v) => Value::Int(v),
        Const::Real(v) => Value::Real(v),
        Const::Logical(b) => Value::Logical(b),
    }
}

fn red_identity(op: RedOp, ty: Ty) -> Value {
    match (op, ty) {
        (RedOp::Sum, Ty::Integer) => Value::Int(0),
        (RedOp::Sum, _) => Value::Real(0.0),
        (RedOp::Product, Ty::Integer) => Value::Int(1),
        (RedOp::Product, _) => Value::Real(1.0),
        (RedOp::Min, Ty::Integer) => Value::Int(i64::MAX),
        (RedOp::Min, _) => Value::Real(f64::INFINITY),
        (RedOp::Max, Ty::Integer) => Value::Int(i64::MIN),
        (RedOp::Max, _) => Value::Real(f64::NEG_INFINITY),
    }
}

fn combine(op: RedOp, a: Value, b: Value) -> Value {
    match op {
        RedOp::Sum => num2(a, b, |x, y| x + y, |x, y| x + y),
        RedOp::Product => num2(a, b, |x, y| x * y, |x, y| x * y),
        RedOp::Min => num2(a, b, i64::min, f64::min),
        RedOp::Max => num2(a, b, i64::max, f64::max),
    }
}

fn num2(a: Value, b: Value, fi: impl Fn(i64, i64) -> i64, fr: impl Fn(f64, f64) -> f64) -> Value {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Value::Int(fi(x, y)),
        _ => Value::Real(fr(a.as_real(), b.as_real())),
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, RtError> {
    use BinOp::*;
    match op {
        Add => Ok(num2(l, r, |a, b| a.wrapping_add(b), |a, b| a + b)),
        Sub => Ok(num2(l, r, |a, b| a.wrapping_sub(b), |a, b| a - b)),
        Mul => Ok(num2(l, r, |a, b| a.wrapping_mul(b), |a, b| a * b)),
        Div => match (l, r) {
            (Value::Int(_), Value::Int(0)) => Err(RtError::new("integer division by zero")),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            _ => Ok(Value::Real(l.as_real() / r.as_real())),
        },
        Pow => match (l, r) {
            (Value::Int(a), Value::Int(b)) if b >= 0 => {
                Ok(Value::Int(a.wrapping_pow(b.min(63) as u32)))
            }
            _ => Ok(Value::Real(l.as_real().powf(r.as_real()))),
        },
        Lt | Le | Gt | Ge | Eq | Ne => {
            let res = match (l, r) {
                (Value::Int(a), Value::Int(b)) => cmp(op, a.partial_cmp(&b)),
                _ => cmp(op, l.as_real().partial_cmp(&r.as_real())),
            };
            Ok(Value::Logical(res))
        }
        And => Ok(Value::Logical(l.as_logical() && r.as_logical())),
        Or => Ok(Value::Logical(l.as_logical() || r.as_logical())),
        Concat => Err(RtError::new("character concatenation outside PRINT")),
    }
}

fn cmp(op: BinOp, ord: Option<std::cmp::Ordering>) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord),
        (BinOp::Lt, Some(Less))
            | (BinOp::Le, Some(Less | Equal))
            | (BinOp::Gt, Some(Greater))
            | (BinOp::Ge, Some(Greater | Equal))
            | (BinOp::Eq, Some(Equal))
            | (BinOp::Ne, Some(Less | Greater))
    )
}

fn eval_intrinsic(op: Intrinsic, vals: &[Value]) -> Result<Value, RtError> {
    use Intrinsic::*;
    let need = |n: usize| -> Result<(), RtError> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(RtError::new(format!("{} expects {n} arguments", op.name())))
        }
    };
    match op {
        Min | Max => {
            if vals.is_empty() {
                return Err(RtError::new("MIN/MAX need arguments"));
            }
            let mut acc = vals[0];
            for &v in &vals[1..] {
                acc = match op {
                    Min => num2(acc, v, i64::min, f64::min),
                    _ => num2(acc, v, i64::max, f64::max),
                };
            }
            Ok(acc)
        }
        Mod => {
            need(2)?;
            match (vals[0], vals[1]) {
                (Value::Int(_), Value::Int(0)) => Err(RtError::new("MOD by zero")),
                (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a % b)),
                (a, b) => Ok(Value::Real(a.as_real() % b.as_real())),
            }
        }
        Abs => {
            need(1)?;
            Ok(match vals[0] {
                Value::Int(v) => Value::Int(v.abs()),
                v => Value::Real(v.as_real().abs()),
            })
        }
        Sqrt => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().sqrt()))
        }
        Sin => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().sin()))
        }
        Cos => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().cos()))
        }
        Exp => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().exp()))
        }
        Log => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real().ln()))
        }
        Float | Dble => {
            need(1)?;
            Ok(Value::Real(vals[0].as_real()))
        }
        Int => {
            need(1)?;
            Ok(Value::Int(vals[0].as_int()))
        }
        Sign => {
            need(2)?;
            let mag = vals[0].as_real().abs();
            let s = if vals[1].as_real() < 0.0 { -mag } else { mag };
            Ok(match (vals[0], vals[1]) {
                (Value::Int(a), Value::Int(b)) => {
                    Value::Int(if b < 0 { -a.abs() } else { a.abs() })
                }
                _ => Value::Real(s),
            })
        }
    }
}

/// Evaluate constant array dims for COMMON allocation (literals/PARAMETERs).
fn static_dims(unit: &ProgramUnit, sym: SymId) -> Result<Vec<(i64, i64)>, RtError> {
    let mut out = Vec::new();
    for d in &unit.symbols.sym(sym).dims {
        let lo = static_int(unit, &d.lo)?;
        let hi = match &d.hi {
            Some(e) => static_int(unit, e)?,
            None => return Err(RtError::new("assumed-size COMMON array")),
        };
        out.push((lo, hi));
    }
    Ok(out)
}

fn static_int(unit: &ProgramUnit, e: &Expr) -> Result<i64, RtError> {
    match ped_analysis::constants::eval(unit, &ped_analysis::constants::Facts::new(), e) {
        Some(Const::Int(v)) => Ok(v),
        _ => Err(RtError::new("COMMON array bound is not a constant")),
    }
}

/// Parse-and-run helper used across tests and benches.
pub fn run_source(src: &str, config: ExecConfig) -> Result<RunResult, RtError> {
    let program =
        ped_fortran::parse_program(src).map_err(|e| RtError::new(format!("parse: {e}")))?;
    Interp::new(&program, config)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> RunResult {
        run_source(src, ExecConfig::default()).expect("run failed")
    }

    #[test]
    fn arithmetic_and_print() {
        let r = run("program t\nx = 2.0\ny = x ** 2 + 1.0\nn = 7 / 2\nprint *, y, n\nend\n");
        assert_eq!(r.printed, vec!["5.0 3"]);
    }

    #[test]
    fn loops_and_arrays() {
        let r = run(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = i * 2.0\nenddo\ns = 0.0\n\
             do i = 1, 10\ns = s + a(i)\nenddo\nprint *, s\nend\n",
        );
        assert_eq!(r.printed, vec!["110.0"]);
    }

    #[test]
    fn two_dim_column_major() {
        let r = run(
            "program t\nreal a(3,3)\ndo j = 1, 3\ndo i = 1, 3\na(i,j) = i * 10 + j\nenddo\n\
             enddo\nprint *, a(2,3)\nend\n",
        );
        assert_eq!(r.printed, vec!["23.0"]);
    }

    #[test]
    fn if_elseif_else() {
        let r = run(
            "program t\nx = 5.0\nif (x .lt. 0.0) then\nprint *, 'neg'\nelse if (x .lt. 10.0) then\n\
             print *, 'small'\nelse\nprint *, 'big'\nendif\nend\n",
        );
        assert_eq!(r.printed, vec!["small"]);
    }

    #[test]
    fn subroutine_by_reference() {
        let r = run(
            "program t\nreal a(5)\ncall fill(a, 5)\nprint *, a(1), a(5)\nend\n\
             subroutine fill(x, n)\ninteger n\nreal x(n)\ndo i = 1, n\nx(i) = i * 1.0\nenddo\nend\n",
        );
        assert_eq!(r.printed, vec!["1.0 5.0"]);
    }

    #[test]
    fn function_result() {
        let r = run(
            "program t\nreal v(4)\ndo i = 1, 4\nv(i) = 1.0\nenddo\nprint *, norm2(v, 4)\nend\n\
             real function norm2(x, n)\ninteger n\nreal x(n)\nnorm2 = 0.0\ndo i = 1, n\n\
             norm2 = norm2 + x(i) * x(i)\nenddo\nnorm2 = sqrt(norm2)\nend\n",
        );
        assert_eq!(r.printed, vec!["2.0"]);
    }

    #[test]
    fn common_shared_between_units() {
        let r = run(
            "program t\ncommon /c/ g\ng = 1.0\ncall bump()\ncall bump()\nprint *, g\nend\n\
             subroutine bump()\ncommon /c/ h\nh = h + 1.0\nend\n",
        );
        assert_eq!(r.printed, vec!["3.0"]);
    }

    #[test]
    fn out_of_bounds_caught() {
        let e = run_source(
            "program t\nreal a(5)\na(6) = 1.0\nend\n",
            ExecConfig::default(),
        )
        .unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");
    }

    #[test]
    fn step_limit_catches_runaway() {
        let e = run_source(
            "program t\nreal a(5)\ndo i = 1, 1000000\ndo j = 1, 1000000\na(1) = 1.0\nenddo\nenddo\nend\n",
            ExecConfig { max_steps: 10_000, ..ExecConfig::default() },
        )
        .unwrap_err();
        assert!(e.message.contains("step limit"), "{e}");
    }

    #[test]
    fn parameters_fold() {
        let r = run(
            "program t\ninteger n\nparameter (n = 4)\nreal a(n)\ndo i = 1, n\na(i) = 1.0\nenddo\n\
             print *, n\nend\n",
        );
        assert_eq!(r.printed, vec!["4"]);
    }

    #[test]
    fn do_with_step_and_negative() {
        let r = run(
            "program t\nk = 0\ndo i = 1, 10, 3\nk = k + 1\nenddo\nm = 0\ndo i = 5, 1, -2\n\
             m = m + 1\nenddo\nprint *, k, m\nend\n",
        );
        assert_eq!(r.printed, vec!["4 3"]);
    }

    #[test]
    fn parallel_threads_match_serial() {
        let src = "program t\nreal a(1000), b(1000)\ndo i = 1, 1000\nb(i) = i * 1.0\nenddo\n\
                   parallel do i = 1, 1000 private(t1)\nt1 = b(i) * 2.0\na(i) = t1 + 1.0\nenddo\n\
                   s = 0.0\ndo i = 1, 1000\ns = s + a(i)\nenddo\nprint *, s\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(4), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(serial.printed, par.printed);
    }

    #[test]
    fn parallel_reduction_matches_serial() {
        let src = "program t\nreal a(1000)\ndo i = 1, 1000\na(i) = 1.5\nenddo\ns = 0.0\n\
                   parallel do i = 1, 1000 reduction(+:s)\ns = s + a(i)\nenddo\nprint *, s\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(8), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(serial.printed, par.printed);
        assert_eq!(par.printed, vec!["1500.0"]);
    }

    #[test]
    fn lastprivate_writes_back() {
        let src = "program t\nreal a(100)\nparallel do i = 1, 100 lastprivate(t1)\n\
                   t1 = i * 1.0\na(i) = t1\nenddo\nprint *, t1\nend\n";
        let par = run_source(
            src,
            ExecConfig { mode: ParallelMode::Threads(4), ..ExecConfig::default() },
        )
        .unwrap();
        assert_eq!(par.printed, vec!["100.0"]);
    }

    #[test]
    fn simulate_charges_less_than_serial_sum() {
        let src = "program t\nreal a(10000)\nparallel do i = 1, 10000\n\
                   a(i) = sqrt(i * 1.0)\nenddo\nprint *, a(100)\nend\n";
        let serial = run_source(src, ExecConfig::default()).unwrap();
        let sim = run_source(
            src,
            ExecConfig {
                mode: ParallelMode::Simulate(Machine::with_procs(8)),
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.printed, sim.printed);
        let speedup = serial.vtime / sim.vtime;
        assert!(speedup > 4.0, "speedup was {speedup}");
    }

    #[test]
    fn race_detector_flags_bad_parallelization() {
        // A genuine recurrence wrongly marked parallel.
        let src = "program t\nreal a(100)\na(1) = 1.0\nparallel do i = 2, 100\n\
                   a(i) = a(i-1) + 1.0\nenddo\nprint *, a(100)\nend\n";
        let sim = run_source(
            src,
            ExecConfig {
                mode: ParallelMode::Simulate(Machine::alliant8()),
                detect_races: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(!sim.races.is_empty(), "race must be detected");
        assert_eq!(sim.races[0].var, "a");
    }

    #[test]
    fn race_detector_clean_on_good_parallelization() {
        let src = "program t\nreal a(100), b(100)\nparallel do i = 1, 100 private(t1)\n\
                   t1 = i * 1.0\na(i) = t1\nenddo\nprint *, a(5)\nend\n";
        let _ = src;
        let sim = run_source(
            "program t\nreal a(100)\nparallel do i = 1, 100 private(t1)\nt1 = i * 1.0\n\
             a(i) = t1\nenddo\nprint *, a(5)\nend\n",
            ExecConfig {
                mode: ParallelMode::Simulate(Machine::alliant8()),
                detect_races: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(sim.races.is_empty(), "{:?}", sim.races);
    }

    #[test]
    fn profile_counts_loops() {
        let r = run(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = 1.0\nenddo\ndo i = 1, 5\na(i) = 2.0\n\
             enddo\nend\n",
        );
        let mut iters: Vec<u64> = r.profile.values().map(|s| s.iterations).collect();
        iters.sort();
        assert_eq!(iters, vec![5, 10]);
    }

    #[test]
    fn intrinsics_work() {
        let r = run(
            "program t\nprint *, max(1, 7, 3), min(2.0, 1.5), mod(10, 3), abs(-4)\nend\n",
        );
        assert_eq!(r.printed, vec!["7 1.5 1 4"]);
    }

    #[test]
    fn element_argument_copy_in_out() {
        let r = run(
            "program t\nreal a(3)\na(2) = 5.0\ncall twice(a(2))\nprint *, a(2)\nend\n\
             subroutine twice(x)\nreal x\nx = x * 2.0\nend\n",
        );
        assert_eq!(r.printed, vec!["10.0"]);
    }
}
