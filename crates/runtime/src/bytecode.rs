//! The register-bytecode engine: compile-before-interpret.
//!
//! The tree walker in [`crate::interp`] resolves names, re-matches AST
//! enums, and allocates subscript vectors on every statement execution —
//! fine for an oracle, fatal for throughput (E14 measured parallel
//! *slowdowns* because per-iteration dispatch swamped the worker pool).
//! This module lowers every program unit once, at [`crate::interp::Interp::new`],
//! to a compact register code:
//!
//! * every variable reference is a frame-slot index ([`ped_fortran::SymId`]),
//!   resolved at compile time — no per-iteration lookups;
//! * expressions evaluate through a register file (`Vec<Value>`) reused
//!   across iterations — no per-node recursion;
//! * affine subscripts (`a(i)`, `a(i+1)`, `a(3)`, multi-dim combinations)
//!   get a fused load/store instruction that reads the index variable and
//!   linearizes directly — no subscript vector, no expression dispatch;
//! * the tree walker's cost model is preserved *exactly*: every AST node's
//!   virtual-time charge is folded into the instruction that covers it, and
//!   every statement/iteration/call charges the same [`ExecState::tick`]
//!   against the same shared step budget, so `max_steps` aborts at the
//!   same statement in either engine and `vtime` stays bit-identical
//!   (every charge is an integer-valued f64, summed exactly).
//!
//! **Two engines, one semantics.** Shadow logging, reduction operand
//! recognition, profile entries, and error messages are all routed through
//! the same code paths the tree walker uses (`red_assign`, `make_frame`,
//! `eval_bin`, `eval_intrinsic`), or mirror them instruction-for-
//! instruction; the differential oracle in `tests/engine_oracle.rs` holds
//! the two engines bit-identical across every mode and schedule.
//!
//! Control flow is structured: `IF` arms compile to forward jumps inside a
//! flat [`Code`] block, `DO` loops keep their body as a separate block
//! (which is what lets the worker pool dispatch a compiled chunk closure —
//! see `LoopJob::cdo`), and calls execute the callee's compiled unit with
//! a fresh register file.

use crate::interp::{
    const_value, eval_bin, eval_intrinsic, eval_neg, num2, ExecState, Flow, Interp, ParallelMode,
    RtError,
};
use crate::memory::{ArrayCell, Cell, Frame};
use crate::value::Value;
use ped_fortran::ast::Intrinsic;
use ped_fortran::symbols::Const;
use ped_fortran::{
    BinOp, DoLoop, Expr, LValue, Program, ProgramUnit, RedOp, StmtId, StmtKind, SymId, Ty, UnOp,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// A straight-line block of instructions (plus internal forward jumps).
pub(crate) type Code = Vec<Inst>;

/// One instruction: opcode plus its pre-charged cost.
///
/// `cost` is the virtual time charged when the instruction executes — the
/// sum of the tree walker's per-node charges for the AST region this
/// instruction covers. `tick` marks the first instruction of a statement:
/// it routes the charge through [`ExecState::tick`] (one budget step, like
/// the walker's per-statement `tick(1.0)`); all other charges are plain
/// `vtime` additions, exactly like `eval`'s per-node accounting.
#[derive(Debug)]
pub(crate) struct Inst {
    pub(crate) op: Op,
    pub(crate) cost: f64,
    pub(crate) tick: bool,
}

/// Opcodes. Registers are `u16` indices into the unit's register file.
#[derive(Debug)]
pub(crate) enum Op {
    /// No effect (CONTINUE / removed statements still tick).
    Nop,
    /// `regs[dst] = v` (literals and folded PARAMETER constants).
    Const { dst: u16, v: Value },
    /// Scalar load through the frame slot (records a shadow read).
    LoadVar { dst: u16, sym: SymId },
    /// Scalar store through the frame slot (records a shadow write).
    StoreVar { sym: SymId, src: u16 },
    /// Array load; subscripts are in `regs[base..base+n]`.
    LoadElem { dst: u16, sym: SymId, base: u16, n: u16 },
    /// Array store of `regs[src]`; subscripts in `regs[base..base+n]`.
    StoreElem { sym: SymId, base: u16, n: u16, src: u16 },
    /// Affine fast-path array load: subscripts come straight from index
    /// variables plus constant addends (plan in the unit's `affs` pool).
    /// Only compiled when shadow logging is off.
    LoadElemA { dst: u16, sym: SymId, plan: u32 },
    /// Affine fast-path array store.
    StoreElemA { sym: SymId, plan: u32, src: u16 },
    /// Arithmetic negate (errors on LOGICAL, like the walker).
    Neg { dst: u16, src: u16 },
    /// Logical not.
    Not { dst: u16, src: u16 },
    /// Binary operator via the shared [`eval_bin`].
    Bin { op: BinOp, dst: u16, l: u16, r: u16 },
    /// Intrinsic via the shared [`eval_intrinsic`]; args in
    /// `regs[base..base+n]`.
    Intr { op: Intrinsic, dst: u16, base: u16, n: u16 },
    /// Unconditional forward jump (absolute index in this block).
    Jump(u32),
    /// Jump when `regs[cond]` is false (IF arms, `.AND.` short-circuit).
    JumpIfFalse { cond: u16, target: u32 },
    /// Jump when `regs[cond]` is true (`.OR.` short-circuit).
    JumpIfTrue { cond: u16, target: u32 },
    /// Execute a DO loop (plan in the unit's `dos` pool; bounds already
    /// evaluated into the plan's registers by the preceding instructions).
    Do(u32),
    /// Call a procedure (plan in `calls`); when `want`, the function
    /// result lands in `regs[dst]`.
    Call { plan: u32, dst: u16, want: bool },
    /// PRINT (plan in `prints`; value items already in registers).
    Print(u32),
    /// Reduction gate on a scalar assignment: when the target cell is
    /// under reduction-operand watching (worker chunks of a
    /// `reduction(...)` loop), route the store through the tree walker's
    /// `red_assign` recognizer and skip the compiled store. This is the
    /// slow-path route only: fast bodies whose accumulator stores are all
    /// recognized at compile time (`FastBody::red_ok`) log operands
    /// directly through [`FastOp::RedLog`] instead — E14 measured the
    /// per-store gate escape at ~14x *slower* than serial. Either route
    /// keeps operand logs bit-identical to serial.
    RedGate { plan: u32, skip: u32 },
    /// RETURN.
    Return,
    /// STOP.
    Stop,
    /// Deterministic runtime error (message in the unit's `msgs` pool).
    Fail(u32),
}

/// Affine subscript plan: per dimension, `addend + value(sym)` where a
/// `None` sym means a compile-time constant subscript. Index variables are
/// loaded with the walker's wrapping integer arithmetic.
#[derive(Debug)]
pub(crate) struct AffinePlan {
    dims: Vec<(Option<SymId>, i64)>,
}

/// A compiled DO loop: the AST loop (for the pool / clause info), its
/// profile key, the registers holding its evaluated bounds, the compiled
/// body block, and — when the body is straight-line — its fast form.
#[derive(Debug)]
pub(crate) struct CompiledLoop<'p> {
    sid: StmtId,
    d: &'p DoLoop,
    lo: u16,
    hi: u16,
    step: Option<u16>,
    body: Code,
    fast: Option<FastBody>,
}

/// Where an affine subscript dimension reads its index from.
#[derive(Debug, Clone, Copy)]
enum IdxSrc {
    /// The loop's own control variable: read the in-flight value, no cell.
    Iter,
    /// A promoted scalar (an outer loop's variable, say): a register.
    Reg(u16),
    /// Compile-time constant subscript; the addend carries the value.
    Konst,
}

/// A fast-path array access: the symbol (for bounds messages and per-entry
/// cell resolution) and the per-dimension `(source, addend)` plan.
/// Generic-subscript accesses (`a(expr)`) leave `dims` empty — their
/// subscripts come from registers at the use site.
#[derive(Debug)]
struct FastAcc {
    sym: SymId,
    dims: Vec<(IdxSrc, i64)>,
}

/// A fast operand: a register, a folded constant, or the in-flight loop
/// variable. Folding constants and copies into operands is what lets the
/// optimizer drop the ops that produced them.
#[derive(Debug, Clone, Copy)]
enum Opnd {
    Reg(u16),
    Imm(Value),
    Iter,
}

/// Fast-path opcodes. Same register file as the slow block (promoted
/// scalars live in extra registers past the unit's high-water mark), but
/// cells are pre-resolved per loop entry and nothing charges — the
/// iteration is charged in bulk.
#[derive(Debug)]
enum FastOp {
    /// Materialize a constant (kept only when a register-range consumer
    /// needs the value in place).
    Const { dst: u16, v: Value },
    /// Materialize the loop variable (kept only for range consumers).
    LoadIter { dst: u16 },
    /// Register move (kept only for range consumers).
    Copy { dst: u16, src: u16 },
    /// Write-through to a promoted scalar: `regs[p] = src.coerce(ty)` —
    /// the same coercion the cell store performs, so promoted reads are
    /// bit-identical to reloading the cell.
    StoreP { p: u16, slot: u16, src: Opnd },
    /// Affine access through resolved-access slot `a`.
    LoadA { dst: u16, a: u16 },
    StoreA { a: u16, src: Opnd },
    /// Generic-subscript access: values in `regs[base..base+n]`.
    LoadN { dst: u16, a: u16, base: u16, n: u16 },
    StoreN { a: u16, base: u16, n: u16, src: Opnd },
    Neg { dst: u16, src: Opnd },
    Not { dst: u16, src: Opnd },
    Bin { op: BinOp, dst: u16, l: Opnd, r: Opnd },
    Intr { op: Intrinsic, dst: u16, base: u16, n: u16 },
    /// Log an accumulation operand for reduction `red` (index into the
    /// loop's `reduction(...)` clause). Spliced by `red_recognize`
    /// immediately before the spine operator that consumes the operand,
    /// so the logged value is exactly what the fold consumes; a no-op
    /// when the caller supplies no operand buffers (serial execution).
    /// Charges nothing — `red_assign` charges what the plain evaluation
    /// would have, and the plain evaluation is exactly what runs here.
    RedLog { red: u16, src: Opnd },
}

/// A straight-line loop body in fast form: no jumps, calls, prints, nested
/// loops, or control flow — so the per-iteration charge is a compile-time
/// constant and every cell the body touches can be resolved once per loop
/// entry instead of once per access.
///
/// Three compile-time transforms carry the throughput:
///
/// * **scalar promotion** — every scalar the body reads or writes lives in
///   a dedicated register past the unit's high-water mark; cells are read
///   once at promotion (`prologue`) and written back at every fast/slow
///   boundary (`flush`), so the cell always holds exactly what the slow
///   path would have left there whenever anything else can look;
/// * **constant/copy folding** — constants, loop-variable reads, and
///   register moves become operands of their consumers and the producing
///   ops are dropped (kept only when a register-range consumer like an
///   intrinsic call needs the value materialized in place);
/// * **bulk charging** — `steps`/`cost` fold the walker's per-iteration
///   `tick(2.0)` with every instruction's tick and vtime charge; all
///   charges are integer-valued f64s, so the bulk sum is bit-identical to
///   the slow path's running sum.
///
/// Two guards keep the observable semantics exact: a fast iteration only
/// runs while the budget grant already covers the whole iteration
/// (`granted >= steps`) — otherwise that iteration runs through the slow
/// path, whose per-tick refill/abort is the walker's, so `max_steps`
/// aborts at the identical statement; and when an op faults, the charges
/// of the original instructions past it are rolled back (`origs` maps
/// each kept op to its original position), leaving `steps`/`vtime`
/// exactly where the slow path would have stopped.
#[derive(Debug)]
pub(crate) struct FastBody {
    ops: Vec<FastOp>,
    /// `ops[i]` came from original instruction `origs[i]` (fault rollback).
    origs: Vec<u16>,
    /// Per ORIGINAL instruction `(cost, tick)` — rollback data.
    charge: Vec<(f64, bool)>,
    /// Scalar symbols, promoted to `regs[base + slot]`.
    scalars: Vec<SymId>,
    /// Array accesses, resolved once per loop entry.
    accs: Vec<FastAcc>,
    /// Promoted slots the body stores to (the flush set).
    stored: Vec<u16>,
    /// First promoted register (the unit's register high-water mark).
    base: u16,
    /// Register-file size needed: `base + scalars.len()`.
    pub(crate) nregs: usize,
    /// Per-iteration budget steps (iteration tick + statement ticks).
    pub(crate) steps: u64,
    /// Per-iteration vtime (iteration 2.0 + every instruction's cost).
    cost: f64,
    /// Every store to a `reduction(...)` accumulator was recognized as
    /// the same fold spine `red_assign` matches at runtime, the operands
    /// are captured by spliced [`FastOp::RedLog`] ops, and nothing else
    /// in the body reads an accumulator — so worker chunks may run this
    /// body fast even while the reduction cells are watched.
    pub(crate) red_ok: bool,
    /// All-f64 specialization, when static types allow one.
    pub(crate) typed: Option<TypedBody>,
}

/// A typed f64 operand.
#[derive(Debug, Clone, Copy)]
enum FOpnd {
    /// An f64 register.
    F(u16),
    /// A folded constant, already converted (`as_real`).
    Imm(f64),
    /// The loop variable, converted on read (`cur as f64` — exactly the
    /// `as_real` promotion `num2` applies to a mixed Int operand).
    Iter,
}

/// Typed f64 opcodes — the all-Real specialization of [`FastOp`]. Every
/// operation here is the exact f64 arithmetic `eval_bin`/`eval_neg`
/// perform once `num2` promotion has happened, so results are
/// bit-identical; the only faults left are subscript bounds.
#[derive(Debug)]
enum TOp {
    LoadA { dst: u16, a: u16 },
    StoreA { a: u16, src: FOpnd },
    /// Promoted-scalar write: `REAL` cells coerce to Real, which for an
    /// already-f64 value is the identity, so this is a register move.
    StoreP { p: u16, src: FOpnd },
    Add { dst: u16, l: FOpnd, r: FOpnd },
    Sub { dst: u16, l: FOpnd, r: FOpnd },
    Mul { dst: u16, l: FOpnd, r: FOpnd },
    Div { dst: u16, l: FOpnd, r: FOpnd },
    Pow { dst: u16, l: FOpnd, r: FOpnd },
    Neg { dst: u16, src: FOpnd },
    /// Typed form of [`FastOp::RedLog`]: the operand is statically Real
    /// (or an Int the fold would promote with the identical `as f64`
    /// conversion `num2` applies), so logging the converted value merges
    /// bit-identically.
    RedLog { red: u16, src: FOpnd },
}

/// The all-f64 specialization of a fast body: raw `f64` registers, no
/// `Value` tags, no coercion dispatch. Compiled when static types prove
/// every computed value Real: all arrays and stored scalars declared
/// `REAL`/`DOUBLE`, integer scalars appearing only as subscript sources,
/// and no integer-by-integer arithmetic (whose wrapping semantics have no
/// f64 analogue). Declared types can lie across call boundaries (a caller
/// may bind an `INTEGER` cell to a `REAL` dummy), so [`Interp::fast_resolve`]
/// re-verifies every cell's type before the typed tier is allowed to run.
#[derive(Debug)]
pub(crate) struct TypedBody {
    ops: Vec<TOp>,
    /// Same fault-rollback mapping as [`FastBody::origs`].
    origs: Vec<u16>,
    /// Real promoted slots: live in `fregs[base + slot]`.
    real_slots: Vec<u16>,
    /// Integer promoted slots: subscript sources only, loop-invariant
    /// (the body never stores them), loaded once per entry into `iregs`.
    int_slots: Vec<u16>,
}

/// Try to specialize a compacted fast body to all-f64 ops.
fn typed_compile(fb: &FastBody, unit: &ProgramUnit) -> Option<TypedBody> {
    #[derive(Clone, Copy, PartialEq)]
    enum T {
        I,
        R,
    }
    let slot_ty = |slot: u16| unit.symbols.sym(fb.scalars[slot as usize]).ty;
    // Every array the body touches must be Real, and every access affine
    // (generic subscripts imply LoadN/StoreN, which have no typed form).
    for fa in &fb.accs {
        if !matches!(unit.symbols.sym(fa.sym).ty, Ty::Real | Ty::Double) {
            return None;
        }
        for &(src, _) in &fa.dims {
            if let IdxSrc::Reg(r) = src {
                if slot_ty(r - fb.base) != Ty::Integer {
                    return None;
                }
            }
        }
    }
    // Stored scalars must be Real (their cells receive Real coercions).
    for &slot in &fb.stored {
        if !matches!(slot_ty(slot), Ty::Real | Ty::Double) {
            return None;
        }
    }
    let mut ty: Vec<Option<T>> = vec![None; fb.nregs];
    for (slot, &s) in fb.scalars.iter().enumerate() {
        ty[fb.base as usize + slot] = match unit.symbols.sym(s).ty {
            Ty::Real | Ty::Double => Some(T::R),
            // Integer slots never appear as operands (checked below);
            // typing them I lets the check be uniform.
            Ty::Integer => Some(T::I),
            Ty::Logical => return None,
        };
    }
    let conv = |o: Opnd, ty: &[Option<T>]| -> Option<(FOpnd, T)> {
        match o {
            Opnd::Reg(r) => match ty[r as usize] {
                Some(T::R) => Some((FOpnd::F(r), T::R)),
                // An Int register operand would need wrapping-int ops.
                _ => None,
            },
            Opnd::Imm(v) => match v {
                Value::Int(i) => Some((FOpnd::Imm(i as f64), T::I)),
                Value::Real(x) => Some((FOpnd::Imm(x), T::R)),
                Value::Logical(_) => None,
            },
            Opnd::Iter => Some((FOpnd::Iter, T::I)),
        }
    };
    let mut ops = Vec::with_capacity(fb.ops.len());
    let mut origs = Vec::with_capacity(fb.ops.len());
    for (j, op) in fb.ops.iter().enumerate() {
        let t = match op {
            FastOp::LoadA { dst, a } => {
                ty[*dst as usize] = Some(T::R);
                TOp::LoadA { dst: *dst, a: *a }
            }
            FastOp::StoreA { a, src } => {
                let (s, _) = conv(*src, &ty)?;
                TOp::StoreA { a: *a, src: s }
            }
            FastOp::StoreP { p, src, .. } => {
                let (s, _) = conv(*src, &ty)?;
                TOp::StoreP { p: *p, src: s }
            }
            FastOp::Bin { op, dst, l, r } => {
                let (lo, lt) = conv(*l, &ty)?;
                let (ro, rt) = conv(*r, &ty)?;
                if lt == T::I && rt == T::I {
                    // both-Int arithmetic stays on the wrapping-int path
                    return None;
                }
                ty[*dst as usize] = Some(T::R);
                let (dst, l, r) = (*dst, lo, ro);
                match op {
                    BinOp::Add => TOp::Add { dst, l, r },
                    BinOp::Sub => TOp::Sub { dst, l, r },
                    BinOp::Mul => TOp::Mul { dst, l, r },
                    BinOp::Div => TOp::Div { dst, l, r },
                    BinOp::Pow => TOp::Pow { dst, l, r },
                    _ => return None, // comparisons/logical produce LOGICAL
                }
            }
            FastOp::Neg { dst, src } => {
                let (s, st) = conv(*src, &ty)?;
                if st == T::I {
                    return None; // Int negate wraps
                }
                ty[*dst as usize] = Some(T::R);
                TOp::Neg { dst: *dst, src: s }
            }
            FastOp::RedLog { red, src } => {
                let (s, _) = conv(*src, &ty)?;
                TOp::RedLog { red: *red, src: s }
            }
            // Materialized producers (range-op feeds, revived copies) and
            // everything else keep the generic tier.
            _ => return None,
        };
        ops.push(t);
        origs.push(fb.origs[j]);
    }
    let mut real_slots = Vec::new();
    let mut int_slots = Vec::new();
    for slot in 0..fb.scalars.len() as u16 {
        match slot_ty(slot) {
            Ty::Real | Ty::Double => real_slots.push(slot),
            Ty::Integer => int_slots.push(slot),
            Ty::Logical => unreachable!("bailed above"),
        }
    }
    Some(TypedBody { ops, origs, real_slots, int_slots })
}

impl TypedBody {
    /// Load promoted scalars into the typed register files.
    #[inline]
    pub(crate) fn prologue(
        &self,
        fb: &FastBody,
        ctx: &FastCtx<'_>,
        fregs: &mut [f64],
        iregs: &mut [i64],
    ) {
        for &slot in &self.real_slots {
            fregs[fb.base as usize + slot as usize] =
                ctx.cells[slot as usize].load_scalar().as_real();
        }
        for &slot in &self.int_slots {
            iregs[slot as usize] = ctx.cells[slot as usize].load_scalar().as_int();
        }
    }

    /// Write stored promoted scalars back (cells are Real: exact bits).
    #[inline]
    pub(crate) fn flush(&self, fb: &FastBody, ctx: &FastCtx<'_>, fregs: &[f64]) {
        for &slot in &fb.stored {
            ctx.cells[slot as usize]
                .store_scalar(Value::Real(fregs[fb.base as usize + slot as usize]));
        }
    }
}

impl FastBody {
    /// Number of promoted scalar slots (sizes the typed `iregs` file).
    pub(crate) fn nslots(&self) -> usize {
        self.scalars.len()
    }

    /// Load every promoted scalar from its cell (entering fast mode).
    #[inline]
    pub(crate) fn prologue(&self, ctx: &FastCtx<'_>, regs: &mut [Value]) {
        for (k, cell) in ctx.cells.iter().enumerate() {
            regs[self.base as usize + k] = cell.load_scalar();
        }
    }

    /// Write every stored promoted scalar back to its cell (leaving fast
    /// mode — before a slow iteration, a fault, or the loop exit).
    #[inline]
    pub(crate) fn flush(&self, ctx: &FastCtx<'_>, regs: &[Value]) {
        for &slot in &self.stored {
            ctx.cells[slot as usize].store_scalar(regs[self.base as usize + slot as usize]);
        }
    }
}

/// Try to put a loop body in fast form. Bails (returns `None`) on any
/// control flow, nested loop, call, print, explicit failure, or a store
/// to the loop variable itself — those bodies stay on the slow path.
fn fast_compile(
    body: &Code,
    affs: &[AffinePlan],
    var: SymId,
    base: u16,
    unit: &ProgramUnit,
    reds: &[(RedOp, SymId)],
) -> Option<FastBody> {
    let mut scalars: Vec<SymId> = Vec::new();
    let mut accs: Vec<FastAcc> = Vec::new();
    let mut stored: Vec<u16> = Vec::new();
    let mut steps = 1u64; // the iteration tick
    let mut cost = 2.0; // its 2.0 vtime
    let mut charge = Vec::with_capacity(body.len());
    let mut ops: Vec<FastOp> = Vec::with_capacity(body.len());
    // `None` marks dropped (charge-only) positions; `ops` stays aligned
    // with `body` until the final compaction.
    let mut keep: Vec<bool> = Vec::with_capacity(body.len());

    let slot = |scalars: &mut Vec<SymId>, s: SymId| -> u16 {
        match scalars.iter().position(|&t| t == s) {
            Some(i) => i as u16,
            None => {
                scalars.push(s);
                (scalars.len() - 1) as u16
            }
        }
    };

    // ---- pass 0: translate, promoting scalars as we go ----
    for inst in body {
        let op = match &inst.op {
            // The reduction gate never executes on the fast path: entry
            // requires either an empty watch set or a `red_ok` body,
            // whose accumulator stores log through `RedLog` instead.
            // CONTINUE only charges.
            Op::Nop | Op::RedGate { .. } => None,
            Op::Const { dst, v } => Some(FastOp::Const { dst: *dst, v: *v }),
            Op::LoadVar { dst, sym } if *sym == var => Some(FastOp::LoadIter { dst: *dst }),
            Op::LoadVar { dst, sym } => {
                let c = slot(&mut scalars, *sym);
                Some(FastOp::Copy { dst: *dst, src: base + c })
            }
            Op::StoreVar { sym, .. } if *sym == var => return None,
            Op::StoreVar { sym, src } => {
                let c = slot(&mut scalars, *sym);
                if !stored.contains(&c) {
                    stored.push(c);
                }
                Some(FastOp::StoreP { p: base + c, slot: c, src: Opnd::Reg(*src) })
            }
            Op::LoadElemA { dst, sym, plan } | Op::StoreElemA { sym, plan, src: dst } => {
                let dims = affs[*plan as usize]
                    .dims
                    .iter()
                    .map(|&(isym, add)| match isym {
                        Some(s) if s == var => (IdxSrc::Iter, add),
                        Some(s) => (IdxSrc::Reg(base + slot(&mut scalars, s)), add),
                        None => (IdxSrc::Konst, add),
                    })
                    .collect();
                accs.push(FastAcc { sym: *sym, dims });
                let a = (accs.len() - 1) as u16;
                Some(match &inst.op {
                    Op::LoadElemA { .. } => FastOp::LoadA { dst: *dst, a },
                    _ => FastOp::StoreA { a, src: Opnd::Reg(*dst) },
                })
            }
            Op::LoadElem { dst, sym, base: b, n } => {
                accs.push(FastAcc { sym: *sym, dims: Vec::new() });
                let a = (accs.len() - 1) as u16;
                Some(FastOp::LoadN { dst: *dst, a, base: *b, n: *n })
            }
            Op::StoreElem { sym, base: b, n, src } => {
                accs.push(FastAcc { sym: *sym, dims: Vec::new() });
                let a = (accs.len() - 1) as u16;
                Some(FastOp::StoreN { a, base: *b, n: *n, src: Opnd::Reg(*src) })
            }
            Op::Neg { dst, src } => Some(FastOp::Neg { dst: *dst, src: Opnd::Reg(*src) }),
            Op::Not { dst, src } => Some(FastOp::Not { dst: *dst, src: Opnd::Reg(*src) }),
            Op::Bin { op, dst, l, r } => {
                Some(FastOp::Bin { op: *op, dst: *dst, l: Opnd::Reg(*l), r: Opnd::Reg(*r) })
            }
            Op::Intr { op, dst, base: b, n } => {
                Some(FastOp::Intr { op: *op, dst: *dst, base: *b, n: *n })
            }
            Op::Jump(_)
            | Op::JumpIfFalse { .. }
            | Op::JumpIfTrue { .. }
            | Op::Do(_)
            | Op::Call { .. }
            | Op::Print(_)
            | Op::Return
            | Op::Stop
            | Op::Fail(_) => return None,
        };
        charge.push((inst.cost, inst.tick));
        steps += inst.tick as u64;
        cost += inst.cost;
        match op {
            Some(o) => {
                ops.push(o);
                keep.push(true);
            }
            None => {
                // placeholder keeps alignment; compacted away below
                ops.push(FastOp::Copy { dst: 0, src: 0 });
                keep.push(false);
            }
        }
    }

    // ---- pass 1: registers consumed as contiguous ranges stay put ----
    let mut pinned: HashSet<u16> = HashSet::new();
    for (i, op) in ops.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let FastOp::LoadN { base: b, n, .. }
        | FastOp::StoreN { base: b, n, .. }
        | FastOp::Intr { base: b, n, .. } = op
        {
            for r in *b..b.saturating_add(*n) {
                pinned.insert(r);
            }
        }
    }

    // ---- pass 2: fold constants / loop-var reads / copies into their
    // consumers, dropping producers that nothing else needs. Bindings are
    // always resolved to a *materialized* root, so a dropped producer can
    // be revived (un-dropped) when a later overwrite of its source makes
    // the binding stale while its value is still wanted. ----
    #[derive(Clone, Copy)]
    struct Ent {
        b: Opnd, // Reg roots are materialized at origin time
        origin: usize,
        valid: bool,
    }
    let mut ents: std::collections::HashMap<u16, Ent> = std::collections::HashMap::new();
    let mut dropped: Vec<bool> = vec![false; ops.len()];

    fn resolve(
        r: u16,
        ents: &std::collections::HashMap<u16, Ent>,
        dropped: &mut [bool],
    ) -> Opnd {
        match ents.get(&r) {
            Some(e) if e.valid => e.b,
            Some(e) => {
                // Stale binding: the value is still in `r` only if the
                // producing op actually ran — revive it.
                dropped[e.origin] = false;
                Opnd::Reg(r)
            }
            None => Opnd::Reg(r),
        }
    }

    for i in 0..ops.len() {
        if !keep[i] {
            continue;
        }
        // substitute operand reads
        {
            let (e, d) = (&ents, &mut dropped);
            let mut subst = |o: &mut Opnd| {
                if let Opnd::Reg(r) = *o {
                    *o = resolve(r, e, d);
                }
            };
            match &mut ops[i] {
                FastOp::StoreP { src, .. }
                | FastOp::StoreA { src, .. }
                | FastOp::StoreN { src, .. }
                | FastOp::Neg { src, .. }
                | FastOp::Not { src, .. } => subst(src),
                FastOp::Bin { l, r, .. } => {
                    subst(l);
                    subst(r);
                }
                FastOp::Copy { src, .. } => {
                    // handled below (binding creation), nothing to do here
                    let _ = src;
                }
                _ => {}
            }
        }
        // binding creation / invalidation
        let write = |ents: &mut std::collections::HashMap<u16, Ent>, w: u16| {
            ents.remove(&w);
            for e in ents.values_mut() {
                if let Opnd::Reg(s) = e.b {
                    if s == w {
                        e.valid = false;
                    }
                }
            }
        };
        match ops[i] {
            FastOp::Const { dst, v } => {
                write(&mut ents, dst);
                ents.insert(dst, Ent { b: Opnd::Imm(v), origin: i, valid: true });
                if !pinned.contains(&dst) {
                    dropped[i] = true;
                }
            }
            FastOp::LoadIter { dst } => {
                write(&mut ents, dst);
                ents.insert(dst, Ent { b: Opnd::Iter, origin: i, valid: true });
                if !pinned.contains(&dst) {
                    dropped[i] = true;
                }
            }
            FastOp::Copy { dst, src } => {
                let b = resolve(src, &ents, &mut dropped);
                // rewrite to the resolved root so a revived copy reads a
                // materialized register
                if let (FastOp::Copy { src: s, .. }, Opnd::Reg(root)) = (&mut ops[i], b) {
                    *s = root;
                }
                write(&mut ents, dst);
                ents.insert(dst, Ent { b, origin: i, valid: true });
                if !pinned.contains(&dst) {
                    dropped[i] = true;
                }
            }
            FastOp::StoreP { p, .. } => write(&mut ents, p),
            FastOp::LoadA { dst, .. }
            | FastOp::LoadN { dst, .. }
            | FastOp::Neg { dst, .. }
            | FastOp::Not { dst, .. }
            | FastOp::Bin { dst, .. }
            | FastOp::Intr { dst, .. } => write(&mut ents, dst),
            FastOp::StoreA { .. } | FastOp::StoreN { .. } => {}
            // RedLogs are spliced by pass 3, after folding.
            FastOp::RedLog { .. } => unreachable!("RedLog before recognition"),
        }
    }

    // A revived Copy whose binding was consumed as Imm/Iter may have
    // rewritten `src` to itself; those are still correct (dst = regs[src])
    // only when src is materialized — Imm/Iter roots never go stale, so
    // revival only ever happens for Reg roots. Compact.
    let mut final_ops = Vec::new();
    let mut origs = Vec::new();
    for (i, op) in ops.into_iter().enumerate() {
        if keep[i] && !dropped[i] {
            final_ops.push(op);
            origs.push(i as u16);
        }
    }

    // ---- pass 3: reduction-store recognition (splices RedLog ops) ----
    let red_ok = red_recognize(&mut final_ops, &mut origs, &accs, &scalars, base, reds);

    let mut fb = FastBody {
        ops: final_ops,
        origs,
        charge,
        nregs: base as usize + scalars.len(),
        scalars,
        accs,
        stored,
        base,
        steps,
        cost,
        red_ok,
        typed: None,
    };
    fb.typed = typed_compile(&fb, unit);
    Some(fb)
}

/// Register a fast op writes, if any (`StoreP` writes its promoted
/// register; array stores write no register).
fn fast_dst(op: &FastOp) -> Option<u16> {
    match op {
        FastOp::Const { dst, .. }
        | FastOp::LoadIter { dst }
        | FastOp::Copy { dst, .. }
        | FastOp::LoadA { dst, .. }
        | FastOp::LoadN { dst, .. }
        | FastOp::Neg { dst, .. }
        | FastOp::Not { dst, .. }
        | FastOp::Bin { dst, .. }
        | FastOp::Intr { dst, .. } => Some(*dst),
        FastOp::StoreP { p, .. } => Some(*p),
        FastOp::StoreA { .. } | FastOp::StoreN { .. } | FastOp::RedLog { .. } => None,
    }
}

/// Registers a fast op reads: operands, affine index sources, and
/// register ranges. `accs` resolves the index plans of affine accesses.
fn fast_reads(op: &FastOp, accs: &[FastAcc], mut f: impl FnMut(u16)) {
    fn opnd(o: &Opnd, f: &mut impl FnMut(u16)) {
        if let Opnd::Reg(r) = o {
            f(*r);
        }
    }
    match op {
        FastOp::Const { .. } | FastOp::LoadIter { .. } => {}
        FastOp::Copy { src, .. } => f(*src),
        FastOp::StoreP { src, .. }
        | FastOp::Neg { src, .. }
        | FastOp::Not { src, .. }
        | FastOp::RedLog { src, .. } => opnd(src, &mut f),
        FastOp::Bin { l, r, .. } => {
            opnd(l, &mut f);
            opnd(r, &mut f);
        }
        FastOp::LoadA { a, .. } => {
            for &(src, _) in &accs[*a as usize].dims {
                if let IdxSrc::Reg(r) = src {
                    f(r);
                }
            }
        }
        FastOp::StoreA { a, src } => {
            for &(s, _) in &accs[*a as usize].dims {
                if let IdxSrc::Reg(r) = s {
                    f(r);
                }
            }
            opnd(src, &mut f);
        }
        FastOp::LoadN { base, n, .. } | FastOp::Intr { base, n, .. } => {
            for r in *base..base.saturating_add(*n) {
                f(r);
            }
        }
        FastOp::StoreN { base, n, src, .. } => {
            for r in *base..base.saturating_add(*n) {
                f(r);
            }
            opnd(src, &mut f);
        }
    }
}

/// The position of the last def of `r` strictly before `pos` — the def a
/// consumer at `pos` actually reads (registers are reused, so the last
/// def overall can be the consumer's own destination).
fn def_before(
    defs: &std::collections::HashMap<u16, Vec<usize>>,
    r: u16,
    pos: usize,
) -> Option<usize> {
    let v = defs.get(&r)?;
    match v.partition_point(|&p| p < pos) {
        0 => None,
        i => Some(v[i - 1]),
    }
}

/// Recognize the value that reaches an accumulator store as the fold
/// spine `match_accum` matches at runtime — `acc`, `spine ⊕ x`, or
/// `x ⊕ acc` — mirroring its committed left-first semantics exactly.
/// Operand inserts are recorded (in serial fold order: positions increase
/// along the spine) against the consuming operator, where the operand's
/// register is still live; the spine operator that reads the accumulator
/// directly is sanctioned for that read.
#[allow(clippy::too_many_arguments)]
fn trace_spine(
    ops: &[FastOp],
    defs: &std::collections::HashMap<u16, Vec<usize>>,
    spine: BinOp,
    reg: u16,
    o: Opnd,
    pos: usize,
    ri: u16,
    sanction: &mut std::collections::HashMap<usize, u16>,
    inserts: &mut Vec<(usize, u16, Opnd)>,
) -> bool {
    let Opnd::Reg(r) = o else { return false };
    if r == reg {
        return true; // the bare accumulator: the spine's base
    }
    let Some(dj) = def_before(defs, r, pos) else { return false };
    let (op, l, rr) = match &ops[dj] {
        FastOp::Bin { op, l, r, .. } => (*op, *l, *r),
        _ => return false,
    };
    if op != spine {
        return false;
    }
    let is_acc = |o: Opnd| matches!(o, Opnd::Reg(x) if x == reg);
    let mark = inserts.len();
    if trace_spine(ops, defs, spine, reg, l, dj, ri, sanction, inserts) {
        // Committed left-first, like `match_accum`: a matched left spine
        // whose right operand reads the accumulator fails outright.
        if is_acc(rr) || sanction.insert(dj, reg).is_some() {
            inserts.truncate(mark);
            return false;
        }
        inserts.push((dj, ri, rr));
        return true;
    }
    inserts.truncate(mark);
    // `x ⊕ acc`: the right arm is the accumulator *directly* (the folded
    // form of `Var(s)`, exactly the syntactic check `match_accum` makes).
    if is_acc(rr) && !is_acc(l) {
        if sanction.insert(dj, reg).is_some() {
            return false;
        }
        inserts.push((dj, ri, l));
        return true;
    }
    false
}

/// Pass 3 of [`fast_compile`]: prove every store to a `reduction(...)`
/// accumulator is the fold spine the tree walker's `red_assign`
/// recognizes at runtime, splice [`FastOp::RedLog`] ops capturing the
/// accumulation operands in serial fold order, and verify nothing else
/// in the body reads an accumulator register (a stray read would observe
/// the fast path's continuously-accumulated value where the walker's
/// per-iteration identity re-seed holds something else).
///
/// Soundness: in a worker chunk frame every reduction symbol is bound to
/// a fresh cell bound to *only* that symbol, so this static structural
/// recognition and `match_accum`'s dynamic cell-identity recognition
/// accept exactly the same spines — static success implies the walker
/// would have logged the same operand values in the same order. Any
/// failure leaves the ops untouched and returns `false`: the body simply
/// keeps the status-quo slow path under a reduction watch.
fn red_recognize(
    ops: &mut Vec<FastOp>,
    origs: &mut Vec<u16>,
    accs: &[FastAcc],
    scalars: &[SymId],
    base: u16,
    reds: &[(RedOp, SymId)],
) -> bool {
    if reds.is_empty() {
        return false;
    }
    // Accumulator registers by reduction index; a clause symbol the body
    // never references has no register (and nothing to log).
    let accum: Vec<Option<u16>> = reds
        .iter()
        .map(|&(_, s)| scalars.iter().position(|&t| t == s).map(|i| base + i as u16))
        .collect();
    let accum_regs: HashSet<u16> = accum.iter().flatten().copied().collect();
    let mut defs: std::collections::HashMap<u16, Vec<usize>> = Default::default();
    for (j, op) in ops.iter().enumerate() {
        if let Some(d) = fast_dst(op) {
            defs.entry(d).or_default().push(j);
        }
    }
    // Position -> the accumulator register it is sanctioned to read.
    let mut sanction: std::collections::HashMap<usize, u16> = Default::default();
    let mut inserts: Vec<(usize, u16, Opnd)> = Vec::new();
    for (ri, &(rop, _)) in reds.iter().enumerate() {
        let Some(reg) = accum[ri] else { continue };
        let spine = match rop {
            RedOp::Sum => BinOp::Add,
            RedOp::Product => BinOp::Mul,
            // MIN/MAX fold back to per-iteration deltas in the walker,
            // which the fast path cannot capture — stay slow.
            _ => return false,
        };
        for j in 0..ops.len() {
            let (p, src) = match &ops[j] {
                FastOp::StoreP { p, src, .. } => (*p, *src),
                _ => continue,
            };
            if p != reg {
                continue;
            }
            if matches!(src, Opnd::Reg(r) if r == reg) {
                // `s = s`: a spine with no operands (nothing to log).
                if sanction.insert(j, reg).is_some() {
                    return false;
                }
                continue;
            }
            if !trace_spine(ops, &defs, spine, reg, src, j, ri as u16, &mut sanction, &mut inserts)
            {
                return false;
            }
        }
    }
    // No other op may read any accumulator register — not as an operand,
    // an index source, a range element, or a cross-reduction operand
    // (`t = t + s` logs the *cell* value of `s` in the walker, which the
    // fast path does not maintain).
    for (j, op) in ops.iter().enumerate() {
        let mut ok = true;
        fast_reads(op, accs, |r| {
            if accum_regs.contains(&r) && sanction.get(&j) != Some(&r) {
                ok = false;
            }
        });
        if !ok {
            return false;
        }
    }
    if inserts.is_empty() {
        return true;
    }
    // Splice each RedLog immediately before its consuming spine op. The
    // sort is stable, so same-position inserts keep fold order; a
    // RedLog's rollback origin is its consumer's (it cannot fault and
    // charges nothing, so the mapping only needs to stay monotone).
    inserts.sort_by_key(|&(pos, _, _)| pos);
    let mut new_ops = Vec::with_capacity(ops.len() + inserts.len());
    let mut new_origs = Vec::with_capacity(ops.len() + inserts.len());
    let mut it = inserts.into_iter().peekable();
    for (j, op) in ops.drain(..).enumerate() {
        while it.peek().is_some_and(|&(pos, _, _)| pos == j) {
            let (_, ri, src) = it.next().unwrap();
            new_ops.push(FastOp::RedLog { red: ri, src });
            new_origs.push(origs[j]);
        }
        new_ops.push(op);
        new_origs.push(origs[j]);
    }
    *ops = new_ops;
    *origs = new_origs;
    true
}

/// A fast body's cells, resolved against a frame once per loop entry.
/// Frame bindings are immutable while a unit executes, so the slow path's
/// per-access `frame.get` collapses to one lookup per symbol per entry.
pub(crate) struct FastCtx<'f> {
    /// Runtime cell types matched the typed tier's static assumptions —
    /// the all-f64 ops may run. (Declared types can lie across call
    /// boundaries, so this is re-checked per resolution.)
    pub(crate) typed_ok: bool,
    /// Promoted scalar cells, in slot order.
    cells: Vec<&'f Cell>,
    /// Declared type per promoted slot — `StoreP` coerces exactly as the
    /// cell store would, so promoted reads match reloading the cell.
    tys: Vec<Ty>,
    accs: Vec<ResAcc<'f>>,
}

/// One resolved array access.
struct ResAcc<'f> {
    arr: &'f ArrayCell,
    /// Rank-1 declared bounds: `lo <= w <= hi` is the whole bounds check
    /// and `w - lo` the whole linearization (the extent was validated at
    /// allocation, so neither can overflow).
    one: Option<(i64, i64)>,
}

/// Evaluate one affine subscript dimension.
#[inline]
fn fast_idx(src: IdxSrc, add: i64, cur: i64, regs: &[Value]) -> i64 {
    match src {
        IdxSrc::Iter => cur.wrapping_add(add),
        IdxSrc::Reg(r) => regs[r as usize].as_int().wrapping_add(add),
        IdxSrc::Konst => add,
    }
}

/// The walker's exact out-of-bounds message.
#[cold]
fn bounds_err(unit: &ProgramUnit, sym: SymId, idx: &[i64]) -> RtError {
    RtError::new(format!(
        "subscript out of bounds: {}({:?}) in {}",
        unit.symbols.name(sym),
        idx.to_vec(),
        unit.name
    ))
}

/// Flat index of a fast affine access (bounds-checked).
#[inline]
fn fast_flat(
    unit: &ProgramUnit,
    fa: &FastAcc,
    ra: &ResAcc<'_>,
    regs: &[Value],
    cur: i64,
) -> Result<usize, RtError> {
    if let Some((lo, hi)) = ra.one {
        let (src, add) = fa.dims[0];
        let w = fast_idx(src, add, cur, regs);
        if w < lo || w > hi {
            return Err(bounds_err(unit, fa.sym, &[w]));
        }
        return Ok((w - lo) as usize);
    }
    let mut idx = [0i64; 8];
    for (k, &(src, add)) in fa.dims.iter().enumerate() {
        idx[k] = fast_idx(src, add, cur, regs);
    }
    let idx = &idx[..fa.dims.len()];
    ra.arr.linearize(idx).ok_or_else(|| bounds_err(unit, fa.sym, idx))
}

/// How one actual argument is bound (mirrors the walker's `exec_call`).
#[derive(Debug)]
enum ArgPlan {
    /// Plain variable: bind the caller's cell by reference.
    ByRef(SymId),
    /// PARAMETER constant: by value in a temp cell of the formal's type.
    ConstVal { v: Value, ty: Ty },
    /// Array element: copy-in/copy-out through a temp cell; the fragment
    /// evaluates the subscripts into `regs[base..base+n]`.
    Elem { sym: SymId, code: Code, base: u16, n: u16, ty: Ty },
    /// Any other expression: evaluate the fragment, pass by value.
    Val { code: Code, reg: u16, ty: Ty },
}

/// A compiled call site.
#[derive(Debug)]
pub(crate) struct CallPlan<'p> {
    name: &'p str,
    /// Unknown procedure / arity mismatch — raised before any charge,
    /// exactly like the walker.
    err: Option<String>,
    callee: usize,
    args: Vec<ArgPlan>,
}

/// One PRINT item.
#[derive(Debug)]
enum PrintPart<'p> {
    Str(&'p str),
    Reg(u16),
}

/// A compiled PRINT statement.
#[derive(Debug)]
pub(crate) struct PrintPlan<'p> {
    parts: Vec<PrintPart<'p>>,
}

/// A scalar assignment that may hit a watched reduction cell: the symbol
/// and the original rhs, handed to the walker's recognizer when the gate
/// fires.
#[derive(Debug)]
pub(crate) struct RedPlan<'p> {
    sym: SymId,
    rhs: &'p Expr,
}

/// One lowered program unit.
#[derive(Debug)]
pub(crate) struct CompiledUnit<'p> {
    code: Code,
    nregs: usize,
    dos: Vec<CompiledLoop<'p>>,
    calls: Vec<CallPlan<'p>>,
    prints: Vec<PrintPlan<'p>>,
    affs: Vec<AffinePlan>,
    reds: Vec<RedPlan<'p>>,
    msgs: Vec<String>,
}

impl CompiledUnit<'_> {
    /// Compiled body of DO-loop plan `ci` (what worker chunks execute).
    pub(crate) fn loop_body(&self, ci: u32) -> &Code {
        &self.dos[ci as usize].body
    }

    /// Fast form of DO-loop plan `ci`'s body, when it has one.
    pub(crate) fn loop_fast(&self, ci: u32) -> Option<&FastBody> {
        self.dos[ci as usize].fast.as_ref()
    }

    /// Register-file size for this unit (shared by all its blocks).
    pub(crate) fn nregs(&self) -> usize {
        self.nregs
    }
}

/// The whole lowered program.
#[derive(Debug)]
pub(crate) struct CompiledProgram<'p> {
    pub(crate) units: Vec<CompiledUnit<'p>>,
}

/// Lower every unit. `shadow` disables the affine fast path so every
/// access keeps emitting shadow-log records in walker order.
pub(crate) fn compile_program(program: &Program, shadow: bool) -> CompiledProgram<'_> {
    let units = program
        .units
        .iter()
        .map(|unit| {
            let mut lw = Lower {
                prog: program,
                unit,
                shadow,
                code: Code::new(),
                free: 0,
                nregs: 0,
                dos: Vec::new(),
                calls: Vec::new(),
                prints: Vec::new(),
                affs: Vec::new(),
                reds: Vec::new(),
                msgs: Vec::new(),
            };
            lw.block(&unit.body);
            let nregs = lw.nregs;
            {
                // Promoted registers start past the unit's high-water
                // mark, so fast bodies compile only once it's final.
                let Lower { dos, affs, unit, .. } = &mut lw;
                for cl in dos.iter_mut() {
                    let reds = cl
                        .d
                        .parallel
                        .as_ref()
                        .map_or(&[][..], |info| info.reductions.as_slice());
                    cl.fast = fast_compile(&cl.body, affs, cl.d.var, nregs, unit, reds);
                }
            }
            let code = std::mem::take(&mut lw.code);
            CompiledUnit {
                code,
                nregs: lw.nregs as usize,
                dos: lw.dos,
                calls: lw.calls,
                prints: lw.prints,
                affs: lw.affs,
                reds: lw.reds,
                msgs: lw.msgs,
            }
        })
        .collect();
    CompiledProgram { units }
}

/// Per-unit lowering state. Registers are allocated stack-style per
/// statement; `nregs` is the high-water mark.
struct Lower<'p> {
    prog: &'p Program,
    unit: &'p ProgramUnit,
    shadow: bool,
    code: Code,
    free: u16,
    nregs: u16,
    dos: Vec<CompiledLoop<'p>>,
    calls: Vec<CallPlan<'p>>,
    prints: Vec<PrintPlan<'p>>,
    affs: Vec<AffinePlan>,
    reds: Vec<RedPlan<'p>>,
    msgs: Vec<String>,
}

impl<'p> Lower<'p> {
    fn alloc(&mut self) -> u16 {
        let r = self.free;
        self.free = self.free.checked_add(1).expect("register file overflow");
        self.nregs = self.nregs.max(self.free);
        r
    }

    fn emit(&mut self, op: Op, cost: f64) -> usize {
        self.code.push(Inst { op, cost, tick: false });
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at].op {
            Op::Jump(t)
            | Op::JumpIfFalse { target: t, .. }
            | Op::JumpIfTrue { target: t, .. } => *t = target,
            Op::RedGate { skip, .. } => *skip = target,
            _ => unreachable!("patching a non-jump"),
        }
    }

    fn msg(&mut self, m: String) -> u32 {
        self.msgs.push(m);
        (self.msgs.len() - 1) as u32
    }

    fn block(&mut self, block: &'p [StmtId]) {
        for &sid in block {
            let mark = self.free;
            let s0 = self.code.len();
            self.stmt(sid);
            // The statement's first instruction carries the walker's
            // per-statement tick (one step, 1.0 vtime).
            let first = &mut self.code[s0];
            first.tick = true;
            first.cost += 1.0;
            self.free = mark;
        }
    }

    fn stmt(&mut self, sid: StmtId) {
        let unit: &'p ProgramUnit = self.unit;
        match &unit.stmt(sid).kind {
            StmtKind::Assign { lhs, rhs } => self.assign(lhs, rhs),
            StmtKind::If { arms, else_block } => {
                let mut ends = Vec::with_capacity(arms.len());
                for (cond, blk) in arms {
                    let mark = self.free;
                    let rc = self.expr(cond);
                    self.free = mark;
                    let jf = self.emit(Op::JumpIfFalse { cond: rc, target: 0 }, 0.0);
                    self.block(blk);
                    ends.push(self.emit(Op::Jump(0), 0.0));
                    let next = self.here();
                    self.patch(jf, next);
                }
                if let Some(blk) = else_block {
                    self.block(blk);
                }
                let end = self.here();
                for j in ends {
                    self.patch(j, end);
                }
            }
            StmtKind::Do(d) => {
                // Bounds evaluate inline (walker: `iteration_values`) so
                // their charges land before the Do op reads vt0.
                let mark = self.free;
                let lo = self.expr(&d.lo);
                let hi = self.expr(&d.hi);
                let step = d.step.as_ref().map(|e| self.expr(e));
                let body = {
                    let outer = std::mem::take(&mut self.code);
                    self.block(&d.body);
                    std::mem::replace(&mut self.code, outer)
                };
                // Fast form is compiled after the whole unit lowers, once
                // the register high-water mark (promoted-register base) is
                // known.
                self.dos.push(CompiledLoop { sid, d, lo, hi, step, body, fast: None });
                let idx = (self.dos.len() - 1) as u32;
                self.emit(Op::Do(idx), 0.0);
                self.free = mark;
            }
            StmtKind::Call { name, args } => {
                let plan = self.call_plan(name, args);
                self.emit(Op::Call { plan, dst: 0, want: false }, 0.0);
            }
            StmtKind::Print { items } => {
                let mut parts = Vec::with_capacity(items.len());
                for e in items {
                    match e {
                        Expr::Str(s) => parts.push(PrintPart::Str(s.as_str())),
                        _ => parts.push(PrintPart::Reg(self.expr(e))),
                    }
                }
                self.prints.push(PrintPlan { parts });
                let idx = (self.prints.len() - 1) as u32;
                self.emit(Op::Print(idx), 0.0);
            }
            StmtKind::Return => {
                self.emit(Op::Return, 0.0);
            }
            StmtKind::Stop => {
                self.emit(Op::Stop, 0.0);
            }
            StmtKind::Continue | StmtKind::Removed => {
                self.emit(Op::Nop, 0.0);
            }
        }
    }

    fn assign(&mut self, lhs: &'p LValue, rhs: &'p Expr) {
        match lhs {
            LValue::Var(s) => {
                // The gate must run before the rhs is evaluated: the
                // recognizer evaluates only the accumulation operands.
                self.reds.push(RedPlan { sym: *s, rhs });
                let plan = (self.reds.len() - 1) as u32;
                let gate = self.emit(Op::RedGate { plan, skip: 0 }, 0.0);
                let rv = self.expr(rhs);
                self.emit(Op::StoreVar { sym: *s, src: rv }, 0.0);
                let end = self.here();
                self.patch(gate, end);
            }
            LValue::ArrayElem(s, subs) => {
                // Walker order: rhs first, then subscripts, then store.
                let rv = self.expr(rhs);
                if let Some((plan, cost)) = self.affine(subs) {
                    self.emit(Op::StoreElemA { sym: *s, plan, src: rv }, cost);
                } else {
                    let base = self.free;
                    for e in subs {
                        self.expr(e);
                    }
                    self.emit(
                        Op::StoreElem { sym: *s, base, n: subs.len() as u16, src: rv },
                        0.0,
                    );
                }
            }
        }
    }

    /// Compile `e`; the result lands in the returned register, which is
    /// always the lowest free register at entry (operand temps are
    /// released before the producing instruction is emitted, and every
    /// handler reads its inputs before writing its destination).
    fn expr(&mut self, e: &'p Expr) -> u16 {
        match e {
            Expr::Int(v) => self.constant(Value::Int(*v)),
            Expr::Real(v) | Expr::Double(v) => self.constant(Value::Real(*v)),
            Expr::Logical(b) => self.constant(Value::Logical(*b)),
            Expr::Str(_) => {
                let m = self.msg("character value outside PRINT".to_string());
                self.emit(Op::Fail(m), 1.0);
                self.alloc()
            }
            Expr::Var(s) => {
                if let Some(c) = self.unit.symbols.sym(*s).param {
                    return self.constant(const_value(c));
                }
                let dst = self.alloc();
                self.emit(Op::LoadVar { dst, sym: *s }, 1.0);
                dst
            }
            Expr::ArrayRef { sym, subs } => {
                if let Some((plan, cost)) = self.affine(subs) {
                    let dst = self.alloc();
                    self.emit(Op::LoadElemA { dst, sym: *sym, plan }, cost + 1.0);
                    return dst;
                }
                let base = self.free;
                for x in subs {
                    self.expr(x);
                }
                self.free = base;
                let dst = self.alloc();
                self.emit(Op::LoadElem { dst, sym: *sym, base, n: subs.len() as u16 }, 1.0);
                dst
            }
            Expr::Un { op: UnOp::Neg, e } => {
                let r = self.expr(e);
                self.emit(Op::Neg { dst: r, src: r }, 1.0);
                r
            }
            Expr::Un { op: UnOp::Not, e } => {
                let r = self.expr(e);
                self.emit(Op::Not { dst: r, src: r }, 1.0);
                r
            }
            Expr::Bin { op: op @ (BinOp::And | BinOp::Or), l, r } => {
                // Short-circuit, exactly like the walker: the right
                // operand's charges are skipped with its evaluation. The
                // And/Or node's own charge rides the left operand's first
                // instruction (unconditional either way).
                let first = self.code.len();
                let rl = self.expr(l);
                self.code[first].cost += 1.0;
                let j = match op {
                    BinOp::And => self.emit(Op::JumpIfFalse { cond: rl, target: 0 }, 0.0),
                    _ => self.emit(Op::JumpIfTrue { cond: rl, target: 0 }, 0.0),
                };
                let rr = self.expr(r);
                self.free = rl + 1;
                self.emit(Op::Bin { op: *op, dst: rl, l: rl, r: rr }, 0.0);
                let jend = self.emit(Op::Jump(0), 0.0);
                let short = self.here();
                self.patch(j, short);
                let v = Value::Logical(matches!(op, BinOp::Or));
                self.emit(Op::Const { dst: rl, v }, 0.0);
                let end = self.here();
                self.patch(jend, end);
                rl
            }
            Expr::Bin { op, l, r } => {
                let rl = self.expr(l);
                let rr = self.expr(r);
                self.free = rl + 1;
                self.emit(Op::Bin { op: *op, dst: rl, l: rl, r: rr }, 1.0);
                rl
            }
            Expr::Intrinsic { op, args } => {
                let base = self.free;
                for a in args {
                    self.expr(a);
                }
                self.free = base;
                let dst = self.alloc();
                // One charge for the node, six for the intrinsic itself
                // (the walker adds 6.0 after evaluating the arguments).
                self.emit(Op::Intr { op: *op, dst, base, n: args.len() as u16 }, 7.0);
                dst
            }
            Expr::Call { name, args } => {
                let plan = self.call_plan(name, args);
                let dst = self.alloc();
                self.emit(Op::Call { plan, dst, want: true }, 1.0);
                dst
            }
        }
    }

    fn constant(&mut self, v: Value) -> u16 {
        let dst = self.alloc();
        self.emit(Op::Const { dst, v }, 1.0);
        dst
    }

    /// Recognize an all-affine subscript list (each dimension a constant,
    /// an INTEGER variable, or `var ± const` in either order) and build
    /// its plan. Returns the plan index and the folded vtime cost of the
    /// subscript expressions (one per AST node, same as the walker).
    /// Disabled under shadow logging, which needs per-access records.
    fn affine(&mut self, subs: &'p [Expr]) -> Option<(u32, f64)> {
        if self.shadow {
            return None;
        }
        let mut dims = Vec::with_capacity(subs.len());
        let mut cost = 0.0;
        for e in subs {
            let (dim, c) = self.affine_dim(e)?;
            dims.push(dim);
            cost += c;
        }
        self.affs.push(AffinePlan { dims });
        Some(((self.affs.len() - 1) as u32, cost))
    }

    /// A leaf usable in an affine dimension: an integer literal, an
    /// integer PARAMETER, or a plain INTEGER variable.
    fn affine_leaf(&self, e: &Expr) -> Option<(Option<SymId>, i64)> {
        match e {
            Expr::Int(v) => Some((None, *v)),
            Expr::Var(s) => {
                let sym = self.unit.symbols.sym(*s);
                match sym.param {
                    Some(Const::Int(v)) => Some((None, v)),
                    Some(_) => None,
                    None if sym.ty == Ty::Integer => Some((Some(*s), 0)),
                    None => None,
                }
            }
            _ => None,
        }
    }

    fn affine_dim(&self, e: &Expr) -> Option<((Option<SymId>, i64), f64)> {
        if let Some(leaf) = self.affine_leaf(e) {
            return Some((leaf, 1.0));
        }
        if let Expr::Bin { op: op @ (BinOp::Add | BinOp::Sub), l, r } = e {
            let (ls, lc) = self.affine_leaf(l)?;
            let (rs, rc) = self.affine_leaf(r)?;
            // At most one variable, and subtraction only of a constant
            // (`c - i` has no addend form).
            let (sym, add) = match (*op, ls, rs) {
                (BinOp::Add, s, None) => (s, lc.wrapping_add(rc)),
                (BinOp::Add, None, s) => (s, lc.wrapping_add(rc)),
                (BinOp::Sub, s, None) => (s, lc.wrapping_sub(rc)),
                _ => return None,
            };
            return Some(((sym, add), 3.0));
        }
        None
    }

    /// Build a call plan; argument fragments share this unit's register
    /// allocator (they run while caller registers may be live).
    fn call_plan(&mut self, name: &'p str, args: &'p [Expr]) -> u32 {
        let callee_idx = self.unit_index(name);
        let plan = match callee_idx {
            None => CallPlan {
                name,
                err: Some(format!("call to unknown procedure {name}")),
                callee: 0,
                args: Vec::new(),
            },
            Some(ci) => {
                let callee = &self.prog.units[ci];
                if callee.args.len() != args.len() {
                    CallPlan {
                        name,
                        err: Some(format!(
                            "{name} expects {} arguments, got {}",
                            callee.args.len(),
                            args.len()
                        )),
                        callee: ci,
                        args: Vec::new(),
                    }
                } else {
                    let mut plans = Vec::with_capacity(args.len());
                    for (&formal, actual) in callee.args.iter().zip(args) {
                        let fty = callee.symbols.sym(formal).ty;
                        plans.push(self.arg_plan(actual, fty));
                    }
                    CallPlan { name, err: None, callee: ci, args: plans }
                }
            }
        };
        self.calls.push(plan);
        (self.calls.len() - 1) as u32
    }

    fn arg_plan(&mut self, actual: &'p Expr, fty: Ty) -> ArgPlan {
        match actual {
            Expr::Var(s) if self.unit.symbols.sym(*s).param.is_none() => ArgPlan::ByRef(*s),
            Expr::Var(s) => ArgPlan::ConstVal {
                v: const_value(
                    self.unit.symbols.sym(*s).param.expect("checked above"),
                ),
                ty: fty,
            },
            Expr::ArrayRef { sym, subs } => {
                let mark = self.free;
                let outer = std::mem::take(&mut self.code);
                let base = self.free;
                for e in subs {
                    self.expr(e);
                }
                let code = std::mem::replace(&mut self.code, outer);
                self.free = mark;
                ArgPlan::Elem { sym: *sym, code, base, n: subs.len() as u16, ty: fty }
            }
            other => {
                let mark = self.free;
                let outer = std::mem::take(&mut self.code);
                let reg = self.expr(other);
                let code = std::mem::replace(&mut self.code, outer);
                self.free = mark;
                ArgPlan::Val { code, reg, ty: fty }
            }
        }
    }

    fn unit_index(&self, name: &str) -> Option<usize> {
        self.prog.unit_index(name)
    }
}

impl<'p> Interp<'p> {
    /// Execute a whole unit's compiled body with a fresh register file.
    pub(crate) fn bexec_unit(
        &self,
        unit_idx: usize,
        frame: &Frame,
        state: &mut ExecState<'_>,
    ) -> Result<Flow, RtError> {
        let cu = &self.compiled.as_ref().expect("bytecode engine not compiled").units[unit_idx];
        let mut regs = vec![Value::Int(0); cu.nregs()];
        self.bexec_block(unit_idx, &cu.code, frame, state, &mut regs)
    }

    /// The bytecode interpreter loop. `code` must belong to `unit_idx`'s
    /// compiled unit; `regs` must be at least that unit's `nregs`.
    pub(crate) fn bexec_block(
        &self,
        unit_idx: usize,
        code: &Code,
        frame: &Frame,
        state: &mut ExecState<'_>,
        regs: &mut Vec<Value>,
    ) -> Result<Flow, RtError> {
        let cu = &self.compiled.as_ref().expect("bytecode engine not compiled").units[unit_idx];
        let unit = &self.program.units[unit_idx];
        let mut pc = 0usize;
        while pc < code.len() {
            let inst = &code[pc];
            if inst.tick {
                state.tick(inst.cost)?;
            } else if inst.cost != 0.0 {
                state.vtime += inst.cost;
            }
            match &inst.op {
                Op::Nop => {}
                Op::Const { dst, v } => regs[*dst as usize] = *v,
                Op::LoadVar { dst, sym } => {
                    let cell = self.cell(unit, frame, *sym)?;
                    state.record(cell, 0, false, unit_idx, *sym);
                    regs[*dst as usize] = cell.load_scalar();
                }
                Op::StoreVar { sym, src } => {
                    let v = regs[*src as usize];
                    let cell = self.cell(unit, frame, *sym)?;
                    state.record(cell, 0, true, unit_idx, *sym);
                    cell.store_scalar(v);
                }
                Op::LoadElem { dst, sym, base, n } => {
                    let flat = self.elem_regs(unit, frame, regs, *sym, *base, *n)?;
                    let cell = self.cell(unit, frame, *sym)?;
                    state.record(cell, flat, false, unit_idx, *sym);
                    regs[*dst as usize] = cell.as_array().load_flat(flat);
                }
                Op::StoreElem { sym, base, n, src } => {
                    let flat = self.elem_regs(unit, frame, regs, *sym, *base, *n)?;
                    let v = regs[*src as usize];
                    let cell = self.cell(unit, frame, *sym)?;
                    state.record(cell, flat, true, unit_idx, *sym);
                    cell.as_array().store_flat(flat, v);
                }
                Op::LoadElemA { dst, sym, plan } => {
                    let flat = self.elem_affine(unit, frame, &cu.affs[*plan as usize], *sym)?;
                    let cell = self.cell(unit, frame, *sym)?;
                    regs[*dst as usize] = cell.as_array().load_flat(flat);
                }
                Op::StoreElemA { sym, plan, src } => {
                    let flat = self.elem_affine(unit, frame, &cu.affs[*plan as usize], *sym)?;
                    self.cell(unit, frame, *sym)?.as_array().store_flat(flat, regs[*src as usize]);
                }
                Op::Neg { dst, src } => regs[*dst as usize] = eval_neg(regs[*src as usize])?,
                Op::Not { dst, src } => {
                    regs[*dst as usize] = Value::Logical(!regs[*src as usize].as_logical())
                }
                Op::Bin { op, dst, l, r } => {
                    regs[*dst as usize] = eval_bin(*op, regs[*l as usize], regs[*r as usize])?
                }
                Op::Intr { op, dst, base, n } => {
                    let v = eval_intrinsic(
                        *op,
                        &regs[*base as usize..*base as usize + *n as usize],
                    )?;
                    regs[*dst as usize] = v;
                }
                Op::Jump(t) => {
                    pc = *t as usize;
                    continue;
                }
                Op::JumpIfFalse { cond, target } => {
                    if !regs[*cond as usize].as_logical() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue { cond, target } => {
                    if regs[*cond as usize].as_logical() {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Do(i) => {
                    match self.bexec_do(unit_idx, cu, *i, frame, state, regs)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Op::Call { plan, dst, want } => {
                    let v = self.bexec_call(unit_idx, cu, *plan, frame, state, regs)?;
                    if *want {
                        let name = cu.calls[*plan as usize].name;
                        regs[*dst as usize] = v.ok_or_else(|| {
                            RtError::new(format!("{name} is a subroutine, not a function"))
                        })?;
                    }
                }
                Op::Print(i) => {
                    let plan = &cu.prints[*i as usize];
                    let mut parts = Vec::with_capacity(plan.parts.len());
                    for p in &plan.parts {
                        match p {
                            PrintPart::Str(s) => parts.push((*s).to_string()),
                            PrintPart::Reg(r) => parts.push(regs[*r as usize].display()),
                        }
                    }
                    state.printed.push(parts.join(" "));
                }
                Op::RedGate { plan, skip } => {
                    if !state.red_watch.is_empty() {
                        let rp = &cu.reds[*plan as usize];
                        let cell = self.cell(unit, frame, rp.sym)?.clone();
                        if let Some(wi) = state.watched(&cell) {
                            self.red_assign(unit_idx, wi, rp.sym, rp.rhs, &cell, frame, state)?;
                            pc = *skip as usize;
                            continue;
                        }
                    }
                }
                Op::Return => return Ok(Flow::Return),
                Op::Stop => return Ok(Flow::Stop),
                Op::Fail(m) => return Err(RtError::new(cu.msgs[*m as usize].clone())),
            }
            pc += 1;
        }
        Ok(Flow::Normal)
    }

    /// Linearize a generic subscript whose values sit in registers.
    fn elem_regs(
        &self,
        unit: &ProgramUnit,
        frame: &Frame,
        regs: &[Value],
        sym: SymId,
        base: u16,
        n: u16,
    ) -> Result<usize, RtError> {
        let mut idx = [0i64; 8];
        for k in 0..n as usize {
            idx[k] = regs[base as usize + k].as_int();
        }
        let idx = &idx[..n as usize];
        let cell = self.cell(unit, frame, sym)?;
        cell.as_array().linearize(idx).ok_or_else(|| {
            RtError::new(format!(
                "subscript out of bounds: {}({:?}) in {}",
                unit.symbols.name(sym),
                idx.to_vec(),
                unit.name
            ))
        })
    }

    /// Linearize an affine subscript straight from its index variables.
    fn elem_affine(
        &self,
        unit: &ProgramUnit,
        frame: &Frame,
        plan: &AffinePlan,
        sym: SymId,
    ) -> Result<usize, RtError> {
        let mut idx = [0i64; 8];
        for (k, (isym, add)) in plan.dims.iter().enumerate() {
            let v = match isym {
                Some(s) => self.cell(unit, frame, *s)?.load_scalar().as_int().wrapping_add(*add),
                None => *add,
            };
            idx[k] = v;
        }
        let idx = &idx[..plan.dims.len()];
        let cell = self.cell(unit, frame, sym)?;
        cell.as_array().linearize(idx).ok_or_else(|| {
            RtError::new(format!(
                "subscript out of bounds: {}({:?}) in {}",
                unit.symbols.name(sym),
                idx.to_vec(),
                unit.name
            ))
        })
    }

    /// Resolve a fast body's cells against a frame. `None` (unbound
    /// symbol, scalar bound where an array is accessed or vice versa, or
    /// any aliasing among the promoted scalars and the loop variable —
    /// promotion needs every scalar to be its own storage) sends the whole
    /// loop down the slow path, which reports those conditions exactly as
    /// the walker does.
    pub(crate) fn fast_resolve<'f>(
        &self,
        fb: &FastBody,
        frame: &'f Frame,
        var_cell: &Cell,
    ) -> Option<FastCtx<'f>> {
        let mut cells: Vec<&'f Cell> = Vec::with_capacity(fb.scalars.len());
        let mut tys = Vec::with_capacity(fb.scalars.len());
        for &s in &fb.scalars {
            let cell = &**frame.get(s)?;
            let ty = match cell {
                Cell::Scalar { ty, .. } => *ty,
                Cell::Array(_) => return None,
            };
            if std::ptr::eq(cell, var_cell)
                || cells.iter().any(|&c| std::ptr::eq(c, cell))
            {
                return None;
            }
            cells.push(cell);
            tys.push(ty);
        }
        let mut accs = Vec::with_capacity(fb.accs.len());
        for fa in &fb.accs {
            let cell = frame.get(fa.sym)?;
            if !cell.is_array() {
                return None;
            }
            let arr = cell.as_array();
            let one = match (fa.dims.len(), arr.dims.len()) {
                (1, 1) => Some(arr.dims[0]),
                _ => None,
            };
            accs.push(ResAcc { arr, one });
        }
        let typed_ok = match &fb.typed {
            Some(tb) => {
                tb.real_slots
                    .iter()
                    .all(|&s| matches!(tys[s as usize], Ty::Real | Ty::Double))
                    && tb.int_slots.iter().all(|&s| tys[s as usize] == Ty::Integer)
                    && accs.iter().all(|ra| matches!(ra.arr.ty, Ty::Real | Ty::Double))
            }
            None => false,
        };
        Some(FastCtx { typed_ok, cells, tys, accs })
    }

    /// One fast iteration: bulk charge, then the straight-line ops. On a
    /// fault the unreached original instructions' charges are rolled back
    /// so `steps`/`vtime` match the slow path's stopping point exactly.
    /// The caller must have checked `state.granted >= fb.steps` and run
    /// `fb.prologue` since the last slow iteration; on `Err` the caller
    /// flushes the promoted scalars before touching any cell.
    ///
    /// `red_bufs` receives reduction operands from `RedLog` ops, one
    /// buffer per `reduction(...)` clause entry — `Some` only in worker
    /// chunks of a `red_ok` body (serial runs pass `None`; the logs
    /// would be discarded). A faulting iteration may leave its partial
    /// operands in the buffers: an erroring parallel loop returns before
    /// the merge ever replays them.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fast_iter(
        &self,
        unit: &ProgramUnit,
        fb: &FastBody,
        ctx: &FastCtx<'_>,
        state: &mut ExecState<'_>,
        regs: &mut [Value],
        cur: i64,
        mut red_bufs: Option<&mut [Vec<Value>]>,
    ) -> Result<(), RtError> {
        debug_assert!(state.granted >= fb.steps);
        state.granted -= fb.steps;
        state.steps += fb.steps;
        state.vtime += fb.cost;
        #[inline(always)]
        fn fetch(o: Opnd, regs: &[Value], cur: i64) -> Value {
            match o {
                Opnd::Reg(r) => regs[r as usize],
                Opnd::Imm(v) => v,
                Opnd::Iter => Value::Int(cur),
            }
        }
        let mut fail: Option<(usize, RtError)> = None;
        for (j, op) in fb.ops.iter().enumerate() {
            match op {
                FastOp::Const { dst, v } => regs[*dst as usize] = *v,
                FastOp::LoadIter { dst } => regs[*dst as usize] = Value::Int(cur),
                FastOp::Copy { dst, src } => regs[*dst as usize] = regs[*src as usize],
                FastOp::StoreP { p, slot, src } => {
                    regs[*p as usize] =
                        fetch(*src, regs, cur).coerce(ctx.tys[*slot as usize]);
                }
                FastOp::LoadA { dst, a } => {
                    let i = *a as usize;
                    match fast_flat(unit, &fb.accs[i], &ctx.accs[i], regs, cur) {
                        Ok(flat) => regs[*dst as usize] = ctx.accs[i].arr.load_flat(flat),
                        Err(e) => {
                            fail = Some((j, e));
                            break;
                        }
                    }
                }
                FastOp::StoreA { a, src } => {
                    let i = *a as usize;
                    match fast_flat(unit, &fb.accs[i], &ctx.accs[i], regs, cur) {
                        Ok(flat) => ctx.accs[i].arr.store_flat(flat, fetch(*src, regs, cur)),
                        Err(e) => {
                            fail = Some((j, e));
                            break;
                        }
                    }
                }
                FastOp::LoadN { dst, a, base, n } => {
                    let mut idx = [0i64; 8];
                    for k in 0..*n as usize {
                        idx[k] = regs[*base as usize + k].as_int();
                    }
                    let idx = &idx[..*n as usize];
                    let ra = &ctx.accs[*a as usize];
                    match ra.arr.linearize(idx) {
                        Some(flat) => regs[*dst as usize] = ra.arr.load_flat(flat),
                        None => {
                            fail = Some((j, bounds_err(unit, fb.accs[*a as usize].sym, idx)));
                            break;
                        }
                    }
                }
                FastOp::StoreN { a, base, n, src } => {
                    let mut idx = [0i64; 8];
                    for k in 0..*n as usize {
                        idx[k] = regs[*base as usize + k].as_int();
                    }
                    let idx = &idx[..*n as usize];
                    let ra = &ctx.accs[*a as usize];
                    match ra.arr.linearize(idx) {
                        Some(flat) => ra.arr.store_flat(flat, fetch(*src, regs, cur)),
                        None => {
                            fail = Some((j, bounds_err(unit, fb.accs[*a as usize].sym, idx)));
                            break;
                        }
                    }
                }
                FastOp::Neg { dst, src } => match eval_neg(fetch(*src, regs, cur)) {
                    Ok(v) => regs[*dst as usize] = v,
                    Err(e) => {
                        fail = Some((j, e));
                        break;
                    }
                },
                FastOp::Not { dst, src } => {
                    regs[*dst as usize] = Value::Logical(!fetch(*src, regs, cur).as_logical())
                }
                FastOp::Bin { op, dst, l, r } => {
                    // Add/Sub/Mul are infallible: evaluate them here (the
                    // same `num2` promotion `eval_bin` uses) instead of
                    // paying its full dispatch on the three hottest ops.
                    let a = fetch(*l, regs, cur);
                    let b = fetch(*r, regs, cur);
                    regs[*dst as usize] = match op {
                        BinOp::Add => num2(a, b, |x, y| x.wrapping_add(y), |x, y| x + y),
                        BinOp::Sub => num2(a, b, |x, y| x.wrapping_sub(y), |x, y| x - y),
                        BinOp::Mul => num2(a, b, |x, y| x.wrapping_mul(y), |x, y| x * y),
                        _ => match eval_bin(*op, a, b) {
                            Ok(v) => v,
                            Err(e) => {
                                fail = Some((j, e));
                                break;
                            }
                        },
                    };
                }
                FastOp::Intr { op, dst, base, n } => {
                    match eval_intrinsic(*op, &regs[*base as usize..*base as usize + *n as usize])
                    {
                        Ok(v) => regs[*dst as usize] = v,
                        Err(e) => {
                            fail = Some((j, e));
                            break;
                        }
                    }
                }
                FastOp::RedLog { red, src } => {
                    if let Some(bufs) = red_bufs.as_mut() {
                        bufs[*red as usize].push(fetch(*src, regs, cur));
                    }
                }
            }
        }
        if let Some((j, e)) = fail {
            // Un-charge every original instruction past the faulting op
            // (`origs` maps kept ops back; dropped producers before the
            // fault stay charged, exactly as the slow path would have
            // executed them). Integer-valued charges subtract exactly, so
            // the abort state is bit-identical to the slow path's.
            for k in fb.origs[j] as usize + 1..fb.charge.len() {
                let (c, t) = fb.charge[k];
                state.vtime -= c;
                if t {
                    state.steps -= 1;
                    state.granted += 1;
                }
            }
            return Err(e);
        }
        Ok(())
    }

    /// Run typed (all-f64) fast iterations in a burst: every iteration
    /// the remaining budget grant covers, one op-loop pass each, with no
    /// per-iteration driver dispatch. Charging is per iteration (the same
    /// bulk fold as [`Self::fast_iter`]); the burst stops early — `done`
    /// short of the value count — when the grant can no longer cover a
    /// whole iteration, and the caller routes that iteration through the
    /// slow path, whose tick refill/abort is the walker's. On a fault the
    /// faulting op's unreached charges roll back and the faulting
    /// iteration's value is returned for the loop-variable store.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn typed_run(
        &self,
        unit: &ProgramUnit,
        fb: &FastBody,
        tb: &TypedBody,
        ctx: &FastCtx<'_>,
        state: &mut ExecState<'_>,
        fregs: &mut [f64],
        iregs: &[i64],
        vals: impl Iterator<Item = i64>,
        done: &mut u64,
        mut red_bufs: Option<&mut [Vec<Value>]>,
    ) -> Result<(), (i64, RtError)> {
        #[inline(always)]
        fn ff(o: FOpnd, f: &[f64], cur: i64) -> f64 {
            match o {
                FOpnd::F(r) => f[r as usize],
                FOpnd::Imm(v) => v,
                FOpnd::Iter => cur as f64,
            }
        }
        #[inline(always)]
        fn tflat(
            unit: &ProgramUnit,
            fa: &FastAcc,
            ra: &ResAcc<'_>,
            base: u16,
            iregs: &[i64],
            cur: i64,
        ) -> Result<usize, RtError> {
            let ti = |src: IdxSrc, add: i64| match src {
                IdxSrc::Iter => cur.wrapping_add(add),
                IdxSrc::Reg(r) => iregs[(r - base) as usize].wrapping_add(add),
                IdxSrc::Konst => add,
            };
            if let Some((lo, hi)) = ra.one {
                let (src, add) = fa.dims[0];
                let w = ti(src, add);
                if w < lo || w > hi {
                    return Err(bounds_err(unit, fa.sym, &[w]));
                }
                return Ok((w - lo) as usize);
            }
            let mut idx = [0i64; 8];
            for (k, &(src, add)) in fa.dims.iter().enumerate() {
                idx[k] = ti(src, add);
            }
            let idx = &idx[..fa.dims.len()];
            ra.arr.linearize(idx).ok_or_else(|| bounds_err(unit, fa.sym, idx))
        }
        for cur in vals {
            if state.granted < fb.steps {
                return Ok(());
            }
            state.granted -= fb.steps;
            state.steps += fb.steps;
            state.vtime += fb.cost;
            let mut fail: Option<(usize, RtError)> = None;
            for (j, op) in tb.ops.iter().enumerate() {
                match op {
                    TOp::LoadA { dst, a } => {
                        let i = *a as usize;
                        match tflat(unit, &fb.accs[i], &ctx.accs[i], fb.base, iregs, cur) {
                            Ok(flat) => fregs[*dst as usize] = ctx.accs[i].arr.load_f64(flat),
                            Err(e) => {
                                fail = Some((j, e));
                                break;
                            }
                        }
                    }
                    TOp::StoreA { a, src } => {
                        let i = *a as usize;
                        match tflat(unit, &fb.accs[i], &ctx.accs[i], fb.base, iregs, cur) {
                            Ok(flat) => ctx.accs[i].arr.store_f64(flat, ff(*src, fregs, cur)),
                            Err(e) => {
                                fail = Some((j, e));
                                break;
                            }
                        }
                    }
                    TOp::StoreP { p, src } => fregs[*p as usize] = ff(*src, fregs, cur),
                    TOp::Add { dst, l, r } => {
                        fregs[*dst as usize] = ff(*l, fregs, cur) + ff(*r, fregs, cur)
                    }
                    TOp::Sub { dst, l, r } => {
                        fregs[*dst as usize] = ff(*l, fregs, cur) - ff(*r, fregs, cur)
                    }
                    TOp::Mul { dst, l, r } => {
                        fregs[*dst as usize] = ff(*l, fregs, cur) * ff(*r, fregs, cur)
                    }
                    TOp::Div { dst, l, r } => {
                        fregs[*dst as usize] = ff(*l, fregs, cur) / ff(*r, fregs, cur)
                    }
                    TOp::Pow { dst, l, r } => {
                        fregs[*dst as usize] = ff(*l, fregs, cur).powf(ff(*r, fregs, cur))
                    }
                    TOp::Neg { dst, src } => fregs[*dst as usize] = -ff(*src, fregs, cur),
                    TOp::RedLog { red, src } => {
                        if let Some(bufs) = red_bufs.as_mut() {
                            bufs[*red as usize].push(Value::Real(ff(*src, fregs, cur)));
                        }
                    }
                }
            }
            if let Some((j, e)) = fail {
                for k in tb.origs[j] as usize + 1..fb.charge.len() {
                    let (c, t) = fb.charge[k];
                    state.vtime -= c;
                    if t {
                        state.steps -= 1;
                        state.granted += 1;
                    }
                }
                return Err((cur, e));
            }
            *done += 1;
        }
        Ok(())
    }

    /// Execute a compiled DO loop: analytic trip count (no value vector on
    /// the serial path), walker-identical charging, shadow scoping,
    /// profiling, and pool dispatch for `PARALLEL DO` under Threads mode.
    fn bexec_do(
        &self,
        unit_idx: usize,
        cu: &CompiledUnit<'p>,
        i: u32,
        frame: &Frame,
        state: &mut ExecState<'_>,
        regs: &mut Vec<Value>,
    ) -> Result<Flow, RtError> {
        let unit = &self.program.units[unit_idx];
        let cl = &cu.dos[i as usize];
        let d = cl.d;
        let lo = regs[cl.lo as usize].as_int();
        let hi = regs[cl.hi as usize].as_int();
        let step = match cl.step {
            Some(r) => regs[r as usize].as_int(),
            None => 1,
        };
        if step == 0 {
            return Err(RtError::new("DO step is zero"));
        }
        let count: u64 = if (step > 0 && hi < lo) || (step < 0 && hi > lo) {
            0
        } else {
            ((hi as i128 - lo as i128) / step as i128 + 1) as u64
        };

        let vt0 = state.vtime;
        let wall0 = Instant::now();
        if state.shadow.is_some() {
            // Same masking as the walker: a parallel loop's scope hides
            // exactly what Threads mode rebinds per worker (private arrays
            // stay watched in true-only mode); a serial DO hides nothing.
            let (excluded, true_only) = match &d.parallel {
                Some(info) => {
                    crate::interp::shadow_masks(self.cell(unit, frame, d.var)?, info, frame)
                }
                None => Default::default(),
            };
            if let Some(sh) = state.shadow.as_mut() {
                sh.push_scope(cl.sid, excluded, true_only);
            }
        }

        let flow = if d.is_parallel()
            && !state.in_parallel
            && matches!(self.config.mode, ParallelMode::Threads(_))
        {
            let mut vals = Vec::with_capacity(count as usize);
            for k in 0..count {
                vals.push((lo as i128 + k as i128 * step as i128) as i64);
            }
            self.run_threads(unit_idx, d, &vals, frame, state, Some(i))?
        } else {
            let var_cell = self.cell(unit, frame, d.var)?.clone();
            // Straight-line bodies run in fast form when nothing is
            // watching: cells resolve once, iterations charge in bulk,
            // and loop-variable reads use the in-flight value (the cell
            // gets the final value after the loop — mid-loop stores are
            // unobservable without a shadow tap). Iterations the budget
            // grant can't cover outright fall through to the slow path,
            // whose per-tick refill/abort is the walker's.
            // `red_watch` here belongs to an ENCLOSING parallel loop
            // watching its own accumulators — this serial loop's `red_ok`
            // says nothing about those cells, so the body must route
            // through the gated walker path regardless (serial runs never
            // consume RedLog buffers; `None` is passed below).
            let fast = match (&cl.fast, &state.shadow) {
                (Some(fb), None) if state.red_watch.is_empty() => {
                    self.fast_resolve(fb, frame, &var_cell).map(|ctx| (fb, ctx))
                }
                _ => None,
            };
            if let Some((fb, _)) = &fast {
                if regs.len() < fb.nregs {
                    regs.resize(fb.nregs, Value::Int(0));
                }
            }
            let typed = match &fast {
                Some((fb, ctx)) if ctx.typed_ok => fb.typed.as_ref(),
                _ => None,
            };
            let (mut fregs, mut iregs) = match (&fast, typed) {
                (Some((fb, _)), Some(_)) => {
                    (vec![0f64; fb.nregs], vec![0i64; fb.nslots()])
                }
                _ => (Vec::new(), Vec::new()),
            };
            let mut flow = Flow::Normal;
            let mut last = 0i64;
            // While `promoted`, the body's scalars live in registers; the
            // cells are reconciled (`flush`) at every exit from fast mode
            // so anything that can observe them — a slow iteration, a
            // fault path, the code after the loop — sees exactly what the
            // slow path would have left there.
            let mut promoted = false;
            // Iteration values advance by wrapping add — identical to the
            // walker's `(lo + k*step) as i64` truncation at every k.
            let mut cur = lo;
            let mut k: u64 = 0;
            while k < count {
                match &fast {
                    Some((fb, ctx)) if state.granted >= fb.steps => {
                        if let Some(tb) = typed {
                            // Typed burst: run every remaining iteration
                            // the grant covers in one call.
                            if !promoted {
                                tb.prologue(fb, ctx, &mut fregs, &mut iregs);
                                promoted = true;
                            }
                            let (c0, s, m) = (cur, step, count - k);
                            let vals = (0..m)
                                .map(move |i| c0.wrapping_add(s.wrapping_mul(i as i64)));
                            let mut done = 0u64;
                            let r = self.typed_run(
                                unit, fb, tb, ctx, state, &mut fregs, &iregs, vals, &mut done,
                                None,
                            );
                            if done > 0 {
                                k += done;
                                last = c0.wrapping_add(s.wrapping_mul((done - 1) as i64));
                                cur = last.wrapping_add(s);
                            }
                            if let Err((cf, e)) = r {
                                tb.flush(fb, ctx, &fregs);
                                var_cell.store_scalar(Value::Int(cf));
                                return Err(e);
                            }
                            continue;
                        }
                        last = cur;
                        if !promoted {
                            fb.prologue(ctx, regs);
                            promoted = true;
                        }
                        if let Err(e) = self.fast_iter(unit, fb, ctx, state, regs, cur, None) {
                            fb.flush(ctx, regs);
                            var_cell.store_scalar(Value::Int(cur));
                            return Err(e);
                        }
                        k += 1;
                        cur = cur.wrapping_add(step);
                    }
                    _ => {
                        last = cur;
                        if promoted {
                            if let Some((fb, ctx)) = &fast {
                                match typed {
                                    Some(tb) => tb.flush(fb, ctx, &fregs),
                                    None => fb.flush(ctx, regs),
                                }
                            }
                            promoted = false;
                        }
                        if let Some(sh) = state.shadow.as_deref_mut() {
                            sh.set_iter(k);
                        }
                        state.tick(2.0)?;
                        state.record_var_store(&var_cell, unit_idx, d.var);
                        var_cell.store_scalar(Value::Int(cur));
                        match self.bexec_block(unit_idx, &cl.body, frame, state, regs)? {
                            Flow::Normal => {}
                            other => {
                                flow = other;
                                break;
                            }
                        }
                        k += 1;
                        cur = cur.wrapping_add(step);
                    }
                }
            }
            if promoted {
                if let Some((fb, ctx)) = &fast {
                    match typed {
                        Some(tb) => tb.flush(fb, ctx, &fregs),
                        None => fb.flush(ctx, regs),
                    }
                }
            }
            if fast.is_some() && count > 0 {
                var_cell.store_scalar(Value::Int(last));
            }
            flow
        };

        if let Some(sh) = state.shadow.as_deref_mut() {
            let prog = self.program;
            sh.pop_scope(&unit.name, count, |u, s| prog.units[u].symbols.name(s).to_string());
        }
        let entry = state.profile.entry((unit.name.clone(), cl.sid)).or_default();
        entry.invocations += 1;
        entry.iterations += count;
        entry.ops += state.vtime - vt0;
        entry.wall_ns += wall0.elapsed().as_nanos() as u64;
        Ok(flow)
    }

    /// Execute a compiled call site (mirrors the walker's `exec_call`
    /// argument binding, charge order, and error messages; the callee body
    /// runs as bytecode with its own register file).
    fn bexec_call(
        &self,
        unit_idx: usize,
        cu: &CompiledUnit<'p>,
        plan: u32,
        frame: &Frame,
        state: &mut ExecState<'_>,
        regs: &mut Vec<Value>,
    ) -> Result<Option<Value>, RtError> {
        let unit = &self.program.units[unit_idx];
        let cp = &cu.calls[plan as usize];
        if let Some(msg) = &cp.err {
            return Err(RtError::new(msg.clone()));
        }
        let callee_idx = cp.callee;
        let callee = &self.program.units[callee_idx];
        state.tick(8.0)?; // call overhead, same as the walker
        let mut bound: Vec<(SymId, Arc<Cell>)> = Vec::with_capacity(cp.args.len());
        let mut writebacks: Vec<(Arc<Cell>, usize, Arc<Cell>)> = Vec::new();
        for (&formal, ap) in callee.args.iter().zip(&cp.args) {
            match ap {
                ArgPlan::ByRef(s) => {
                    bound.push((formal, self.cell(unit, frame, *s)?.clone()));
                }
                ArgPlan::ConstVal { v, ty } => {
                    let tmp = Cell::scalar(*ty);
                    tmp.store_scalar(*v);
                    bound.push((formal, tmp));
                }
                ArgPlan::Elem { sym, code, base, n, ty } => {
                    self.bexec_frag(unit_idx, code, frame, state, regs)?;
                    let mut idx = [0i64; 8];
                    for k in 0..*n as usize {
                        idx[k] = regs[*base as usize + k].as_int();
                    }
                    let cell = self.cell(unit, frame, *sym)?.clone();
                    let arr = cell.as_array();
                    let flat = arr.linearize(&idx[..*n as usize]).ok_or_else(|| {
                        RtError::new(format!(
                            "argument subscript out of bounds in call to {}",
                            cp.name
                        ))
                    })?;
                    state.record(&cell, flat, true, unit_idx, *sym);
                    let tmp = Cell::scalar(*ty);
                    tmp.store_scalar(arr.load_flat(flat));
                    writebacks.push((cell.clone(), flat, tmp.clone()));
                    bound.push((formal, tmp));
                }
                ArgPlan::Val { code, reg, ty } => {
                    self.bexec_frag(unit_idx, code, frame, state, regs)?;
                    let tmp = Cell::scalar(*ty);
                    tmp.store_scalar(regs[*reg as usize]);
                    bound.push((formal, tmp));
                }
            }
        }
        let callee_frame = self.make_frame(callee_idx, &bound, state)?;
        let ccu = &self.compiled.as_ref().expect("bytecode engine not compiled").units[callee_idx];
        let mut cregs = vec![Value::Int(0); ccu.nregs()];
        if let Flow::Stop =
            self.bexec_block(callee_idx, &ccu.code, &callee_frame, state, &mut cregs)?
        {
            return Err(RtError::new("STOP inside a procedure"));
        }
        for (cell, flat, tmp) in writebacks {
            cell.as_array().store_flat(flat, tmp.load_scalar());
        }
        if let ped_fortran::UnitKind::Function(_) = callee.kind {
            let ret = callee.symbols.lookup(&callee.name).ok_or_else(|| {
                RtError::new(format!("function {} has no result var", cp.name))
            })?;
            let v = callee_frame
                .get(ret)
                .ok_or_else(|| RtError::new("unbound function result"))?
                .load_scalar();
            Ok(Some(v))
        } else {
            Ok(None)
        }
    }

    /// Run an expression fragment (call-argument code): never produces
    /// control flow.
    fn bexec_frag(
        &self,
        unit_idx: usize,
        code: &Code,
        frame: &Frame,
        state: &mut ExecState<'_>,
        regs: &mut Vec<Value>,
    ) -> Result<(), RtError> {
        match self.bexec_block(unit_idx, code, frame, state, regs)? {
            Flow::Normal => Ok(()),
            _ => Err(RtError::new("control flow inside an expression fragment")),
        }
    }
}
