//! The persistent parallel runtime: schedules, chunk queues, worker pool.
//!
//! The paper's premise is that a loop the user turns into `PARALLEL DO` is
//! rewarded with real speedup on the target machine. The pieces that make
//! the `Threads` execution mode deliver that live here:
//!
//! * [`Schedule`] — how a loop's iteration space is cut into chunks
//!   (`static`, `dynamic(c)`, `guided`; guided is the default because it
//!   amortizes scheduling overhead while still load-balancing triangular
//!   and otherwise imbalanced loops);
//! * [`ChunkQueues`] — one deque per worker with chunk-level work stealing
//!   (owners pop from the front, thieves from the back);
//! * [`Pool`] — a set of workers created once per run and reused by every
//!   `PARALLEL DO`, so fork cost is a condvar wakeup rather than a
//!   `thread::spawn` per loop;
//! * [`StepBudget`] — one shared atomic statement budget, so the global
//!   `max_steps` runaway guard holds across all workers combined;
//! * [`SchedStats`] — chunk/steal/iteration counters surfaced through the
//!   profile report (schema v3).
//!
//! Everything here is hand-rolled on `std` primitives — no external
//! crates — and deliberately simple: the unit of stealing is a chunk
//! (tens-to-thousands of iterations), so a `Mutex<VecDeque>` per worker is
//! far from being a bottleneck next to interpreting the loop body.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

// ----------------------------------------------------------- schedules ----

/// Iteration-scheduling policy for `PARALLEL DO` loops under
/// [`ParallelMode::Threads`](crate::interp::ParallelMode::Threads).
///
/// Whatever the schedule, results are bit-identical to serial execution:
/// scheduling decides *who* runs an iteration and *when*, while the merge
/// logic in the interpreter restores serial order for everything
/// observable (printed lines, reduction combine order, lastprivate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One contiguous chunk per worker, assigned up front. Lowest
    /// overhead; best for uniform iteration costs.
    Static,
    /// Fixed-size chunks of the given length, handed out as workers go
    /// idle (via stealing). Best when iteration costs vary wildly.
    Dynamic(usize),
    /// Exponentially shrinking chunks: large chunks first to amortize
    /// overhead, small chunks last to even out the finish line.
    #[default]
    Guided,
}

impl Schedule {
    /// Parse a user-facing spec: `static`, `guided`, `dynamic`,
    /// `dynamic(64)`, or `dynamic:64`.
    pub fn parse(spec: &str) -> Result<Schedule, String> {
        let s = spec.trim().to_ascii_lowercase();
        match s.as_str() {
            "static" => return Ok(Schedule::Static),
            "guided" => return Ok(Schedule::Guided),
            "dynamic" => return Ok(Schedule::Dynamic(DEFAULT_DYNAMIC_CHUNK)),
            _ => {}
        }
        let digits = s
            .strip_prefix("dynamic(")
            .and_then(|r| r.strip_suffix(')'))
            .or_else(|| s.strip_prefix("dynamic:"));
        if let Some(d) = digits {
            return match d.trim().parse::<usize>() {
                Ok(n) if n > 0 => Ok(Schedule::Dynamic(n)),
                _ => Err(format!("bad dynamic chunk size in '{spec}'")),
            };
        }
        Err(format!("unknown schedule '{spec}' (want static | dynamic[(N)] | guided)"))
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Static => write!(f, "static"),
            Schedule::Dynamic(c) => write!(f, "dynamic({c})"),
            Schedule::Guided => write!(f, "guided"),
        }
    }
}

/// Chunk size used for a bare `dynamic` spec.
pub const DEFAULT_DYNAMIC_CHUNK: usize = 16;

/// A contiguous slice of a loop's iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position in the planned chunk sequence (iteration order).
    pub index: usize,
    /// First iteration (offset into the loop's value vector).
    pub start: usize,
    /// Number of iterations.
    pub len: usize,
}

/// Cut `total` iterations into chunks for `workers` workers. Deterministic:
/// depends only on the arguments, never on timing. Every chunk is
/// non-empty and the chunks exactly cover `0..total` in order.
pub fn plan_chunks(schedule: Schedule, total: usize, workers: usize) -> Vec<Chunk> {
    let workers = workers.max(1);
    let mut out = Vec::new();
    if total == 0 {
        return out;
    }
    let mut start = 0usize;
    let push = |out: &mut Vec<Chunk>, start: &mut usize, len: usize| {
        out.push(Chunk { index: out.len(), start: *start, len });
        *start += len;
    };
    match schedule {
        Schedule::Static => {
            let base = total.div_ceil(workers);
            while start < total {
                let len = base.min(total - start);
                push(&mut out, &mut start, len);
            }
        }
        Schedule::Dynamic(c) => {
            let c = c.max(1);
            while start < total {
                let len = c.min(total - start);
                push(&mut out, &mut start, len);
            }
        }
        Schedule::Guided => {
            while start < total {
                let remaining = total - start;
                let len = remaining.div_ceil(2 * workers).max(1).min(remaining);
                push(&mut out, &mut start, len);
            }
        }
    }
    out
}

// --------------------------------------------------------- work queues ----

/// Per-worker chunk deques with work stealing. Owners pop from the front
/// of their own deque (preserving iteration order locally, which keeps
/// caches warm on adjacent array elements); thieves scan the other deques
/// and steal from the back (the chunks the owner would reach last).
pub struct ChunkQueues {
    queues: Vec<Mutex<VecDeque<Chunk>>>,
}

impl ChunkQueues {
    /// Distribute planned chunks round-robin over `workers` deques. With a
    /// static schedule this is exactly one chunk per worker; with dynamic
    /// and guided it interleaves, so each worker starts with local work
    /// and stealing only kicks in when loads diverge.
    pub fn seed(chunks: &[Chunk], workers: usize) -> ChunkQueues {
        let workers = workers.max(1);
        let mut queues: Vec<VecDeque<Chunk>> = (0..workers).map(|_| VecDeque::new()).collect();
        for &c in chunks {
            queues[c.index % workers].push_back(c);
        }
        ChunkQueues { queues: queues.into_iter().map(Mutex::new).collect() }
    }

    /// Next chunk for worker `w`: their own front, else steal from the
    /// back of another worker's deque. The boolean is true for a steal.
    pub fn take(&self, w: usize) -> Option<(Chunk, bool)> {
        if let Some(c) = self.queues[w].lock().unwrap().pop_front() {
            return Some((c, false));
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (w + off) % n;
            if let Some(c) = self.queues[victim].lock().unwrap().pop_back() {
                return Some((c, true));
            }
        }
        None
    }
}

// ---------------------------------------------------------- step budget ----

/// The one global statement budget shared by the main thread and every
/// worker. Executors acquire blocks of steps up front and return what they
/// did not use, so the invariant is structural: the total number of
/// statements executed anywhere can never exceed the configured cap,
/// no matter how many threads are running.
pub struct StepBudget {
    remaining: AtomicU64,
}

/// How many steps an executor grabs per refill. Large enough that the
/// shared counter is touched ~once per thousand statements, small enough
/// that a tight budget still aborts promptly.
pub const BUDGET_BLOCK: u64 = 1024;

impl StepBudget {
    /// A budget with `cap` total steps.
    pub fn new(cap: u64) -> StepBudget {
        StepBudget { remaining: AtomicU64::new(cap) }
    }

    /// Claim up to `want` steps; returns how many were granted (zero when
    /// the budget is exhausted).
    pub fn acquire(&self, want: u64) -> u64 {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            let grant = cur.min(want);
            if grant == 0 {
                return 0;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return grant,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Return unused steps from an earlier grant.
    pub fn release(&self, unused: u64) {
        if unused > 0 {
            self.remaining.fetch_add(unused, Ordering::Relaxed);
        }
    }
}

// -------------------------------------------------------------- counters ----

/// Scheduler counters accumulated over a run; exported through the
/// profile report (schema v3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// `PARALLEL DO` invocations dispatched to the pool.
    pub parallel_loops: u64,
    /// Chunks executed across all loops and workers.
    pub chunks_executed: u64,
    /// Chunks a worker stole from another worker's deque.
    pub chunks_stolen: u64,
    /// Iterations executed per worker (index = worker id).
    pub worker_iterations: Vec<u64>,
}

impl SchedStats {
    /// Max-over-mean of per-worker iteration counts: 1.0 is a perfect
    /// balance, N means the busiest worker did N× the average.
    pub fn imbalance_ratio(&self) -> f64 {
        let n = self.worker_iterations.len();
        let total: u64 = self.worker_iterations.iter().sum();
        if n == 0 || total == 0 {
            return 1.0;
        }
        let max = *self.worker_iterations.iter().max().unwrap() as f64;
        max / (total as f64 / n as f64)
    }

    /// Fold another run's counters into this one.
    pub fn absorb(&mut self, other: &SchedStats) {
        self.parallel_loops += other.parallel_loops;
        self.chunks_executed += other.chunks_executed;
        self.chunks_stolen += other.chunks_stolen;
        if self.worker_iterations.len() < other.worker_iterations.len() {
            self.worker_iterations.resize(other.worker_iterations.len(), 0);
        }
        for (a, b) in self.worker_iterations.iter_mut().zip(&other.worker_iterations) {
            *a += b;
        }
    }
}

// ----------------------------------------------------------------- pool ----

struct PoolState<J> {
    job: Option<std::sync::Arc<J>>,
    generation: u64,
    active: usize,
    shutdown: bool,
}

/// A persistent pool of `n` workers driven by a job slot. The submitter
/// publishes one job at a time ([`Pool::run_job`]) and blocks until every
/// worker has finished it; workers loop on [`Pool::next_job`] /
/// [`Pool::finish_job`] until [`Pool::shutdown`]. Thread handles are owned
/// by the caller (scoped threads), which keeps the pool free of lifetime
/// juggling: the job type `J` carries whatever owned payload a loop needs.
pub struct Pool<J> {
    workers: usize,
    state: Mutex<PoolState<J>>,
    work_cv: Condvar,
    done_cv: Condvar,
}

impl<J> Pool<J> {
    /// A pool slot for `workers` workers (the caller spawns the threads).
    pub fn new(workers: usize) -> Pool<J> {
        Pool {
            workers: workers.max(1),
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Number of workers this pool was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Publish `job` to every worker and block until all have finished it.
    pub fn run_job(&self, job: std::sync::Arc<J>) {
        let mut st = self.state.lock().unwrap();
        st.job = Some(job);
        st.generation += 1;
        st.active = self.workers;
        self.work_cv.notify_all();
        while st.active > 0 {
            st = self.done_cv.wait(st).unwrap();
        }
        st.job = None;
    }

    /// Worker side: block until a job newer than `last_gen` is published
    /// (updating `last_gen`), or return `None` on shutdown.
    pub fn next_job(&self, last_gen: &mut u64) -> Option<std::sync::Arc<J>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if st.generation != *last_gen {
                if let Some(j) = &st.job {
                    *last_gen = st.generation;
                    return Some(j.clone());
                }
            }
            st = self.work_cv.wait(st).unwrap();
        }
    }

    /// Worker side: signal completion of the current job.
    pub fn finish_job(&self) {
        let mut st = self.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            self.done_cv.notify_all();
        }
    }

    /// Wake all workers and make them exit their job loop.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.work_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn covers(chunks: &[Chunk], total: usize) {
        let mut next = 0;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.start, next);
            assert!(c.len > 0);
            next += c.len;
        }
        assert_eq!(next, total);
    }

    #[test]
    fn schedules_cover_iteration_space() {
        for total in [0usize, 1, 7, 64, 1000] {
            for workers in [1usize, 2, 4, 8] {
                for s in [Schedule::Static, Schedule::Dynamic(7), Schedule::Guided] {
                    covers(&plan_chunks(s, total, workers), total);
                }
            }
        }
    }

    #[test]
    fn static_is_one_chunk_per_worker() {
        let chunks = plan_chunks(Schedule::Static, 100, 4);
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|c| c.len == 25));
        // Fewer iterations than workers: one single-iteration chunk each.
        assert_eq!(plan_chunks(Schedule::Static, 3, 8).len(), 3);
    }

    #[test]
    fn guided_chunks_shrink() {
        let chunks = plan_chunks(Schedule::Guided, 1000, 4);
        assert!(chunks.len() > 4, "guided should produce more chunks than workers");
        for w in chunks.windows(2) {
            assert!(w[0].len >= w[1].len, "guided chunks must not grow: {chunks:?}");
        }
    }

    #[test]
    fn schedule_parsing_round_trips() {
        assert_eq!(Schedule::parse("static").unwrap(), Schedule::Static);
        assert_eq!(Schedule::parse("GUIDED").unwrap(), Schedule::Guided);
        assert_eq!(
            Schedule::parse("dynamic").unwrap(),
            Schedule::Dynamic(DEFAULT_DYNAMIC_CHUNK)
        );
        assert_eq!(Schedule::parse("dynamic(64)").unwrap(), Schedule::Dynamic(64));
        assert_eq!(Schedule::parse("dynamic:8").unwrap(), Schedule::Dynamic(8));
        assert!(Schedule::parse("dynamic(0)").is_err());
        assert!(Schedule::parse("interleaved").is_err());
        for s in [Schedule::Static, Schedule::Dynamic(64), Schedule::Guided] {
            assert_eq!(Schedule::parse(&s.to_string()).unwrap(), s);
        }
    }

    #[test]
    fn stealing_drains_all_chunks() {
        let chunks = plan_chunks(Schedule::Dynamic(3), 50, 4);
        let q = ChunkQueues::seed(&chunks, 4);
        // Worker 2 drains everything: its own chunks plus steals.
        let mut got = Vec::new();
        let mut steals = 0;
        while let Some((c, stolen)) = q.take(2) {
            got.push(c);
            steals += usize::from(stolen);
        }
        assert_eq!(got.len(), chunks.len());
        assert!(steals > 0, "a lone drainer must have stolen");
        let mut starts: Vec<_> = got.iter().map(|c| c.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, chunks.iter().map(|c| c.start).collect::<Vec<_>>());
    }

    #[test]
    fn budget_never_overgrants() {
        let b = StepBudget::new(2500);
        let mut granted = 0;
        loop {
            let g = b.acquire(BUDGET_BLOCK);
            if g == 0 {
                break;
            }
            granted += g;
        }
        assert_eq!(granted, 2500);
        b.release(100);
        assert_eq!(b.acquire(BUDGET_BLOCK), 100);
        assert_eq!(b.acquire(1), 0);
    }

    #[test]
    fn imbalance_ratio_basics() {
        let mut s = SchedStats::default();
        assert_eq!(s.imbalance_ratio(), 1.0);
        s.worker_iterations = vec![100, 100, 100, 100];
        assert_eq!(s.imbalance_ratio(), 1.0);
        s.worker_iterations = vec![300, 100, 0, 0];
        assert_eq!(s.imbalance_ratio(), 3.0);
        let mut t = SchedStats { parallel_loops: 1, ..SchedStats::default() };
        t.absorb(&s);
        assert_eq!(t.worker_iterations, vec![300, 100, 0, 0]);
    }

    #[test]
    fn pool_runs_jobs_to_completion() {
        struct CountJob {
            hits: AtomicUsize,
        }
        let pool: Pool<CountJob> = Pool::new(3);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let pool = &pool;
                scope.spawn(move || {
                    let mut gen = 0u64;
                    while let Some(job) = pool.next_job(&mut gen) {
                        job.hits.fetch_add(1, Ordering::Relaxed);
                        pool.finish_job();
                    }
                });
            }
            for _ in 0..5 {
                let job = std::sync::Arc::new(CountJob { hits: AtomicUsize::new(0) });
                pool.run_job(job.clone());
                // Every worker touched the job exactly once, and run_job
                // only returned after all of them were done.
                assert_eq!(job.hits.load(Ordering::Relaxed), 3);
            }
            pool.shutdown();
        });
    }
}
