//! Shadow-memory access logging: the observed-dependence side of the
//! validation checker.
//!
//! When [`crate::ExecConfig::shadow`] is on, the interpreter reports every
//! memory touch (cell, flat element, read/write) to a [`ShadowRec`]. The
//! recorder maintains one [`ShadowScope`] per active DO loop and derives,
//! online, the *observed* cross-iteration dependences of each loop: for
//! every (cell, element) it keeps only the nearest prior read/write
//! iteration, so a touch at iteration `i` immediately yields the carried
//! flow/anti/output/input pairs ending at `i` with their distances. Memory
//! stays proportional to the touched footprint, not the run length.
//!
//! Privatized names are handled by *masking*: a parallel loop's scope
//! carries the cell addresses Threads mode rebinds per worker — the loop
//! variable plus `private`/`lastprivate`/`reduction` clause cells. A touch
//! walks the scope stack innermost-out and stops at the first scope that
//! excludes the cell — an inner serial loop still observes the clause
//! locals, while the privatizing loop and everything enclosing it never
//! sees them, exactly mirroring what the worker-local rebinding makes
//! invisible in Threads mode. Serial loops mask nothing: even their own
//! index is an ordinary shared cell, and its per-iteration store must stay
//! visible to any enclosing parallel scope whose parallelization failed to
//! privatize it.
//!
//! Threads mode keeps the observation deterministic by construction:
//! workers do not update the parallel loop's scope concurrently. Instead
//! each chunk logs its raw events through an [`EventTap`] (inner serial
//! loops inside the chunk use ordinary local scopes) and the merge replays
//! the event streams on the submitting thread in chunk-start order — the
//! serial iteration order — through the same scope stack. The resulting
//! [`ShadowLog`] is therefore identical under Serial, Simulate, and
//! Threads execution of the same program.

use crate::memory::Cell;
use ped_fortran::{StmtId, SymId};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Kind of an observed cross-iteration dependence, aligned with the static
/// graph's `DepKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObsKind {
    /// Write then later read (flow).
    True,
    /// Read then later write.
    Anti,
    /// Write then later write.
    Output,
    /// Read then later read.
    Input,
}

impl ObsKind {
    /// Stable machine-readable name, matching `DepKind`'s display form.
    pub fn name(self) -> &'static str {
        match self {
            ObsKind::True => "true",
            ObsKind::Anti => "anti",
            ObsKind::Output => "output",
            ObsKind::Input => "input",
        }
    }
}

impl std::fmt::Display for ObsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Occurrence statistics of one observed (variable, kind) dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsStat {
    /// Access pairs observed.
    pub count: u64,
    /// Smallest iteration distance seen.
    pub min_dist: u64,
    /// Largest iteration distance seen.
    pub max_dist: u64,
}

impl ObsStat {
    fn new(dist: u64) -> ObsStat {
        ObsStat { count: 1, min_dist: dist, max_dist: dist }
    }

    fn merge(&mut self, other: ObsStat) {
        self.count += other.count;
        self.min_dist = self.min_dist.min(other.min_dist);
        self.max_dist = self.max_dist.max(other.max_dist);
    }
}

/// What one loop's executions observed, across all invocations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopObs {
    /// Times the loop was entered with shadow recording active.
    pub invocations: u64,
    /// Total iterations executed.
    pub iterations: u64,
    /// Observed loop-carried dependences keyed by (variable name, kind).
    pub carried: BTreeMap<(String, ObsKind), ObsStat>,
}

/// The observed-dependence log of a whole run, keyed by
/// (unit name, DO statement). Deterministic: equal runs produce equal logs
/// regardless of execution mode, schedule, or thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowLog {
    /// Per-loop observations.
    pub loops: BTreeMap<(String, StmtId), LoopObs>,
}

impl ShadowLog {
    /// Merge another log (worker-local inner-loop observations).
    pub fn fold(&mut self, other: ShadowLog) {
        for (key, obs) in other.loops {
            let e = self.loops.entry(key).or_default();
            e.invocations += obs.invocations;
            e.iterations += obs.iterations;
            for (k, stat) in obs.carried {
                match e.carried.get_mut(&k) {
                    Some(s) => s.merge(stat),
                    None => {
                        e.carried.insert(k, stat);
                    }
                }
            }
        }
    }

    /// Total observed carried (variable, kind) dependences over all loops.
    pub fn observed_deps(&self) -> usize {
        self.loops.values().map(|l| l.carried.len()).sum()
    }
}

/// Nearest-access history of one (cell, element). `prev_read` matters when
/// an iteration reads a location it later writes: the write's carried
/// anti-dependence must pair with the last read of an *earlier* iteration,
/// which `last_read` alone (already advanced to the current iteration)
/// would mask.
#[derive(Debug, Clone, Copy, Default)]
struct ElemHist {
    last_read: Option<u64>,
    prev_read: Option<u64>,
    last_write: Option<u64>,
}

/// One raw access event captured in a worker chunk, replayed at the merge.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    ptr: usize,
    elem: usize,
    write: bool,
    /// Global (serial) iteration index of the enclosing parallel loop.
    iter: u64,
    unit: usize,
    sym: SymId,
}

/// Worker-side event buffer standing in for the parallel loop's scope
/// (which lives on the submitting thread).
struct EventTap {
    excluded: HashSet<usize>,
    iter: u64,
    events: Vec<Event>,
}

/// The per-loop observation state while the loop is running.
struct ShadowScope {
    stmt: StmtId,
    iter: u64,
    /// Cell addresses this loop privatizes (invisible to it and outward).
    excluded: HashSet<usize>,
    /// Cell addresses privatized as arrays via a section proof: this scope
    /// still watches them, but records only carried *flow* — anti/output
    /// are exactly what a valid privatization removes, while a carried
    /// true dependence means the kill analysis was wrong (or the user
    /// forced the clause) and must surface as an observed race. Like
    /// `excluded`, the cell stays invisible to enclosing scopes.
    true_only: HashSet<usize>,
    hist: HashMap<(usize, usize), ElemHist>,
    /// Carried dependences keyed by the sink access's (unit, symbol, kind);
    /// resolved to names when the scope pops.
    obs: HashMap<(usize, SymId, ObsKind), ObsStat>,
}

impl ShadowScope {
    fn touch(&mut self, ptr: usize, elem: usize, write: bool, unit: usize, sym: SymId) {
        self.touch_filtered(ptr, elem, write, unit, sym, false)
    }

    fn touch_filtered(
        &mut self,
        ptr: usize,
        elem: usize,
        write: bool,
        unit: usize,
        sym: SymId,
        true_only: bool,
    ) {
        let i = self.iter;
        let h = self.hist.entry((ptr, elem)).or_default();
        let prior_read = if h.last_read == Some(i) { h.prev_read } else { h.last_read };
        let mut noted: [Option<(ObsKind, u64)>; 2] = [None, None];
        if write {
            if let Some(r) = prior_read {
                noted[0] = Some((ObsKind::Anti, i - r));
            }
            if let Some(w) = h.last_write.filter(|&w| w < i) {
                noted[1] = Some((ObsKind::Output, i - w));
            }
            h.last_write = Some(i);
        } else {
            if let Some(w) = h.last_write.filter(|&w| w < i) {
                noted[0] = Some((ObsKind::True, i - w));
            }
            if h.last_read != Some(i) {
                if let Some(r) = h.last_read {
                    noted[1] = Some((ObsKind::Input, i - r));
                }
                h.prev_read = h.last_read;
                h.last_read = Some(i);
            }
        }
        for (kind, dist) in noted.into_iter().flatten() {
            if true_only && kind != ObsKind::True {
                continue;
            }
            match self.obs.get_mut(&(unit, sym, kind)) {
                Some(s) => s.merge(ObsStat::new(dist)),
                None => {
                    self.obs.insert((unit, sym, kind), ObsStat::new(dist));
                }
            }
        }
    }
}

/// Everything one worker chunk observed, handed back for the merge.
pub struct ShadowChunk {
    events: Vec<Event>,
    log: ShadowLog,
    keep: Vec<Arc<Cell>>,
}

/// The per-execution-context shadow recorder: a scope stack plus, in
/// worker chunks, the event tap standing in for the parallel loop.
pub struct ShadowRec {
    scopes: Vec<ShadowScope>,
    tap: Option<EventTap>,
    /// Keeps every recorded cell alive so freed-cell addresses are never
    /// reused (which would alias distinct per-invocation locals).
    keep_seen: HashSet<usize>,
    keep: Vec<Arc<Cell>>,
    log: ShadowLog,
}

impl ShadowRec {
    /// Recorder for the submitting (serial/simulate/main) thread.
    pub fn serial() -> ShadowRec {
        ShadowRec {
            scopes: Vec::new(),
            tap: None,
            keep_seen: HashSet::new(),
            keep: Vec::new(),
            log: ShadowLog::default(),
        }
    }

    /// Recorder for one worker chunk: accesses that fall past every local
    /// scope land in the event tap unless the chunk privatizes them.
    pub fn tapped(excluded: HashSet<usize>) -> ShadowRec {
        ShadowRec {
            tap: Some(EventTap { excluded, iter: 0, events: Vec::new() }),
            ..ShadowRec::serial()
        }
    }

    /// Enter a loop. `excluded` holds the cell addresses the loop
    /// privatizes: the variable + scalar clause cells for a parallel loop,
    /// nothing for a serial one. `true_only` holds section-privatized
    /// *array* cells: invisible outward like `excluded`, but this scope
    /// still records carried flow through them — the observed witness that
    /// an (asserted or forced) array privatization was invalid.
    pub fn push_scope(
        &mut self,
        stmt: StmtId,
        excluded: HashSet<usize>,
        true_only: HashSet<usize>,
    ) {
        self.scopes.push(ShadowScope {
            stmt,
            iter: 0,
            excluded,
            true_only,
            hist: HashMap::new(),
            obs: HashMap::new(),
        });
    }

    /// Set the innermost loop's current iteration index.
    pub fn set_iter(&mut self, iter: u64) {
        if let Some(top) = self.scopes.last_mut() {
            top.iter = iter;
        }
    }

    /// Set the global iteration index chunk events are stamped with.
    pub fn set_tap_iter(&mut self, iter: u64) {
        if let Some(tap) = self.tap.as_mut() {
            tap.iter = iter;
        }
    }

    /// Leave the innermost loop, folding what it observed into the log.
    /// `resolve` maps the sink access's (unit, symbol) to a variable name.
    pub fn pop_scope(
        &mut self,
        unit_name: &str,
        iterations: u64,
        resolve: impl Fn(usize, SymId) -> String,
    ) {
        let Some(scope) = self.scopes.pop() else { return };
        let e = self.log.loops.entry((unit_name.to_string(), scope.stmt)).or_default();
        e.invocations += 1;
        e.iterations += iterations;
        for ((u, s, kind), stat) in scope.obs {
            let key = (resolve(u, s), kind);
            match e.carried.get_mut(&key) {
                Some(cur) => cur.merge(stat),
                None => {
                    e.carried.insert(key, stat);
                }
            }
        }
    }

    /// Record one access. Walks active scopes innermost-out, stopping at
    /// the first scope that privatizes the cell; accesses that pass every
    /// scope reach the event tap (worker chunks only).
    pub fn record(&mut self, cell: &Arc<Cell>, elem: usize, write: bool, unit: usize, sym: SymId) {
        let ptr = Arc::as_ptr(cell) as usize;
        if self.keep_seen.insert(ptr) {
            self.keep.push(cell.clone());
        }
        if !self.feed(ptr, elem, write, unit, sym) {
            return;
        }
        if let Some(tap) = self.tap.as_mut() {
            if !tap.excluded.contains(&ptr) {
                tap.events.push(Event { ptr, elem, write, iter: tap.iter, unit, sym });
            }
        }
    }

    /// Feed scopes innermost-out; false when some scope excluded the cell.
    fn feed(&mut self, ptr: usize, elem: usize, write: bool, unit: usize, sym: SymId) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if scope.excluded.contains(&ptr) {
                return false;
            }
            if scope.true_only.contains(&ptr) {
                scope.touch_filtered(ptr, elem, write, unit, sym, true);
                return false;
            }
            scope.touch(ptr, elem, write, unit, sym);
        }
        true
    }

    /// Merge one chunk's observations: replay its event stream through the
    /// live scope stack (the innermost scope is the parallel loop the
    /// chunk belongs to) and fold its inner-loop log. Chunks must be
    /// absorbed in iteration (chunk-start) order.
    pub fn absorb_chunk(&mut self, chunk: ShadowChunk) {
        for cell in chunk.keep {
            if self.keep_seen.insert(Arc::as_ptr(&cell) as usize) {
                self.keep.push(cell);
            }
        }
        for e in &chunk.events {
            self.set_iter(e.iter);
            self.feed(e.ptr, e.elem, e.write, e.unit, e.sym);
        }
        self.log.fold(chunk.log);
    }

    /// Finish a worker chunk: hand the raw events + local log to the merge.
    pub fn into_chunk(self) -> ShadowChunk {
        ShadowChunk {
            events: self.tap.map(|t| t.events).unwrap_or_default(),
            log: self.log,
            keep: self.keep,
        }
    }

    /// Finish the run.
    pub fn into_log(self) -> ShadowLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(n: u32) -> SymId {
        SymId(n)
    }

    fn scoped() -> ShadowRec {
        let mut rec = ShadowRec::serial();
        rec.push_scope(StmtId(1), HashSet::new(), HashSet::new());
        rec
    }

    fn pop(mut rec: ShadowRec, iters: u64) -> LoopObs {
        rec.pop_scope("main", iters, |_, s| format!("v{}", s.0));
        rec.into_log().loops.remove(&("main".to_string(), StmtId(1))).unwrap()
    }

    fn cell() -> Arc<Cell> {
        Cell::scalar(ped_fortran::Ty::Real)
    }

    #[test]
    fn flow_and_output_distances() {
        let c = cell();
        let mut rec = scoped();
        for i in 0..4u64 {
            rec.set_iter(i);
            rec.record(&c, 0, false, 0, sym(7)); // read
            rec.record(&c, 0, true, 0, sym(7)); // write
        }
        let obs = pop(rec, 4);
        let flow = obs.carried[&("v7".to_string(), ObsKind::True)];
        assert_eq!((flow.count, flow.min_dist, flow.max_dist), (3, 1, 1));
        let out = obs.carried[&("v7".to_string(), ObsKind::Output)];
        assert_eq!((out.count, out.min_dist, out.max_dist), (3, 1, 1));
    }

    #[test]
    fn same_iteration_accesses_are_loop_independent() {
        let c = cell();
        let mut rec = scoped();
        rec.set_iter(2);
        rec.record(&c, 0, true, 0, sym(1));
        rec.record(&c, 0, false, 0, sym(1));
        rec.record(&c, 0, true, 0, sym(1));
        let obs = pop(rec, 1);
        assert!(obs.carried.is_empty(), "{:?}", obs.carried);
    }

    #[test]
    fn prev_read_unmasks_carried_anti() {
        // Regression shape: every iteration reads x, one later iteration
        // also writes it. The write at iteration 2 pairs with the read at
        // iteration 1 (anti, distance 1); with only `last_read` the same-
        // iteration read at 2 would hide it.
        let c = cell();
        let mut rec = scoped();
        for i in 0..3u64 {
            rec.set_iter(i);
            rec.record(&c, 0, false, 0, sym(3));
            if i == 2 {
                rec.record(&c, 0, true, 0, sym(3));
            }
        }
        let obs = pop(rec, 3);
        let anti = obs.carried[&("v3".to_string(), ObsKind::Anti)];
        assert_eq!((anti.count, anti.min_dist), (1, 1));
    }

    #[test]
    fn excluded_cells_invisible_to_excluding_scope_and_outward() {
        let private = cell();
        let shared = cell();
        let mut rec = ShadowRec::serial();
        rec.push_scope(StmtId(1), HashSet::new(), HashSet::new()); // outer
        let mut excl = HashSet::new();
        excl.insert(Arc::as_ptr(&private) as usize);
        rec.push_scope(StmtId(2), excl, HashSet::new()); // parallel loop privatizing
        rec.push_scope(StmtId(3), HashSet::new(), HashSet::new()); // inner serial loop
        for i in 0..2u64 {
            // Inner scope sees the private cell (carried there is fine);
            // the privatizing scope and the outer one must not.
            if let Some(s) = rec.scopes.get_mut(2) {
                s.iter = i;
            }
            rec.record(&private, 0, true, 0, sym(5));
            rec.record(&private, 0, false, 0, sym(5));
            rec.record(&shared, 0, true, 0, sym(6));
        }
        rec.pop_scope("main", 2, |_, s| format!("v{}", s.0));
        rec.pop_scope("main", 1, |_, s| format!("v{}", s.0));
        rec.pop_scope("main", 1, |_, s| format!("v{}", s.0));
        let log = rec.into_log();
        // Each iteration writes then reads the private cell: the read is
        // satisfied same-iteration (no carried flow), but the write at
        // iteration 1 pairs with iteration 0's read/write.
        let inner = &log.loops[&("main".to_string(), StmtId(3))];
        assert!(inner.carried.contains_key(&("v5".to_string(), ObsKind::Anti)));
        assert!(inner.carried.contains_key(&("v5".to_string(), ObsKind::Output)));
        let par = &log.loops[&("main".to_string(), StmtId(2))];
        assert!(par.carried.keys().all(|(n, _)| n != "v5"), "{:?}", par.carried);
        // Shared writes at iteration 0 of the parallel scope only (its
        // iter never advanced) — no carried dep, but also no crash.
        let outer = &log.loops[&("main".to_string(), StmtId(1))];
        assert!(outer.carried.keys().all(|(n, _)| n != "v5"));
    }

    #[test]
    fn true_only_cells_record_flow_but_not_anti_output() {
        // A valid array privatization: every iteration writes then reads
        // its cell. Only anti/output are carried — and the true_only set
        // suppresses exactly those while hiding the cell from outer scopes.
        let priv_arr = cell();
        let mut valid = ShadowRec::serial();
        valid.push_scope(StmtId(1), HashSet::new(), HashSet::new()); // outer
        let mut tonly = HashSet::new();
        tonly.insert(Arc::as_ptr(&priv_arr) as usize);
        valid.push_scope(StmtId(2), HashSet::new(), tonly.clone());
        for i in 0..3u64 {
            valid.set_iter(i);
            valid.record(&priv_arr, 0, true, 0, sym(5));
            valid.record(&priv_arr, 0, false, 0, sym(5));
        }
        valid.pop_scope("main", 3, |_, s| format!("v{}", s.0));
        valid.pop_scope("main", 1, |_, s| format!("v{}", s.0));
        let log = valid.into_log();
        let par = &log.loops[&("main".to_string(), StmtId(2))];
        assert!(par.carried.is_empty(), "{:?}", par.carried);
        let outer = &log.loops[&("main".to_string(), StmtId(1))];
        assert!(outer.carried.is_empty(), "{:?}", outer.carried);

        // An INVALID privatization: iteration i reads what i-1 wrote.
        // The carried flow must survive the filter as the race witness.
        let mut forced = ShadowRec::serial();
        forced.push_scope(StmtId(2), HashSet::new(), tonly);
        for i in 0..3u64 {
            forced.set_iter(i);
            forced.record(&priv_arr, 0, false, 0, sym(5)); // read first…
            forced.record(&priv_arr, 0, true, 0, sym(5)); // …then write
        }
        forced.pop_scope("main", 3, |_, s| format!("v{}", s.0));
        let log = forced.into_log();
        let par = &log.loops[&("main".to_string(), StmtId(2))];
        let flow = par.carried[&("v5".to_string(), ObsKind::True)];
        assert_eq!((flow.count, flow.min_dist), (2, 1));
        assert!(
            !par.carried.contains_key(&("v5".to_string(), ObsKind::Anti)),
            "{:?}",
            par.carried
        );
    }

    #[test]
    fn tap_replay_matches_direct_recording() {
        let shared = cell();
        let worker_private = cell();
        // Direct: one scope observing iterations 0..4 of a(0) writes.
        let mut direct = ShadowRec::serial();
        direct.push_scope(StmtId(9), HashSet::new(), HashSet::new());
        for i in 0..4u64 {
            direct.set_iter(i);
            direct.record(&shared, 0, true, 0, sym(2));
        }
        direct.pop_scope("main", 4, |_, s| format!("v{}", s.0));
        // Tapped: two chunks recording the same accesses, replayed.
        let mut main = ShadowRec::serial();
        main.push_scope(StmtId(9), HashSet::new(), HashSet::new());
        let mut excl = HashSet::new();
        excl.insert(Arc::as_ptr(&worker_private) as usize);
        let mut chunks = Vec::new();
        for (start, len) in [(0u64, 2u64), (2, 2)] {
            let mut w = ShadowRec::tapped(excl.clone());
            for i in start..start + len {
                w.set_tap_iter(i);
                w.record(&shared, 0, true, 0, sym(2));
                w.record(&worker_private, 0, true, 0, sym(4));
            }
            chunks.push(w.into_chunk());
        }
        for c in chunks {
            main.absorb_chunk(c);
        }
        main.pop_scope("main", 4, |_, s| format!("v{}", s.0));
        assert_eq!(direct.into_log(), main.into_log());
    }
}
