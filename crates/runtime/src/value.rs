//! Runtime values.
//!
//! Every storage cell holds 64 bits interpreted through the symbol's
//! declared type: integers as `i64`, `REAL`/`DOUBLE PRECISION` as `f64`
//! bits, logicals as 0/1. Keeping one width makes the atomic cells of
//! [`crate::memory`] uniform.

use ped_fortran::Ty;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// INTEGER
    Int(i64),
    /// REAL / DOUBLE PRECISION
    Real(f64),
    /// LOGICAL
    Logical(bool),
}

impl Value {
    /// Encode into the 64-bit cell representation.
    #[inline]
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Real(v) => v.to_bits(),
            Value::Logical(b) => b as u64,
        }
    }

    /// Decode from the cell representation under a type.
    #[inline]
    pub fn from_bits(bits: u64, ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(bits as i64),
            Ty::Real | Ty::Double => Value::Real(f64::from_bits(bits)),
            Ty::Logical => Value::Logical(bits != 0),
        }
    }

    /// Integer view with Fortran conversion (truncation from real).
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Real(v) => v as i64,
            Value::Logical(b) => b as i64,
        }
    }

    /// Real view with Fortran conversion.
    #[inline]
    pub fn as_real(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Real(v) => v,
            Value::Logical(b) => b as i64 as f64,
        }
    }

    /// Logical view.
    #[inline]
    pub fn as_logical(self) -> bool {
        match self {
            Value::Logical(b) => b,
            Value::Int(v) => v != 0,
            Value::Real(v) => v != 0.0,
        }
    }

    /// Coerce to a storage type (assignment conversion).
    #[inline]
    pub fn coerce(self, ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(self.as_int()),
            Ty::Real | Ty::Double => Value::Real(self.as_real()),
            Ty::Logical => Value::Logical(self.as_logical()),
        }
    }

    /// Zero of a type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(0),
            Ty::Real | Ty::Double => Value::Real(0.0),
            Ty::Logical => Value::Logical(false),
        }
    }

    /// Format like Fortran list-directed output (close enough for tests).
    pub fn display(self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Real(v) => format!("{v:?}"),
            Value::Logical(true) => "T".to_string(),
            Value::Logical(false) => "F".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip() {
        for (v, ty) in [
            (Value::Int(-42), Ty::Integer),
            (Value::Real(3.25), Ty::Real),
            (Value::Real(-0.0), Ty::Double),
            (Value::Logical(true), Ty::Logical),
        ] {
            assert_eq!(Value::from_bits(v.to_bits(), ty), v);
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::Real(2.9).as_int(), 2, "Fortran INT truncates");
        assert_eq!(Value::Real(-2.9).as_int(), -2);
        assert_eq!(Value::Int(3).as_real(), 3.0);
        assert_eq!(Value::Int(7).coerce(Ty::Real), Value::Real(7.0));
        assert_eq!(Value::Real(7.9).coerce(Ty::Integer), Value::Int(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).display(), "5");
        assert_eq!(Value::Logical(true).display(), "T");
        assert_eq!(Value::Real(1.5).display(), "1.5");
    }
}
