//! Storage cells and frames.
//!
//! Fortran argument passing is by reference; we model every scalar and
//! array as a reference-counted [`Cell`] whose payload is relaxed atomics.
//! Binding a formal to an actual is an `Arc` clone; COMMON blocks are
//! shared cell vectors keyed by block name. Relaxed atomics cost a plain
//! load/store on mainstream hardware while making the *real-parallel*
//! execution mode free of data races by construction (the `PARALLEL DO`
//! semantics — not memory safety — remain the analysis' responsibility).

use crate::value::Value;
use ped_fortran::Ty;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An array cell: flat atomic payload plus dimension bounds.
#[derive(Debug)]
pub struct ArrayCell {
    /// Element type.
    pub ty: Ty,
    /// Per-dimension `(lower, upper)` bounds, in declaration order.
    pub dims: Vec<(i64, i64)>,
    data: Vec<AtomicU64>,
}

impl ArrayCell {
    /// Allocate with zeroed elements. Panics on dimensions [`Self::checked_len`]
    /// rejects; runtime allocation sites validate first and surface a named
    /// `RtError` instead.
    pub fn new(ty: Ty, dims: Vec<(i64, i64)>) -> ArrayCell {
        let len = Self::checked_len(&dims).expect("array dimensions overflow the size limit");
        let zero = Value::zero(ty).to_bits();
        let data = (0..len).map(|_| AtomicU64::new(zero)).collect();
        ArrayCell { ty, dims, data }
    }

    /// Validated element count of a dimension list: every extent and the
    /// running product are computed with checked arithmetic and capped (so
    /// a bound expression that overflows or asks for an absurd allocation
    /// is an error, never a silent wrap or an OOM abort). Negative extents
    /// clamp to zero exactly like Fortran zero-trip bounds.
    pub fn checked_len(dims: &[(i64, i64)]) -> Option<usize> {
        /// More than any kernel needs, far below address-space trouble.
        const CAP: i64 = 1 << 31;
        let mut len: i64 = 1;
        for &(lo, hi) in dims {
            let extent = hi.checked_sub(lo)?.checked_add(1)?.max(0);
            len = len.checked_mul(extent)?;
            if len > CAP {
                return None;
            }
        }
        Some(len as usize)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Column-major linearization (Fortran order). `None` when any
    /// subscript is out of bounds. All arithmetic is checked: a subscript
    /// near `i64::MIN`/`MAX` becomes an out-of-bounds report, never a
    /// wrapped index (the per-dimension bounds check runs first, so the
    /// checked ops only fire on dimension lists no allocation produced).
    pub fn linearize(&self, subs: &[i64]) -> Option<usize> {
        if subs.len() != self.dims.len() {
            return None;
        }
        let mut off: i64 = 0;
        let mut stride: i64 = 1;
        for (&s, &(lo, hi)) in subs.iter().zip(&self.dims) {
            if s < lo || s > hi {
                return None;
            }
            off = off.checked_add(s.checked_sub(lo)?.checked_mul(stride)?)?;
            stride = stride.checked_mul(hi.checked_sub(lo)?.checked_add(1)?)?;
        }
        usize::try_from(off).ok().filter(|&o| o < self.data.len())
    }

    /// Raw f64 element read — the typed fast path's [`Self::load_flat`]
    /// for `REAL`/`DOUBLE` arrays (identical bits, no `Value` round-trip).
    #[inline]
    pub fn load_f64(&self, flat: usize) -> f64 {
        f64::from_bits(self.data[flat].load(Ordering::Relaxed))
    }

    /// Raw f64 element write — [`Self::store_flat`] for a `Value::Real`
    /// into a `REAL`/`DOUBLE` array stores exactly these bits.
    #[inline]
    pub fn store_f64(&self, flat: usize, v: f64) {
        self.data[flat].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Load an element by flat index.
    #[inline]
    pub fn load_flat(&self, idx: usize) -> Value {
        Value::from_bits(self.data[idx].load(Ordering::Relaxed), self.ty)
    }

    /// Store an element by flat index (coerced to the element type).
    #[inline]
    pub fn store_flat(&self, idx: usize, v: Value) {
        self.data[idx].store(v.coerce(self.ty).to_bits(), Ordering::Relaxed);
    }
}

/// A storage cell: scalar or array.
#[derive(Debug)]
pub enum Cell {
    /// Scalar payload with its type.
    Scalar {
        /// Declared type.
        ty: Ty,
        /// 64-bit payload.
        bits: AtomicU64,
    },
    /// Array payload.
    Array(ArrayCell),
}

impl Cell {
    /// New zeroed scalar.
    pub fn scalar(ty: Ty) -> Arc<Cell> {
        Arc::new(Cell::Scalar { ty, bits: AtomicU64::new(Value::zero(ty).to_bits()) })
    }

    /// New zeroed array.
    pub fn array(ty: Ty, dims: Vec<(i64, i64)>) -> Arc<Cell> {
        Arc::new(Cell::Array(ArrayCell::new(ty, dims)))
    }

    /// Read a scalar cell.
    #[inline]
    pub fn load_scalar(&self) -> Value {
        match self {
            Cell::Scalar { ty, bits } => Value::from_bits(bits.load(Ordering::Relaxed), *ty),
            Cell::Array(_) => panic!("scalar access to array cell"),
        }
    }

    /// Write a scalar cell (coerced).
    #[inline]
    pub fn store_scalar(&self, v: Value) {
        match self {
            Cell::Scalar { ty, bits } => {
                bits.store(v.coerce(*ty).to_bits(), Ordering::Relaxed)
            }
            Cell::Array(_) => panic!("scalar store to array cell"),
        }
    }

    /// Array view.
    pub fn as_array(&self) -> &ArrayCell {
        match self {
            Cell::Array(a) => a,
            Cell::Scalar { .. } => panic!("array access to scalar cell"),
        }
    }

    /// Is this an array cell?
    pub fn is_array(&self) -> bool {
        matches!(self, Cell::Array(_))
    }

    /// Deep copy (used for private overlays).
    pub fn duplicate(&self) -> Arc<Cell> {
        match self {
            Cell::Scalar { ty, bits } => Arc::new(Cell::Scalar {
                ty: *ty,
                bits: AtomicU64::new(bits.load(Ordering::Relaxed)),
            }),
            Cell::Array(a) => {
                let copy = ArrayCell::new(a.ty, a.dims.clone());
                for i in 0..a.len() {
                    copy.store_flat(i, a.load_flat(i));
                }
                Arc::new(Cell::Array(copy))
            }
        }
    }
}

/// A unit invocation's name bindings.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    slots: Vec<Option<Arc<Cell>>>,
}

impl Frame {
    /// Frame sized for a unit's symbol table.
    pub fn with_capacity(nsyms: usize) -> Frame {
        Frame { slots: vec![None; nsyms] }
    }

    /// Bind a symbol to a cell.
    pub fn bind(&mut self, sym: ped_fortran::SymId, cell: Arc<Cell>) {
        if sym.index() >= self.slots.len() {
            self.slots.resize(sym.index() + 1, None);
        }
        self.slots[sym.index()] = Some(cell);
    }

    /// The cell bound to a symbol.
    pub fn get(&self, sym: ped_fortran::SymId) -> Option<&Arc<Cell>> {
        self.slots.get(sym.index()).and_then(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_linearization() {
        // a(2,3): element (i,j) at (i-1) + 2*(j-1).
        let a = ArrayCell::new(Ty::Real, vec![(1, 2), (1, 3)]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.linearize(&[1, 1]), Some(0));
        assert_eq!(a.linearize(&[2, 1]), Some(1));
        assert_eq!(a.linearize(&[1, 2]), Some(2));
        assert_eq!(a.linearize(&[2, 3]), Some(5));
        assert_eq!(a.linearize(&[3, 1]), None, "out of bounds");
        assert_eq!(a.linearize(&[0, 1]), None);
    }

    #[test]
    fn nonunit_lower_bounds() {
        let a = ArrayCell::new(Ty::Integer, vec![(0, 4)]);
        assert_eq!(a.len(), 5);
        assert_eq!(a.linearize(&[0]), Some(0));
        assert_eq!(a.linearize(&[4]), Some(4));
        assert_eq!(a.linearize(&[5]), None);
    }

    #[test]
    fn store_coerces_to_element_type() {
        let a = ArrayCell::new(Ty::Integer, vec![(1, 3)]);
        a.store_flat(0, Value::Real(2.7));
        assert_eq!(a.load_flat(0), Value::Int(2));
    }

    #[test]
    fn frame_binding_aliases() {
        let mut f1 = Frame::with_capacity(2);
        let mut f2 = Frame::with_capacity(1);
        let c = Cell::scalar(Ty::Real);
        f1.bind(ped_fortran::SymId(0), c.clone());
        f2.bind(ped_fortran::SymId(0), c.clone());
        f1.get(ped_fortran::SymId(0)).unwrap().store_scalar(Value::Real(9.0));
        assert_eq!(f2.get(ped_fortran::SymId(0)).unwrap().load_scalar(), Value::Real(9.0));
    }

    #[test]
    fn duplicate_is_independent() {
        let c = Cell::scalar(Ty::Integer);
        c.store_scalar(Value::Int(5));
        let d = c.duplicate();
        d.store_scalar(Value::Int(7));
        assert_eq!(c.load_scalar(), Value::Int(5));
        assert_eq!(d.load_scalar(), Value::Int(7));
    }
}
