//! The simulated parallel machine.
//!
//! A deterministic cost model standing in for the paper's 8-processor
//! Alliant FX/8: `PARALLEL DO` loops are charged as a static block schedule
//! — fork overhead, the maximum per-processor chunk cost, and a barrier.
//! Because the charge is computed from interpreter op counts, speedup
//! *shapes* (who wins, where granularity crossovers fall) are reproducible
//! on any host.

/// Machine parameters in virtual operation units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Number of processors.
    pub procs: usize,
    /// Cost to fork a parallel region.
    pub fork_cost: f64,
    /// Cost of the closing barrier.
    pub barrier_cost: f64,
    /// Per-iteration scheduling overhead.
    pub dispatch_cost: f64,
}

impl Machine {
    /// An 8-processor machine with Alliant-like relative overheads.
    pub fn alliant8() -> Machine {
        Machine { procs: 8, fork_cost: 800.0, barrier_cost: 200.0, dispatch_cost: 2.0 }
    }

    /// Same overheads with a different processor count.
    pub fn with_procs(procs: usize) -> Machine {
        Machine { procs, ..Machine::alliant8() }
    }

    /// Charge for a parallel loop whose iterations cost `iter_costs`
    /// (virtual ops each), under static block scheduling.
    pub fn parallel_charge(&self, iter_costs: &[f64]) -> f64 {
        if iter_costs.is_empty() {
            return self.fork_cost + self.barrier_cost;
        }
        let n = iter_costs.len();
        let p = self.procs.max(1);
        let chunk = n.div_ceil(p);
        let mut worst: f64 = 0.0;
        for c in iter_costs.chunks(chunk) {
            let cost: f64 = c.iter().sum::<f64>() + self.dispatch_cost * c.len() as f64;
            worst = worst.max(cost);
        }
        self.fork_cost + worst + self.barrier_cost
    }

    /// Serial charge for the same iterations (no overheads).
    pub fn serial_charge(&self, iter_costs: &[f64]) -> f64 {
        iter_costs.iter().sum()
    }

    /// [`Machine::parallel_charge`] for `trip` iterations that all cost
    /// `iter_cost`, in O(1) time and space — no `vec![cost; trip]`
    /// materialization. With uniform nonnegative costs the worst static
    /// block is always a full-size chunk, so only the chunk length matters.
    /// Equals the slice path exactly whenever `chunk * iter_cost` is exact
    /// in f64 — true for the estimator, whose costs are integral-valued.
    pub fn parallel_charge_uniform(&self, iter_cost: f64, trip: usize) -> f64 {
        if trip == 0 {
            return self.fork_cost + self.barrier_cost;
        }
        let p = self.procs.max(1);
        let chunk = trip.div_ceil(p);
        let worst = chunk as f64 * iter_cost + self.dispatch_cost * chunk as f64;
        self.fork_cost + worst + self.barrier_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_split_speedup() {
        let m = Machine::with_procs(4);
        let iters = vec![100.0; 400];
        let par = m.parallel_charge(&iters);
        let ser = m.serial_charge(&iters);
        let speedup = ser / par;
        assert!(speedup > 3.5 && speedup <= 4.0, "speedup {speedup}");
    }

    #[test]
    fn tiny_loop_slower_in_parallel() {
        // Granularity: a 4-iteration cheap loop loses to fork+barrier.
        let m = Machine::alliant8();
        let iters = vec![3.0; 4];
        assert!(m.parallel_charge(&iters) > m.serial_charge(&iters));
    }

    #[test]
    fn empty_loop_costs_overhead_only() {
        let m = Machine::alliant8();
        assert_eq!(m.parallel_charge(&[]), m.fork_cost + m.barrier_cost);
    }

    #[test]
    fn uniform_fast_path_matches_vec_path() {
        // The O(1) fast path must agree exactly with materializing the
        // iteration vector, across trip counts that exercise empty, shorter
        // -than-P, evenly divisible, and ragged-last-chunk schedules.
        for procs in [1, 2, 8] {
            let m = Machine::with_procs(procs);
            for cost in [0.0, 1.0, 3.0, 117.0] {
                for trip in [0usize, 1, 5, 8, 100, 1000, 1001] {
                    let fast = m.parallel_charge_uniform(cost, trip);
                    let slow = m.parallel_charge(&vec![cost; trip]);
                    assert_eq!(
                        fast, slow,
                        "procs={procs} cost={cost} trip={trip}: {fast} != {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_zero_trip_is_overhead_only() {
        let m = Machine::alliant8();
        assert_eq!(m.parallel_charge_uniform(5.0, 0), m.fork_cost + m.barrier_cost);
    }

    #[test]
    fn imbalanced_chunks_bound_by_worst() {
        let m = Machine::with_procs(2);
        // First half expensive, second half cheap: static blocks suffer.
        let mut iters = vec![10.0; 50];
        iters.extend(vec![1.0; 50]);
        let par = m.parallel_charge(&iters);
        assert!(par >= 500.0 + m.fork_cost + m.barrier_cost);
    }
}
