//! The nine-program synthetic suite (stand-ins for the paper's Table 1).

/// The parallelization phenomenon a workload exercises (Table 3's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phenomenon {
    /// Sum/min/max reductions that must be recognized.
    Reductions,
    /// Scalars killed every iteration → privatizable.
    PrivatizableScalars,
    /// Scalar killed inside a called procedure (interprocedural KILL).
    InterprocKill,
    /// Call in loop writing an exact array section (regular sections).
    InterprocSections,
    /// Loop bounds/subscripts constant only via interprocedural constants.
    InterprocConstants,
    /// Index-array subscripts needing user assertions.
    IndexArrays,
    /// Symbolic terms that must cancel in dependence testing.
    SymbolicSubscripts,
    /// Symbolic loop bounds needing assertions for precise tests.
    SymbolicBounds,
    /// Linearized (MIV) subscripts.
    LinearizedArrays,
    /// Interprocedural array kill needed (beyond this tool, as in the paper).
    ArrayKillNeeded,
    /// Outer-loop parallelism via inlining/interchange for granularity.
    GranularityInterchange,
    /// Crossing subscripts (weak-crossing SIV decides).
    CrossingSubscripts,
}

/// One evaluation program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Program name (matches the paper's Table 1 entry it stands in for).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The paper's contributor credit (for the Table 1 reproduction).
    pub contributor: &'static str,
    /// Fortran source.
    pub source: &'static str,
    /// Phenomena the program exercises.
    pub phenomena: &'static [Phenomenon],
}

impl Workload {
    /// Source line count (Table 1's "lines" column).
    pub fn lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// Number of program units (Table 1's "procedures" column).
    pub fn procedures(&self) -> usize {
        ped_fortran::parse_program(self.source).map(|p| p.units.len()).unwrap_or(0)
    }
}

/// All nine programs in Table 1 order.
pub fn all_programs() -> Vec<Workload> {
    vec![
        SPEC77.clone(),
        PNEOSS.clone(),
        NXSNS.clone(),
        ARC3D.clone(),
        SLAB2D.clone(),
        GLOOP.clone(),
        ONEDIM.clone(),
        EULER.clone(),
        BANDED.clone(),
    ]
}

/// Look up a program by name.
pub fn program_by_name(name: &str) -> Option<Workload> {
    all_programs().into_iter().find(|w| w.name == name)
}

/// Weather simulation: many procedures, column sweeps behind calls
/// (interprocedural MOD/REF + regular sections), plus a diagnostics
/// reduction.
pub static SPEC77: Workload = Workload {
    name: "spec77",
    description: "weather simulation code",
    contributor: "Steve Poole, IBM Kingston & Lo Hsieh, IBM Palo Alto",
    phenomena: &[
        Phenomenon::InterprocSections,
        Phenomenon::Reductions,
        Phenomenon::InterprocConstants,
    ],
    source: "\
program spec77
integer nlat, nlon, ntime
parameter (nlat = 24, nlon = 24, ntime = 4)
real u(nlat, nlon), v(nlat, nlon), tq(nlat, nlon), flux(nlat, nlon)
real dt, etot
integer t
common /phys/ dt
dt = 0.01
call init(u, v, tq, nlat, nlon)
do t = 1, ntime
  call advect(u, v, flux, nlat, nlon)
  call diffuse(tq, flux, nlat, nlon)
  call border(u, nlat, nlon)
enddo
etot = 0.0
call energy(tq, nlat, nlon, etot)
print *, etot
end

subroutine init(u, v, tq, n, m)
integer n, m
real u(n, m), v(n, m), tq(n, m)
do j = 1, m
  do i = 1, n
    u(i, j) = 0.01 * i + 0.02 * j
    v(i, j) = 0.03 * i - 0.01 * j
    tq(i, j) = 280.0 + 0.1 * i
  enddo
enddo
return
end

subroutine advect(u, v, flux, n, m)
integer n, m
real u(n, m), v(n, m), flux(n, m)
do j = 2, m - 1
  call colflux(u, v, flux, n, m, j)
enddo
return
end

subroutine colflux(u, v, flux, n, m, jc)
integer n, m, jc
real u(n, m), v(n, m), flux(n, m)
real up, vp
do i = 2, n - 1
  up = u(i, jc) + u(i, jc - 1)
  vp = v(i, jc) + v(i, jc + 1)
  flux(i, jc) = 0.5 * (up - vp)
enddo
return
end

subroutine diffuse(tq, flux, n, m)
integer n, m
real tq(n, m), flux(n, m)
common /phys/ dt
do j = 2, m - 1
  do i = 2, n - 1
    tq(i, j) = tq(i, j) + dt * flux(i, j)
  enddo
enddo
return
end

subroutine border(u, n, m)
integer n, m
real u(n, m)
do j = 1, m
  u(1, j) = u(2, j)
  u(n, j) = u(n - 1, j)
enddo
return
end

subroutine energy(tq, n, m, etot)
integer n, m
real tq(n, m), etot
etot = 0.0
do j = 1, m
  do i = 1, n
    etot = etot + tq(i, j) * tq(i, j)
  enddo
enddo
return
end
",
};

/// Thermodynamics: small code dominated by reductions and privatizable
/// temporaries.
pub static PNEOSS: Workload = Workload {
    name: "pneoss",
    description: "thermodynamics code",
    contributor: "Mary Zosel, Lawrence Livermore National Laboratory",
    phenomena: &[Phenomenon::Reductions, Phenomenon::PrivatizableScalars],
    source: "\
program pneoss
integer n
parameter (n = 64)
real p(n), vol(n), temp(n)
real esum, pmax, work
call setup(p, vol, temp, n)
esum = 0.0
pmax = p(1)
do i = 1, n
  work = p(i) * vol(i)
  esum = esum + work
  pmax = max(pmax, p(i))
enddo
call relax(temp, n)
print *, esum, pmax, temp(n)
end

subroutine setup(p, vol, temp, n)
integer n
real p(n), vol(n), temp(n)
do i = 1, n
  p(i) = 1.0 + 0.5 * i
  vol(i) = 2.0 - 0.01 * i
  temp(i) = 300.0
enddo
return
end

subroutine relax(temp, n)
integer n
real temp(n)
real tnew
do i = 2, n
  tnew = 0.5 * (temp(i) + temp(i - 1))
  temp(i) = tnew
enddo
return
end
",
};

/// Quantum mechanics: the key scalar is *killed inside a procedure called
/// in the loop* — interprocedural KILL analysis makes it privatizable.
pub static NXSNS: Workload = Workload {
    name: "nxsns",
    description: "quantum mechanics code",
    contributor: "John Engle, Lawrence Livermore National Laboratory",
    phenomena: &[Phenomenon::InterprocKill, Phenomenon::Reductions],
    source: "\
program nxsns
integer n
parameter (n = 48)
real psi(n), xs(n), w
real total
call fill(xs, n)
do i = 1, n
  call getwt(w, xs, n, i)
  psi(i) = w * xs(i)
enddo
total = 0.0
do i = 1, n
  total = total + psi(i)
enddo
print *, total
end

subroutine fill(xs, n)
integer n
real xs(n)
do i = 1, n
  xs(i) = 0.1 * i
enddo
return
end

subroutine getwt(w, xs, n, k)
integer n, k
real w, xs(n)
w = 1.0 + xs(k) * 0.5
if (k .gt. n / 2) then
  w = w * 2.0
endif
return
end
",
};

/// Fluid dynamics: symbolic subscript offsets that must cancel in the
/// tests (the paper's `filter3d` pattern), and a sweep needing
/// interprocedural *array kill* that correctly stays sequential.
pub static ARC3D: Workload = Workload {
    name: "arc3d",
    description: "fluid dynamics code",
    contributor: "workshop attendee, NASA Ames",
    phenomena: &[
        Phenomenon::SymbolicSubscripts,
        Phenomenon::ArrayKillNeeded,
        Phenomenon::PrivatizableScalars,
    ],
    source: "\
program arc3d
integer jmax, kmax
parameter (jmax = 30, kmax = 20)
real x(jmax + 2, kmax), work(3 * jmax)
real smu, total
integer jplus
call seed(x, jmax + 2, kmax)
jplus = jmax + 1
smu = 0.1
call filter(work, x, jmax, kmax, jplus, smu)
do k = 1, kmax
  call sweep(work, x, jmax, kmax, k)
enddo
total = 0.0
do k = 1, kmax
  do j = 1, jmax
    total = total + x(j, k)
  enddo
enddo
print *, total
end

subroutine seed(x, n, m)
integer n, m
real x(n, m)
do k = 1, m
  do j = 1, n
    x(j, k) = 0.001 * j * k
  enddo
enddo
return
end

subroutine filter(work, x, jmax, kmax, jplus, smu)
integer jmax, kmax, jplus
real work(3 * jmax), x(jmax + 2, kmax), smu
do j = 1, jmax
  work(jplus + j) = x(j, 1) * smu
enddo
do j = 2, jmax
  work(jplus + j) = work(jplus + j) + work(jplus + j - 1)
enddo
return
end

subroutine sweep(work, x, jmax, kmax, k)
integer jmax, kmax, k
real work(3 * jmax), x(jmax + 2, kmax)
real t
do j = 1, jmax
  work(j) = x(j, k) * 2.0
enddo
do j = 1, jmax
  t = work(j) + 1.0
  x(j, k) = t * 0.5
enddo
return
end
",
};

/// Slab decomposition: a workspace array rewritten per slab — *array
/// privatization* (kill + transformation) would be needed, as the paper
/// reports for slab2d; loop distribution separates the parallel part.
pub static SLAB2D: Workload = Workload {
    name: "slab2d",
    description: "plasma slab model",
    contributor: "workshop attendee, LLNL",
    phenomena: &[Phenomenon::ArrayKillNeeded, Phenomenon::PrivatizableScalars],
    source: "\
program slab2d
integer ns, np
parameter (ns = 16, np = 32)
real field(np, ns), dens(np, ns), w(np)
real total
call start(field, np, ns)
do is = 1, ns
  do ip = 1, np
    w(ip) = field(ip, is) * 0.25
  enddo
  do ip = 1, np
    dens(ip, is) = w(ip) + 1.0
  enddo
enddo
total = 0.0
do is = 1, ns
  do ip = 1, np
    total = total + dens(ip, is)
  enddo
enddo
print *, total
end

subroutine start(field, n, m)
integer n, m
real field(n, m)
do j = 1, m
  do i = 1, n
    field(i, j) = 0.01 * i + 0.1 * j
  enddo
enddo
return
end
",
};

/// The paper's gloop story: outer loops invoke procedures whose *inner*
/// loops hold the parallelism; sections make the outer loop parallel, and
/// inlining + interchange recover granularity.
pub static GLOOP: Workload = Workload {
    name: "gloop",
    description: "global spectral loop driver",
    contributor: "Joseph Stein, Syracuse University",
    phenomena: &[Phenomenon::GranularityInterchange, Phenomenon::InterprocSections],
    source: "\
program gloop
integer n
parameter (n = 40)
real g(n, n)
real total
call prep(g, n)
do k = 1, n
  call colop(g, n, k)
enddo
total = 0.0
do k = 1, n
  total = total + g(k, k)
enddo
print *, total
end

subroutine prep(g, n)
integer n
real g(n, n)
do j = 1, n
  do i = 1, n
    g(i, j) = 1.0 / (i + j)
  enddo
enddo
return
end

subroutine colop(g, n, kc)
integer n, kc
real g(n, n)
do i = 1, n
  g(i, kc) = g(i, kc) * 2.0 + 0.5
enddo
return
end
",
};

/// Index-array scatter: the dependences are pending (non-affine) and only
/// the user's permutation assertion deletes them.
pub static ONEDIM: Workload = Workload {
    name: "onedim",
    description: "1-d particle reordering",
    contributor: "workshop attendee, Rice University",
    phenomena: &[Phenomenon::IndexArrays],
    source: "\
program onedim
integer n
parameter (n = 50)
real a(n), b(n)
integer ind(n)
real s
do i = 1, n
  ind(i) = n + 1 - i
  b(i) = 0.5 * i
enddo
do i = 1, n
  a(ind(i)) = b(i) * b(i)
enddo
s = 0.0
do i = 1, n
  s = s + a(i)
enddo
print *, s
end
",
};

/// Euler solver fragment: crossing subscripts (weak-crossing SIV) and
/// min/max limiter reductions.
pub static EULER: Workload = Workload {
    name: "euler",
    description: "1-d Euler flux kernel",
    contributor: "workshop attendee, NASA Ames",
    phenomena: &[Phenomenon::CrossingSubscripts, Phenomenon::Reductions],
    source: "\
program euler
integer n
parameter (n = 60)
real q(n), qr(n)
real cmax
call load(q, n)
do i = 1, n / 2 - 1
  qr(i) = q(n + 1 - i)
enddo
cmax = 0.0
do i = 1, n
  cmax = max(cmax, abs(q(i)))
enddo
print *, cmax, qr(5)
end

subroutine load(q, n)
integer n
real q(n)
do i = 1, n
  q(i) = sin(0.1 * i)
enddo
return
end
",
};

/// Banded solver: linearized (MIV) subscripts and symbolic bounds that
/// need a value assertion before the tests become exact.
pub static BANDED: Workload = Workload {
    name: "banded",
    description: "banded matrix kernel",
    contributor: "workshop attendee, Cray Research",
    phenomena: &[
        Phenomenon::LinearizedArrays,
        Phenomenon::SymbolicBounds,
        Phenomenon::InterprocConstants,
    ],
    source: "\
program banded
integer n
parameter (n = 24)
real ab(n * n), rhs(n)
real total
call form(ab, rhs, n)
call scalerows(ab, rhs, n)
total = 0.0
do i = 1, n
  total = total + rhs(i)
enddo
print *, total
end

subroutine form(ab, rhs, n)
integer n
real ab(n * n), rhs(n)
do j = 1, n
  do i = 1, n
    ab(i + n * (j - 1)) = 0.0
  enddo
enddo
do i = 1, n
  ab(i + n * (i - 1)) = 4.0
  rhs(i) = 1.0 * i
enddo
return
end

subroutine scalerows(ab, rhs, n)
integer n
real ab(n * n), rhs(n)
real d
do i = 1, n
  d = ab(i + n * (i - 1))
  rhs(i) = rhs(i) / d
enddo
return
end
",
};

#[cfg(test)]
mod tests {
    use super::*;
    use ped_runtime::interp::run_source;
    use ped_runtime::ExecConfig;

    #[test]
    fn all_programs_parse() {
        for w in all_programs() {
            let p = ped_fortran::parse_program(w.source)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", w.name));
            assert!(p.main().is_some(), "{} lacks a main unit", w.name);
            assert!(w.lines() > 10);
            assert_eq!(w.procedures(), p.units.len());
        }
    }

    #[test]
    fn all_programs_run_and_print() {
        for w in all_programs() {
            let r = run_source(w.source, ExecConfig::default())
                .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name));
            assert!(!r.printed.is_empty(), "{} printed nothing", w.name);
            assert!(r.steps > 50, "{} did too little work", w.name);
        }
    }

    #[test]
    fn deterministic_output() {
        for w in all_programs() {
            let a = run_source(w.source, ExecConfig::default()).unwrap();
            let b = run_source(w.source, ExecConfig::default()).unwrap();
            assert_eq!(a.printed, b.printed, "{} is nondeterministic", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(program_by_name("spec77").is_some());
        assert!(program_by_name("arc3d").is_some());
        assert!(program_by_name("nosuch").is_none());
        assert_eq!(all_programs().len(), 9);
    }
}
