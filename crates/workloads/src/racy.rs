//! Seeded mutations that reintroduce races into parallelized programs.
//!
//! The shadow-runtime validator's mutation tests need programs that are
//! *almost* right: a correct parallelization with exactly one enabling
//! ingredient undone — a privatization clause dropped, a reduction clause
//! broken, a user-deleted dependence made real again. These helpers produce
//! those variants textually, from the regenerated source of a parallelized
//! session, so the mutation is visible in the program text the checker
//! re-analyzes (exactly what a careless later edit would look like).

/// The `onedim` program with its index-array permutation broken: `ind(2)`
/// is overwritten with a value that already occurs, so two iterations of
/// the scatter loop write the same element of `a`. A user's permutation
/// assertion over `ind` is now a lie the shadow checker can catch.
pub fn onedim_duplicate_index() -> String {
    crate::suite::ONEDIM
        .source
        .replacen(
            "enddo\ndo i = 1, n\n  a(ind(i))",
            "enddo\nind(2) = 5\ndo i = 1, n\n  a(ind(i))",
            1,
        )
}

/// Strip every `kind(...)` clause (`private`, `lastprivate`, `reduction`)
/// from the `parallel do` headers of `src`, leaving the loops marked
/// parallel. Returns the mutated source; equal to the input when no such
/// clause exists.
pub fn strip_clause(src: &str, kind: &str) -> String {
    let needle = format!(" {kind}(");
    let mut out = String::with_capacity(src.len());
    for line in src.lines() {
        if line.trim_start().starts_with("parallel do") && line.contains(&needle) {
            let mut l = line.to_string();
            while let Some(p) = l.find(&needle) {
                let close = l[p..].find(')').map(|c| p + c + 1).unwrap_or(l.len());
                l.replace_range(p..close, "");
            }
            out.push_str(&l);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_index_differs_only_by_one_statement() {
        let orig = crate::suite::ONEDIM.source;
        let muted = onedim_duplicate_index();
        assert_ne!(orig, muted);
        assert!(muted.contains("ind(2) = 5"));
        assert_eq!(muted.lines().count(), orig.lines().count() + 1);
    }

    #[test]
    fn strip_clause_removes_only_the_requested_kind() {
        let src = "program t\nreal a(10), s\n\
            parallel do i = 1, 10 private(t1, t2) reduction(+:s)\n\
            t1 = a(i)\ns = s + t1\nenddo\nend\n";
        let no_priv = strip_clause(src, "private");
        assert!(!no_priv.contains("private("));
        assert!(no_priv.contains("reduction(+:s)"));
        let no_red = strip_clause(src, "reduction");
        assert!(no_red.contains("private(t1, t2)"));
        assert!(!no_red.contains("reduction("));
        // No clause of that kind: identity.
        assert_eq!(strip_clause(src, "lastprivate"), src);
    }
}
