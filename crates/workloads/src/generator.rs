//! Parameterized program generator for scalability experiments and
//! differential-fuzzing campaigns.
//!
//! Builds syntactically valid programs of controlled size with a mix of
//! loop shapes (copies, stencils/recurrences, reductions, 2-nests,
//! workspace arrays needing the section kill analysis, partial-kill traps
//! that must NOT privatize, COMMON-block aliasing through a helper call,
//! non-affine `mod` subscripts, and deep call chains inside loops) so
//! E10/E11 can sweep analysis time against program size and E17 can fuzz
//! the analyzer at corpus scale.
//!
//! ## Reproducibility
//!
//! Generation is a pure function of [`GenConfig`]: the same config (seed
//! included) yields **byte-identical** source on every platform, build,
//! and run. The only randomness source is the SplitMix64 [`Rng`], whose
//! output sequence is fixed by its published algorithm; no iteration
//! order, hash seed, pointer value, or host property feeds the output.
//! `genconfig_seed_is_byte_reproducible` pins checksums of generated
//! corpora so any accidental format or RNG change fails loudly.

use crate::rng::Rng;
use std::fmt::Write;

/// Generator parameters. Generation is deterministic: equal configs
/// produce byte-identical source (see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of subroutine units (plus one main and four fixed helpers).
    pub units: usize,
    /// Loops per unit.
    pub loops_per_unit: usize,
    /// Assignments per loop body.
    pub stmts_per_loop: usize,
    /// Array extent.
    pub extent: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { units: 4, loops_per_unit: 6, stmts_per_loop: 4, extent: 64, seed: 7 }
    }
}

/// Fixed extent of the `/gbuf/` COMMON array shared by the aliasing shape
/// and its helper (independent of [`GenConfig::extent`]).
pub const COMMON_EXTENT: usize = 32;

/// Generate a complete program.
pub fn gen_source(cfg: GenConfig) -> String {
    let mut out = String::new();
    gen_source_into(&mut out, cfg);
    out
}

/// Generate into a caller-owned buffer (cleared first), so campaign
/// workers can recycle one allocation across thousands of seeds.
pub fn gen_source_into(out: &mut String, cfg: GenConfig) {
    out.clear();
    let mut rng = Rng::seed_from_u64(cfg.seed);
    gen_main_open(out, cfg);
    gen_calls(out, cfg, "");
    gen_main_close(out);
    gen_units(out, cfg, "", &mut rng);
}

/// Concatenated-unit mode: `copies` independently-seeded program bodies
/// (copy `k` uses seed `cfg.seed + k`) namespaced `p{k}` and fused under
/// one main that calls them all. This is the parse/analysis scale stress:
/// with a large `copies` the output reaches millions of lines while every
/// unit stays independently analyzable.
pub fn gen_concat_source(cfg: GenConfig, copies: usize) -> String {
    let mut out = String::new();
    gen_main_open(&mut out, cfg);
    for k in 0..copies {
        gen_calls(&mut out, cfg, &format!("p{k}"));
    }
    gen_main_close(&mut out);
    for k in 0..copies {
        let mut rng = Rng::seed_from_u64(cfg.seed.wrapping_add(k as u64));
        gen_units(&mut out, cfg, &format!("p{k}"), &mut rng);
    }
    out
}

fn gen_main_open(out: &mut String, cfg: GenConfig) {
    let n = cfg.extent;
    writeln!(out, "program gen").unwrap();
    writeln!(out, "integer n").unwrap();
    writeln!(out, "parameter (n = {n})").unwrap();
    writeln!(out, "real a(n), b(n), c(n, n)").unwrap();
    writeln!(out, "real s").unwrap();
    writeln!(out, "do i = 1, n").unwrap();
    writeln!(out, "  a(i) = 0.1 * i").unwrap();
    writeln!(out, "  b(i) = 0.2 * i").unwrap();
    writeln!(out, "enddo").unwrap();
}

fn gen_calls(out: &mut String, cfg: GenConfig, prefix: &str) {
    for u in 0..cfg.units {
        writeln!(out, "call {prefix}work{u}(a, b, c, n)").unwrap();
    }
}

fn gen_main_close(out: &mut String) {
    writeln!(out, "s = 0.0").unwrap();
    writeln!(out, "do i = 1, n").unwrap();
    writeln!(out, "  s = s + a(i) + b(i)").unwrap();
    writeln!(out, "enddo").unwrap();
    writeln!(out, "print *, s").unwrap();
    writeln!(out, "end").unwrap();
}

/// Emit the work units plus the four fixed helpers (`mixg` for the
/// COMMON aliasing shape, `chain1`..`chain3` for the deep-call shape).
/// Helpers are always present so unit count is config-determined.
fn gen_units(out: &mut String, cfg: GenConfig, prefix: &str, rng: &mut Rng) {
    for u in 0..cfg.units {
        gen_unit(out, u, cfg, prefix, rng);
    }
    gen_helpers(out, prefix);
}

fn gen_unit(out: &mut String, u: usize, cfg: GenConfig, prefix: &str, rng: &mut Rng) {
    let ge = COMMON_EXTENT;
    writeln!(out, "subroutine {prefix}work{u}(a, b, c, n)").unwrap();
    writeln!(out, "integer n").unwrap();
    writeln!(out, "real a(n), b(n), c(n, n)").unwrap();
    writeln!(out, "real t, s, w(n)").unwrap();
    writeln!(out, "common /{prefix}gbuf/ g({ge})").unwrap();
    for l in 0..cfg.loops_per_unit {
        match rng.range(0, 10) {
            // Parallel copy loop.
            0 => {
                writeln!(out, "do i = 1, n").unwrap();
                for k in 0..cfg.stmts_per_loop {
                    let c1 = rng.range(1, 9);
                    if k % 2 == 0 {
                        writeln!(out, "  a(i) = b(i) * {c1}.0 + a(i)").unwrap();
                    } else {
                        writeln!(out, "  b(i) = b(i) + {c1}.0").unwrap();
                    }
                }
                writeln!(out, "enddo").unwrap();
            }
            // Recurrence (sequential).
            1 => {
                writeln!(out, "do i = 2, n").unwrap();
                writeln!(out, "  a(i) = a(i - 1) * 0.5 + b(i)").unwrap();
                for _ in 1..cfg.stmts_per_loop {
                    writeln!(out, "  b(i) = b(i) + 0.25").unwrap();
                }
                writeln!(out, "enddo").unwrap();
            }
            // Reduction.
            2 => {
                writeln!(out, "s = 0.0").unwrap();
                writeln!(out, "do i = 1, n").unwrap();
                writeln!(out, "  s = s + a(i) * b(i)").unwrap();
                writeln!(out, "enddo").unwrap();
                writeln!(out, "a({}) = s", 1 + l % cfg.extent.max(1)).unwrap();
            }
            // 2-nest over the matrix.
            3 => {
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                for _ in 0..cfg.stmts_per_loop.min(2) {
                    writeln!(out, "    c(i, j) = c(i, j) + a(i) * b(j)").unwrap();
                }
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Workspace array fully overwritten each outer iteration:
            // whole-array MOD/REF sees a carried w dependence, only the
            // section kill analysis proves w privatizable (ArrayKillNeeded).
            5 => {
                let c1 = rng.range(1, 9);
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                writeln!(out, "    w(i) = a(i) * {c1}.0 + b(j)").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                writeln!(out, "    c(i, j) = c(i, j) + w(i)").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Partial-kill trap: the overwrite stops one short of the
            // read extent, so w(n) flows across outer iterations — the
            // kill gap must block privatization.
            6 => {
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  do i = 1, n - 1").unwrap();
                writeln!(out, "    w(i) = a(i) + b(j)").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                writeln!(out, "    c(i, j) = c(i, j) + w(i) * 0.5").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "  w(n) = w(1) + b(j)").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // COMMON-block aliasing: fill the shared buffer, mutate it
            // through a helper that sees it under another name, then read
            // it back with a wrapped subscript. Any unsoundness in the
            // interprocedural COMMON MOD/REF story shows up here.
            7 => {
                let c1 = rng.range(1, 9);
                writeln!(out, "do i = 1, {ge}").unwrap();
                writeln!(out, "  g(i) = b(1) + 0.{c1} * i").unwrap();
                writeln!(out, "enddo").unwrap();
                writeln!(out, "call {prefix}mixg(a, n)").unwrap();
                writeln!(out, "do i = 1, n").unwrap();
                writeln!(out, "  a(i) = a(i) + g(1 + mod(i - 1, {ge})) * 0.125").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Non-affine subscript: mod(i*i, n) defeats every affine
            // dependence test, so the analyzer must assume the write can
            // collide and keep the loop serial — parallelizing it would
            // be a real (order-visible) write/write race.
            8 => {
                let c1 = rng.range(1, 9);
                writeln!(out, "do i = 1, n").unwrap();
                writeln!(out, "  a(1 + mod(i * i, n)) = b(i) + {c1}.0").unwrap();
                for _ in 1..cfg.stmts_per_loop.min(3) {
                    writeln!(out, "  b(i) = b(i) * 0.5 + {c1}.0").unwrap();
                }
                writeln!(out, "enddo").unwrap();
            }
            // Deep call chain inside a loop: parallelizability of the j
            // loop depends on MOD/REF summaries propagated through three
            // levels of calls down to chain3's single-column update.
            9 => {
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  call {prefix}chain1(a, b, n, j)").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Privatizable temporary.
            _ => {
                writeln!(out, "do i = 1, n").unwrap();
                writeln!(out, "  t = a(i) * 2.0").unwrap();
                writeln!(out, "  b(i) = t + 1.0").unwrap();
                for _ in 2..cfg.stmts_per_loop {
                    writeln!(out, "  a(i) = t * 0.5").unwrap();
                }
                writeln!(out, "enddo").unwrap();
            }
        }
    }
    writeln!(out, "return").unwrap();
    writeln!(out, "end").unwrap();
}

fn gen_helpers(out: &mut String, prefix: &str) {
    let ge = COMMON_EXTENT;
    // COMMON aliasing helper: sees /gbuf/ under a different member name.
    writeln!(out, "subroutine {prefix}mixg(a, n)").unwrap();
    writeln!(out, "integer n").unwrap();
    writeln!(out, "real a(n)").unwrap();
    writeln!(out, "common /{prefix}gbuf/ h({ge})").unwrap();
    writeln!(out, "do i = 1, {ge}").unwrap();
    writeln!(out, "  h(i) = h(i) * 0.5").unwrap();
    writeln!(out, "enddo").unwrap();
    writeln!(out, "a(1) = a(1) + h(1)").unwrap();
    writeln!(out, "return").unwrap();
    writeln!(out, "end").unwrap();
    // Deep call chain: chain1 → chain2 → chain3, bottom touches only
    // column j so a summary-precise analysis can still parallelize the
    // calling loop while a whole-array one stays conservative.
    for d in 1..=3 {
        writeln!(out, "subroutine {prefix}chain{d}(a, b, n, j)").unwrap();
        writeln!(out, "integer n, j").unwrap();
        writeln!(out, "real a(n), b(n)").unwrap();
        if d < 3 {
            writeln!(out, "call {prefix}chain{}(a, b, n, j)", d + 1).unwrap();
        } else {
            writeln!(out, "b(j) = b(j) + a(j) * 0.0625").unwrap();
        }
        writeln!(out, "return").unwrap();
        writeln!(out, "end").unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Units a generated program always contains beyond `cfg.units`:
    /// main + mixg + chain1..chain3.
    const FIXED_UNITS: usize = 5;

    #[test]
    fn generated_programs_parse_and_run() {
        for seed in [1, 2, 3] {
            let cfg = GenConfig { seed, extent: 16, ..GenConfig::default() };
            let src = gen_source(cfg);
            let p = ped_fortran::parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(p.units.len(), cfg.units + FIXED_UNITS);
            let r = ped_runtime::interp::run_source(&src, ped_runtime::ExecConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(r.printed.len(), 1);
        }
    }

    #[test]
    fn workspace_and_trap_shapes_are_emitted() {
        // Across a few seeds with many loops the section shapes and the
        // new campaign shapes must all appear.
        let mut saw_kill = false;
        let mut saw_trap = false;
        let mut saw_common = false;
        let mut saw_nonaffine = false;
        let mut saw_chain = false;
        for seed in 1..=8 {
            let src = gen_source(GenConfig {
                seed,
                extent: 8,
                loops_per_unit: 10,
                ..GenConfig::default()
            });
            saw_kill |= src.contains("w(i) = a(i) *");
            saw_trap |= src.contains("do i = 1, n - 1");
            saw_common |= src.contains("call mixg(a, n)");
            saw_nonaffine |= src.contains("mod(i * i, n)");
            saw_chain |= src.contains("call chain1(a, b, n, j)");
            ped_fortran::parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            ped_runtime::interp::run_source(&src, ped_runtime::ExecConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(
            saw_kill && saw_trap && saw_common && saw_nonaffine && saw_chain,
            "kill={saw_kill} trap={saw_trap} common={saw_common} \
             nonaffine={saw_nonaffine} chain={saw_chain}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen_source(GenConfig::default());
        let b = gen_source(GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn gen_source_into_recycles_buffer() {
        let mut buf = String::from("stale contents");
        gen_source_into(&mut buf, GenConfig::default());
        assert_eq!(buf, gen_source(GenConfig::default()));
    }

    /// The reproducibility contract (module docs): `GenConfig { seed, .. }`
    /// yields byte-identical source across platforms, builds, and runs.
    /// FNV-1a checksums pinned here; regenerate them only for a deliberate
    /// format change (and say so in the commit).
    #[test]
    fn genconfig_seed_is_byte_reproducible() {
        fn fnv1a(bytes: &[u8]) -> u64 {
            let mut h: u64 = 0xcbf29ce484222325;
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        }
        let mut drift = Vec::new();
        for (cfg, want) in [
            (GenConfig::default(), 0x317cbb6910ef5898u64),
            (
                GenConfig { units: 2, loops_per_unit: 3, seed: 42, ..GenConfig::default() },
                0x4a2c3c7aa48b2638,
            ),
            (GenConfig { extent: 8, seed: 1234, ..GenConfig::default() }, 0x1e7adecf8e91a7e0),
        ] {
            let got = fnv1a(gen_source(cfg).as_bytes());
            if got != want {
                drift.push(format!("{cfg:?}: got {got:#x}, pinned {want:#x}"));
            }
        }
        assert!(drift.is_empty(), "checksum drift:\n{}", drift.join("\n"));
    }

    #[test]
    fn concat_mode_namespaces_and_runs() {
        let cfg = GenConfig { units: 2, loops_per_unit: 3, extent: 8, seed: 5, ..Default::default() };
        let src = gen_concat_source(cfg, 3);
        let p = ped_fortran::parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        // main + 3 copies × (2 work units + 4 helpers)
        assert_eq!(p.units.len(), 1 + 3 * (cfg.units + 4));
        assert!(src.contains("call p0work0(a, b, c, n)"));
        assert!(src.contains("subroutine p2mixg(a, n)"));
        let r = ped_runtime::interp::run_source(&src, ped_runtime::ExecConfig::default())
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(r.printed.len(), 1);
        // Copies are independently seeded, so their bodies differ.
        assert_ne!(
            gen_concat_source(cfg, 2),
            gen_concat_source(GenConfig { seed: cfg.seed + 1, ..cfg }, 2)
        );
    }

    #[test]
    fn concat_mode_scales_lines() {
        let cfg = GenConfig { units: 2, loops_per_unit: 3, extent: 8, seed: 5, ..Default::default() };
        let one = gen_concat_source(cfg, 1).lines().count();
        let ten = gen_concat_source(cfg, 10).lines().count();
        assert!(ten > 8 * one, "{one} lines × 10 copies → {ten}");
    }

    #[test]
    fn size_scales() {
        let small = gen_source(GenConfig { units: 2, loops_per_unit: 2, ..Default::default() });
        let big = gen_source(GenConfig { units: 10, loops_per_unit: 10, ..Default::default() });
        assert!(big.lines().count() > 3 * small.lines().count());
    }
}
