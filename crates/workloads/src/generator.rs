//! Parameterized program generator for scalability experiments.
//!
//! Builds syntactically valid programs of controlled size with a mix of
//! loop shapes (copies, stencils/recurrences, reductions, 2-nests, calls,
//! workspace arrays needing the section kill analysis, and partial-kill
//! traps that must NOT privatize) so E10/E11 can sweep analysis time
//! against program size. Deterministic per seed.

use crate::rng::Rng;
use std::fmt::Write;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of subroutine units (plus one main).
    pub units: usize,
    /// Loops per unit.
    pub loops_per_unit: usize,
    /// Assignments per loop body.
    pub stmts_per_loop: usize,
    /// Array extent.
    pub extent: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { units: 4, loops_per_unit: 6, stmts_per_loop: 4, extent: 64, seed: 7 }
    }
}

/// Generate a complete program.
pub fn gen_source(cfg: GenConfig) -> String {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut out = String::new();
    let n = cfg.extent;
    writeln!(out, "program gen").unwrap();
    writeln!(out, "integer n").unwrap();
    writeln!(out, "parameter (n = {n})").unwrap();
    writeln!(out, "real a(n), b(n), c(n, n)").unwrap();
    writeln!(out, "real s").unwrap();
    writeln!(out, "do i = 1, n").unwrap();
    writeln!(out, "  a(i) = 0.1 * i").unwrap();
    writeln!(out, "  b(i) = 0.2 * i").unwrap();
    writeln!(out, "enddo").unwrap();
    for u in 0..cfg.units {
        writeln!(out, "call work{u}(a, b, c, n)").unwrap();
    }
    writeln!(out, "s = 0.0").unwrap();
    writeln!(out, "do i = 1, n").unwrap();
    writeln!(out, "  s = s + a(i) + b(i)").unwrap();
    writeln!(out, "enddo").unwrap();
    writeln!(out, "print *, s").unwrap();
    writeln!(out, "end").unwrap();
    for u in 0..cfg.units {
        gen_unit(&mut out, u, cfg, &mut rng);
    }
    out
}

fn gen_unit(out: &mut String, u: usize, cfg: GenConfig, rng: &mut Rng) {
    writeln!(out, "subroutine work{u}(a, b, c, n)").unwrap();
    writeln!(out, "integer n").unwrap();
    writeln!(out, "real a(n), b(n), c(n, n)").unwrap();
    writeln!(out, "real t, s, w(n)").unwrap();
    for l in 0..cfg.loops_per_unit {
        match rng.range(0, 7) {
            // Parallel copy loop.
            0 => {
                writeln!(out, "do i = 1, n").unwrap();
                for k in 0..cfg.stmts_per_loop {
                    let c1 = rng.range(1, 9);
                    if k % 2 == 0 {
                        writeln!(out, "  a(i) = b(i) * {c1}.0 + a(i)").unwrap();
                    } else {
                        writeln!(out, "  b(i) = b(i) + {c1}.0").unwrap();
                    }
                }
                writeln!(out, "enddo").unwrap();
            }
            // Recurrence (sequential).
            1 => {
                writeln!(out, "do i = 2, n").unwrap();
                writeln!(out, "  a(i) = a(i - 1) * 0.5 + b(i)").unwrap();
                for _ in 1..cfg.stmts_per_loop {
                    writeln!(out, "  b(i) = b(i) + 0.25").unwrap();
                }
                writeln!(out, "enddo").unwrap();
            }
            // Reduction.
            2 => {
                writeln!(out, "s = 0.0").unwrap();
                writeln!(out, "do i = 1, n").unwrap();
                writeln!(out, "  s = s + a(i) * b(i)").unwrap();
                writeln!(out, "enddo").unwrap();
                writeln!(out, "a({}) = s", 1 + l % cfg.extent.max(1)).unwrap();
            }
            // 2-nest over the matrix.
            3 => {
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                for _ in 0..cfg.stmts_per_loop.min(2) {
                    writeln!(out, "    c(i, j) = c(i, j) + a(i) * b(j)").unwrap();
                }
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Workspace array fully overwritten each outer iteration:
            // whole-array MOD/REF sees a carried w dependence, only the
            // section kill analysis proves w privatizable (ArrayKillNeeded).
            5 => {
                let c1 = rng.range(1, 9);
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                writeln!(out, "    w(i) = a(i) * {c1}.0 + b(j)").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                writeln!(out, "    c(i, j) = c(i, j) + w(i)").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Partial-kill trap: the overwrite stops one short of the
            // read extent, so w(n) flows across outer iterations — the
            // kill gap must block privatization.
            6 => {
                writeln!(out, "do j = 1, n").unwrap();
                writeln!(out, "  do i = 1, n - 1").unwrap();
                writeln!(out, "    w(i) = a(i) + b(j)").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "  do i = 1, n").unwrap();
                writeln!(out, "    c(i, j) = c(i, j) + w(i) * 0.5").unwrap();
                writeln!(out, "  enddo").unwrap();
                writeln!(out, "  w(n) = w(1) + b(j)").unwrap();
                writeln!(out, "enddo").unwrap();
            }
            // Privatizable temporary.
            _ => {
                writeln!(out, "do i = 1, n").unwrap();
                writeln!(out, "  t = a(i) * 2.0").unwrap();
                writeln!(out, "  b(i) = t + 1.0").unwrap();
                for _ in 2..cfg.stmts_per_loop {
                    writeln!(out, "  a(i) = t * 0.5").unwrap();
                }
                writeln!(out, "enddo").unwrap();
            }
        }
    }
    writeln!(out, "return").unwrap();
    writeln!(out, "end").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse_and_run() {
        for seed in [1, 2, 3] {
            let src = gen_source(GenConfig { seed, extent: 16, ..GenConfig::default() });
            let p = ped_fortran::parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(p.units.len(), 5);
            let r = ped_runtime::interp::run_source(&src, ped_runtime::ExecConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(r.printed.len(), 1);
        }
    }

    #[test]
    fn workspace_and_trap_shapes_are_emitted() {
        // Across a few seeds with many loops both section shapes must
        // appear: the fully-overwritten workspace and the partial-kill
        // trap (recognizable by its off-by-one inner bound).
        let mut saw_kill = false;
        let mut saw_trap = false;
        for seed in 1..=6 {
            let src = gen_source(GenConfig {
                seed,
                extent: 8,
                loops_per_unit: 10,
                ..GenConfig::default()
            });
            saw_kill |= src.contains("w(i) = a(i) *");
            saw_trap |= src.contains("do i = 1, n - 1");
            ped_fortran::parse_program(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            ped_runtime::interp::run_source(&src, ped_runtime::ExecConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(saw_kill && saw_trap, "kill={saw_kill} trap={saw_trap}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen_source(GenConfig::default());
        let b = gen_source(GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn size_scales() {
        let small = gen_source(GenConfig { units: 2, loops_per_unit: 2, ..Default::default() });
        let big = gen_source(GenConfig { units: 10, loops_per_unit: 10, ..Default::default() });
        assert!(big.lines().count() > 3 * small.lines().count());
    }
}
