//! # ped-workloads — the synthetic evaluation suite
//!
//! The experiences paper evaluated Ped on nine proprietary scientific codes
//! (Table 1: spec77, pneoss, nxsns, arc3d, slab2d, gloop, onedim, euler,
//! banded). We cannot ship those sources, so each program here is a
//! synthetic stand-in reproducing the *parallelization phenomena* the paper
//! reports for that code — the analyses exercise the same code paths (see
//! DESIGN.md, "Substitutions"). Every program runs deterministically and
//! prints a checksum so transformed/parallelized variants can be validated
//! against the serial original.
//!
//! [`generator`] additionally builds parameterized programs of arbitrary
//! size for the scalability benchmarks (E10/E11).

pub mod generator;
pub mod racy;
pub mod rng;
pub mod suite;

pub use suite::{all_programs, program_by_name, Phenomenon, Workload};
