//! Small deterministic PRNG for workload generation.
//!
//! The generator only needs reproducible pseudo-random choices per seed —
//! not cryptographic quality — so this is a self-contained SplitMix64
//! stream (Steele, Lea & Flood 2014): one 64-bit state, each draw adds the
//! golden-gamma constant and runs a finalizer. The sequence is stable
//! across platforms and Rust versions, which keeps `gen_source` output
//! byte-identical per seed forever (the scalability benches rely on that).

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the stream.
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`. Panics when the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias is
        // irrelevant for program-shape choices.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng::seed_from_u64(42);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.range(0, 5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }
}
