//! E7 — cost of the dependence-test hierarchy.
//!
//! The paper: "a hierarchical suite of tests is used, starting with
//! inexpensive tests". This bench measures each test class on
//! representative subscript pairs and the full driver on mixes dominated
//! by cheap cases, confirming the cost ordering ZIV < SIV < MIV/Banerjee
//! and the win from dispatching cheap tests first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ped_dep::driver::test_pair;
use ped_dep::nest::{LoopCtx, NestCtx};
use ped_fortran::builder::ex;
use ped_fortran::{Expr, StmtId, SymId};
use std::hint::black_box;

fn loop_ctx(var: u32, lo: i64, hi: i64) -> LoopCtx {
    LoopCtx {
        header: StmtId(var),
        var: SymId(var),
        lo: Some(ped_analysis::Affine::constant(lo)),
        hi: Some(ped_analysis::Affine::constant(hi)),
        lo_const: Some(lo),
        hi_const: Some(hi),
        step: Some(1),
    }
}

fn nest(depth: usize) -> NestCtx<'static> {
    NestCtx {
        loops: (0..depth as u32).map(|v| loop_ctx(v, 1, 100)).collect(),
        resolve: Box::new(|_| None),
    }
}

fn var(v: u32) -> Expr {
    Expr::Var(SymId(v))
}

fn bench_tests(c: &mut Criterion) {
    let mut g = c.benchmark_group("dep_test_kinds");
    g.sample_size(40);

    let n1 = nest(1);
    let n2 = nest(2);

    // ZIV: a(3) vs a(5).
    let ziv = (vec![ex::int(3)], vec![ex::int(5)]);
    g.bench_function("ziv", |b| {
        b.iter(|| black_box(test_pair(&ziv.0, &ziv.1, &n1)))
    });

    // Strong SIV: a(i) vs a(i-1).
    let siv = (vec![var(0)], vec![ex::sub(var(0), ex::int(1))]);
    g.bench_function("strong_siv", |b| {
        b.iter(|| black_box(test_pair(&siv.0, &siv.1, &n1)))
    });

    // Exact SIV: a(2i+1) vs a(3i).
    let exact = (
        vec![ex::add(ex::mul(ex::int(2), var(0)), ex::int(1))],
        vec![ex::mul(ex::int(3), var(0))],
    );
    g.bench_function("exact_siv", |b| {
        b.iter(|| black_box(test_pair(&exact.0, &exact.1, &n1)))
    });

    // MIV + Banerjee refinement: a(i+j) vs a(i+j+1) over a 2-nest.
    let miv = (
        vec![ex::add(var(0), var(1))],
        vec![ex::add(ex::add(var(0), var(1)), ex::int(1))],
    );
    g.bench_function("miv_banerjee", |b| {
        b.iter(|| black_box(test_pair(&miv.0, &miv.1, &n2)))
    });
    g.finish();

    // The hierarchy win: a workload of 1000 pairs, 90% SIV/ZIV, 10% MIV —
    // measured end-to-end through the dispatching driver.
    let mut g = c.benchmark_group("dep_driver_mix");
    g.sample_size(20);
    for (label, miv_share) in [("mostly_cheap", 10usize), ("all_miv", 100)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &miv_share, |b, &share| {
            let pairs: Vec<(Vec<Expr>, Vec<Expr>, usize)> = (0..1000)
                .map(|k| {
                    if k % 100 < share {
                        (
                            vec![ex::add(var(0), var(1))],
                            vec![ex::add(ex::add(var(0), var(1)), ex::int(k as i64 % 7))],
                            2,
                        )
                    } else if k % 2 == 0 {
                        (vec![var(0)], vec![ex::sub(var(0), ex::int(1))], 1)
                    } else {
                        (vec![ex::int(3)], vec![ex::int(5)], 1)
                    }
                })
                .collect();
            let n1 = nest(1);
            let n2 = nest(2);
            b.iter(|| {
                let mut independents = 0;
                for (a, s, d) in &pairs {
                    let nest = if *d == 1 { &n1 } else { &n2 };
                    if test_pair(a, s, nest).independent {
                        independents += 1;
                    }
                }
                black_box(independents)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tests);
criterion_main!(benches);
