//! E7 — cost of the dependence-test hierarchy.
//!
//! The paper: "a hierarchical suite of tests is used, starting with
//! inexpensive tests". This bench measures each test class on
//! representative subscript pairs and the full driver on mixes dominated
//! by cheap cases, confirming the cost ordering ZIV < SIV < MIV/Banerjee
//! and the win from dispatching cheap tests first — plus the memoized
//! pair cache short-circuiting repeated pairs entirely.

use ped_bench::harness::bench;
use ped_dep::cache::PairCache;
use ped_dep::driver::test_pair;
use ped_dep::nest::{LoopCtx, NestCtx};
use ped_fortran::builder::ex;
use ped_fortran::{Expr, StmtId, SymId};
use std::hint::black_box;

fn loop_ctx(var: u32, lo: i64, hi: i64) -> LoopCtx {
    LoopCtx {
        header: StmtId(var),
        var: SymId(var),
        lo: Some(ped_analysis::Affine::constant(lo)),
        hi: Some(ped_analysis::Affine::constant(hi)),
        lo_const: Some(lo),
        hi_const: Some(hi),
        step: Some(1),
    }
}

fn nest(depth: usize) -> NestCtx<'static> {
    NestCtx {
        loops: (0..depth as u32).map(|v| loop_ctx(v, 1, 100)).collect(),
        resolve: Box::new(|_| None),
    }
}

fn var(v: u32) -> Expr {
    Expr::Var(SymId(v))
}

fn main() {
    println!("E7: dependence-test hierarchy costs");
    let n1 = nest(1);
    let n2 = nest(2);

    // ZIV: a(3) vs a(5).
    let ziv = (vec![ex::int(3)], vec![ex::int(5)]);
    bench("ziv", 40, || black_box(test_pair(&ziv.0, &ziv.1, &n1)));

    // Strong SIV: a(i) vs a(i-1).
    let siv = (vec![var(0)], vec![ex::sub(var(0), ex::int(1))]);
    bench("strong_siv", 40, || black_box(test_pair(&siv.0, &siv.1, &n1)));

    // Exact SIV: a(2i+1) vs a(3i).
    let exact = (
        vec![ex::add(ex::mul(ex::int(2), var(0)), ex::int(1))],
        vec![ex::mul(ex::int(3), var(0))],
    );
    bench("exact_siv", 40, || black_box(test_pair(&exact.0, &exact.1, &n1)));

    // MIV + Banerjee refinement: a(i+j) vs a(i+j+1) over a 2-nest.
    let miv = (
        vec![ex::add(var(0), var(1))],
        vec![ex::add(ex::add(var(0), var(1)), ex::int(1))],
    );
    bench("miv_banerjee", 40, || black_box(test_pair(&miv.0, &miv.1, &n2)));

    // The hierarchy win: a workload of 1000 pairs, 90% SIV/ZIV, 10% MIV —
    // measured end-to-end through the dispatching driver, then again
    // through the pair cache (the mix has only a handful of distinct
    // canonical pairs, so nearly every query is a table lookup).
    println!("-- driver on 1000-pair mixes");
    for (label, miv_share) in [("mostly_cheap", 10usize), ("all_miv", 100)] {
        let pairs: Vec<(Vec<Expr>, Vec<Expr>, usize)> = (0..1000)
            .map(|k| {
                if k % 100 < miv_share {
                    (
                        vec![ex::add(var(0), var(1))],
                        vec![ex::add(ex::add(var(0), var(1)), ex::int(k as i64 % 7))],
                        2,
                    )
                } else if k % 2 == 0 {
                    (vec![var(0)], vec![ex::sub(var(0), ex::int(1))], 1)
                } else {
                    (vec![ex::int(3)], vec![ex::int(5)], 1)
                }
            })
            .collect();
        bench(&format!("driver_mix/{label}"), 20, || {
            let mut independents = 0;
            for (a, s, d) in &pairs {
                let nest = if *d == 1 { &n1 } else { &n2 };
                if test_pair(a, s, nest).independent {
                    independents += 1;
                }
            }
            black_box(independents)
        });
        bench(&format!("driver_mix_cached/{label}"), 20, || {
            let cache = PairCache::new();
            let mut independents = 0;
            for (a, s, d) in &pairs {
                let nest = if *d == 1 { &n1 } else { &n2 };
                if cache.test_pair(a, s, nest).independent {
                    independents += 1;
                }
            }
            black_box(independents)
        });
    }
}
