//! E17 — the `ped --campaign` differential-fuzzing campaign engine at
//! throughput.
//!
//! Four measurements, one artifact (`target/BENCH_E17.json`):
//!
//! 1. **Main campaign** — 1000 generated seeds through the full pipelined
//!    generate→analyze→autopar→check→bit-equality oracle on the
//!    work-stealing pool with one shared pair cache and recycled
//!    sessions. Asserted: every seed clean, every stage timed, and the
//!    campaign-wide pair-cache hit rate strictly positive (the shared
//!    cache is the architecture, not an option).
//! 2. **Naive baseline** — the same oracle one-seed-at-a-time: one
//!    worker, a fresh session and a private pair cache per seed, nothing
//!    recycled. The pipelined/naive programs-per-second ratio is printed
//!    and asserted `> 1`.
//! 3. **Seeded-fault campaign** — `--mutate private` over a small corpus:
//!    every mutant must be caught and delta-debugged to a reproducer that
//!    is no larger than the original and still on disk.
//! 4. **Concatenated-unit stress** — one `gen_concat_source` program of
//!    many namespaced copies analyzed in a single session, reporting
//!    source lines/sec through whole-program analysis.

use ped_bench::harness::fmt_ns;
use ped_core::campaign::STAGE_NAMES;
use ped_core::{CampaignConfig, Ped};
use ped_obs::json::Json;
use ped_obs::ProfileReport;
use ped_workloads::generator::{gen_concat_source, GenConfig};
use std::time::Instant;

/// Seeds in the main pipelined campaign (the E17 headline corpus).
const CAMPAIGN_SEEDS: usize = 1000;
/// Seeds the naive baseline runs (enough for a stable rate; running the
/// full corpus one-at-a-time would only make the ratio larger).
const NAIVE_SEEDS: usize = 100;
/// Seeds in the seeded-fault (mutation) campaign.
const MUTANT_SEEDS: usize = 12;
/// Copies in the concatenated-unit stress program.
const CONCAT_COPIES: usize = 120;

fn gen_cfg() -> GenConfig {
    GenConfig { units: 3, loops_per_unit: 4, stmts_per_loop: 3, extent: 12, seed: 0 }
}

fn main() {
    println!("E17: differential-fuzzing campaign engine");
    println!("=========================================");

    // 1. Main pipelined campaign.
    let cfg = CampaignConfig {
        seeds: CAMPAIGN_SEEDS,
        seed_start: 1,
        gen: gen_cfg(),
        ..CampaignConfig::default()
    };
    let out = ped_core::run_campaign(&cfg);
    assert_eq!(out.seeds, CAMPAIGN_SEEDS);
    assert!(
        out.clean(),
        "trunk campaign found discrepancies: {:?}",
        out.discrepancies
    );
    assert!(
        out.cache.hits > 0 && out.cache.hit_rate() > 0.0,
        "campaign-wide pair cache never hit: {:?}",
        out.cache
    );
    let pps = out.stage_programs_per_cpu_sec();
    println!(
        "campaign: {} seeds on {} workers in {} — {:.1} programs/sec, \
         {}/{} loops parallelized, pair cache {:.1}% hit",
        out.seeds,
        out.workers,
        fmt_ns(out.elapsed_ns as u128),
        out.programs_per_sec(),
        out.loops_parallelized,
        out.loops_total,
        out.cache.hit_rate() * 100.0
    );
    for (i, name) in STAGE_NAMES.iter().enumerate() {
        assert!(out.stage_ns[i] > 0, "stage {name} recorded no time");
        println!("  stage {name:<12} {:>12}  {:>10.1} programs/cpu-sec", fmt_ns(out.stage_ns[i] as u128), pps[i]);
    }
    print!("  conservatism (loops left serial -> seeds):");
    for &(left, n) in &out.conservatism {
        print!("  {left}:{n}");
    }
    println!();

    // 2. Naive one-seed-at-a-time baseline, interleaved with same-size
    // pipelined runs; median rates keep transient machine load out of
    // the ratio.
    let pipe_cfg = CampaignConfig {
        seeds: NAIVE_SEEDS,
        seed_start: 1,
        gen: gen_cfg(),
        ..CampaignConfig::default()
    };
    let naive_cfg = CampaignConfig { naive: true, ..pipe_cfg.clone() };
    let mut pipe_rates = Vec::new();
    let mut naive_rates = Vec::new();
    for _ in 0..3 {
        let p = ped_core::run_campaign(&pipe_cfg);
        assert!(p.clean(), "pipelined ratio run found discrepancies");
        pipe_rates.push(p.programs_per_sec());
        let n = ped_core::run_campaign(&naive_cfg);
        assert!(n.clean(), "naive baseline found discrepancies");
        naive_rates.push(n.programs_per_sec());
    }
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let pipe_pps = median(&mut pipe_rates);
    let naive_pps = median(&mut naive_rates);
    let ratio = pipe_pps / naive_pps;
    println!(
        "naive baseline: {NAIVE_SEEDS} seeds/run, median {naive_pps:.1} programs/sec vs \
         pipelined median {pipe_pps:.1}; pipelined/naive = {ratio:.2}x"
    );
    assert!(
        ratio > 1.0,
        "pipelined campaign ({pipe_pps:.1} pps) not faster than naive baseline ({naive_pps:.1} pps)"
    );

    // 3. Seeded-fault campaign: strip private clauses, demand the checker
    // catches every mutant and minimization preserves the verdict.
    let repro_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/e17_repros");
    let _ = std::fs::remove_dir_all(&repro_dir);
    let mutant_cfg = CampaignConfig {
        seeds: MUTANT_SEEDS,
        seed_start: 1,
        gen: gen_cfg(),
        mutate: Some("private".to_string()),
        repro_dir: Some(repro_dir.clone()),
        ..CampaignConfig::default()
    };
    let mutants = ped_core::run_campaign(&mutant_cfg);
    assert!(
        !mutants.clean(),
        "seeded private-clause faults went entirely unnoticed"
    );
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for d in &mutants.discrepancies {
        let before = d.source.lines().count();
        let after = d.minimized.lines().count();
        assert!(after <= before, "minimizer grew seed {}", d.seed);
        let path = d.repro_path.as_ref().expect("repro_dir was set");
        assert!(std::path::Path::new(path).exists(), "missing reproducer {path}");
        total_before += before;
        total_after += after;
    }
    println!(
        "mutation: {}/{} mutants caught; minimized {} -> {} lines total ({} reproducers in {})",
        mutants.discrepancies.len(),
        mutants.seeds,
        total_before,
        total_after,
        mutants.discrepancies.len(),
        repro_dir.display()
    );

    // 4. Concatenated-unit stress: one giant multi-copy program through
    // whole-program analysis in a single session.
    let concat = gen_concat_source(gen_cfg(), CONCAT_COPIES);
    let concat_lines = concat.lines().count();
    let t0 = Instant::now();
    let mut ped = Ped::open(&concat).expect("concatenated program parses");
    let batch = ped.analyze_all();
    let concat_ns = t0.elapsed().as_nanos() as u64;
    assert!(batch.loops > 0 && batch.units > CONCAT_COPIES);
    let lines_per_sec = concat_lines as f64 / (concat_ns as f64 / 1e9);
    println!(
        "concat: {CONCAT_COPIES} copies, {concat_lines} lines, {} units, {} loops analyzed in {} ({:.0} lines/sec)",
        batch.units,
        batch.loops,
        fmt_ns(concat_ns as u128),
        lines_per_sec
    );

    // Artifact: campaign summary + ratio + a v8 profile report whose
    // `campaign` section CI schema-checks.
    let mut report = ProfileReport::empty();
    report.campaign = out.campaign_report();
    report.cache.pair_hits = out.cache.hits;
    report.cache.pair_misses = out.cache.misses;
    let parsed = ProfileReport::from_json(&report.to_json()).expect("profile round-trips");
    assert_eq!(parsed.campaign, report.campaign);

    let doc = Json::obj(vec![
        ("experiment", Json::str("E17")),
        ("campaign", out.to_json()),
        (
            "naive",
            Json::obj(vec![
                ("seeds_per_run", Json::int(NAIVE_SEEDS as u64)),
                ("median_programs_per_sec", Json::Num(naive_pps)),
                ("pipelined_median_programs_per_sec", Json::Num(pipe_pps)),
            ]),
        ),
        ("pipelined_vs_naive_ratio", Json::Num(ratio)),
        (
            "mutation",
            Json::obj(vec![
                ("seeds", Json::int(mutants.seeds as u64)),
                ("caught", Json::int(mutants.discrepancies.len() as u64)),
                ("minimized_lines_before", Json::int(total_before as u64)),
                ("minimized_lines_after", Json::int(total_after as u64)),
            ]),
        ),
        (
            "concat",
            Json::obj(vec![
                ("copies", Json::int(CONCAT_COPIES as u64)),
                ("lines", Json::int(concat_lines as u64)),
                ("units", Json::int(batch.units as u64)),
                ("loops", Json::int(batch.loops as u64)),
                ("analyze_ns", Json::int(concat_ns)),
                ("lines_per_sec", Json::Num(lines_per_sec)),
            ]),
        ),
        ("profile", report.to_json()),
    ]);
    let out_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_E17.json");
    match std::fs::write(&out_path, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => println!("could not write {}: {e}", out_path.display()),
    }
}
