//! E18 — the autopilot closes the loop: search → prune → score → apply →
//! verify → measure → calibrate.
//!
//! The three E14 kernels are fed to the planner **with every parallel
//! annotation stripped**: plain serial `do` loops. The autopilot must
//! rediscover the parallelization by itself — enumerate candidate plans,
//! prune them through the dependence machinery, pick the winner by
//! composed-nest estimate, apply it, prove bit-identity against the
//! pre-transform serial run, and then measure the real speedup on the
//! worker pool. Each (predicted, measured) pair feeds the calibration
//! state, and the post-calibration worst-case ratio must be ≤ 2 on every
//! applied plan — and no looser than the uncalibrated ratio, which the
//! log-midpoint correction guarantees by construction.
//!
//! The measured marks are compared against the hand-parallelized E14
//! variants of the same kernels (same min-of-repeats protocol): the
//! machine-chosen plan must reach what hand annotation reached. Both the
//! speedup and comparison gates only assert on hosts with ≥ 4 cores;
//! plan discovery, verification, and calibration tightening assert
//! everywhere.
//!
//! A verify-only sweep over the nine-program suite closes E18: every
//! applied plan shadow-validated, zero rejections left in the session.
//! Results go to `target/BENCH_E18.json`.

use ped_bench::Table;
use ped_core::{autopilot, AutopilotConfig, Ped};
use ped_obs::json::Json;
use ped_perf::CalibrationState;
use ped_runtime::{interp, ExecConfig, Machine, ParallelMode};
use ped_workloads::all_programs;

/// Threads used for measurement (matches the E14 `meas(4)` column).
const THREADS: usize = 4;
/// Timed repeats; the minimum wall time is kept.
const REPEATS: usize = 3;

/// The E14 kernels, serial: the `parallel do` annotations (and their
/// clauses) replaced with plain `do`. The planner has to earn them back.
fn serial_kernels() -> Vec<(&'static str, String)> {
    let vscale = format!(
        "program vscale\n\
         integer n\n\
         parameter (n = {n})\n\
         real a(n), b(n)\n\
         real t\n\
         do i = 1, n\n\
           a(i) = 0.001 * i\n\
         enddo\n\
         do i = 1, n\n\
           t = a(i) * 2.0 + 1.0\n\
           b(i) = t * t + a(i)\n\
         enddo\n\
         print *, b(1), b(n / 2), b(n)\n\
         end\n",
        n = 150_000
    );
    let dotred = format!(
        "program dotred\n\
         integer n\n\
         parameter (n = {n})\n\
         real a(n), b(n)\n\
         real s\n\
         do i = 1, n\n\
           a(i) = 0.001 * i\n\
           b(i) = 1.0 / i\n\
         enddo\n\
         s = 0.0\n\
         do i = 1, n\n\
           s = s + a(i) * b(i)\n\
         enddo\n\
         print *, s\n\
         end\n",
        n = 200_000
    );
    let tri = format!(
        "program tri\n\
         integer n\n\
         parameter (n = {n})\n\
         real a(n), b(n)\n\
         real t\n\
         do i = 1, n\n\
           a(i) = 0.002 * i\n\
         enddo\n\
         do i = 1, n\n\
           t = 0.0\n\
           do j = 1, i\n\
             t = t + a(j) * 0.5\n\
           enddo\n\
           b(i) = t\n\
         enddo\n\
         print *, b(1), b(n / 2), b(n)\n\
         end\n",
        n = 1_200
    );
    vec![("vscale", vscale), ("dotred", dotred), ("tri", tri)]
}

/// Hand-annotated E14 variants of the same kernels (the annotations the
/// planner has to earn back), for the machine-vs-hand comparison. In all
/// three kernels the hot loop is the LAST `do i = 1, n` (the first is an
/// init loop), so the splice annotates the final occurrence.
fn hand_kernels() -> Vec<(&'static str, String)> {
    serial_kernels()
        .into_iter()
        .map(|(name, mut src)| {
            let clauses = match name {
                "vscale" => "lastprivate(t)",
                "dotred" => "reduction(+:s)",
                "tri" => "lastprivate(t, j)",
                other => panic!("unknown kernel {other}"),
            };
            let header = "do i = 1, n";
            let pos = src.rfind(header).expect("hot loop header present");
            src.replace_range(pos..pos + header.len(), &format!("parallel {header} {clauses}"));
            assert!(src.contains("parallel do"), "{name}: annotation splice failed");
            (name, src)
        })
        .collect()
}

/// Minimum whole-program wall time over `REPEATS` runs of `src`.
fn timed_wall(label: &str, src: &str, config: &ExecConfig) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..REPEATS {
        let t = std::time::Instant::now();
        interp::run_source(src, *config).unwrap_or_else(|e| panic!("{label}: {e}"));
        best = best.min((t.elapsed().as_nanos() as u64).max(1));
    }
    best
}

/// Measured whole-program speedup of `src`: serial wall / Threads(N) wall.
fn measured_speedup(label: &str, src: &str) -> f64 {
    let serial = timed_wall(&format!("{label}/serial"), src, &ExecConfig::default());
    let threaded = timed_wall(
        &format!("{label}/threads{THREADS}"),
        src,
        &ExecConfig { mode: ParallelMode::Threads(THREADS), ..ExecConfig::default() },
    );
    serial as f64 / threaded as f64
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E18: autopilot — search, verify, measure, calibrate");
    println!("host cores: {cores} (speedup acceptance {})", if cores >= 4 { "ON" } else { "OFF" });

    let cfg = AutopilotConfig {
        machine: Machine::with_procs(THREADS),
        verify: true,
        measure: true,
        threads: THREADS,
        repeats: REPEATS,
        ..AutopilotConfig::default()
    };

    let mut table =
        Table::new(&["kernel", "plan", "pred", "meas(4)", "hand(4)", "calib", "verdict"]);
    let mut plan_rows: Vec<Json> = Vec::new();
    let mut calibration = CalibrationState::new();
    let hand: Vec<(&str, f64)> = hand_kernels()
        .iter()
        .map(|(name, src)| (*name, measured_speedup(&format!("{name}/hand"), src)))
        .collect();

    for (name, src) in &serial_kernels() {
        let mut ped = Ped::open(src).unwrap();
        let out = autopilot(&mut ped, &cfg);
        assert!(out.notes.is_empty(), "{name}: {:?}", out.notes);
        assert!(out.stats.plans_applied > 0, "{name}: the planner found no plan");
        assert_eq!(out.stats.plans_rejected, 0, "{name}: a plan failed verification");

        // Bit-identity one more time, end to end: the transformed source
        // against the untransformed serial reference.
        let reference = interp::run_source(src, ExecConfig::default())
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));
        let transformed = ped.source();
        let threaded = interp::run_source(
            &transformed,
            ExecConfig { mode: ParallelMode::Threads(THREADS), ..ExecConfig::default() },
        )
        .unwrap_or_else(|e| panic!("{name} threads: {e}"));
        assert_eq!(reference.printed, threaded.printed, "{name}: output diverged");

        // The hot kernel loop's plan: the one with the largest predicted
        // speedup (the init loops are smaller fry).
        let hot = out
            .plans
            .iter()
            .filter(|p| p.applied)
            .max_by(|a, b| a.plan.predicted.total_cmp(&b.plan.predicted))
            .unwrap_or_else(|| panic!("{name}: no applied plan"));
        let measured = hot
            .measured
            .unwrap_or_else(|| panic!("{name}: hot plan was not measured"));
        let hand_mark = hand.iter().find(|(n, _)| n == name).expect("hand mark").1;
        if cores >= 4 {
            assert!(
                measured > 1.5,
                "{name}: autopilot plan only {measured:.2}x on a {cores}-core host"
            );
            assert!(
                measured >= hand_mark * 0.8,
                "{name}: autopilot {measured:.2}x fell far below the \
                 hand-parallelized mark {hand_mark:.2}x"
            );
        }
        for p in out.plans.iter().filter(|p| p.applied) {
            if let Some(m) = p.measured {
                calibration.record(p.plan.predicted, m);
            }
        }

        let plan_str = ped_core::autopilot::plan_text(
            &ped.program().units[hot.plan.unit],
            &hot.plan.steps,
        );
        let calib = CalibrationState::ratio(hot.plan.predicted, measured);
        table.row(vec![
            name.to_string(),
            plan_str.clone(),
            format!("{:.2}x", hot.plan.predicted),
            format!("{measured:.2}x"),
            format!("{hand_mark:.2}x"),
            format!("{calib:.2}"),
            hot.verdict.clone(),
        ]);
        plan_rows.push(Json::obj(vec![
            ("kernel", Json::str(name)),
            ("plan", Json::str(&plan_str)),
            ("strategy", Json::str(hot.plan.strategy)),
            ("predicted_speedup", Json::Num(hot.plan.predicted)),
            ("measured_speedup", Json::Num(measured)),
            ("hand_measured_speedup", Json::Num(hand_mark)),
            ("calibration_ratio", Json::Num(calib)),
            ("survived_check", Json::Bool(hot.applied)),
            ("plans_applied", Json::int(out.stats.plans_applied)),
            ("plans_rejected", Json::int(out.stats.plans_rejected)),
            ("candidates", Json::int(out.stats.candidates)),
        ]));
    }
    print!("{}", table.render());

    // Calibration must tighten (log-midpoint correction: provable) and,
    // post-calibration, every kernel plan must sit within 2x.
    let before = calibration.ratio_before();
    let after = calibration.ratio_after();
    assert!(
        after <= before + 1e-9,
        "calibration loosened the fit: {before:.3} -> {after:.3}"
    );
    if cores >= 4 {
        assert!(
            after <= 2.0,
            "post-calibration worst ratio {after:.2} exceeds 2x on a {cores}-core host"
        );
    }
    println!(
        "calibration: worst predicted-vs-measured ratio {before:.2} -> {after:.2} \
         over {} plan(s) (correction {:.3})",
        calibration.len(),
        calibration.correction()
    );

    // Verify-only sweep over the nine-program suite: every applied plan
    // shadow-validated, nothing left rejected in the session.
    let suite_cfg = AutopilotConfig {
        machine: Machine::with_procs(THREADS),
        verify: true,
        measure: false,
        ..AutopilotConfig::default()
    };
    let mut suite_rows = Vec::new();
    let mut suite_applied = 0u64;
    for w in all_programs() {
        let mut ped = Ped::open(w.source).unwrap();
        let out = autopilot(&mut ped, &suite_cfg);
        assert!(out.notes.is_empty(), "{}: {:?}", w.name, out.notes);
        let report = ped
            .check(ExecConfig::default())
            .unwrap_or_else(|e| panic!("{}: shadow check: {e}", w.name));
        assert!(report.clean(), "{}: races after autopilot", w.name);
        suite_applied += out.stats.plans_applied;
        suite_rows.push(Json::obj(vec![
            ("program", Json::str(w.name)),
            ("candidates", Json::int(out.stats.candidates)),
            ("pruned_unsafe", Json::int(out.stats.pruned_unsafe)),
            ("pruned_unprofitable", Json::int(out.stats.pruned_unprofitable)),
            ("plans_applied", Json::int(out.stats.plans_applied)),
            ("plans_rejected", Json::int(out.stats.plans_rejected)),
            ("check_clean", Json::Bool(true)),
        ]));
    }
    assert!(suite_applied > 0, "the planner applied nothing across the whole suite");
    println!(
        "suite: {} program(s), {suite_applied} plan(s) applied, every session check-clean",
        suite_rows.len()
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("E18")),
        ("schema_version", Json::int(1)),
        ("cores", Json::int(cores as u64)),
        ("speedup_asserted", Json::Bool(cores >= 4)),
        ("threads", Json::int(THREADS as u64)),
        ("plans_applied", Json::int(plan_rows.len() as u64)),
        ("calibration_ratio_before", Json::Num(before)),
        ("calibration_ratio_after", Json::Num(after)),
        ("calibration_correction", Json::Num(calibration.correction())),
        ("plans", Json::Arr(plan_rows)),
        ("suite", Json::Arr(suite_rows)),
    ]);
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_E18.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
