//! E15 — shadow-runtime dependence validation.
//!
//! Reproduces the paper's onedim narrative end-to-end: asserting that the
//! index array is a permutation deletes the pending scatter dependences and
//! the loop parallelizes; the shadow checker *validates* those deletions on
//! a real run. Injecting a duplicate index makes the same assertion a lie —
//! the checker catches the race and pinpoints the contradicted deletion.
//!
//! Alongside the narrative it measures, per suite program, the checker's
//! conservatism (static carried edges never observed at run time) and the
//! cost of observation: shadow-off must add no measurable overhead (an A/A
//! comparison of two interleaved shadow-off medians bounds measurement
//! noise; shadow-off vs baseline must sit inside that bound), while
//! shadow-on pays a reported slowdown. The bounded regular-section
//! analysis must close slab2d's workspace gap: its loop-carried edge on
//! `w` is killed statically (and the loop privatizes), so slab2d reports
//! zero unobserved static edges. Results land in `target/BENCH_E15.json`
//! (profile schema v7, with the validation and sections blocks).

use ped_bench::harness::{bench, fmt_ns};
use ped_bench::{apply_suite_assertions, parallelize_everything};
use ped_core::{Ped, RaceVerdict};
use ped_obs::json::Json;
use ped_runtime::ExecConfig;
use ped_workloads::{all_programs, racy};
use std::hint::black_box;

fn shadow_cfg() -> ExecConfig {
    ExecConfig { shadow: true, ..ExecConfig::default() }
}

/// Two shadow-off measurements with samples interleaved A,B,A,B,... so both
/// see the same drift; returns the pair of medians. Their ratio bounds this
/// run's measurement noise — an honest A/A baseline for the overhead claim.
fn interleaved_off_medians(src: &str, n: usize) -> (u128, u128) {
    let run = || {
        black_box(ped_runtime::interp::run_source(src, ExecConfig::default()).unwrap())
    };
    run(); // warmup
    let (mut a, mut b) = (Vec::with_capacity(n), Vec::with_capacity(n));
    for _ in 0..n {
        let t = std::time::Instant::now();
        run();
        a.push(t.elapsed().as_nanos());
        let t = std::time::Instant::now();
        run();
        b.push(t.elapsed().as_nanos());
    }
    a.sort_unstable();
    b.sort_unstable();
    (a[n / 2], b[n / 2])
}

fn main() {
    println!("E15: shadow-runtime dependence validation");

    // ---- the onedim narrative ------------------------------------------
    let w = ped_workloads::program_by_name("onedim").unwrap();
    let mut ped = Ped::open(w.source).unwrap();
    let rejected = apply_suite_assertions(&mut ped, "onedim");
    assert!(rejected > 0, "the permutation assertion must delete pending deps");
    parallelize_everything(&mut ped);
    let valid = ped.check(ExecConfig::default()).unwrap();
    assert!(valid.clean(), "valid permutation must be clean:\n{}", valid.render_text());
    assert!(valid.validated_deletions > 0, "deletions must be validated");
    println!(
        "onedim (valid index): clean, {} deletion(s) validated, {} observed deps",
        valid.validated_deletions, valid.observed_deps
    );

    let mut mutated = Ped::open(&racy::onedim_duplicate_index()).unwrap();
    apply_suite_assertions(&mut mutated, "onedim");
    parallelize_everything(&mut mutated);
    let caught = mutated.check(ExecConfig::default()).unwrap();
    assert!(!caught.clean(), "duplicate index must race");
    let finding = caught.races().next().unwrap();
    assert!(
        matches!(finding.verdict, RaceVerdict::ContradictsDeletion(_)),
        "verdict must pinpoint the deletion: {:?}",
        finding.verdict
    );
    println!(
        "onedim (duplicate index): caught — {} on {} ({} pair(s))",
        finding.verdict, finding.var, finding.count
    );

    // ---- conservatism across the suite ---------------------------------
    println!("conservatism per program (static carried edges never observed):");
    let mut conservatism = Vec::new();
    for w in all_programs() {
        let mut ped = Ped::open(w.source).unwrap();
        apply_suite_assertions(&mut ped, w.name);
        parallelize_everything(&mut ped);
        let r = ped.check(ExecConfig::default()).unwrap();
        assert!(r.clean(), "{} must be race-free:\n{}", w.name, r.render_text());
        println!(
            "  {:<8} {:>2} loops, {:>3} observed, {:>2} unobserved static, {} validated",
            w.name,
            r.loops.len(),
            r.observed_deps,
            r.static_unobserved,
            r.validated_deletions
        );
        conservatism.push((w.name, r));
    }
    // The section analysis closes the slab2d gap: the workspace array's
    // carried edge is statically killed, so nothing is left unobserved.
    let slab = conservatism.iter().find(|(n, _)| *n == "slab2d").unwrap();
    assert_eq!(
        slab.1.static_unobserved, 0,
        "slab2d's workspace edge must be dropped by the section kill analysis"
    );

    // ---- overhead: shadow-off must be free, shadow-on is reported ------
    // A/A protocol: interleave two shadow-off measurements; their ratio
    // bounds the noise of this machine/run. The baseline-vs-shadow-off
    // ratio must stay inside that bound * 1.10.
    let w = ped_workloads::program_by_name("spec77").unwrap();
    let mut ped = Ped::open(w.source).unwrap();
    apply_suite_assertions(&mut ped, w.name);
    parallelize_everything(&mut ped);
    let src = ped.source();
    let (off_a, off_b) = interleaved_off_medians(&src, 30);
    let on = bench("shadow_on", 30, || {
        black_box(ped_runtime::interp::run_source(&src, shadow_cfg()).unwrap())
    });
    let ratio = |x: u128, y: u128| x.max(1) as f64 / y.max(1) as f64;
    let aa = ratio(off_a.max(off_b), off_a.min(off_b));
    let overhead_ok = aa <= 1.10;
    assert!(
        overhead_ok,
        "interleaved shadow-off medians diverge ({aa:.3} > 1.10); \
         shadow-off must add no measurable overhead"
    );
    let on_ratio = ratio(on.median_ns(), off_a.min(off_b));
    println!(
        "shadow off A/A medians {} / {} -> ratio {aa:.3} (must be <= 1.10: \
         shadow-off is a no-op branch) -> overhead_ok={overhead_ok}",
        fmt_ns(off_a),
        fmt_ns(off_b)
    );
    println!(
        "shadow on: {} vs off {} -> {on_ratio:.2}x (the price of observation)",
        fmt_ns(on.median_ns()),
        fmt_ns(off_a.min(off_b))
    );

    // ---- one profiled session feeding the validation + sections blocks -
    let mut profiled = Ped::open_profiled(&src).unwrap();
    profiled.analyze_all();
    profiled.check(ExecConfig::default()).unwrap();
    let profile = profiled.profile_report();
    assert_eq!(profile.validation.checks, 1);
    assert!(
        profile.sections.arrays_classified > 0,
        "graph builds must feed the v7 sections block"
    );
    println!(
        "sections: {} arrays classified, {} fully killed, {} privatizable",
        profile.sections.arrays_classified,
        profile.sections.exposed_bottom,
        profile.sections.privatizable
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("E15")),
        ("schema_version", Json::int(1)),
        ("onedim_valid_clean", Json::Bool(valid.clean())),
        ("onedim_validated_deletions", Json::int(valid.validated_deletions as u64)),
        ("onedim_duplicate_caught", Json::Bool(!caught.clean())),
        ("overhead_ok", Json::Bool(overhead_ok)),
        ("shadow_off_aa_ratio", Json::Num(aa)),
        ("shadow_on_ratio", Json::Num(on_ratio)),
        (
            "conservatism",
            Json::Arr(
                conservatism
                    .iter()
                    .map(|(name, r)| {
                        Json::obj(vec![
                            ("program", Json::str(name)),
                            ("loops", Json::int(r.loops.len() as u64)),
                            ("observed_deps", Json::int(r.observed_deps as u64)),
                            ("static_unobserved", Json::int(r.static_unobserved as u64)),
                            (
                                "validated_deletions",
                                Json::int(r.validated_deletions as u64),
                            ),
                            ("races", Json::int(r.race_count() as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("profile", profile.to_json()),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/BENCH_E15.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
