//! E12 — run-time dependence testing overhead and interpreter modes.
//!
//! Measures the interpreter across modes on one suite program: serial,
//! simulated-parallel, simulated with the race detector (the "run-time
//! dependence testing" of the related work), and real threads — the
//! detector's overhead is the price of validating user-deleted
//! dependences.
//!
//! An instrumented session at the end reports where the wall-clock goes
//! per phase (parse / analysis / interpret) and the interpreter's
//! per-loop runtime profile, and writes both to `target/BENCH_E12.json`.

use ped_bench::harness::bench;
use ped_bench::{apply_suite_assertions, parallelize_everything};
use ped_core::Ped;
use ped_obs::json::Json;
use ped_runtime::{ExecConfig, Machine, ParallelMode};
use std::hint::black_box;

fn main() {
    println!("E12: interpreter modes and race-detector overhead");
    let w = ped_workloads::program_by_name("spec77").unwrap();
    let mut ped = Ped::open(w.source).unwrap();
    apply_suite_assertions(&mut ped, w.name);
    parallelize_everything(&mut ped);
    let parallel_src = ped.source();

    bench("serial", 20, || {
        black_box(ped_runtime::interp::run_source(&parallel_src, ExecConfig::default()).unwrap())
    });
    bench("simulate_p8", 20, || {
        black_box(
            ped_runtime::interp::run_source(
                &parallel_src,
                ExecConfig {
                    mode: ParallelMode::Simulate(Machine::alliant8()),
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    });
    bench("simulate_p8_racedetect", 20, || {
        black_box(
            ped_runtime::interp::run_source(
                &parallel_src,
                ExecConfig {
                    mode: ParallelMode::Simulate(Machine::alliant8()),
                    detect_races: true,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    });
    bench("threads_4", 20, || {
        black_box(
            ped_runtime::interp::run_source(
                &parallel_src,
                ExecConfig { mode: ParallelMode::Threads(4), ..Default::default() },
            )
            .unwrap(),
        )
    });

    // One instrumented session over the parallelized program: per-phase
    // wall-clock and the interpreter's per-loop runtime profile, the
    // numbers E12 cites alongside the mode table above.
    let mut profiled = Ped::open_profiled(&parallel_src).unwrap();
    profiled.analyze_all();
    profiled
        .run(ExecConfig {
            mode: ParallelMode::Simulate(Machine::alliant8()),
            detect_races: true,
            ..Default::default()
        })
        .unwrap();
    let profile = profiled.profile_report();
    let phase_ns = |name: &str| -> u64 {
        profile.phases.iter().find(|p| p.name == name).map_or(0, |p| p.ns)
    };
    println!(
        "phases (one profiled session): parse {:.2} ms, dep_test {:.2} ms, \
         interpret {:.2} ms; {} profiled loop(s)",
        phase_ns("parse") as f64 / 1e6,
        phase_ns("dep_test") as f64 / 1e6,
        phase_ns("interpret") as f64 / 1e6,
        profile.loop_profiles.len(),
    );
    for lp in profile.loop_profiles.iter().take(5) {
        println!(
            "   {}:s{}  {} invocation(s), {} iteration(s), {:.0} ops",
            lp.unit, lp.stmt, lp.invocations, lp.iterations, lp.ops
        );
    }

    let doc = Json::obj(vec![
        ("bench", Json::str("E12")),
        ("schema_version", Json::int(1)),
        ("profile", profile.to_json()),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/BENCH_E12.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
