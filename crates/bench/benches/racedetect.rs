//! E12 — run-time dependence testing overhead and interpreter modes.
//!
//! Measures the interpreter across modes on one suite program: serial,
//! simulated-parallel, simulated with the race detector (the "run-time
//! dependence testing" of the related work), and real threads — the
//! detector's overhead is the price of validating user-deleted
//! dependences.

use ped_bench::harness::bench;
use ped_bench::{apply_suite_assertions, parallelize_everything};
use ped_core::Ped;
use ped_runtime::{ExecConfig, Machine, ParallelMode};
use std::hint::black_box;

fn main() {
    println!("E12: interpreter modes and race-detector overhead");
    let w = ped_workloads::program_by_name("spec77").unwrap();
    let mut ped = Ped::open(w.source).unwrap();
    apply_suite_assertions(&mut ped, w.name);
    parallelize_everything(&mut ped);
    let parallel_src = ped.source();

    bench("serial", 20, || {
        black_box(ped_runtime::interp::run_source(&parallel_src, ExecConfig::default()).unwrap())
    });
    bench("simulate_p8", 20, || {
        black_box(
            ped_runtime::interp::run_source(
                &parallel_src,
                ExecConfig {
                    mode: ParallelMode::Simulate(Machine::alliant8()),
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    });
    bench("simulate_p8_racedetect", 20, || {
        black_box(
            ped_runtime::interp::run_source(
                &parallel_src,
                ExecConfig {
                    mode: ParallelMode::Simulate(Machine::alliant8()),
                    detect_races: true,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    });
    bench("threads_4", 20, || {
        black_box(
            ped_runtime::interp::run_source(
                &parallel_src,
                ExecConfig { mode: ParallelMode::Threads(4), ..Default::default() },
            )
            .unwrap(),
        )
    });
}
