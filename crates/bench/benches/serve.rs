//! E16 — the `ped serve` multi-session analysis daemon under concurrent
//! clients.
//!
//! N clients, each owning a *distinct* program, drive one shared daemon
//! through the full verb set (open → analyze → check → edit → analyze →
//! undo → redo → close) concurrently. Measured: per-request latency
//! (p50/p99 over every request of the cold phase), sustained
//! requests/sec, and the cost of `open` cold versus warm. The daemon is
//! then shut down and a *new* daemon is pointed at the same on-disk
//! graph store: every client re-opens its program and the persisted
//! graphs must come back (`warm_graphs > 0` per open, `reused > 0` on
//! the follow-up analyze, zero rebuilds) — the warm-restart property the
//! store exists for.
//!
//! Every response is asserted `ok`; a daemon that answered any scripted
//! request with an error fails the bench. Results go to
//! `target/BENCH_E16.json`, including a v6 profile report (with the
//! `serve` section filled from live daemon counters) for the CI schema
//! smoke.

use ped_bench::harness::fmt_ns;
use ped_core::{Daemon, GraphStore};
use ped_obs::json::{self, Json};
use std::time::Instant;

/// Concurrent clients, each with its own program and session.
const CLIENTS: usize = 8;

/// One client's program; `variant` perturbs a constant so an `edit`
/// genuinely changes the loop's fingerprints.
fn client_src(client: usize, variant: usize) -> String {
    let n = 600 + client * 60;
    let scale = 1.5 + client as f64 * 0.25 + variant as f64 * 0.125;
    format!(
        "      program cli{client}\n\
               integer n\n\
               parameter (n = {n})\n\
               real a(n), b(n)\n\
               do 10 i = 1, n\n\
               a(i) = 0.001 * i\n\
   10 continue\n\
               do 20 j = 1, n\n\
               b(j) = a(j) * {scale:.3} + 1.0\n\
   20 continue\n\
               print *, b(n)\n\
               end\n"
    )
}

/// Send one request, assert the response is `ok`, and return
/// (parsed response, latency ns).
fn request(daemon: &Daemon, owner: u64, req: &Json) -> (Json, u64) {
    let line = req.to_string_compact();
    let t0 = Instant::now();
    let resp = daemon.handle_line(owner, &line);
    let ns = t0.elapsed().as_nanos() as u64;
    let v = json::parse(&resp.text).expect("daemon responses are valid JSON");
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "request {line} failed: {}",
        resp.text
    );
    (v, ns)
}

fn req(fields: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("id", Json::int(0))];
    all.extend(fields);
    Json::obj(all)
}

fn u(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("missing {key} in {v:?}"))
}

/// What one cold-phase client observed.
struct ClientRun {
    open_ns: u64,
    request_ns: Vec<u64>,
}

/// The scripted cold-phase session: the whole verb surface, ending in a
/// `close` that persists the session's graphs.
fn cold_client(daemon: &Daemon, client: usize) -> ClientRun {
    let owner = client as u64 + 1;
    let (v, open_ns) = request(
        daemon,
        owner,
        &req(vec![("verb", Json::str("open")), ("source", Json::str(&client_src(client, 0)))]),
    );
    let session = u(&v, "session");
    let mut request_ns = Vec::new();
    let mut run = |r: &Json| {
        let (v, ns) = request(daemon, owner, r);
        request_ns.push(ns);
        v
    };
    let sess = Json::int(session);
    let v = run(&req(vec![("verb", Json::str("analyze")), ("session", sess.clone())]));
    assert_eq!(u(&v, "loops"), 2, "client {client}: unexpected loop count");
    assert_eq!(u(&v, "built"), 2, "client {client}: cold analyze should build");
    let v = run(&req(vec![("verb", Json::str("check")), ("session", sess.clone())]));
    assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
    run(&req(vec![
        ("verb", Json::str("edit")),
        ("session", sess.clone()),
        ("unit", Json::str(&format!("cli{client}"))),
        ("source", Json::str(&client_src(client, 1))),
    ]));
    let v = run(&req(vec![("verb", Json::str("analyze")), ("session", sess.clone())]));
    assert!(u(&v, "built") >= 1, "client {client}: edit should invalidate at least one graph");
    let v = run(&req(vec![("verb", Json::str("undo")), ("session", sess.clone())]));
    assert_eq!(v.get("applied").and_then(Json::as_bool), Some(true));
    let v = run(&req(vec![("verb", Json::str("redo")), ("session", sess.clone())]));
    assert_eq!(v.get("applied").and_then(Json::as_bool), Some(true));
    // Land on the edited variant; its graphs are what `close` persists
    // and what the warm phase must get back.
    run(&req(vec![("verb", Json::str("analyze")), ("session", sess.clone())]));
    let v = run(&req(vec![("verb", Json::str("close")), ("session", sess)]));
    assert!(u(&v, "persisted") >= 2, "client {client}: close persisted nothing");
    ClientRun { open_ns, request_ns }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let store_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/e16_store");
    // Start truly cold: no entries from a previous bench run.
    std::fs::remove_dir_all(&store_dir).ok();

    // ---- Cold phase: one daemon, N concurrent clients, full scripts. ----
    let daemon = Daemon::new(Some(GraphStore::open(&store_dir).expect("store opens")));
    let t0 = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let daemon = &daemon;
        let handles: Vec<_> =
            (0..CLIENTS).map(|c| scope.spawn(move || cold_client(daemon, c))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let cold_wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(daemon.session_count(), 0, "all cold sessions closed");
    let cold_stats = daemon.stats();
    assert_eq!(cold_stats.errors, 0);
    assert!(cold_stats.graphs_persisted >= 2 * CLIENTS as u64);

    let mut latencies: Vec<u64> =
        runs.iter().flat_map(|r| r.request_ns.iter().copied()).collect();
    latencies.extend(runs.iter().map(|r| r.open_ns));
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let requests = latencies.len() as u64;
    let requests_per_sec = requests as f64 / (cold_wall_ns as f64 / 1e9);
    let cold_open_ns =
        runs.iter().map(|r| r.open_ns).sum::<u64>() / runs.len() as u64;

    // ---- Restart: a NEW daemon on the same store must start warm. ----
    drop(daemon);
    let daemon = Daemon::new(Some(GraphStore::open(&store_dir).expect("store reopens")));
    let mut warm_open_ns_total = 0u64;
    let mut warm_graphs = 0u64;
    let mut graphs_reused = 0u64;
    let mut last_session = 0u64;
    for c in 0..CLIENTS {
        let owner = c as u64 + 1;
        // `profile: true` so the warm phase emits a live v6 report below.
        let (v, ns) = request(
            &daemon,
            owner,
            &req(vec![
                ("verb", Json::str("open")),
                ("source", Json::str(&client_src(c, 1))),
                ("profile", Json::Bool(true)),
            ]),
        );
        warm_open_ns_total += ns;
        let loaded = u(&v, "warm_graphs");
        assert!(loaded >= 2, "client {c}: warm reopen loaded only {loaded} graphs");
        warm_graphs += loaded;
        last_session = u(&v, "session");
        let (v, _) = request(
            &daemon,
            owner,
            &req(vec![("verb", Json::str("analyze")), ("session", Json::int(last_session))]),
        );
        assert_eq!(u(&v, "built"), 0, "client {c}: warm analyze rebuilt graphs");
        graphs_reused += u(&v, "reused");
    }
    assert!(graphs_reused > 0, "warm restart must reuse persisted graphs");
    let warm_open_ns = warm_open_ns_total / CLIENTS as u64;
    let warm_stats = daemon.stats();
    assert_eq!(warm_stats.warm_opens, CLIENTS as u64);

    // A v6 profile report with the serve section filled from the live
    // daemon (the CI schema smoke validates this sub-document).
    let (v, _) = request(
        &daemon,
        CLIENTS as u64,
        &req(vec![("verb", Json::str("profile")), ("session", Json::int(last_session))]),
    );
    let profile = v.get("report").expect("profile response carries a report").clone();
    let report = ped_obs::ProfileReport::from_json(&profile)
        .expect("emitted profile report validates");
    assert!(report.serve.requests > 0, "serve section not filled");
    assert!(report.serve.warm_opens > 0, "serve section missing warm opens");

    println!(
        "E16: {CLIENTS} concurrent clients, {requests} requests in {}",
        fmt_ns(cold_wall_ns as u128)
    );
    println!(
        "  latency p50 {}  p99 {}  ({requests_per_sec:.0} req/s)",
        fmt_ns(p50 as u128),
        fmt_ns(p99 as u128)
    );
    println!(
        "  open: cold {} vs warm {} ({} graphs preloaded, {} reused after restart)",
        fmt_ns(cold_open_ns as u128),
        fmt_ns(warm_open_ns as u128),
        warm_graphs,
        graphs_reused
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("E16")),
        ("schema_version", Json::int(1)),
        ("clients", Json::int(CLIENTS as u64)),
        ("requests", Json::int(requests)),
        ("errors", Json::int(cold_stats.errors)),
        ("p50_request_ns", Json::int(p50)),
        ("p99_request_ns", Json::int(p99)),
        ("requests_per_sec", Json::Num(requests_per_sec)),
        ("cold_open_ns", Json::int(cold_open_ns)),
        ("warm_open_ns", Json::int(warm_open_ns)),
        ("warm_graphs", Json::int(warm_graphs)),
        ("graphs_reused", Json::int(graphs_reused)),
        ("graphs_persisted", Json::int(cold_stats.graphs_persisted)),
        ("warm_opens", Json::int(warm_stats.warm_opens)),
        ("profile", profile),
    ]);
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_E16.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
