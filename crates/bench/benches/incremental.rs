//! E10 — incremental reanalysis after an edit.
//!
//! "Incremental parsing occurs in response to edits" — Ped kept the editor
//! responsive by re-analyzing only what an edit touched. We compare
//! re-deriving the dependence graphs of *one edited unit* (unit-level
//! incrementality, what the session does) against re-deriving every unit's
//! graphs from scratch, across program sizes — and measure the fingerprint
//! win: an edit whose visible interprocedural summaries are unchanged
//! leaves every other unit's cached graph alive, so the steady-state cost
//! is one unit's rebuild, not the program's.

use ped_bench::harness::bench;
use ped_core::Ped;
use ped_workloads::generator::{gen_source, GenConfig};
use std::hint::black_box;

fn graphs_of_unit(ped: &mut Ped, ui: usize) -> usize {
    let mut n = 0;
    for (h, _) in ped.loops(ui) {
        n += ped.graph(ui, h).unwrap().deps.len();
    }
    n
}

fn graphs_of_all(ped: &mut Ped) -> usize {
    let mut total = 0;
    for ui in 0..ped.program().units.len() {
        total += graphs_of_unit(ped, ui);
    }
    total
}

fn main() {
    println!("E10: incremental reanalysis after an edit");
    // The edited replacement for unit work0 (one statement changed).
    let edited = "subroutine work0(a, b, c, n)\ninteger n\nreal a(n), b(n), c(n, n)\n\
                  do i = 1, n\na(i) = b(i) * 3.0\nenddo\nreturn\nend\n";
    for units in [4usize, 8, 16] {
        let cfg = GenConfig { units, loops_per_unit: 6, ..GenConfig::default() };
        let src = gen_source(cfg);
        println!("-- {units} units");

        // Warm session with all graphs built; each iteration edits one
        // unit and re-derives its graphs. Fingerprint invalidation keeps
        // unaffected units' graphs, so only the edited unit rebuilds.
        let mut ped = Ped::open(&src).unwrap();
        graphs_of_all(&mut ped);
        bench(&format!("edit_one_unit/{units}"), 10, || {
            ped.edit_unit("work0", edited).unwrap();
            let ui = ped.unit_index("work0").unwrap();
            black_box(graphs_of_unit(&mut ped, ui))
        });

        // The fingerprint rider: after the steady-state edits above, every
        // *other* unit's graph must still be served from cache.
        ped.edit_unit("work0", edited).unwrap();
        let rebuilt_edit = {
            graphs_of_all(&mut ped);
            ped.reanalysis_count
        };
        let from_scratch = {
            let mut fresh = Ped::open(&ped.source()).unwrap();
            graphs_of_all(&mut fresh);
            fresh.reanalysis_count
        };
        assert!(
            rebuilt_edit < from_scratch,
            "summary-preserving edit rebuilt {rebuilt_edit} graphs, \
             scratch needs {from_scratch}: fingerprints not reusing"
        );
        println!("   graphs rebuilt after edit: {rebuilt_edit} (scratch: {from_scratch})");

        // Satellite check: undo and redo are *edits* for the E10 counter —
        // they reset `reanalysis_count` exactly like `edit_unit`, and the
        // work to re-answer queries after them is never worse than after
        // the original edit (retired graphs resurrect by fingerprint).
        assert!(ped.undo());
        assert_eq!(ped.reanalysis_count, 0, "undo resets the counter like an edit");
        graphs_of_all(&mut ped);
        let rebuilt_undo = ped.reanalysis_count;
        assert!(
            rebuilt_undo <= rebuilt_edit,
            "undo rebuilt {rebuilt_undo} graphs, the edit itself only {rebuilt_edit}"
        );
        assert!(ped.redo());
        assert_eq!(ped.reanalysis_count, 0, "redo resets the counter like an edit");
        println!("   graphs rebuilt after undo: {rebuilt_undo}");

        bench(&format!("full_reanalysis/{units}"), 10, || {
            let mut ped = Ped::open(&src).unwrap();
            black_box(graphs_of_all(&mut ped))
        });

        bench(&format!("full_reanalysis_batch/{units}"), 10, || {
            let mut ped = Ped::open(&src).unwrap();
            black_box(ped.analyze_all().deps)
        });
    }
}
