//! E10 — incremental reanalysis after an edit.
//!
//! "Incremental parsing occurs in response to edits" — Ped kept the editor
//! responsive by re-analyzing only what an edit touched. We compare
//! re-deriving the dependence graphs of *one edited unit* (unit-level
//! incrementality, what the session does) against re-deriving every unit's
//! graphs from scratch, across program sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ped_core::Ped;
use ped_workloads::generator::{gen_source, GenConfig};
use std::hint::black_box;

fn graphs_of_unit(ped: &mut Ped, ui: usize) -> usize {
    let mut n = 0;
    for (h, _) in ped.loops(ui) {
        n += ped.graph(ui, h).unwrap().deps.len();
    }
    n
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental_reanalysis");
    g.sample_size(10);
    for units in [4usize, 8, 16] {
        let cfg = GenConfig { units, loops_per_unit: 6, ..GenConfig::default() };
        let src = gen_source(cfg);
        // The edited replacement for unit work0 (one statement changed).
        let edited = "subroutine work0(a, b, c, n)\ninteger n\nreal a(n), b(n), c(n, n)\n\
                      do i = 1, n\na(i) = b(i) * 3.0\nenddo\nreturn\nend\n";
        g.bench_with_input(BenchmarkId::new("edit_one_unit", units), &src, |b, src| {
            // Warm session with all graphs built.
            let mut ped = Ped::open(src).unwrap();
            for ui in 0..ped.program().units.len() {
                graphs_of_unit(&mut ped, ui);
            }
            b.iter(|| {
                ped.edit_unit("work0", edited).unwrap();
                // Only the edited unit's graphs rebuild (interprocedural
                // summaries refresh lazily inside).
                let ui = ped.unit_index("work0").unwrap();
                black_box(graphs_of_unit(&mut ped, ui))
            })
        });
        g.bench_with_input(BenchmarkId::new("full_reanalysis", units), &src, |b, src| {
            b.iter(|| {
                let mut ped = Ped::open(src).unwrap();
                let mut total = 0;
                for ui in 0..ped.program().units.len() {
                    total += graphs_of_unit(&mut ped, ui);
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
