//! E14 — measured speedups of the persistent work-stealing runtime.
//!
//! The paper's editor promised users that a loop the analysis (or the
//! user) parallelized would actually run faster; this bench closes that
//! loop on the real runtime. Three scaled kernels — a private-scalar map
//! (`vscale`), a float dot-product reduction (`dotred`), and a triangular
//! nest with cost ∝ i (`tri`, the work-stealing stress case) — plus every
//! suite workload run serially and on the worker pool with 2/4/8 threads.
//!
//! Every configuration must be **bit-identical** to serial: printed
//! output compares as strings (full-precision float formatting) and the
//! final memory compares element bits, reductions included. Per loop, the
//! measured speedup (serial wall / threaded wall from the loop profile)
//! is compared against the static estimator's prediction and the
//! calibration ratio `max(predicted/measured, measured/predicted)` is
//! flagged when it exceeds 2×. (An earlier revision used
//! `|measured − predicted| / predicted`, which is bounded below 1.0
//! whenever measured < predicted — a 49× overprediction could never
//! fire the flag.) The speedup acceptance (Threads(4) > 1.5× on the
//! kernels) only asserts when the host actually has ≥ 4 cores; output
//! equality and the global step-budget check assert everywhere.
//!
//! Since the bytecode engine landed, the serial baseline *and* the
//! threaded sweep both run lowered register code; the tree walker is run
//! once per kernel as the differential oracle (identical output/memory)
//! and as the throughput reference — serial bytecode must beat it by ≥ 5×
//! on every kernel (the CI floor; the headline target is ≥ 10×).
//!
//! Results go to `target/BENCH_E14.json`, including a profile report from
//! a profiled Threads(2) session so downstream checks can see the
//! scheduler counters end to end.

use ped_bench::harness::fmt_ns;
use ped_bench::{apply_suite_assertions, parallelize_everything, Table};
use ped_core::Ped;
use ped_obs::json::Json;
use ped_runtime::{interp, Engine, ExecConfig, Machine, ParallelMode, Schedule};
use ped_workloads::all_programs;

/// Thread counts swept against the serial baseline.
const THREADS: [usize; 3] = [2, 4, 8];
/// Timed repeats per configuration; the loop wall time keeps the minimum.
const REPEATS: usize = 3;

fn vscale_src() -> String {
    let n = 150_000;
    format!(
        "program vscale\n\
         integer n\n\
         parameter (n = {n})\n\
         real a(n), b(n)\n\
         real t\n\
         do i = 1, n\n\
           a(i) = 0.001 * i\n\
         enddo\n\
         parallel do i = 1, n lastprivate(t)\n\
           t = a(i) * 2.0 + 1.0\n\
           b(i) = t * t + a(i)\n\
         enddo\n\
         print *, b(1), b(n / 2), b(n)\n\
         end\n"
    )
}

fn dotred_src() -> String {
    let n = 200_000;
    format!(
        "program dotred\n\
         integer n\n\
         parameter (n = {n})\n\
         real a(n), b(n)\n\
         real s\n\
         do i = 1, n\n\
           a(i) = 0.001 * i\n\
           b(i) = 1.0 / i\n\
         enddo\n\
         s = 0.0\n\
         parallel do i = 1, n reduction(+:s)\n\
           s = s + a(i) * b(i)\n\
         enddo\n\
         print *, s\n\
         end\n"
    )
}

fn tri_src() -> String {
    let n = 1_200;
    format!(
        "program tri\n\
         integer n\n\
         parameter (n = {n})\n\
         real a(n), b(n)\n\
         real t\n\
         do i = 1, n\n\
           a(i) = 0.002 * i\n\
         enddo\n\
         parallel do i = 1, n lastprivate(t, j)\n\
           t = 0.0\n\
           do j = 1, i\n\
             t = t + a(j) * 0.5\n\
           enddo\n\
           b(i) = t\n\
         enddo\n\
         print *, b(1), b(n / 2), b(n)\n\
         end\n"
    )
}

/// The main unit's `PARALLEL DO` header and the profile key addressing it.
fn parallel_loop_of(src: &str) -> (usize, ped_fortran::StmtId, String) {
    let program = ped_fortran::parse_program(src).expect("kernel parses");
    let (ui, unit) = program
        .units
        .iter()
        .enumerate()
        .find(|(_, u)| u.kind == ped_fortran::UnitKind::Main)
        .expect("kernel has a main unit");
    let header = unit
        .stmts
        .iter()
        .find_map(|s| match &s.kind {
            ped_fortran::StmtKind::Do(d) if d.is_parallel() => Some(s.id),
            _ => None,
        })
        .expect("kernel has a PARALLEL DO");
    (ui, header, unit.name.clone())
}

/// Run `src` under `config` `REPEATS` times; checks every repeat against
/// the expected output and returns the minimum wall time of the profiled
/// loop `(unit, header)`.
fn timed_loop_wall(
    label: &str,
    src: &str,
    config: &ExecConfig,
    key: &(String, ped_fortran::StmtId),
    expect: Option<&(Vec<String>, interp::MemorySnapshot)>,
) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..REPEATS {
        let (r, mem) = interp::run_source_with_memory(src, *config)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        if let Some((printed, memory)) = expect {
            assert_eq!(printed, &r.printed, "{label}: printed output diverged from serial");
            assert_eq!(memory, &mem, "{label}: final memory diverged from serial");
        }
        let ls = r
            .profile
            .get(key)
            .unwrap_or_else(|| panic!("{label}: loop {key:?} missing from profile"));
        best = best.min(ls.wall_ns.max(1));
    }
    best
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("E14: persistent work-stealing runtime — measured vs predicted speedup");
    println!("host cores: {cores} (speedup acceptance {})", if cores >= 4 { "ON" } else { "OFF" });

    let kernels: Vec<(&str, String)> =
        vec![("vscale", vscale_src()), ("dotred", dotred_src()), ("tri", tri_src())];

    let mut table = Table::new(&[
        "kernel", "trip", "tree", "serial", "ratio", "t2", "t4", "t8", "meas(4)", "pred(4)",
        "calib",
    ]);
    let mut rows: Vec<Json> = Vec::new();
    let mut flagged = 0usize;
    let mut min_ratio = f64::INFINITY;

    for (name, src) in &kernels {
        let (ui, header, unit_name) = parallel_loop_of(src);
        let key = (unit_name, header);

        // Serial baseline (bytecode engine): reference output, memory, and
        // loop wall time.
        let (serial, serial_mem) = interp::run_source_with_memory(src, ExecConfig::default())
            .unwrap_or_else(|e| panic!("{name} serial: {e}"));
        let expect = (serial.printed.clone(), serial_mem);
        let serial_wall =
            timed_loop_wall(&format!("{name}/serial"), src, &ExecConfig::default(), &key, None)
                .max(serial.profile[&key].wall_ns.max(1));
        let trip = serial.profile[&key].iterations;

        // Tree-walker oracle: identical output and memory, and the serial
        // throughput reference the bytecode engine is gated against.
        let tree_cfg = ExecConfig { engine: Engine::Tree, ..ExecConfig::default() };
        let tree_wall = timed_loop_wall(
            &format!("{name}/tree"),
            src,
            &tree_cfg,
            &key,
            Some(&expect),
        );
        let ratio = tree_wall as f64 / serial_wall as f64;
        min_ratio = min_ratio.min(ratio);
        assert!(
            ratio >= 5.0,
            "{name}: serial bytecode only {ratio:.1}x over the tree walker (floor is 5x)"
        );

        // Predicted speedup on the 4-processor machine model.
        let program = ped_fortran::parse_program(src).expect("kernel parses");
        let predicted =
            ped_perf::Estimator::new(&program, Machine::with_procs(4)).estimate_loop(ui, header).speedup();

        let mut walls = Vec::new();
        for &t in &THREADS {
            let config = ExecConfig {
                mode: ParallelMode::Threads(t),
                schedule: Schedule::Guided,
                ..ExecConfig::default()
            };
            let wall =
                timed_loop_wall(&format!("{name}/threads{t}"), src, &config, &key, Some(&expect));
            walls.push((t, wall));
        }

        let wall4 = walls.iter().find(|(t, _)| *t == 4).expect("4 is in THREADS").1;
        let measured = serial_wall as f64 / wall4 as f64;
        // Symmetric over/under-prediction ratio: 1.0 is perfect, and a
        // 49x overprediction scores 49 — not 0.98 as the old
        // |m − p| / p error did.
        let calib =
            (predicted / measured.max(1e-9)).max(measured / predicted.max(1e-9));
        if calib > 2.0 {
            flagged += 1;
            println!(
                "  CALIBRATION {name}: measured {measured:.2}x vs predicted {predicted:.2}x \
                 (ratio {calib:.1}x > 2x){}",
                if cores < 4 { " — expected on an undersized host" } else { "" }
            );
        }
        if cores >= 4 {
            assert!(
                measured > 1.5,
                "{name}: Threads(4) only {measured:.2}x over serial on a {cores}-core host"
            );
        }

        table.row(vec![
            name.to_string(),
            trip.to_string(),
            fmt_ns(tree_wall as u128),
            fmt_ns(serial_wall as u128),
            format!("{ratio:.1}x"),
            fmt_ns(walls[0].1 as u128),
            fmt_ns(walls[1].1 as u128),
            fmt_ns(walls[2].1 as u128),
            format!("{measured:.2}x"),
            format!("{predicted:.2}x"),
            format!("{calib:.2}"),
        ]);
        rows.push(Json::obj(vec![
            ("kernel", Json::str(name)),
            ("trip", Json::int(trip)),
            ("tree_serial_wall_ns", Json::int(tree_wall)),
            ("serial_wall_ns", Json::int(serial_wall)),
            ("engine_throughput_ratio", Json::Num(ratio)),
            (
                "threads",
                Json::Arr(
                    walls
                        .iter()
                        .map(|&(t, w)| {
                            Json::obj(vec![
                                ("threads", Json::int(t as u64)),
                                ("wall_ns", Json::int(w)),
                                ("speedup", Json::Num(serial_wall as f64 / w as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("measured_speedup_4", Json::Num(measured)),
            ("predicted_speedup_4", Json::Num(predicted)),
            ("calibration_ratio", Json::Num(calib)),
            ("calibration_flagged", Json::Bool(calib > 2.0)),
        ]));
    }
    print!("{}", table.render());

    // Suite sweep: everything the editor can parallelize must survive the
    // pool bit-for-bit.
    let mut suite_rows = Vec::new();
    for w in all_programs() {
        let serial = interp::run_source(w.source, ExecConfig::default())
            .unwrap_or_else(|e| panic!("{} serial: {e}", w.name));
        let mut ped = Ped::open(w.source).unwrap();
        apply_suite_assertions(&mut ped, w.name);
        let converted = parallelize_everything(&mut ped);
        let par_src = ped.source();
        for &t in &THREADS {
            let config = ExecConfig {
                mode: ParallelMode::Threads(t),
                schedule: Schedule::Guided,
                ..ExecConfig::default()
            };
            let r = interp::run_source(&par_src, config)
                .unwrap_or_else(|e| panic!("{}/threads{t}: {e}", w.name));
            assert_eq!(
                serial.printed, r.printed,
                "{}: threads {t} changed output after parallelizing {converted} loop(s)",
                w.name
            );
        }
        suite_rows.push(Json::obj(vec![
            ("program", Json::str(w.name)),
            ("parallel_loops", Json::int(converted as u64)),
            ("output_equal", Json::Bool(true)),
        ]));
    }
    println!("suite: {} program(s) bit-identical across thread counts", suite_rows.len());

    // The step budget is global: a tight cap aborts a threaded loop
    // without overshooting, no matter how many workers are pulling chunks.
    let budget_cap = 5_000u64;
    let budget_err = interp::run_source(
        &vscale_src(),
        ExecConfig {
            mode: ParallelMode::Threads(4),
            max_steps: budget_cap,
            ..ExecConfig::default()
        },
    )
    .expect_err("a 5k-step cap must abort the 150k-iteration kernel");
    assert!(
        budget_err.steps <= budget_cap,
        "budget overshot: {} steps executed under a {budget_cap} cap",
        budget_err.steps
    );
    println!("budget: aborted at {} step(s) under a {budget_cap}-step cap", budget_err.steps);

    // A profiled Threads(2) session, so the emitted report carries live
    // scheduler counters (schema v3) for the CI smoke check.
    let mut ped = Ped::open_profiled(&dotred_src()).unwrap();
    ped.analyze_all();
    ped.run(ExecConfig { mode: ParallelMode::Threads(2), ..ExecConfig::default() })
        .expect("profiled threaded run succeeds");
    let report = ped.profile_report();
    assert!(report.scheduler.parallel_loops > 0, "profiled run recorded no parallel loop");
    assert!(report.scheduler.chunks_executed > 0, "profiled run recorded no chunks");

    println!(
        "engine: serial bytecode ≥ {min_ratio:.1}x over the tree walker on every kernel"
    );

    let doc = Json::obj(vec![
        ("bench", Json::str("E14")),
        ("schema_version", Json::int(2)),
        ("engine", Json::str("bytecode")),
        ("min_engine_throughput_ratio", Json::Num(min_ratio)),
        ("cores", Json::int(cores as u64)),
        ("speedup_asserted", Json::Bool(cores >= 4)),
        ("output_equal", Json::Bool(true)),
        ("budget_enforced", Json::Bool(true)),
        ("budget_steps", Json::int(budget_err.steps)),
        ("calibration_flagged", Json::int(flagged as u64)),
        ("kernels", Json::Arr(rows)),
        ("suite", Json::Arr(suite_rows)),
        ("profile", report.to_json()),
    ]);
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_E14.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
