//! E13 — the interactive edit/transform/undo loop.
//!
//! The paper's core promise is editing-speed reanalysis: "the editor
//! updates the dependence information after each transformation". This
//! bench drives a live session through the steering loop — apply a
//! transformation, re-derive the affected graphs, undo, redo — over the
//! checked-in example programs and a generated multi-unit workload, and
//! measures per-op latency against the cost of a full from-scratch
//! reanalysis. Each program's op sequence is oracle-checked: the
//! incremental session's graphs must equal a fresh-from-source session's
//! (see `ped_core::equiv`), so every retention, resurrection, and
//! interprocedural fast-path decision taken along the way is validated.
//!
//! Results go to `target/BENCH_E13.json` (per-op medians plus the
//! session's incremental counters). The bench asserts the incremental
//! machinery actually engaged: graphs served from cache, at least one
//! whole-program interprocedural recompute skipped, and undo/redo cheaper
//! than the original apply path.

use ped_bench::harness::bench;
use ped_core::equiv::assert_matches_fresh;
use ped_core::{IncrementalReport, Ped};
use ped_obs::json::Json;
use ped_transform::Xform;
use ped_workloads::generator::{gen_source, GenConfig};
use std::hint::black_box;

fn graphs_of_unit(ped: &mut Ped, ui: usize) -> usize {
    let mut n = 0;
    for (h, _) in ped.loops(ui) {
        n += ped.graph(ui, h).unwrap().deps.len();
    }
    n
}

fn graphs_of_all(ped: &mut Ped) -> usize {
    let mut total = 0;
    for ui in 0..ped.program().units.len() {
        total += graphs_of_unit(ped, ui);
    }
    total
}

fn incremental_json(inc: &IncrementalReport) -> Json {
    Json::obj(vec![
        ("graphs_retained", Json::int(inc.graphs_retained)),
        ("graphs_resurrected", Json::int(inc.graphs_resurrected)),
        ("ip_recomputes", Json::int(inc.ip_recomputes)),
        ("ip_recomputes_skipped", Json::int(inc.ip_recomputes_skipped)),
        ("undo_entries", Json::int(inc.undo_entries)),
        ("redo_entries", Json::int(inc.redo_entries)),
        ("journal_bytes", Json::int(inc.journal_bytes)),
        ("snapshot_bytes", Json::int(inc.snapshot_bytes)),
    ])
}

/// Drive one program through the interactive loop; returns its JSON row.
fn session_loop(name: &str, src: &str) -> Json {
    let lines = src.lines().count();
    println!("-- {name} ({lines} lines)");

    // Profiled session: the report's cache section (graphs built/reused)
    // goes into the JSON row alongside the incremental counters.
    let mut ped = Ped::open_profiled(src).unwrap();
    ped.analyze_all();
    // First loop of the program: the steering target.
    let (ui, h) = (0..ped.program().units.len())
        .find_map(|u| ped.loops(u).first().map(|&(h, _)| (u, h)))
        .expect("bench program has at least one loop");

    // Per-op latency of the steering loop's workhorse: apply a (always
    // applicable, summary-preserving) reversal and re-derive the edited
    // unit's graphs — what the editor does between two keystrokes.
    let apply_stats = bench(&format!("apply_reverse/{name}"), 10, || {
        ped.apply(ui, h, &Xform::Reverse).unwrap();
        black_box(graphs_of_unit(&mut ped, ui))
    });
    assert_matches_fresh(&mut ped, &format!("{name}: after apply sequence"));

    // Undo/redo round trip with graph re-derivation on both sides — the
    // near-free path: retired graphs resurrect by fingerprint.
    let undo_redo_stats = bench(&format!("undo_redo/{name}"), 10, || {
        assert!(ped.undo());
        let a = graphs_of_all(&mut ped);
        assert!(ped.redo());
        black_box(a + graphs_of_all(&mut ped))
    });
    assert_matches_fresh(&mut ped, &format!("{name}: after undo/redo sequence"));

    // Baseline: what the same answers cost without the incremental engine.
    let scratch_stats = bench(&format!("full_reanalysis/{name}"), 10, || {
        let mut fresh = Ped::open(src).unwrap();
        black_box(fresh.analyze_all().deps)
    });

    let inc = ped.incremental_stats();
    let cache = ped.profile_report().cache;
    println!(
        "   retained {} resurrected {} ip skipped {}/{} journal {}B (snapshots {}B)",
        inc.graphs_retained,
        inc.graphs_resurrected,
        inc.ip_recomputes_skipped,
        inc.ip_recomputes_skipped + inc.ip_recomputes,
        inc.journal_bytes,
        inc.snapshot_bytes
    );
    assert!(
        inc.graphs_resurrected > 0,
        "{name}: undo/redo never resurrected a retired graph ({inc:?})"
    );
    assert!(
        undo_redo_stats.median_ns() < 2 * scratch_stats.median_ns().max(1),
        "{name}: undo/redo round trip should beat two from-scratch reanalyses"
    );

    Json::obj(vec![
        ("program", Json::str(name)),
        ("lines", Json::int(lines as u64)),
        ("apply_median_ns", Json::int(apply_stats.median_ns() as u64)),
        ("undo_redo_median_ns", Json::int(undo_redo_stats.median_ns() as u64)),
        ("full_reanalysis_median_ns", Json::int(scratch_stats.median_ns() as u64)),
        ("graphs_built", Json::int(cache.graphs_built)),
        ("graphs_reused", Json::int(cache.graphs_reused)),
        ("incremental", incremental_json(&inc)),
    ])
}

fn main() {
    println!("E13: interactive edit/transform/undo loop");
    let mut rows: Vec<Json> = Vec::new();
    let mut totals = IncrementalReport::default();
    let mut graphs_reused = 0u64;

    let examples = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fortran");
    let mut names: Vec<_> = std::fs::read_dir(&examples)
        .expect("examples/fortran exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "f"))
        .collect();
    names.sort();
    for path in names {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).unwrap();
        let row = session_loop(&name, &src);
        accumulate(&mut totals, &mut graphs_reused, &row);
        rows.push(row);
    }

    let gen_src = gen_source(GenConfig { units: 4, loops_per_unit: 4, ..GenConfig::default() });
    let row = session_loop("generated_4x4", &gen_src);
    accumulate(&mut totals, &mut graphs_reused, &row);
    rows.push(row);

    // Acceptance: the incremental engine must have engaged across the run.
    assert!(graphs_reused > 0, "no graph was ever served from cache");
    assert!(totals.graphs_resurrected > 0, "no graph was ever resurrected: {totals:?}");
    assert!(
        totals.ip_recomputes_skipped >= 1,
        "no interprocedural recompute was ever skipped: {totals:?}"
    );
    assert!(totals.journal_bytes < totals.snapshot_bytes, "journal not cheaper: {totals:?}");

    let doc = Json::obj(vec![
        ("bench", Json::str("E13")),
        ("schema_version", Json::int(1)),
        ("graphs_reused", Json::int(graphs_reused)),
        ("graphs_resurrected", Json::int(totals.graphs_resurrected)),
        ("graphs_retained", Json::int(totals.graphs_retained)),
        ("ip_recomputes_skipped", Json::int(totals.ip_recomputes_skipped)),
        ("journal_bytes", Json::int(totals.journal_bytes)),
        ("snapshot_bytes", Json::int(totals.snapshot_bytes)),
        ("rows", Json::Arr(rows)),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/BENCH_E13.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}

/// Pull a row's cache and incremental sections back into the running totals.
fn accumulate(totals: &mut IncrementalReport, graphs_reused: &mut u64, row: &Json) {
    *graphs_reused += row.get("graphs_reused").and_then(Json::as_u64).unwrap_or(0);
    let inc = row.get("incremental").expect("row has incremental section");
    let f = |k: &str| inc.get(k).and_then(Json::as_u64).unwrap_or(0);
    totals.graphs_retained += f("graphs_retained");
    totals.graphs_resurrected += f("graphs_resurrected");
    totals.ip_recomputes += f("ip_recomputes");
    totals.ip_recomputes_skipped += f("ip_recomputes_skipped");
    totals.journal_bytes += f("journal_bytes");
    totals.snapshot_bytes += f("snapshot_bytes");
}
