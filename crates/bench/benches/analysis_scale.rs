//! E11 — analysis time vs program size; batch analysis and the pair cache.
//!
//! Ped had to stay interactive on 5600-line codes. This bench sweeps
//! generated programs (units × loops) and measures: parsing, whole-program
//! interprocedural analysis, dependence graphs for every loop built
//! sequentially, and the same work through `Ped::analyze_all` (worker
//! threads sharing one memoized pair cache). It asserts that the batch
//! pass produces exactly the sequential dependence counts and that the
//! pair cache observes hits on the generated mix.

use ped_bench::harness::bench;
use ped_core::Ped;
use ped_workloads::generator::{gen_source, GenConfig};
use std::hint::black_box;

fn main() {
    println!("E11: analysis time vs program size");
    for (units, loops) in [(2usize, 4usize), (6, 6), (12, 10)] {
        let cfg = GenConfig { units, loops_per_unit: loops, ..GenConfig::default() };
        let src = gen_source(cfg);
        let lines = src.lines().count();
        println!("-- {units} units x {loops} loops ({lines} lines)");

        bench(&format!("parse/{lines}"), 10, || {
            black_box(ped_fortran::parse_program(&src).unwrap())
        });

        let p = ped_fortran::parse_program(&src).unwrap();
        bench(&format!("interproc/{lines}"), 10, || {
            black_box(ped_interproc::IpAnalysis::analyze(&p))
        });

        bench(&format!("all_dep_graphs_sequential/{lines}"), 10, || {
            let mut ped = Ped::open(&src).unwrap();
            let mut total = 0usize;
            for ui in 0..ped.program().units.len() {
                for (h, _) in ped.loops(ui) {
                    total += ped.graph(ui, h).unwrap().deps.len();
                }
            }
            black_box(total)
        });

        bench(&format!("all_dep_graphs_batch/{lines}"), 10, || {
            let mut ped = Ped::open(&src).unwrap();
            black_box(ped.analyze_all().deps)
        });

        // Correctness riders: the parallel batch pass must agree with the
        // sequential one dependence-for-dependence, and the shared pair
        // cache must actually be earning hits on this workload.
        let mut seq = Ped::open(&src).unwrap();
        let mut seq_deps = 0usize;
        for ui in 0..seq.program().units.len() {
            for (h, _) in seq.loops(ui) {
                seq_deps += seq.graph(ui, h).unwrap().deps.len();
            }
        }
        let mut batch = Ped::open(&src).unwrap();
        let report = batch.analyze_all();
        assert_eq!(
            report.deps, seq_deps,
            "batch analysis changed the dependence count at {lines} lines"
        );
        for ui in 0..seq.program().units.len() {
            for (h, _) in seq.loops(ui) {
                assert_eq!(
                    batch.graph(ui, h).unwrap(),
                    seq.graph(ui, h).unwrap(),
                    "graph mismatch at unit {ui}"
                );
            }
        }
        let stats = batch.pair_cache_stats();
        assert!(
            stats.hits > 0,
            "pair cache saw no hits at {lines} lines ({stats:?})"
        );
        println!(
            "   deps {} (batch == sequential), {} threads, pair cache {}/{} hits ({:.0}%)",
            report.deps,
            report.threads,
            stats.hits,
            stats.hits + stats.misses,
            stats.hit_rate() * 100.0
        );
    }
}
