//! E11 — analysis time vs program size.
//!
//! Ped had to stay interactive on 5600-line codes. This bench sweeps
//! generated programs (units × loops) and measures: parsing, the per-unit
//! scalar analyses, whole-program interprocedural analysis, and dependence
//! graphs for every loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ped_core::Ped;
use ped_workloads::generator::{gen_source, GenConfig};
use std::hint::black_box;

fn bench_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis_scale");
    g.sample_size(10);
    for (units, loops) in [(2usize, 4usize), (6, 6), (12, 10)] {
        let cfg = GenConfig { units, loops_per_unit: loops, ..GenConfig::default() };
        let src = gen_source(cfg);
        let lines = src.lines().count();
        g.bench_with_input(
            BenchmarkId::new("parse", lines),
            &src,
            |b, src| b.iter(|| black_box(ped_fortran::parse_program(src).unwrap())),
        );
        g.bench_with_input(
            BenchmarkId::new("interproc", lines),
            &src,
            |b, src| {
                let p = ped_fortran::parse_program(src).unwrap();
                b.iter(|| black_box(ped_interproc::IpAnalysis::analyze(&p)))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("all_dep_graphs", lines),
            &src,
            |b, src| {
                b.iter(|| {
                    let mut ped = Ped::open(src).unwrap();
                    let mut total = 0usize;
                    for ui in 0..ped.program().units.len() {
                        for (h, _) in ped.loops(ui) {
                            total += ped.graph(ui, h).unwrap().deps.len();
                        }
                    }
                    black_box(total)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
