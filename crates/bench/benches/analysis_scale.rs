//! E11 — analysis time vs program size; batch analysis and the pair cache.
//!
//! Ped had to stay interactive on 5600-line codes. This bench sweeps
//! generated programs (units × loops) and measures: parsing, whole-program
//! interprocedural analysis, dependence graphs for every loop built
//! sequentially, and the same work through `Ped::analyze_all` (worker
//! threads sharing one memoized pair cache). It asserts that the batch
//! pass produces exactly the sequential dependence counts and that the
//! pair cache observes hits on the generated mix.
//!
//! A profiled pass per size feeds the observability layer's per-phase
//! wall-clock columns (parse / interproc / dep testing / scalar analysis)
//! into the printed table and into `target/BENCH_E11.json`, so perf PRs
//! can cite where the milliseconds went, not just the totals.

use ped_bench::harness::bench;
use ped_core::Ped;
use ped_obs::json::Json;
use ped_workloads::generator::{gen_source, GenConfig};
use std::hint::black_box;

fn main() {
    println!("E11: analysis time vs program size");
    let mut json_rows: Vec<Json> = Vec::new();
    for (units, loops) in [(2usize, 4usize), (6, 6), (12, 10)] {
        let cfg = GenConfig { units, loops_per_unit: loops, ..GenConfig::default() };
        let src = gen_source(cfg);
        let lines = src.lines().count();
        println!("-- {units} units x {loops} loops ({lines} lines)");

        bench(&format!("parse/{lines}"), 10, || {
            black_box(ped_fortran::parse_program(&src).unwrap())
        });

        let p = ped_fortran::parse_program(&src).unwrap();
        bench(&format!("interproc/{lines}"), 10, || {
            black_box(ped_interproc::IpAnalysis::analyze(&p))
        });

        let seq_stats = bench(&format!("all_dep_graphs_sequential/{lines}"), 10, || {
            let mut ped = Ped::open(&src).unwrap();
            let mut total = 0usize;
            for ui in 0..ped.program().units.len() {
                for (h, _) in ped.loops(ui) {
                    total += ped.graph(ui, h).unwrap().deps.len();
                }
            }
            black_box(total)
        });

        let batch_stats = bench(&format!("all_dep_graphs_batch/{lines}"), 10, || {
            let mut ped = Ped::open(&src).unwrap();
            black_box(ped.analyze_all().deps)
        });

        // Correctness riders: the parallel batch pass must agree with the
        // sequential one dependence-for-dependence, and the shared pair
        // cache must actually be earning hits on this workload.
        let mut seq = Ped::open(&src).unwrap();
        let mut seq_deps = 0usize;
        for ui in 0..seq.program().units.len() {
            for (h, _) in seq.loops(ui) {
                seq_deps += seq.graph(ui, h).unwrap().deps.len();
            }
        }
        let mut batch = Ped::open(&src).unwrap();
        let report = batch.analyze_all();
        assert_eq!(
            report.deps, seq_deps,
            "batch analysis changed the dependence count at {lines} lines"
        );
        for ui in 0..seq.program().units.len() {
            for (h, _) in seq.loops(ui) {
                assert_eq!(
                    batch.graph(ui, h).unwrap(),
                    seq.graph(ui, h).unwrap(),
                    "graph mismatch at unit {ui}"
                );
            }
        }
        let stats = batch.pair_cache_stats();
        assert!(
            stats.hits > 0,
            "pair cache saw no hits at {lines} lines ({stats:?})"
        );
        println!(
            "   deps {} (batch == sequential), {} threads, pair cache {}/{} hits ({:.0}%)",
            report.deps,
            report.threads,
            stats.hits,
            stats.hits + stats.misses,
            stats.hit_rate() * 100.0
        );

        // One instrumented pass: where did the milliseconds go? The
        // profile's per-phase columns are what every later perf PR cites.
        let mut profiled = Ped::open_profiled(&src).unwrap();
        let preport = profiled.analyze_all();
        assert_eq!(preport.deps, seq_deps, "profiling must not change analysis");
        let profile = profiled.profile_report();
        let phase_ns = |name: &str| -> u64 {
            profile.phases.iter().find(|p| p.name == name).map_or(0, |p| p.ns)
        };
        println!(
            "   phases (one profiled pass): parse {:.2} ms, interproc {:.2} ms, \
             dep_test {:.2} ms, scalar_analysis {:.2} ms",
            phase_ns("parse") as f64 / 1e6,
            phase_ns("interproc") as f64 / 1e6,
            phase_ns("dep_test") as f64 / 1e6,
            phase_ns("scalar_analysis") as f64 / 1e6,
        );
        assert_eq!(
            profile.total_edges() as usize,
            preport.deps,
            "edge histogram must account for every dependence"
        );

        json_rows.push(Json::obj(vec![
            ("units", Json::int(units as u64)),
            ("loops_per_unit", Json::int(loops as u64)),
            ("lines", Json::int(lines as u64)),
            ("deps", Json::int(report.deps as u64)),
            ("sequential_median_ns", Json::int(seq_stats.median_ns() as u64)),
            ("batch_median_ns", Json::int(batch_stats.median_ns() as u64)),
            ("pair_cache_hit_rate", Json::Num(stats.hit_rate())),
            ("profile", profile.to_json()),
        ]));
    }

    // Disabled-instrumentation overhead guard: the acceptance bar is a
    // < 2% analyze_all regression with profiling off, which the always-off
    // default above already measures (batch_median_ns comes from plain
    // `Ped::open`). Record the bench table for cross-PR comparison.
    let doc = Json::obj(vec![
        ("bench", Json::str("E11")),
        ("schema_version", Json::int(1)),
        ("rows", Json::Arr(json_rows)),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/BENCH_E11.json");
    match std::fs::write(&out, doc.to_string_pretty()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
