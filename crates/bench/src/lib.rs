//! # ped-bench — experiment harness
//!
//! Shared machinery for the table/figure reproduction binaries (see
//! DESIGN.md's experiment index E1–E12) and the [`harness`]-based benches.
//! Each binary prints one paper artifact; `EXPERIMENTS.md` records the
//! outputs against the paper's claims.

pub mod harness;

use ped_core::{Assertion, Ped};
use ped_fortran::StmtId;
use ped_interproc::IpFlags;
use ped_workloads::Workload;

/// Count loops the session can parallelize right now (marks included).
pub fn count_parallel_loops(ped: &mut Ped) -> usize {
    let mut count = 0;
    for ui in 0..ped.program().units.len() {
        for (h, _) in ped.loops(ui) {
            if ped.parallelizable(ui, h).unwrap_or(false) {
                count += 1;
            }
        }
    }
    count
}

/// Total loops in the program.
pub fn count_loops(ped: &Ped) -> usize {
    (0..ped.program().units.len()).map(|ui| ped.loops(ui).len()).sum()
}

/// Parallel loops under a flag configuration.
pub fn parallel_loops_under(w: &Workload, flags: IpFlags) -> usize {
    let mut ped = Ped::open(w.source).expect("workload parses");
    ped.set_flags(flags);
    count_parallel_loops(&mut ped)
}

/// Apply the workload's documented user assertions (the workshop step);
/// returns the number of dependences rejected.
pub fn apply_suite_assertions(ped: &mut Ped, name: &str) -> usize {
    let mut rejected = 0;
    match name {
        "onedim" => {
            let ui = 0;
            if let Some(ind) = ped.program().units[ui].symbols.lookup("ind") {
                rejected += ped
                    .assert_fact(Assertion::Permutation { unit: ui, array: ind })
                    .unwrap_or(0);
            }
        }
        "banded" => {
            // The paper's users asserted symbolic sizes; our banded kernel
            // resolves via PARAMETER already, so assert in the subroutines
            // where n is a dummy argument.
            for uname in ["form", "scalerows"] {
                if let Ok(ui) = ped.unit_index(uname) {
                    if let Some(n) = ped.program().units[ui].symbols.lookup("n") {
                        let _ = ped.assert_fact(Assertion::Value { unit: ui, sym: n, value: 24 });
                    }
                }
            }
        }
        _ => {}
    }
    rejected
}

/// Convert every currently-parallelizable loop into a `PARALLEL DO`
/// (outermost-first, skipping loops nested inside an already-parallel
/// one). Loops blocked only by dependences on section-privatizable arrays
/// convert via `ArrayPrivatize`. Returns how many loops were converted.
///
/// This is [`ped_core::autoparallelize`] — one policy shared with the
/// `ped --autopar` CLI and the campaign engine, re-exported here so the
/// experiment binaries keep their historical name.
pub fn parallelize_everything(ped: &mut Ped) -> usize {
    ped_core::autoparallelize(ped)
}

/// Parallelize only loops the static estimator predicts profitable — the
/// performance-guided workflow the paper's users wanted (E6). Returns the
/// number converted.
pub fn parallelize_profitable(ped: &mut Ped) -> usize {
    let mut converted = 0;
    for ui in 0..ped.program().units.len() {
        // Estimate before mutating (estimates are stable under the
        // parallel-annotation-only rewrite).
        let estimates: Vec<(StmtId, bool)> = {
            let program = ped.program();
            let mut est =
                ped_perf::Estimator::new(program, ped_runtime::Machine::alliant8());
            est.rank_loops(ui)
                .into_iter()
                .map(|(s, e)| (s, e.profitable()))
                .collect()
        };
        let mut covered: Vec<StmtId> = Vec::new();
        for (h, profitable) in estimates {
            if !profitable || covered.contains(&h) {
                continue;
            }
            if ped.parallelizable(ui, h).unwrap_or(false)
                && ped.apply(ui, h, &ped_transform::Xform::Parallelize).is_ok()
            {
                converted += 1;
                let unit = &ped.program().units[ui];
                let mut nested = Vec::new();
                ped_fortran::visit::for_each_stmt(unit, &unit.loop_of(h).body, &mut |s| {
                    if unit.is_loop(s) {
                        nested.push(s);
                    }
                });
                covered.extend(nested);
            }
        }
    }
    converted
}

/// A parallelization baseline imitating a simple automatic compiler:
/// innermost loops only, no interprocedural analysis, no user interaction.
pub fn parallelize_innermost_auto(ped: &mut Ped) -> usize {
    ped.set_flags(IpFlags::none());
    let mut converted = 0;
    for ui in 0..ped.program().units.len() {
        let tree = ped_fortran::visit::loop_tree(&ped.program().units[ui]);
        let innermost: Vec<StmtId> =
            tree.iter().filter(|n| n.children.is_empty()).map(|n| n.stmt).collect();
        for h in innermost {
            if ped.parallelizable(ui, h).unwrap_or(false)
                && ped.apply(ui, h, &ped_transform::Xform::Parallelize).is_ok()
            {
                converted += 1;
            }
        }
    }
    converted
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncol) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncol));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_workloads::all_programs;

    #[test]
    fn full_flags_dominate_none() {
        for w in all_programs() {
            let full = parallel_loops_under(&w, IpFlags::all());
            let none = parallel_loops_under(&w, IpFlags::none());
            assert!(
                full >= none,
                "{}: more analysis can never lose parallel loops ({full} vs {none})",
                w.name
            );
        }
    }

    #[test]
    fn suite_has_blocked_and_parallel_loops() {
        // The suite must be non-trivial in both directions.
        let mut any_blocked = false;
        let mut any_parallel = false;
        for w in all_programs() {
            let mut ped = Ped::open(w.source).unwrap();
            let total = count_loops(&ped);
            let par = count_parallel_loops(&mut ped);
            if par < total {
                any_blocked = true;
            }
            if par > 0 {
                any_parallel = true;
            }
        }
        assert!(any_blocked && any_parallel);
    }

    #[test]
    fn onedim_assertion_unlocks() {
        let w = ped_workloads::program_by_name("onedim").unwrap();
        let mut ped = Ped::open(w.source).unwrap();
        let before = count_parallel_loops(&mut ped);
        let rejected = apply_suite_assertions(&mut ped, "onedim");
        assert!(rejected > 0);
        let after = count_parallel_loops(&mut ped);
        assert!(after > before, "{before} → {after}");
    }

    #[test]
    fn parallelize_everything_keeps_output() {
        for w in all_programs() {
            let serial = ped_runtime::interp::run_source(
                w.source,
                ped_runtime::ExecConfig::default(),
            )
            .unwrap();
            let mut ped = Ped::open(w.source).unwrap();
            apply_suite_assertions(&mut ped, w.name);
            let n = parallelize_everything(&mut ped);
            let sim = ped
                .run(ped_runtime::ExecConfig {
                    mode: ped_runtime::ParallelMode::Simulate(
                        ped_runtime::Machine::alliant8(),
                    ),
                    detect_races: true,
                    ..Default::default()
                })
                .unwrap();
            assert_eq!(serial.printed, sim.printed, "{} changed output", w.name);
            assert!(
                sim.races.is_empty(),
                "{}: races after parallelization: {:?}",
                w.name,
                sim.races
            );
            if w.name == "pneoss" {
                assert!(n >= 2, "pneoss should parallelize several loops");
            }
        }
    }

    #[test]
    fn analyze_all_deterministic_on_generated_programs() {
        use ped_workloads::generator::{gen_source, GenConfig};
        for (units, loops, seed) in [(3usize, 4usize, 1u64), (6, 5, 2), (9, 3, 3)] {
            let src = gen_source(GenConfig {
                units,
                loops_per_unit: loops,
                seed,
                ..GenConfig::default()
            });
            let mut seq = Ped::open(&src).unwrap();
            let mut expected = Vec::new();
            for ui in 0..seq.program().units.len() {
                for (h, _) in seq.loops(ui) {
                    expected.push((ui, h, seq.graph(ui, h).unwrap()));
                }
            }
            let mut batch = Ped::open(&src).unwrap();
            let report = batch.analyze_all();
            assert_eq!(report.built, expected.len(), "seed {seed}");
            for (ui, h, g) in &expected {
                assert_eq!(
                    &batch.graph(*ui, *h).unwrap(),
                    g,
                    "seed {seed}: unit {ui} loop {h} differs between parallel and sequential"
                );
            }
        }
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains('x'));
    }
}
