//! E8 — the dependence-marking / assertion workflow.
//!
//! For each program: how many dependences are proven vs pending, how many
//! pending ones the documented assertions delete, and how many loops that
//! unlocks — the quantitative version of "users deleted dependences … but
//! requested higher-level assertions".

use ped_bench::{apply_suite_assertions, count_parallel_loops, Table};
use ped_core::{DepStatus, Ped};
use ped_workloads::all_programs;

fn main() {
    let mut t = Table::new(&[
        "program", "deps", "proven", "pending", "deleted-by-assert", "loops unlocked",
    ]);
    for w in all_programs() {
        let mut ped = Ped::open(w.source).unwrap();
        let mut total = 0usize;
        let mut proven = 0usize;
        let mut pending = 0usize;
        for ui in 0..ped.program().units.len() {
            for (h, _) in ped.loops(ui) {
                let g = ped.graph(ui, h).unwrap();
                for d in &g.deps {
                    total += 1;
                    match ped.status(ui, d) {
                        DepStatus::Proven => proven += 1,
                        DepStatus::Pending => pending += 1,
                        _ => {}
                    }
                }
            }
        }
        let before = count_parallel_loops(&mut ped);
        let rejected = apply_suite_assertions(&mut ped, w.name);
        let after = count_parallel_loops(&mut ped);
        t.row(vec![
            w.name.to_string(),
            total.to_string(),
            proven.to_string(),
            pending.to_string(),
            rejected.to_string(),
            format!("+{}", after.saturating_sub(before)),
        ]);
    }
    println!("Dependence marking and assertions");
    println!("{}", t.render());
}
