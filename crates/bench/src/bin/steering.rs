//! E9 — power steering: the advice triple across the catalog.
//!
//! Runs every catalog transformation's diagnosis against a demonstration
//! program containing both safe and unsafe targets, printing the
//! applicable/safe/profitable verdicts — the advice Ped's menus showed.

use ped_bench::Table;
use ped_core::Ped;
use ped_transform::{Profit, Safety, Xform};

const DEMO: &str = "\
program steer
integer n
parameter (n = 64)
real a(n, n), b(n, n), v(n), w(2 * n)
real s
integer k
do i = 1, n
  do j = 1, n
    a(i, j) = 1.0 / (i + j)
    b(i, j) = a(i, j)
  enddo
enddo
do i = 2, n
  v(i) = v(i - 1) + 1.0
enddo
s = 0.0
k = 0
do i = 1, n
  k = k + 2
  w(k) = v(i)
  s = s + v(i)
enddo
print *, s, a(1, 1), b(2, 2), w(4)
end
";

fn fmt_safety(s: &Safety) -> String {
    match s {
        Safety::Safe => "safe".into(),
        Safety::Unsafe(why) => format!("UNSAFE: {why}"),
    }
}

fn fmt_profit(p: &Profit) -> String {
    match p {
        Profit::Yes(why) => format!("yes — {why}"),
        Profit::No(why) => format!("no — {why}"),
        Profit::Unknown => "unknown".into(),
    }
}

fn main() {
    let mut ped = Ped::open(DEMO).unwrap();
    let loops = ped.loops(0);
    let nest = loops[0].0; // the (i,j) 2-nest
    let recurrence = loops[2].0;
    let induction = loops[3].0;
    let k_sym = ped.program().units[0].symbols.lookup("k").unwrap();
    let s_sym = ped.program().units[0].symbols.lookup("s").unwrap();

    let cases: Vec<(&str, ped_fortran::StmtId, Xform)> = vec![
        ("2-nest", nest, Xform::Parallelize),
        ("2-nest", nest, Xform::Interchange),
        ("2-nest", nest, Xform::StripMine { size: 16 }),
        ("2-nest", nest, Xform::Unroll { factor: 4 }),
        ("2-nest", nest, Xform::UnrollAndJam { factor: 2 }),
        ("2-nest", nest, Xform::Skew { factor: 1 }),
        ("2-nest", nest, Xform::Distribute),
        ("recurrence", recurrence, Xform::Parallelize),
        ("recurrence", recurrence, Xform::Reverse),
        ("induction", induction, Xform::IvSub { var: k_sym }),
        ("induction", induction, Xform::ScalarExpand { var: s_sym }),
        ("induction", induction, Xform::Parallelize),
    ];

    let mut t = Table::new(&["target", "transformation", "applicable", "safety", "profitable"]);
    for (label, target, xform) in cases {
        let d = ped.diagnose(0, target, &xform).unwrap();
        t.row(vec![
            label.to_string(),
            xform.name().to_string(),
            match &d.applicable {
                Ok(()) => "yes".into(),
                Err(e) => format!("NO: {e}"),
            },
            fmt_safety(&d.safe),
            fmt_profit(&d.profitable),
        ]);
    }
    println!("Power steering advice across the catalog");
    println!("{}", t.render());

    // Walk the induction loop to parallel, narrating each step.
    println!("steering the induction loop to parallel:");
    let d = ped.diagnose(0, induction, &Xform::Parallelize).unwrap();
    println!("  parallelize: {}", fmt_safety(&d.safe));
    ped.apply(0, induction, &Xform::IvSub { var: k_sym }).unwrap();
    println!("  applied induction-variable substitution");
    let loops = ped.loops(0);
    let induction = loops[3].0;
    let d = ped.diagnose(0, induction, &Xform::Parallelize).unwrap();
    println!("  parallelize: {}", fmt_safety(&d.safe));
    ped.apply(0, induction, &Xform::Parallelize).unwrap();
    println!("  applied parallelize; loop is now:");
    let src = ped.source();
    for line in src.lines().filter(|l| l.contains("parallel do")) {
        println!("    {line}");
    }
}
