//! E4 — Table 3: the importance of each analysis.
//!
//! For every program we re-run loop-level parallelization with one
//! capability disabled at a time and count parallelizable loops. A ✓ in a
//! column means the program *needs* that analysis (turning it off loses
//! parallel loops); `asserts` shows the extra loops unlocked by the
//! documented user assertions — the paper's dependence-deletion workflow.

use ped_bench::{apply_suite_assertions, count_loops, count_parallel_loops, parallel_loops_under, Table};
use ped_core::Ped;
use ped_interproc::IpFlags;
use ped_workloads::all_programs;

fn main() {
    let mut t = Table::new(&[
        "program", "loops", "par(full)", "modref", "kill", "sections", "constants", "asserts(+)",
    ]);
    for w in all_programs() {
        let full = parallel_loops_under(&w, IpFlags::all());
        let total = {
            let ped = Ped::open(w.source).unwrap();
            count_loops(&ped)
        };
        let needs = |flags: IpFlags| {
            if parallel_loops_under(&w, flags) < full {
                "✓"
            } else {
                "—"
            }
        };
        let no_modref = IpFlags { modref: false, ..IpFlags::all() };
        let no_kill = IpFlags { kill: false, ..IpFlags::all() };
        let no_sections = IpFlags { sections: false, ..IpFlags::all() };
        let no_constants = IpFlags { constants: false, ..IpFlags::all() };
        // Assertions on top of the full configuration.
        let with_asserts = {
            let mut ped = Ped::open(w.source).unwrap();
            apply_suite_assertions(&mut ped, w.name);
            count_parallel_loops(&mut ped)
        };
        t.row(vec![
            w.name.to_string(),
            total.to_string(),
            full.to_string(),
            needs(no_modref).to_string(),
            needs(no_kill).to_string(),
            needs(no_sections).to_string(),
            needs(no_constants).to_string(),
            format!("+{}", with_asserts.saturating_sub(full)),
        ]);
    }
    println!("Table 3: analyses required per program");
    println!("(✓ = removing the analysis loses parallel loops; asserts = loops");
    println!(" unlocked by the documented user assertions)");
    println!("{}", t.render());
}
