//! E1 — Table 1: the evaluation program suite.
//!
//! Regenerates the paper's Table 1 (name, description & contributor,
//! lines, procedures) for the synthetic stand-in suite.

use ped_bench::Table;
use ped_workloads::all_programs;

fn main() {
    let mut t = Table::new(&["name", "description & contributor", "lines", "procedures"]);
    for w in all_programs() {
        t.row(vec![
            w.name.to_string(),
            format!("{} — {}", w.description, w.contributor),
            w.lines().to_string(),
            w.procedures().to_string(),
        ]);
    }
    println!("Table 1: program suite (synthetic stand-ins; see DESIGN.md)");
    println!("{}", t.render());
}
