//! E2 — Figure 1: the Ped window layout, rendered as text.
//!
//! Shows the three-pane view (source, dependences with marking status and
//! test provenance, variable classification) for a representative loop of
//! each of two programs: the arc3d symbolic-filter loop (proven strong-SIV
//! recurrence) and the onedim index-array scatter (pending deps before and
//! rejected deps after the permutation assertion).

use ped_core::{render, Assertion, DepFilter, Ped, SourceFilter};

fn main() {
    // arc3d: the filter recurrence with symbolic offsets.
    let w = ped_workloads::program_by_name("arc3d").unwrap();
    let mut ped = Ped::open(w.source).unwrap();
    let filter_unit = ped.unit_index("filter").unwrap();
    let loops = ped.loops(filter_unit);
    let recurrence = loops[1].0; // second loop: the carried one
    println!(
        "{}",
        render::render_loop_view(
            &mut ped,
            filter_unit,
            recurrence,
            &DepFilter::default(),
            &SourceFilter::All
        )
        .unwrap()
    );

    // onedim: index-array scatter before and after the assertion.
    let w = ped_workloads::program_by_name("onedim").unwrap();
    let mut ped = Ped::open(w.source).unwrap();
    let scatter = ped.loops(0)[1].0;
    println!("— onedim scatter loop, before the permutation assertion —");
    println!(
        "{}",
        render::render_loop_view(&mut ped, 0, scatter, &DepFilter::default(), &SourceFilter::All)
            .unwrap()
    );
    let ind = ped.program().units[0].symbols.lookup("ind").unwrap();
    let n = ped.assert_fact(Assertion::Permutation { unit: 0, array: ind }).unwrap();
    println!("— after `assert ind is a permutation` ({n} dependences deleted) —");
    println!(
        "{}",
        render::render_loop_view(&mut ped, 0, scatter, &DepFilter::default(), &SourceFilter::All)
            .unwrap()
    );

    // Unit overview (navigation pane).
    println!("{}", render::render_unit_overview(&mut ped, 0).unwrap());
}
