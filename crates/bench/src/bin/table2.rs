//! E3 — Table 2: transformations used per program.
//!
//! Replays a scripted Ped session per program (the role the workshop
//! assistants played) and records which catalog transformations were
//! actually applied to reach the parallel version.

use ped_bench::{apply_suite_assertions, parallelize_everything, Table};
use ped_core::Ped;
use ped_transform::Xform;
use ped_workloads::all_programs;

fn main() {
    let mut t = Table::new(&["program", "transformations applied"]);
    for w in all_programs() {
        let mut ped = Ped::open(w.source).unwrap();
        let mut used: Vec<String> = Vec::new();

        // Dependence deletion via assertions where documented.
        let rejected = apply_suite_assertions(&mut ped, w.name);
        if rejected > 0 {
            used.push(format!("dependence deletion ({rejected})"));
        }

        // Program-specific restructuring, as the workshop groups did.
        match w.name {
            "slab2d" => {
                // Distribute the slab loop to isolate the workspace phase.
                let main = 0;
                let h = ped.loops(main)[0].0;
                if ped.apply(main, h, &Xform::Distribute).is_ok() {
                    used.push("loop distribution".into());
                }
            }
            "gloop" => {
                // Inline colop, then interchange for granularity.
                let main = 0;
                let h = ped.loops(main)[0].0;
                let call = {
                    let unit = &ped.program().units[main];
                    unit.loop_of(h).body.first().copied()
                };
                if let Some(call) = call {
                    if ped.apply(main, call, &Xform::Inline { call }).is_ok() {
                        used.push("inlining (embedding)".into());
                        let h2 = ped.loops(main)[0].0;
                        let d = ped.diagnose(main, h2, &Xform::Interchange).unwrap();
                        if d.ok() && ped.apply(main, h2, &Xform::Interchange).is_ok() {
                            used.push("loop interchange".into());
                        }
                    }
                }
            }
            _ => {}
        }

        // Parallelize whatever is now parallel; count reductions/privates.
        let n = parallelize_everything(&mut ped);
        if n > 0 {
            used.push(format!("parallelize ({n} loops)"));
        }
        let src = ped.source();
        if src.contains("reduction(") {
            used.push("reduction recognition".into());
        }
        if src.contains("private(") {
            used.push("scalar privatization".into());
        }
        if src.contains("lastprivate(") {
            used.push("lastprivate".into());
        }
        t.row(vec![w.name.to_string(), used.join(", ")]);
    }
    println!("Table 2: transformations applied per program");
    println!("{}", t.render());
}
