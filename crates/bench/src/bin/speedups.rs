//! E5 — per-program speedups on the simulated machine.
//!
//! Compares three versions of every program on P ∈ {1, 2, 4, 8} simulated
//! processors: the serial original, a naive automatic baseline
//! (innermost-only, no interprocedural analysis — the Cray fpp / KAP
//! stand-in whose results the related-work section calls "less than 2×"),
//! and the Ped-parallelized version (assertions + full analysis + outer
//! loops). Shapes to check against the paper: the baseline stays small,
//! Ped wins where outer-loop parallelism exists, and granularity decides
//! the crossovers.

use ped_bench::{apply_suite_assertions, parallelize_everything, parallelize_innermost_auto, parallelize_profitable, Table};
use ped_core::Ped;
use ped_runtime::{ExecConfig, Machine, ParallelMode};
use ped_workloads::all_programs;

fn vtime(ped: &Ped, procs: usize) -> f64 {
    let mode = if procs <= 1 {
        ParallelMode::Serial
    } else {
        ParallelMode::Simulate(Machine::with_procs(procs))
    };
    ped.run(ExecConfig { mode, ..Default::default() }).expect("runs").vtime
}

fn main() {
    let mut t = Table::new(&[
        "program", "auto P=8", "ped P=2", "ped P=4", "ped P=8", "ped+est P=8",
    ]);
    for w in all_programs() {
        let serial = {
            let ped = Ped::open(w.source).unwrap();
            vtime(&ped, 1)
        };
        let auto8 = {
            let mut ped = Ped::open(w.source).unwrap();
            parallelize_innermost_auto(&mut ped);
            serial / vtime(&ped, 8)
        };
        let mut ped = Ped::open(w.source).unwrap();
        apply_suite_assertions(&mut ped, w.name);
        parallelize_everything(&mut ped);
        let sp = |p: usize| serial / vtime(&ped, p);
        // Profitability-gated variant (estimator-guided navigation).
        let est8 = {
            let mut ped2 = Ped::open(w.source).unwrap();
            apply_suite_assertions(&mut ped2, w.name);
            parallelize_profitable(&mut ped2);
            serial / vtime(&ped2, 8)
        };
        t.row(vec![
            w.name.to_string(),
            format!("{auto8:.2}x"),
            format!("{:.2}x", sp(2)),
            format!("{:.2}x", sp(4)),
            format!("{:.2}x", sp(8)),
            format!("{est8:.2}x"),
        ]);
    }
    println!("Speedups over the serial original (simulated Alliant-like machine)");
    println!("auto = innermost-only, no interprocedural analysis (KAP/fpp stand-in)");
    println!("{}", t.render());
}
