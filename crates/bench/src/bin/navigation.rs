//! E6 — performance-estimation-based navigation.
//!
//! The workshop users had to bring gprof/Forge profiles to find the loops
//! worth parallelizing; the requested enhancement was a static estimator.
//! This binary checks the estimator's loop ranking against the measured
//! loop-level profile for each program: top-1 and top-3 agreement.

use ped_bench::Table;
use ped_perf::{ranking_agreement, Estimator};
use ped_runtime::{interp::run_source, ExecConfig, Machine};
use ped_workloads::all_programs;

fn main() {
    let mut t = Table::new(&["program", "loops", "top-1 agree", "top-3 agree"]);
    for w in all_programs() {
        let program = ped_fortran::parse_program(w.source).unwrap();
        let mut est = Estimator::new(&program, Machine::alliant8());
        let ranked = est.rank_program();
        let measured = run_source(w.source, ExecConfig::default()).unwrap().profile;
        let a1 = ranking_agreement(&ranked, &measured, &program, 1);
        let a3 = ranking_agreement(&ranked, &measured, &program, 3);
        t.row(vec![
            w.name.to_string(),
            ranked.len().to_string(),
            format!("{:.0}%", a1 * 100.0),
            format!("{:.0}%", a3 * 100.0),
        ]);
    }
    println!("Navigation: static loop ranking vs measured profile");
    println!("{}", t.render());
}
