//! Minimal benchmark harness (no external dependencies).
//!
//! The bench binaries (`harness = false` targets) need warmup, repeated
//! sampling, and aligned reporting — nothing more. Each [`bench`] call
//! runs the closure once to warm caches, then `samples` times under the
//! wall clock, and reports min / median / mean. Results are printed
//! immediately and returned so a bench can assert on its own measurements
//! (e.g. the pair-cache hit-rate check in `analysis_scale`).

use std::time::Instant;

/// Measured timings of one benchmark, in nanoseconds.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark label.
    pub name: String,
    /// All sample durations, sorted ascending.
    pub samples_ns: Vec<u128>,
}

impl Stats {
    /// Fastest sample.
    pub fn min_ns(&self) -> u128 {
        *self.samples_ns.first().unwrap_or(&0)
    }

    /// Median sample.
    pub fn median_ns(&self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns[self.samples_ns.len() / 2]
    }

    /// Arithmetic mean.
    pub fn mean_ns(&self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns.iter().sum::<u128>() / self.samples_ns.len() as u128
    }
}

/// Human-readable duration.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Run one benchmark: a warmup iteration, then `samples` timed iterations.
/// The closure's return value is consumed through [`std::hint::black_box`]
/// so the optimizer cannot delete the measured work.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Stats {
    std::hint::black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let stats = Stats { name: name.to_string(), samples_ns: times };
    println!(
        "{:<44} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
        stats.name,
        fmt_ns(stats.min_ns()),
        fmt_ns(stats.median_ns()),
        fmt_ns(stats.mean_ns()),
        stats.samples_ns.len(),
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let s = bench("noop", 5, || 1 + 1);
        assert_eq!(s.samples_ns.len(), 5);
        assert!(s.min_ns() <= s.median_ns());
        assert!(s.median_ns() <= *s.samples_ns.last().unwrap());
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert!(fmt_ns(1_500).contains("µs"));
        assert!(fmt_ns(2_000_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).contains(" s"));
    }
}
