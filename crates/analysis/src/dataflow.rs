//! Generic iterative bit-vector data-flow solver.
//!
//! All the classic analyses Ped relied on (reaching definitions, liveness,
//! kill analysis) are instances of one worklist scheme over gen/kill sets.
//! We keep a small dense [`BitSet`] rather than pulling in a crate — the
//! solver is on the editor's interactive path, so it must be allocation-free
//! per iteration.

use crate::cfg::{Cfg, NodeId};

/// A fixed-capacity dense bit set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Set a bit.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear a bit.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Test a bit.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of bits this set can hold.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self = (self \ kill) ∪ gen` in place — the classic transfer function.
    pub fn transfer(&mut self, gen: &BitSet, kill: &BitSet) {
        for ((a, g), k) in self.words.iter_mut().zip(&gen.words).zip(&kill.words) {
            *a = (*a & !k) | g;
        }
    }

    /// Make every bit 1.
    pub fn fill(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        // Mask stray high bits so equality tests stay meaningful.
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 && !self.words.is_empty() {
            let last = self.words.len() - 1;
            self.words[last] >>= extra;
        }
    }

    /// Make every bit 0.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterate set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            let mut out = Vec::with_capacity(w.count_ones() as usize);
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                w &= w - 1;
            }
            out
        })
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Direction of a data-flow problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Information flows along control-flow edges (e.g. reaching defs).
    Forward,
    /// Information flows against control-flow edges (e.g. liveness).
    Backward,
}

/// Meet operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// May analyses (union).
    Union,
    /// Must analyses (intersection).
    Intersect,
}

/// Solution of a bit-vector problem: `inn[n]` / `out[n]` per node.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Facts on entry to each node.
    pub inn: Vec<BitSet>,
    /// Facts on exit from each node.
    pub out: Vec<BitSet>,
}

/// Solve `out[n] = gen[n] ∪ (meet(preds) \ kill[n])` (forward) or the mirror
/// (backward) to a fixed point with a worklist.
///
/// `boundary` seeds the entry node (forward) or exit node (backward);
/// interior nodes start at ⊤ for `Meet::Intersect` and ∅ for `Meet::Union`.
pub fn solve(
    cfg: &Cfg,
    gen: &[BitSet],
    kill: &[BitSet],
    dir: Direction,
    meet: Meet,
    boundary: &BitSet,
) -> Solution {
    let n = cfg.len();
    let bits = boundary.capacity();
    debug_assert_eq!(gen.len(), n);
    debug_assert_eq!(kill.len(), n);
    let mut inn: Vec<BitSet> = Vec::with_capacity(n);
    let mut out: Vec<BitSet> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut init = BitSet::new(bits);
        if meet == Meet::Intersect {
            init.fill();
        }
        inn.push(init.clone());
        out.push(init);
    }

    let start = match dir {
        Direction::Forward => cfg.entry,
        Direction::Backward => cfg.exit,
    };
    // Boundary facts enter the start node's input side.
    match dir {
        Direction::Forward => inn[start.index()] = boundary.clone(),
        Direction::Backward => out[start.index()] = boundary.clone(),
    }

    // Iterate in (reverse-)RPO until stable; bounded worklist by rounds.
    let order: Vec<NodeId> = match dir {
        Direction::Forward => cfg.rpo(),
        Direction::Backward => {
            let mut o = cfg.rpo();
            o.reverse();
            o
        }
    };
    let mut scratch = BitSet::new(bits);
    let mut changed = true;
    while changed {
        changed = false;
        for &node in &order {
            let i = node.index();
            // Meet over incoming facts.
            let sources: &[NodeId] = match dir {
                Direction::Forward => &cfg.preds[i],
                Direction::Backward => &cfg.succs[i],
            };
            if !sources.is_empty() {
                match meet {
                    Meet::Union => scratch.clear(),
                    Meet::Intersect => scratch.fill(),
                }
                for &s in sources {
                    let src = match dir {
                        Direction::Forward => &out[s.index()],
                        Direction::Backward => &inn[s.index()],
                    };
                    match meet {
                        Meet::Union => {
                            scratch.union_with(src);
                        }
                        Meet::Intersect => scratch.intersect_with(src),
                    }
                }
                // For the start node also meet in the boundary facts.
                if node == start && meet == Meet::Union {
                    scratch.union_with(boundary);
                } else if node == start && meet == Meet::Intersect {
                    scratch.intersect_with(boundary);
                }
                match dir {
                    Direction::Forward => inn[i] = scratch.clone(),
                    Direction::Backward => out[i] = scratch.clone(),
                }
            }
            // Transfer.
            let (src, dst) = match dir {
                Direction::Forward => (&inn[i], &mut out[i]),
                Direction::Backward => (&out[i], &mut inn[i]),
            };
            let mut new = src.clone();
            new.transfer(&gen[i], &kill[i]);
            if new != *dst {
                *dst = new;
                changed = true;
            }
        }
    }
    Solution { inn, out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basics() {
        let mut b = BitSet::new(130);
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        assert_eq!(b.count(), 3);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        b.remove(64);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn bitset_fill_masks_tail() {
        let mut b = BitSet::new(70);
        b.fill();
        assert_eq!(b.count(), 70);
    }

    #[test]
    fn transfer_gen_kill() {
        let mut x = BitSet::new(8);
        x.insert(1);
        x.insert(2);
        let mut gen = BitSet::new(8);
        gen.insert(3);
        let mut kill = BitSet::new(8);
        kill.insert(1);
        x.transfer(&gen, &kill);
        assert_eq!(x.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn union_with_reports_change() {
        let mut a = BitSet::new(8);
        let mut b = BitSet::new(8);
        b.insert(5);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
    }
}
