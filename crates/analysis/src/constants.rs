//! Scalar constant propagation.
//!
//! "Analysis of interprocedural and intraprocedural constants … improves the
//! precision of its dependence analysis." This module computes, for every
//! statement, the set of integer/real scalars known to hold a constant at
//! that point. The interprocedural half (constants inherited from callers)
//! is layered on by `ped-interproc`, which seeds [`ConstEnv::compute_seeded`]
//! with known dummy-argument values.

use crate::cfg::{Cfg, NodeId};
use ped_fortran::symbols::Const;
use ped_fortran::visit::{stmt_accesses, AccessKind};
use ped_fortran::{BinOp, Expr, ProgramUnit, StmtId, StmtKind, SymId, UnOp};
use std::collections::HashMap;

/// Map from scalar symbol to its known constant value.
pub type Facts = HashMap<SymId, Const>;

/// Constant-propagation solution for one unit.
#[derive(Debug, Clone)]
pub struct ConstEnv {
    /// Facts that hold on entry to each statement.
    facts_in: HashMap<StmtId, Facts>,
}

impl ConstEnv {
    /// Propagate constants with no external seed.
    pub fn compute(unit: &ProgramUnit, cfg: &Cfg) -> ConstEnv {
        Self::compute_seeded(unit, cfg, &Facts::new())
    }

    /// Propagate constants, seeding the entry with externally-known facts
    /// (interprocedural constants for dummy arguments / COMMON members).
    pub fn compute_seeded(unit: &ProgramUnit, cfg: &Cfg, seed: &Facts) -> ConstEnv {
        // PARAMETER constants hold everywhere and are handled directly in
        // `eval`; the lattice tracks assignable scalars only.
        let n = cfg.len();
        // `None` = unvisited (⊤); `Some(facts)` = known facts (absence of a
        // key means ⊥ — the variable may vary).
        let mut inn: Vec<Option<Facts>> = vec![None; n];
        let mut out: Vec<Option<Facts>> = vec![None; n];
        inn[cfg.entry.index()] = Some(seed.clone());

        let order = cfg.rpo();
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &order {
                let i = node.index();
                // Meet over predecessors (plus the seeded entry fact).
                if !cfg.preds[i].is_empty() {
                    let mut acc: Option<Facts> = if node == cfg.entry {
                        Some(seed.clone())
                    } else {
                        None
                    };
                    for &p in &cfg.preds[i] {
                        if let Some(pf) = &out[p.index()] {
                            acc = Some(match acc {
                                None => pf.clone(),
                                Some(a) => meet(&a, pf),
                            });
                        }
                    }
                    if acc.is_some() && acc != inn[i] {
                        inn[i] = acc;
                    }
                }
                let Some(facts) = inn[i].clone() else { continue };
                let new_out = Some(transfer(unit, cfg, node, facts));
                if new_out != out[i] {
                    out[i] = new_out;
                    changed = true;
                }
            }
        }

        let mut facts_in = HashMap::new();
        for (i, stmt) in cfg.stmt.iter().enumerate() {
            if let (Some(sid), Some(f)) = (stmt, inn[i].clone()) {
                facts_in.insert(*sid, f);
            }
        }
        ConstEnv { facts_in }
    }

    /// Facts on entry to a statement (empty if unreachable).
    pub fn at(&self, stmt: StmtId) -> &Facts {
        static EMPTY: std::sync::OnceLock<Facts> = std::sync::OnceLock::new();
        self.facts_in.get(&stmt).unwrap_or_else(|| EMPTY.get_or_init(Facts::new))
    }

    /// Evaluate an expression to an integer constant at a statement.
    pub fn int_at(&self, unit: &ProgramUnit, stmt: StmtId, e: &Expr) -> Option<i64> {
        match eval(unit, self.at(stmt), e)? {
            Const::Int(v) => Some(v),
            _ => None,
        }
    }
}

/// Meet two fact maps: keep only agreeing constants.
fn meet(a: &Facts, b: &Facts) -> Facts {
    let mut out = Facts::new();
    for (k, v) in a {
        if b.get(k) == Some(v) {
            out.insert(*k, *v);
        }
    }
    out
}

/// Transfer function of one statement.
fn transfer(unit: &ProgramUnit, cfg: &Cfg, node: NodeId, mut facts: Facts) -> Facts {
    let Some(sid) = cfg.stmt[node.index()] else { return facts };
    match &unit.stmt(sid).kind {
        StmtKind::Assign { lhs: ped_fortran::LValue::Var(s), rhs } => {
            match eval(unit, &facts, rhs) {
                Some(v) => {
                    facts.insert(*s, v);
                }
                None => {
                    facts.remove(s);
                }
            }
        }
        StmtKind::Do(d) => {
            // The loop variable varies; at the header we cannot assume a
            // constant (precise per-iteration values are the dependence
            // tester's job, not constant propagation's).
            facts.remove(&d.var);
        }
        StmtKind::Call { .. } => {
            // Kill every actual argument that could be written, plus all
            // COMMON members (refined by interprocedural MOD analysis at the
            // ped-core layer, which re-seeds this analysis).
            for acc in stmt_accesses(unit, sid) {
                if acc.kind == AccessKind::CallArg {
                    facts.remove(&acc.sym);
                }
            }
            facts.retain(|s, _| unit.symbols.sym(*s).common.is_none());
        }
        _ => {}
    }
    facts
}

/// Evaluate an expression given facts; `None` when not a known constant.
pub fn eval(unit: &ProgramUnit, facts: &Facts, e: &Expr) -> Option<Const> {
    match e {
        Expr::Int(v) => Some(Const::Int(*v)),
        Expr::Real(v) | Expr::Double(v) => Some(Const::Real(*v)),
        Expr::Logical(b) => Some(Const::Logical(*b)),
        Expr::Var(s) => unit.symbols.sym(*s).param.or_else(|| facts.get(s).copied()),
        Expr::Un { op: UnOp::Neg, e } => match eval(unit, facts, e)? {
            Const::Int(v) => Some(Const::Int(v.checked_neg()?)),
            Const::Real(v) => Some(Const::Real(-v)),
            Const::Logical(_) => None,
        },
        Expr::Un { op: UnOp::Not, e } => match eval(unit, facts, e)? {
            Const::Logical(b) => Some(Const::Logical(!b)),
            _ => None,
        },
        Expr::Bin { op, l, r } => {
            let l = eval(unit, facts, l)?;
            let r = eval(unit, facts, r)?;
            eval_bin(*op, l, r)
        }
        Expr::Intrinsic { op, args } => {
            use ped_fortran::ast::Intrinsic as I;
            let vals: Option<Vec<Const>> =
                args.iter().map(|a| eval(unit, facts, a)).collect();
            let vals = vals?;
            match (op, vals.as_slice()) {
                (I::Abs, [Const::Int(v)]) => Some(Const::Int(v.checked_abs()?)),
                (I::Abs, [Const::Real(v)]) => Some(Const::Real(v.abs())),
                (I::Mod, [Const::Int(a), Const::Int(b)]) if *b != 0 => {
                    Some(Const::Int(a % b))
                }
                (I::Min, vs) if vs.iter().all(|v| matches!(v, Const::Int(_))) => {
                    vs.iter().filter_map(|v| v.as_int()).min().map(Const::Int)
                }
                (I::Max, vs) if vs.iter().all(|v| matches!(v, Const::Int(_))) => {
                    vs.iter().filter_map(|v| v.as_int()).max().map(Const::Int)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn eval_bin(op: BinOp, l: Const, r: Const) -> Option<Const> {
    use Const::*;
    match (l, r) {
        (Int(a), Int(b)) => match op {
            BinOp::Add => a.checked_add(b).map(Int),
            BinOp::Sub => a.checked_sub(b).map(Int),
            BinOp::Mul => a.checked_mul(b).map(Int),
            BinOp::Div => a.checked_div(b).map(Int),
            BinOp::Pow => u32::try_from(b).ok().and_then(|p| a.checked_pow(p)).map(Int),
            BinOp::Lt => Some(Logical(a < b)),
            BinOp::Le => Some(Logical(a <= b)),
            BinOp::Gt => Some(Logical(a > b)),
            BinOp::Ge => Some(Logical(a >= b)),
            BinOp::Eq => Some(Logical(a == b)),
            BinOp::Ne => Some(Logical(a != b)),
            _ => None,
        },
        (Real(a), Real(b)) => arith_real(op, a, b),
        (Real(a), Int(b)) => arith_real(op, a, b as f64),
        (Int(a), Real(b)) => arith_real(op, a as f64, b),
        (Logical(a), Logical(b)) => match op {
            BinOp::And => Some(Logical(a && b)),
            BinOp::Or => Some(Logical(a || b)),
            BinOp::Eq => Some(Logical(a == b)),
            BinOp::Ne => Some(Logical(a != b)),
            _ => None,
        },
        _ => None,
    }
}

fn arith_real(op: BinOp, a: f64, b: f64) -> Option<Const> {
    use Const::*;
    match op {
        BinOp::Add => Some(Real(a + b)),
        BinOp::Sub => Some(Real(a - b)),
        BinOp::Mul => Some(Real(a * b)),
        BinOp::Div => Some(Real(a / b)),
        BinOp::Pow => Some(Real(a.powf(b))),
        BinOp::Lt => Some(Logical(a < b)),
        BinOp::Le => Some(Logical(a <= b)),
        BinOp::Gt => Some(Logical(a > b)),
        BinOp::Ge => Some(Logical(a >= b)),
        BinOp::Eq => Some(Logical(a == b)),
        BinOp::Ne => Some(Logical(a != b)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn setup(src: &str) -> (ProgramUnit, Cfg, ConstEnv) {
        let u = parse_program(src).unwrap().units.remove(0);
        let cfg = Cfg::build(&u);
        let env = ConstEnv::compute(&u, &cfg);
        (u, cfg, env)
    }

    #[test]
    fn straight_line_constant() {
        let (u, _, env) = setup("program t\nn = 100\nm = n + 1\nk = m * 2\nend\n");
        let n = u.symbols.lookup("n").unwrap();
        let m = u.symbols.lookup("m").unwrap();
        assert_eq!(env.at(u.body[1]).get(&n), Some(&Const::Int(100)));
        assert_eq!(env.at(u.body[2]).get(&m), Some(&Const::Int(101)));
    }

    #[test]
    fn parameter_is_constant_via_eval() {
        let (u, _, env) = setup("program t\ninteger n\nparameter (n = 50)\nm = n\nend\n");
        let m_stmt = u.body[0];
        let n = u.symbols.lookup("n").unwrap();
        assert_eq!(env.int_at(&u, m_stmt, &Expr::Var(n)), Some(50));
    }

    #[test]
    fn branch_disagreement_loses_constant() {
        let (u, _, env) = setup(
            "program t\nif (c .gt. 0.0) then\nn = 1\nelse\nn = 2\nendif\nm = n\nend\n",
        );
        let n = u.symbols.lookup("n").unwrap();
        assert_eq!(env.at(u.body[1]).get(&n), None);
    }

    #[test]
    fn branch_agreement_keeps_constant() {
        let (u, _, env) = setup(
            "program t\nif (c .gt. 0.0) then\nn = 7\nelse\nn = 7\nendif\nm = n\nend\n",
        );
        let n = u.symbols.lookup("n").unwrap();
        assert_eq!(env.at(u.body[1]).get(&n), Some(&Const::Int(7)));
    }

    #[test]
    fn call_kills_arguments_and_common() {
        let (u, _, env) = setup(
            "program t\ncommon /c/ g\nn = 4\ng = 5\nh = 6\ncall f(n)\nm = n\nend\n",
        );
        let n = u.symbols.lookup("n").unwrap();
        let g = u.symbols.lookup("g").unwrap();
        let h = u.symbols.lookup("h").unwrap();
        let last = *u.body.last().unwrap();
        assert_eq!(env.at(last).get(&n), None, "call arg killed");
        assert_eq!(env.at(last).get(&g), None, "common killed");
        assert!(env.at(last).contains_key(&h), "untouched local survives");
    }

    #[test]
    fn loop_variable_not_constant() {
        let (u, _, env) = setup("program t\nreal a(10)\ndo i = 1, 10\na(i) = 0.0\nenddo\nend\n");
        let i = u.symbols.lookup("i").unwrap();
        let body0 = u.loop_of(u.body[0]).body[0];
        assert_eq!(env.at(body0).get(&i), None);
    }

    #[test]
    fn constant_survives_loop_if_not_written() {
        let (u, _, env) = setup(
            "program t\nreal a(10)\nn = 10\ndo i = 1, n\na(i) = 0.0\nenddo\nm = n\nend\n",
        );
        let n = u.symbols.lookup("n").unwrap();
        let last = *u.body.last().unwrap();
        assert_eq!(env.at(last).get(&n), Some(&Const::Int(10)));
    }

    #[test]
    fn seeded_facts_propagate() {
        let u = parse_program("subroutine s(n)\ninteger n\nm = n + 1\nend\n")
            .unwrap()
            .units
            .remove(0);
        let cfg = Cfg::build(&u);
        let n = u.symbols.lookup("n").unwrap();
        let mut seed = Facts::new();
        seed.insert(n, Const::Int(41));
        let env = ConstEnv::compute_seeded(&u, &cfg, &seed);
        let m = u.symbols.lookup("m").unwrap();
        let _ = m;
        assert_eq!(env.int_at(&u, u.body[0], &Expr::Var(n)), Some(41));
    }
}
