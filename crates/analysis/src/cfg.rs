//! Control-flow graphs for structured units.
//!
//! One node per statement plus distinguished entry and exit nodes. A `DO`
//! statement is its loop's header: it has a zero-trip edge to the loop's
//! continuation and an edge into the body; the body's last statements feed
//! the back edge to the header. `RETURN`/`STOP` jump straight to exit.

use ped_fortran::{Block, ProgramUnit, StmtId, StmtKind};
use std::collections::HashMap;

/// Dense CFG node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Control-flow graph of one program unit.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `stmt[n]` is the statement of node `n` (`None` for entry/exit).
    pub stmt: Vec<Option<StmtId>>,
    /// Successor adjacency.
    pub succs: Vec<Vec<NodeId>>,
    /// Predecessor adjacency.
    pub preds: Vec<Vec<NodeId>>,
    /// Entry node (always `NodeId(0)`).
    pub entry: NodeId,
    /// Exit node (always `NodeId(1)`).
    pub exit: NodeId,
    node_of_stmt: HashMap<StmtId, NodeId>,
}

impl Cfg {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.stmt.len()
    }

    /// True if the graph has no statement nodes.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// The node of a statement. Panics if the statement is not in this unit's
    /// body tree (e.g. a tombstoned statement).
    pub fn node(&self, s: StmtId) -> NodeId {
        self.node_of_stmt[&s]
    }

    /// The node of a statement, if it is in the graph.
    pub fn node_opt(&self, s: StmtId) -> Option<NodeId> {
        self.node_of_stmt.get(&s).copied()
    }

    /// Build the CFG of a unit.
    pub fn build(unit: &ProgramUnit) -> Cfg {
        let mut b = Builder {
            unit,
            cfg: Cfg {
                stmt: vec![None, None],
                succs: vec![Vec::new(), Vec::new()],
                preds: vec![Vec::new(), Vec::new()],
                entry: NodeId(0),
                exit: NodeId(1),
                node_of_stmt: HashMap::new(),
            },
        };
        let (first, lasts) = b.build_block(&unit.body);
        let entry = b.cfg.entry;
        let exit = b.cfg.exit;
        match first {
            Some(f) => b.edge(entry, f),
            None => b.edge(entry, exit),
        }
        for l in lasts {
            b.edge(l, exit);
        }
        b.cfg
    }

    /// Reverse-postorder of nodes from entry (forward problems iterate this).
    pub fn rpo(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.len()];
        let mut post = Vec::with_capacity(self.len());
        // Iterative DFS with explicit stack.
        let mut stack: Vec<(NodeId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.index()] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succs[n.index()].len() {
                let s = self.succs[n.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

struct Builder<'a> {
    unit: &'a ProgramUnit,
    cfg: Cfg,
}

impl<'a> Builder<'a> {
    fn add_node(&mut self, s: StmtId) -> NodeId {
        let id = NodeId(self.cfg.stmt.len() as u32);
        self.cfg.stmt.push(Some(s));
        self.cfg.succs.push(Vec::new());
        self.cfg.preds.push(Vec::new());
        self.cfg.node_of_stmt.insert(s, id);
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.cfg.succs[from.index()].contains(&to) {
            self.cfg.succs[from.index()].push(to);
            self.cfg.preds[to.index()].push(from);
        }
    }

    /// Returns (first node of the block, the nodes that fall through to
    /// whatever follows the block). `first == None` for an empty block.
    fn build_block(&mut self, block: &Block) -> (Option<NodeId>, Vec<NodeId>) {
        let mut first = None;
        let mut pending: Vec<NodeId> = Vec::new();
        for &sid in block {
            if matches!(self.unit.stmt(sid).kind, StmtKind::Removed) {
                continue;
            }
            let (f, lasts) = self.build_stmt(sid);
            for p in pending {
                self.edge(p, f);
            }
            pending = lasts;
            if first.is_none() {
                first = Some(f);
            }
        }
        (first, pending)
    }

    /// Returns (node representing the statement, fall-through nodes).
    fn build_stmt(&mut self, sid: StmtId) -> (NodeId, Vec<NodeId>) {
        let n = self.add_node(sid);
        match &self.unit.stmt(sid).kind {
            StmtKind::Do(d) => {
                let (bf, blasts) = self.build_block(&d.body);
                match bf {
                    Some(bf) => {
                        self.edge(n, bf);
                        for l in blasts {
                            self.edge(l, n); // back edge to header
                        }
                    }
                    None => {
                        // Empty body: the header iterates on itself.
                        self.edge(n, n);
                    }
                }
                // Zero-trip / loop-exit edge: falls through the header.
                (n, vec![n])
            }
            StmtKind::If { arms, else_block } => {
                let mut lasts = Vec::new();
                for (_, blk) in arms {
                    let (bf, blasts) = self.build_block(blk);
                    match bf {
                        Some(bf) => {
                            self.edge(n, bf);
                            lasts.extend(blasts);
                        }
                        None => lasts.push(n),
                    }
                }
                match else_block {
                    Some(blk) => {
                        let (bf, blasts) = self.build_block(blk);
                        match bf {
                            Some(bf) => {
                                self.edge(n, bf);
                                lasts.extend(blasts);
                            }
                            None => lasts.push(n),
                        }
                    }
                    None => lasts.push(n), // condition false falls through
                }
                (n, lasts)
            }
            StmtKind::Return | StmtKind::Stop => {
                let exit = self.cfg.exit;
                self.edge(n, exit);
                (n, Vec::new())
            }
            _ => (n, vec![n]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn unit(src: &str) -> ProgramUnit {
        parse_program(src).unwrap().units.remove(0)
    }

    #[test]
    fn straight_line() {
        let u = unit("program t\nx = 1.0\ny = 2.0\nend\n");
        let c = Cfg::build(&u);
        assert_eq!(c.len(), 4);
        let n0 = c.node(u.body[0]);
        let n1 = c.node(u.body[1]);
        assert_eq!(c.succs[c.entry.index()], vec![n0]);
        assert_eq!(c.succs[n0.index()], vec![n1]);
        assert_eq!(c.succs[n1.index()], vec![c.exit]);
    }

    #[test]
    fn loop_has_back_edge_and_exit_edge() {
        let u = unit("program t\nreal a(10)\ndo i = 1, 10\na(i) = 0.0\nenddo\nend\n");
        let c = Cfg::build(&u);
        let hdr = c.node(u.body[0]);
        let body = match &u.stmt(u.body[0]).kind {
            StmtKind::Do(d) => c.node(d.body[0]),
            _ => unreachable!(),
        };
        assert!(c.succs[hdr.index()].contains(&body));
        assert!(c.succs[hdr.index()].contains(&c.exit));
        assert!(c.succs[body.index()].contains(&hdr));
    }

    #[test]
    fn if_without_else_falls_through() {
        let u = unit("program t\nif (x .gt. 0.0) then\ny = 1.0\nendif\nz = 2.0\nend\n");
        let c = Cfg::build(&u);
        let iff = c.node(u.body[0]);
        let z = c.node(u.body[1]);
        assert!(c.succs[iff.index()].contains(&z), "false branch must fall through");
        assert_eq!(c.succs[iff.index()].len(), 2);
    }

    #[test]
    fn return_goes_to_exit() {
        let u = unit("subroutine s()\nif (x .gt. 0.0) then\nreturn\nendif\nx = 1.0\nend\n");
        let c = Cfg::build(&u);
        let ids = ped_fortran::visit::stmts_recursive(&u, &u.body);
        let ret = ids.iter().copied().find(|&s| u.stmt(s).kind == StmtKind::Return).unwrap();
        assert_eq!(c.succs[c.node(ret).index()], vec![c.exit]);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let u = unit("program t\ndo i = 1, 3\nx = 1.0\nenddo\nend\n");
        let c = Cfg::build(&u);
        let order = c.rpo();
        assert_eq!(order[0], c.entry);
        assert_eq!(order.len(), c.len());
    }
}
