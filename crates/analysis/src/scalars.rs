//! Loop-level scalar classification.
//!
//! For each scalar referenced in a loop, Ped's variable pane shows whether
//! it is shared, private, a reduction, or an induction variable, and lets
//! the user reclassify. The underlying facts come from this module:
//!
//! * **privatizable** — "recognizing scalars that are killed, or redefined,
//!   on every iteration of a loop and may be made private, thus eliminating
//!   dependences";
//! * **reductions** — `s = s + e` chains (the paper reports five programs
//!   with unrecognized sum reductions; we recognize them);
//! * **auxiliary induction variables** — `k = k + c` with other uses, which
//!   induction-variable substitution can rewrite;
//! * **read-only** and genuinely **shared** (loop-carried) scalars.

use ped_fortran::visit::{stmt_accesses, AccessKind};
use ped_fortran::{BinOp, Expr, LValue, ProgramUnit, RedOp, StmtId, StmtKind, SymId};
use std::collections::{HashMap, HashSet};

/// Classification of one scalar with respect to one loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarClass {
    /// Only read in the loop.
    ReadOnly,
    /// The loop index itself.
    LoopIndex,
    /// Written before any possible use on every iteration: safe to privatize.
    Private {
        /// The value is needed after the loop, so the last iteration's value
        /// must be copied out (`LASTPRIVATE`).
        needs_lastprivate: bool,
    },
    /// All accesses form a reduction with this operator.
    Reduction(RedOp),
    /// `k = k ± c` with further uses: an auxiliary induction variable with
    /// the given per-iteration step (substitutable).
    AuxInduction {
        /// Loop-invariant step expression (positive for `+`).
        step: Expr,
    },
    /// Carries a genuine loop dependence; must stay shared.
    Shared,
}

impl ScalarClass {
    /// True when this classification blocks parallelization of the loop.
    pub fn blocks_parallelization(&self) -> bool {
        matches!(self, ScalarClass::Shared)
    }
}

/// Result of the definite-assignment / exposed-use walk over a loop body.
#[derive(Debug, Default)]
struct BodyFacts {
    /// Scalars with an upward-exposed use (read possibly before any write
    /// in the same iteration).
    exposed: HashSet<SymId>,
    /// Scalars definitely assigned on every path through the body.
    assigned_on_all_paths: HashSet<SymId>,
    /// Scalars written anywhere in the body (possibly conditionally).
    written: HashSet<SymId>,
    /// Scalars read anywhere in the body.
    read: HashSet<SymId>,
}

/// Interprocedural scalar effects of call statements, used to refine the
/// classification. The conservative default assumes a call may read and
/// write every scalar argument and COMMON scalar and kills nothing;
/// `ped-interproc` provides the precise MOD/REF/KILL-backed implementation.
pub trait CallInfo {
    /// Scalars *definitely assigned* by the call on every path (interproc
    /// KILL). A killed scalar behaves like an unconditional assignment.
    fn kills(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId>;
    /// Scalars the call may write.
    fn mods(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId>;
    /// Scalars the call may read **before writing them** (upward-exposed
    /// uses — Callahan's flow-sensitive side effects, not flat REF; a
    /// scalar the callee always assigns before reading is *not* here).
    fn refs(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId>;
    /// Sectioned effect of the call on one array (bounded regular sections).
    /// The conservative default: any array passed as an argument or living
    /// in COMMON may be read and written anywhere, kills nothing, exposes
    /// everything (`exposed: None` ≡ ⊤). `ped-interproc` overrides this
    /// with callee-summary sections translated into the caller's frame.
    fn array_effect(&self, unit: &ProgramUnit, stmt: StmtId, sym: SymId) -> ArrayCallEffect {
        conservative_array_effect(unit, stmt, sym)
    }
}

/// Sectioned interprocedural effect of one call statement on one array.
#[derive(Debug, Clone, Default)]
pub struct ArrayCallEffect {
    /// The call may read the array.
    pub may_read: bool,
    /// The call may write the array.
    pub may_write: bool,
    /// Section definitely overwritten before any use on every path through
    /// the callee (`None` = kills nothing).
    pub kill: Option<crate::sections::ArraySection>,
    /// Section of upward-exposed reads (`None` = unknown, treat as ⊤).
    pub exposed: Option<crate::sections::ArraySection>,
}

/// Worst-case array effect: argument and COMMON arrays are read and written
/// in full, nothing is killed.
pub fn conservative_array_effect(
    unit: &ProgramUnit,
    stmt: StmtId,
    sym: SymId,
) -> ArrayCallEffect {
    let touched = unit.symbols.sym(sym).common.is_some()
        || stmt_accesses(unit, stmt)
            .iter()
            .any(|a| a.kind == AccessKind::CallArg && a.sym == sym);
    ArrayCallEffect { may_read: touched, may_write: touched, kill: None, exposed: None }
}

/// Worst-case call effects: arguments and COMMON scalars are both read and
/// written, nothing is killed.
pub struct ConservativeCalls;

impl CallInfo for ConservativeCalls {
    fn kills(&self, _unit: &ProgramUnit, _stmt: StmtId) -> HashSet<SymId> {
        HashSet::new()
    }
    fn mods(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId> {
        conservative_call_scalars(unit, stmt)
    }
    fn refs(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId> {
        conservative_call_scalars(unit, stmt)
    }
}

/// Scalar args plus all COMMON scalars of the unit.
pub fn conservative_call_scalars(unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId> {
    let mut out: HashSet<SymId> = stmt_accesses(unit, stmt)
        .into_iter()
        .filter(|a| {
            a.kind == AccessKind::CallArg && a.subs.is_none() && !unit.symbols.sym(a.sym).is_array()
        })
        .map(|a| a.sym)
        .collect();
    for (id, sym) in unit.symbols.iter() {
        if sym.common.is_some() && !sym.is_array() {
            out.insert(id);
        }
    }
    out
}

/// Classify every scalar referenced inside the loop with header `header`.
/// `live_after` reports whether a symbol is live after the loop exits
/// (from [`crate::liveness::Liveness::live_after_loop`]).
pub fn classify_scalars(
    unit: &ProgramUnit,
    header: StmtId,
    live_after: &dyn Fn(SymId) -> bool,
) -> HashMap<SymId, ScalarClass> {
    classify_scalars_with(unit, header, live_after, &ConservativeCalls)
}

/// [`classify_scalars`] with interprocedural call effects.
pub fn classify_scalars_with(
    unit: &ProgramUnit,
    header: StmtId,
    live_after: &dyn Fn(SymId) -> bool,
    calls: &dyn CallInfo,
) -> HashMap<SymId, ScalarClass> {
    let d = unit.loop_of(header);
    let mut facts = BodyFacts::default();
    let mut assigned: HashSet<SymId> = HashSet::new();
    // The loop index is assigned by the DO statement itself.
    assigned.insert(d.var);
    walk_block(unit, &d.body, &mut assigned, &mut facts, calls);
    facts.assigned_on_all_paths = assigned;

    let invariant_syms = crate::symbolic::written_in_loop(unit, header);

    let mut out = HashMap::new();
    for &sym in facts.read.union(&facts.written) {
        if unit.symbols.sym(sym).is_array() || unit.symbols.sym(sym).param.is_some() {
            continue;
        }
        if sym == d.var {
            out.insert(sym, ScalarClass::LoopIndex);
            continue;
        }
        let class = if !facts.written.contains(&sym) {
            ScalarClass::ReadOnly
        } else if let Some(op) = reduction_op(unit, &d.body, sym) {
            ScalarClass::Reduction(op)
        } else if let Some(step) = induction_step(unit, &d.body, sym, &invariant_syms) {
            ScalarClass::AuxInduction { step }
        } else if !facts.exposed.contains(&sym) {
            let needs_last = live_after(sym);
            if needs_last && !facts.assigned_on_all_paths.contains(&sym) {
                // The final value is needed but not every path assigns it:
                // privatization would lose the value.
                ScalarClass::Shared
            } else {
                ScalarClass::Private { needs_lastprivate: needs_last }
            }
        } else {
            ScalarClass::Shared
        };
        out.insert(sym, class);
    }
    out
}

/// Structured walk computing exposure and definite assignment.
/// `assigned` is threaded through sequentially; on return it holds the
/// definitely-assigned set at block end.
fn walk_block(
    unit: &ProgramUnit,
    block: &[StmtId],
    assigned: &mut HashSet<SymId>,
    facts: &mut BodyFacts,
    calls: &dyn CallInfo,
) {
    for &sid in block {
        let st = unit.stmt(sid);
        let is_call_stmt = matches!(st.kind, StmtKind::Call { .. });
        // Reads of this statement (subscripts, rhs, conditions, bounds).
        for acc in stmt_accesses(unit, sid) {
            if acc.subs.is_some() {
                continue; // array accesses are the dependence tester's job
            }
            match acc.kind {
                AccessKind::Read => {
                    facts.read.insert(acc.sym);
                    if !assigned.contains(&acc.sym) {
                        facts.exposed.insert(acc.sym);
                    }
                }
                AccessKind::CallArg => {
                    // Call *statements* are refined through CallInfo below;
                    // function references inside expressions stay
                    // conservative.
                    if !is_call_stmt && !unit.symbols.sym(acc.sym).is_array() {
                        facts.read.insert(acc.sym);
                        facts.written.insert(acc.sym);
                        if !assigned.contains(&acc.sym) {
                            facts.exposed.insert(acc.sym);
                        }
                    }
                }
                AccessKind::Write => {}
            }
        }
        match &st.kind {
            StmtKind::Assign { lhs: LValue::Var(s), .. } => {
                facts.written.insert(*s);
                assigned.insert(*s);
            }
            StmtKind::Assign { .. } => {}
            StmtKind::Do(d) => {
                // Inner loop: its body may run zero times, so nothing it
                // assigns is definite after it — walk with a clone. The
                // inner index is assigned by the DO itself.
                facts.written.insert(d.var);
                assigned.insert(d.var);
                let mut inner = assigned.clone();
                walk_block(unit, &d.body, &mut inner, facts, calls);
            }
            StmtKind::If { arms, else_block } => {
                let entry = assigned.clone();
                let mut result: Option<HashSet<SymId>> = None;
                for (_, blk) in arms {
                    let mut a = entry.clone();
                    walk_block(unit, blk, &mut a, facts, calls);
                    result = Some(match result {
                        None => a,
                        Some(r) => r.intersection(&a).copied().collect(),
                    });
                }
                match else_block {
                    Some(blk) => {
                        let mut a = entry.clone();
                        walk_block(unit, blk, &mut a, facts, calls);
                        if let Some(r) = result {
                            *assigned = r.intersection(&a).copied().collect();
                        }
                    }
                    None => {
                        // Fall-through path assigns nothing extra.
                        *assigned = entry;
                    }
                }
            }
            StmtKind::Call { .. } => {
                // Interprocedural effects: refs first (a killed-but-read
                // scalar is still exposed if read before being written in
                // the callee — KILL implies written-on-all-paths, not
                // written-before-read, so exposure uses REF only).
                for s in calls.refs(unit, sid) {
                    facts.read.insert(s);
                    if !assigned.contains(&s) {
                        facts.exposed.insert(s);
                    }
                }
                for s in calls.mods(unit, sid) {
                    facts.written.insert(s);
                }
                for s in calls.kills(unit, sid) {
                    facts.written.insert(s);
                    assigned.insert(s);
                }
            }
            _ => {}
        }
    }
}

/// If every statement referencing `sym` in the body is `sym = sym op e`
/// (with `e` free of `sym`), return the common reduction operator.
fn reduction_op(unit: &ProgramUnit, body: &[StmtId], sym: SymId) -> Option<RedOp> {
    let mut op: Option<RedOp> = None;
    let mut any = false;
    let mut ok = true;
    ped_fortran::visit::for_each_stmt(unit, &body.to_vec(), &mut |sid| {
        if !ok {
            return;
        }
        let touches =
            stmt_accesses(unit, sid).iter().any(|a| a.sym == sym && a.subs.is_none());
        if !touches {
            return;
        }
        any = true;
        match &unit.stmt(sid).kind {
            StmtKind::Assign { lhs: LValue::Var(s), rhs } if *s == sym => {
                match reduction_update(rhs, sym) {
                    Some(this_op) => {
                        if op.is_some() && op != Some(this_op) {
                            ok = false;
                        } else {
                            op = Some(this_op);
                        }
                    }
                    None => ok = false,
                }
            }
            _ => ok = false,
        }
    });
    if ok && any {
        op
    } else {
        None
    }
}

/// Match `rhs` as `sym op e` (commutatively) where `e` is free of `sym`.
fn reduction_update(rhs: &Expr, sym: SymId) -> Option<RedOp> {
    let free_of = |e: &Expr| {
        let mut found = false;
        ped_fortran::visit::walk_expr(e, &mut |x| {
            if matches!(x, Expr::Var(s) if *s == sym) {
                found = true;
            }
        });
        !found
    };
    match rhs {
        Expr::Bin { op, l, r } => {
            let red = match op {
                BinOp::Add => RedOp::Sum,
                BinOp::Sub => RedOp::Sum, // s = s - e accumulates into a sum
                BinOp::Mul => RedOp::Product,
                _ => return None,
            };
            let l_is_sym = matches!(&**l, Expr::Var(s) if *s == sym);
            let r_is_sym = matches!(&**r, Expr::Var(s) if *s == sym);
            if l_is_sym && free_of(r) {
                Some(red)
            } else if r_is_sym && free_of(l) && *op != BinOp::Sub {
                // s = e - s is not a simple reduction.
                Some(red)
            } else {
                None
            }
        }
        Expr::Intrinsic { op, args } if args.len() == 2 => {
            let red = match op {
                ped_fortran::ast::Intrinsic::Min => RedOp::Min,
                ped_fortran::ast::Intrinsic::Max => RedOp::Max,
                _ => return None,
            };
            let a_is_sym = matches!(&args[0], Expr::Var(s) if *s == sym);
            let b_is_sym = matches!(&args[1], Expr::Var(s) if *s == sym);
            if (a_is_sym && free_of(&args[1])) || (b_is_sym && free_of(&args[0])) {
                Some(red)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// If `sym`'s only write in the body is an unconditional top-level
/// `sym = sym ± step` with loop-invariant `step`, and `sym` has other reads,
/// return the signed step expression.
fn induction_step(
    unit: &ProgramUnit,
    body: &[StmtId],
    sym: SymId,
    written_in_loop: &HashSet<SymId>,
) -> Option<Expr> {
    let mut update: Option<Expr> = None;
    let mut writes = 0usize;
    let mut reads_elsewhere = 0usize;
    // Count writes anywhere (nested included) but accept the update only at
    // the top level of the body (unconditional execution).
    ped_fortran::visit::for_each_stmt(unit, &body.to_vec(), &mut |sid| {
        for acc in stmt_accesses(unit, sid) {
            if acc.sym == sym && acc.subs.is_none() && acc.kind.may_write() {
                writes += 1;
            }
        }
    });
    for &sid in body {
        if let StmtKind::Assign { lhs: LValue::Var(s), rhs } = &unit.stmt(sid).kind {
            if *s == sym {
                if let Expr::Bin { op, l, r } = rhs {
                    let l_is_sym = matches!(&**l, Expr::Var(x) if *x == sym);
                    match op {
                        BinOp::Add if l_is_sym => update = Some((**r).clone()),
                        BinOp::Sub if l_is_sym => update = Some(Expr::neg((**r).clone())),
                        BinOp::Add if matches!(&**r, Expr::Var(x) if *x == sym) => {
                            update = Some((**l).clone())
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let step = update?;
    if writes != 1 {
        return None;
    }
    if !crate::symbolic::is_invariant(&step, written_in_loop) {
        return None;
    }
    // Other reads beyond the self-update make it an induction variable used
    // as data (otherwise it is just a running counter ≡ sum reduction).
    ped_fortran::visit::for_each_stmt(unit, &body.to_vec(), &mut |sid| {
        let is_update = matches!(
            &unit.stmt(sid).kind,
            StmtKind::Assign { lhs: LValue::Var(s), .. } if *s == sym
        );
        if is_update {
            return;
        }
        for acc in stmt_accesses(unit, sid) {
            if acc.sym == sym && acc.kind.may_read() {
                reads_elsewhere += 1;
            }
        }
    });
    if reads_elsewhere > 0 {
        Some(step)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn classify(src: &str, var: &str) -> ScalarClass {
        let u = parse_program(src).unwrap().units.remove(0);
        let header = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let cfg = crate::cfg::Cfg::build(&u);
        let live = crate::liveness::Liveness::compute(&u, &cfg);
        let classes =
            classify_scalars(&u, header, &|s| live.live_after_loop(&u, &cfg, header, s));
        classes[&u.symbols.lookup(var).unwrap()].clone()
    }

    #[test]
    fn killed_scalar_is_private() {
        let c = classify(
            "program t\nreal a(10), b(10)\ndo i = 1, 10\nt1 = b(i) * 2.0\na(i) = t1\nenddo\nend\n",
            "t1",
        );
        assert_eq!(c, ScalarClass::Private { needs_lastprivate: false });
    }

    #[test]
    fn exposed_scalar_is_shared() {
        let c = classify(
            "program t\nreal a(10)\ndo i = 1, 10\na(i) = t1\nt1 = a(i) + 1.0\nenddo\nend\n",
            "t1",
        );
        assert_eq!(c, ScalarClass::Shared);
    }

    #[test]
    fn sum_reduction_recognized() {
        let c = classify(
            "program t\nreal a(10)\ns = 0.0\ndo i = 1, 10\ns = s + a(i)\nenddo\nprint *, s\nend\n",
            "s",
        );
        assert_eq!(c, ScalarClass::Reduction(RedOp::Sum));
    }

    #[test]
    fn max_reduction_recognized() {
        let c = classify(
            "program t\nreal a(10)\nm = a(1)\ndo i = 1, 10\nm = max(m, a(i))\nenddo\nprint *, m\nend\n",
            "m",
        );
        assert_eq!(c, ScalarClass::Reduction(RedOp::Max));
    }

    #[test]
    fn reduction_with_other_use_is_not_reduction() {
        let c = classify(
            "program t\nreal a(10)\ns = 0.0\ndo i = 1, 10\ns = s + a(i)\na(i) = s\nenddo\nend\n",
            "s",
        );
        assert_eq!(c, ScalarClass::Shared);
    }

    #[test]
    fn aux_induction_recognized() {
        let c = classify(
            "program t\nreal a(20)\nk = 0\ndo i = 1, 10\nk = k + 2\na(k) = 1.0\nenddo\nend\n",
            "k",
        );
        assert_eq!(c, ScalarClass::AuxInduction { step: Expr::Int(2) });
    }

    #[test]
    fn read_only_scalar() {
        let c = classify(
            "program t\nreal a(10)\nx = 3.0\ndo i = 1, 10\na(i) = x\nenddo\nend\n",
            "x",
        );
        assert_eq!(c, ScalarClass::ReadOnly);
    }

    #[test]
    fn loop_index_classified() {
        let c = classify("program t\nreal a(10)\ndo i = 1, 10\na(i) = 0.0\nenddo\nend\n", "i");
        assert_eq!(c, ScalarClass::LoopIndex);
    }

    #[test]
    fn conditional_write_with_liveout_is_shared() {
        // t is written only when the condition holds but read after the
        // loop: privatization with lastprivate would be wrong.
        let c = classify(
            "program t\nreal a(10)\ndo i = 1, 10\nif (a(i) .gt. 0.0) then\nt1 = a(i)\nendif\n\
             enddo\nprint *, t1\nend\n",
            "t1",
        );
        assert_eq!(c, ScalarClass::Shared);
    }

    #[test]
    fn lastprivate_when_live_after() {
        let c = classify(
            "program t\nreal a(10)\ndo i = 1, 10\nt1 = a(i)\na(i) = t1 * 2.0\nenddo\n\
             print *, t1\nend\n",
            "t1",
        );
        assert_eq!(c, ScalarClass::Private { needs_lastprivate: true });
    }

    #[test]
    fn conditional_private_without_liveout_ok() {
        let c = classify(
            "program t\nreal a(10)\ndo i = 1, 10\nif (a(i) .gt. 0.0) then\nt1 = a(i)\n\
             a(i) = t1 + 1.0\nendif\nenddo\nend\n",
            "t1",
        );
        assert_eq!(c, ScalarClass::Private { needs_lastprivate: false });
    }
}
