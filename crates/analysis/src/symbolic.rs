//! Symbolic analysis: canonical affine forms.
//!
//! "Symbolic terms in subscript expressions are a key limiting factor in
//! precise dependence analysis" — the dependence tests consume subscripts
//! normalized to the affine form `c0 + Σ ci·vi`, where each `vi` is a loop
//! index or a symbolic unknown (an unanalyzable scalar such as an `n` read
//! from input). Keeping symbolic terms *as terms* (instead of giving up)
//! lets the SIV tests cancel equal symbolic parts — the paper's
//! `a(jplus + i) vs a(jplus + i - 1)` style subscripts — and lets user
//! assertions bind them later.

use ped_fortran::visit::{for_each_stmt, stmt_accesses, walk_expr};
use ped_fortran::{Expr, ProgramUnit, StmtId, SymId, UnOp};
use std::collections::{BTreeMap, HashSet};

/// A canonical affine expression: `konst + Σ terms[v]·v`.
///
/// Variables are per-unit [`SymId`]s; which of them are loop indices vs
/// free symbolics is the caller's business.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Affine {
    /// Coefficients per variable; zero coefficients are never stored.
    pub terms: BTreeMap<SymId, i64>,
    /// Constant part.
    pub konst: i64,
}

impl Affine {
    /// The constant `k`.
    pub fn constant(k: i64) -> Affine {
        Affine { terms: BTreeMap::new(), konst: k }
    }

    /// The single variable `v`.
    pub fn var(v: SymId) -> Affine {
        let mut t = BTreeMap::new();
        t.insert(v, 1);
        Affine { terms: t, konst: 0 }
    }

    /// Coefficient of `v` (0 when absent).
    pub fn coeff(&self, v: SymId) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// True if no variables appear.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// `self + other`.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut out = self.clone();
        out.konst += other.konst;
        for (v, c) in &other.terms {
            let e = out.terms.entry(*v).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(v);
            }
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// `self * k`.
    pub fn scale(&self, k: i64) -> Affine {
        if k == 0 {
            return Affine::constant(0);
        }
        Affine {
            terms: self.terms.iter().map(|(v, c)| (*v, c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// Remove `v`, returning its coefficient.
    pub fn take(&mut self, v: SymId) -> i64 {
        self.terms.remove(&v).unwrap_or(0)
    }

    /// Variables that appear.
    pub fn vars(&self) -> impl Iterator<Item = SymId> + '_ {
        self.terms.keys().copied()
    }

    /// Restrict to the given variables; everything else must be absent for
    /// the result to be `Some` — used to check that a subscript involves
    /// only loop indices.
    pub fn only_vars(&self, allowed: &HashSet<SymId>) -> bool {
        self.terms.keys().all(|v| allowed.contains(v))
    }
}

/// Convert an expression to affine form.
///
/// `resolve` supplies integer values for symbols known constant at the point
/// of use (PARAMETER, constant propagation, interprocedural constants, user
/// assertions) — this is where "incorporating user assertions in analysis"
/// plugs in. Returns `None` for non-affine expressions (products of
/// variables, index-array subscripts `a(ind(i))`, `MOD`, user calls …).
pub fn to_affine(e: &Expr, resolve: &dyn Fn(SymId) -> Option<i64>) -> Option<Affine> {
    match e {
        Expr::Int(v) => Some(Affine::constant(*v)),
        Expr::Var(s) => match resolve(*s) {
            Some(v) => Some(Affine::constant(v)),
            None => Some(Affine::var(*s)),
        },
        Expr::Un { op: UnOp::Neg, e } => Some(to_affine(e, resolve)?.scale(-1)),
        Expr::Bin { op, l, r } => {
            use ped_fortran::BinOp::*;
            match op {
                Add => Some(to_affine(l, resolve)?.add(&to_affine(r, resolve)?)),
                Sub => Some(to_affine(l, resolve)?.sub(&to_affine(r, resolve)?)),
                Mul => {
                    let la = to_affine(l, resolve)?;
                    let ra = to_affine(r, resolve)?;
                    if la.is_const() {
                        Some(ra.scale(la.konst))
                    } else if ra.is_const() {
                        Some(la.scale(ra.konst))
                    } else {
                        None
                    }
                }
                Div => {
                    // Only exact constant division stays affine.
                    let la = to_affine(l, resolve)?;
                    let ra = to_affine(r, resolve)?;
                    if ra.is_const() && ra.konst != 0 {
                        let d = ra.konst;
                        if la.konst % d == 0 && la.terms.values().all(|c| c % d == 0) {
                            return Some(Affine {
                                terms: la.terms.iter().map(|(v, c)| (*v, c / d)).collect(),
                                konst: la.konst / d,
                            });
                        }
                    }
                    None
                }
                Pow => {
                    let ra = to_affine(r, resolve)?;
                    let la = to_affine(l, resolve)?;
                    if la.is_const() && ra.is_const() && ra.konst >= 0 {
                        let v = la.konst.checked_pow(u32::try_from(ra.konst).ok()?)?;
                        Some(Affine::constant(v))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// All symbols that may be written anywhere inside a loop body (including by
/// calls, conservatively). Used for loop-invariance tests.
pub fn written_in_loop(unit: &ProgramUnit, header: StmtId) -> HashSet<SymId> {
    let body = &unit.loop_of(header).body;
    let mut written = HashSet::new();
    written.insert(unit.loop_of(header).var);
    for_each_stmt(unit, body, &mut |sid| {
        for acc in stmt_accesses(unit, sid) {
            if acc.kind.may_write() {
                written.insert(acc.sym);
            }
            if acc.kind == ped_fortran::visit::AccessKind::CallArg {
                // A call may also write COMMON members.
                for (id, sym) in unit.symbols.iter() {
                    if sym.common.is_some() {
                        written.insert(id);
                    }
                }
            }
        }
    });
    written
}

/// Is `e` invariant with respect to a set of loop-written symbols?
/// User function references are never invariant (they may have side
/// effects); array references are invariant only if the array itself is not
/// written and their subscripts are invariant.
pub fn is_invariant(e: &Expr, written: &HashSet<SymId>) -> bool {
    let mut ok = true;
    walk_expr(e, &mut |sub| match sub {
        Expr::Var(s) if written.contains(s) => ok = false,
        Expr::ArrayRef { sym, .. } if written.contains(sym) => ok = false,
        Expr::Call { .. } => ok = false,
        _ => {}
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::builder::{ex, UnitBuilder};

    fn none(_: SymId) -> Option<i64> {
        None
    }

    #[test]
    fn linear_combination() {
        let mut b = UnitBuilder::main("t");
        let i = b.int_scalar("i");
        let j = b.int_scalar("j");
        // 2*i - 3*j + 7
        let e = ex::add(
            ex::sub(ex::mul(ex::int(2), ex::var(i)), ex::mul(ex::int(3), ex::var(j))),
            ex::int(7),
        );
        let a = to_affine(&e, &none).unwrap();
        assert_eq!(a.coeff(i), 2);
        assert_eq!(a.coeff(j), -3);
        assert_eq!(a.konst, 7);
    }

    #[test]
    fn cancellation_removes_terms() {
        let mut b = UnitBuilder::main("t");
        let i = b.int_scalar("i");
        // (i + 1) - i  =>  1
        let e = ex::sub(ex::add(ex::var(i), ex::int(1)), ex::var(i));
        let a = to_affine(&e, &none).unwrap();
        assert!(a.is_const());
        assert_eq!(a.konst, 1);
    }

    #[test]
    fn product_of_variables_is_not_affine() {
        let mut b = UnitBuilder::main("t");
        let i = b.int_scalar("i");
        let j = b.int_scalar("j");
        assert!(to_affine(&ex::mul(ex::var(i), ex::var(j)), &none).is_none());
    }

    #[test]
    fn resolver_folds_symbolics() {
        let mut b = UnitBuilder::main("t");
        let n = b.int_scalar("n");
        let i = b.int_scalar("i");
        // n*i with n = 4 resolves to 4i.
        let e = ex::mul(ex::var(n), ex::var(i));
        let resolve = move |s: SymId| if s == n { Some(4) } else { None };
        let a = to_affine(&e, &resolve).unwrap();
        assert_eq!(a.coeff(i), 4);
    }

    #[test]
    fn exact_division_stays_affine() {
        let mut b = UnitBuilder::main("t");
        let i = b.int_scalar("i");
        let e = ex::div(ex::mul(ex::int(4), ex::var(i)), ex::int(2));
        let a = to_affine(&e, &none).unwrap();
        assert_eq!(a.coeff(i), 2);
        // Inexact division is rejected.
        let e2 = ex::div(ex::mul(ex::int(3), ex::var(i)), ex::int(2));
        assert!(to_affine(&e2, &none).is_none());
    }

    #[test]
    fn index_array_subscript_is_not_affine() {
        let mut b = UnitBuilder::main("t");
        let ind = b.int_array("ind", &[10]);
        let i = b.int_scalar("i");
        let e = ex::idx(ind, vec![ex::var(i)]);
        assert!(to_affine(&e, &none).is_none());
    }

    #[test]
    fn invariance() {
        let mut b = UnitBuilder::main("t");
        let i = b.int_scalar("i");
        let n = b.int_scalar("n");
        let written: HashSet<SymId> = [i].into_iter().collect();
        assert!(is_invariant(&ex::var(n), &written));
        assert!(!is_invariant(&ex::add(ex::var(n), ex::var(i)), &written));
        assert!(!is_invariant(&Expr::Call { name: "f".into(), args: vec![] }, &written));
    }

    #[test]
    fn affine_algebra() {
        let v = SymId(0);
        let a = Affine::var(v).scale(3);
        let b2 = Affine::var(v).scale(-3).add(&Affine::constant(5));
        let s = a.add(&b2);
        assert!(s.is_const());
        assert_eq!(s.konst, 5);
    }
}
