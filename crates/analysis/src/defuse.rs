//! Reaching definitions and def-use chains.
//!
//! "Def-use chains expose dependences among scalar variables as well as
//! linking all accesses to each array for dependence testing" — this module
//! computes exactly that linkage: every definition site per symbol, which
//! definitions reach each statement, and the def→use edges.

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitSet, Direction, Meet, Solution};
use ped_fortran::visit::{stmt_accesses, stmts_recursive, AccessKind};
use ped_fortran::{Expr, ProgramUnit, StmtId, SymId};
use std::collections::HashMap;

/// One definition site.
#[derive(Debug, Clone, PartialEq)]
pub struct Def {
    /// Dense index of this def.
    pub id: usize,
    /// Statement performing the write.
    pub stmt: StmtId,
    /// Symbol written.
    pub sym: SymId,
    /// Subscripts when an array element is written.
    pub subs: Option<Vec<Expr>>,
    /// True if the write definitely happens and overwrites the whole value
    /// (a scalar assignment). Array-element writes and call-site argument
    /// writes are *not* certain, so they never kill other defs.
    pub certain: bool,
}

/// A def→use edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuEdge {
    /// Definition index into [`DefUse::defs`].
    pub def: usize,
    /// Statement using the value.
    pub use_stmt: StmtId,
}

/// Reaching definitions for one unit.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// All definition sites, in pre-order statement order.
    pub defs: Vec<Def>,
    /// Def indices per symbol.
    pub defs_of_sym: HashMap<SymId, Vec<usize>>,
    /// All def→use edges.
    pub edges: Vec<DuEdge>,
    reach: Solution,
}

impl DefUse {
    /// Compute reaching definitions and def-use chains.
    pub fn compute(unit: &ProgramUnit, cfg: &Cfg) -> DefUse {
        // Enumerate defs.
        let mut defs: Vec<Def> = Vec::new();
        let mut defs_of_sym: HashMap<SymId, Vec<usize>> = HashMap::new();
        let stmts = stmts_recursive(unit, &unit.body);
        for &sid in &stmts {
            for acc in stmt_accesses(unit, sid) {
                if acc.kind.may_write() {
                    let id = defs.len();
                    let certain = acc.kind == AccessKind::Write && acc.subs.is_none();
                    defs_of_sym.entry(acc.sym).or_default().push(id);
                    defs.push(Def { id, stmt: sid, sym: acc.sym, subs: acc.subs, certain });
                }
            }
        }

        // gen/kill per CFG node.
        let nbits = defs.len().max(1);
        let mut gen = vec![BitSet::new(nbits); cfg.len()];
        let mut kill = vec![BitSet::new(nbits); cfg.len()];
        for d in &defs {
            let Some(node) = cfg.node_opt(d.stmt) else { continue };
            gen[node.index()].insert(d.id);
            if d.certain {
                for &other in &defs_of_sym[&d.sym] {
                    if other != d.id {
                        kill[node.index()].insert(other);
                    }
                }
            }
        }
        let boundary = BitSet::new(nbits);
        let reach = solve(cfg, &gen, &kill, Direction::Forward, Meet::Union, &boundary);

        // Def-use edges: for each statement's reads, the reaching defs of
        // that symbol at statement entry.
        let mut edges = Vec::new();
        for &sid in &stmts {
            let Some(node) = cfg.node_opt(sid) else { continue };
            let inn = &reach.inn[node.index()];
            for acc in stmt_accesses(unit, sid) {
                if !acc.kind.may_read() {
                    continue;
                }
                if let Some(cands) = defs_of_sym.get(&acc.sym) {
                    for &d in cands {
                        if inn.contains(d) {
                            edges.push(DuEdge { def: d, use_stmt: sid });
                        }
                    }
                }
            }
        }
        edges.sort_by_key(|e| (e.def, e.use_stmt));
        edges.dedup();
        DefUse { defs, defs_of_sym, edges, reach }
    }

    /// Defs of `sym` reaching the entry of `stmt`.
    pub fn reaching(&self, cfg: &Cfg, stmt: StmtId, sym: SymId) -> Vec<&Def> {
        let Some(node) = cfg.node_opt(stmt) else { return Vec::new() };
        let inn = &self.reach.inn[node.index()];
        self.defs_of_sym
            .get(&sym)
            .into_iter()
            .flatten()
            .filter(|&&d| inn.contains(d))
            .map(|&d| &self.defs[d])
            .collect()
    }

    /// Uses reached by the given def.
    pub fn uses_of(&self, def: usize) -> impl Iterator<Item = StmtId> + '_ {
        self.edges.iter().filter(move |e| e.def == def).map(|e| e.use_stmt)
    }

    /// All defs at a statement.
    pub fn defs_at(&self, stmt: StmtId) -> impl Iterator<Item = &Def> {
        self.defs.iter().filter(move |d| d.stmt == stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn setup(src: &str) -> (ProgramUnit, Cfg, DefUse) {
        let u = parse_program(src).unwrap().units.remove(0);
        let cfg = Cfg::build(&u);
        let du = DefUse::compute(&u, &cfg);
        (u, cfg, du)
    }

    #[test]
    fn straight_line_chain() {
        let (u, cfg, du) = setup("program t\nx = 1.0\ny = x + 1.0\nend\n");
        let x = u.symbols.lookup("x").unwrap();
        let reach = du.reaching(&cfg, u.body[1], x);
        assert_eq!(reach.len(), 1);
        assert_eq!(reach[0].stmt, u.body[0]);
        assert!(reach[0].certain);
    }

    #[test]
    fn scalar_redefinition_kills() {
        let (u, cfg, du) = setup("program t\nx = 1.0\nx = 2.0\ny = x\nend\n");
        let x = u.symbols.lookup("x").unwrap();
        let reach = du.reaching(&cfg, u.body[2], x);
        assert_eq!(reach.len(), 1, "first def must be killed");
        assert_eq!(reach[0].stmt, u.body[1]);
    }

    #[test]
    fn branch_merges_defs() {
        let (u, cfg, du) = setup(
            "program t\nif (c .gt. 0.0) then\nx = 1.0\nelse\nx = 2.0\nendif\ny = x\nend\n",
        );
        let x = u.symbols.lookup("x").unwrap();
        let reach = du.reaching(&cfg, u.body[1], x);
        assert_eq!(reach.len(), 2);
    }

    #[test]
    fn array_writes_do_not_kill() {
        let (u, cfg, du) = setup(
            "program t\nreal a(10)\na(1) = 1.0\na(2) = 2.0\nx = a(1)\nend\n",
        );
        let a = u.symbols.lookup("a").unwrap();
        let reach = du.reaching(&cfg, u.body[2], a);
        assert_eq!(reach.len(), 2, "element writes may not kill each other");
        assert!(reach.iter().all(|d| !d.certain));
    }

    #[test]
    fn loop_carried_def_reaches_use() {
        let (u, cfg, du) = setup(
            "program t\ns = 0.0\ndo i = 1, 10\ns = s + 1.0\nenddo\nend\n",
        );
        let s = u.symbols.lookup("s").unwrap();
        let update = {
            let d = u.loop_of(u.body[1]);
            d.body[0]
        };
        let reach = du.reaching(&cfg, update, s);
        // Both the init and the update itself (around the back edge) reach.
        assert_eq!(reach.len(), 2);
        assert!(du.uses_of(reach.iter().find(|d| d.stmt == update).unwrap().id)
            .any(|use_stmt| use_stmt == update));
    }

    #[test]
    fn call_def_is_uncertain() {
        let (u, cfg, du) = setup("program t\nx = 1.0\ncall f(x)\ny = x\nend\n");
        let x = u.symbols.lookup("x").unwrap();
        let reach = du.reaching(&cfg, u.body[2], x);
        // Call may or may not write x, so both defs reach.
        assert_eq!(reach.len(), 2);
    }
}
