//! Postdominators and control dependence.
//!
//! "Control dependences explicitly represent how control decisions affect
//! statement execution" (Ferrante, Ottenstein & Warren). Computed generally
//! from the CFG: postdominator sets by iteration, then the standard edge
//! rule — for each edge `u→v` where `v` does not postdominate `u`, every
//! node from `v` up the postdominator tree to (but excluding) `ipdom(u)` is
//! control dependent on `u`.

use crate::cfg::{Cfg, NodeId};
use crate::dataflow::BitSet;
use ped_fortran::StmtId;
use std::collections::HashMap;

/// Control dependence relation over statements of one unit.
#[derive(Debug, Clone)]
pub struct ControlDeps {
    /// `(controller, dependent)` pairs, deduplicated.
    pub pairs: Vec<(StmtId, StmtId)>,
    controllers: HashMap<StmtId, Vec<StmtId>>,
}

impl ControlDeps {
    /// The statements controlling `s` (branch/loop headers it depends on).
    pub fn controllers_of(&self, s: StmtId) -> &[StmtId] {
        self.controllers.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Compute control dependence from a CFG.
    pub fn compute(cfg: &Cfg) -> ControlDeps {
        let pdom = postdominators(cfg);
        let ipdom = immediate_postdominators(cfg, &pdom);

        let mut pairs = Vec::new();
        for u in 0..cfg.len() {
            let un = NodeId(u as u32);
            for &v in &cfg.succs[u] {
                if v.index() != u && pdom[u].contains(v.index()) {
                    continue; // v postdominates u: not a decision edge
                }
                // Walk v up the postdominator tree until ipdom(u).
                let stop = ipdom[u];
                let mut cur = Some(v);
                while let Some(c) = cur {
                    if Some(c) == stop {
                        break;
                    }
                    if let (Some(cs), Some(us)) = (cfg.stmt[c.index()], cfg.stmt[un.index()]) {
                        if cs != us {
                            pairs.push((us, cs));
                        } else {
                            // A node can be control dependent on itself
                            // (loop headers); record it so loop-carried
                            // control dependence is visible.
                            pairs.push((us, cs));
                        }
                    }
                    cur = ipdom[c.index()];
                    if cur == Some(c) {
                        break;
                    }
                }
            }
        }
        pairs.sort();
        pairs.dedup();
        let mut controllers: HashMap<StmtId, Vec<StmtId>> = HashMap::new();
        for &(c, d) in &pairs {
            controllers.entry(d).or_default().push(c);
        }
        ControlDeps { pairs, controllers }
    }
}

/// Postdominator sets: `pdom[n]` contains `m` iff `m` postdominates `n`.
pub fn postdominators(cfg: &Cfg) -> Vec<BitSet> {
    let n = cfg.len();
    let mut pdom: Vec<BitSet> = Vec::with_capacity(n);
    for i in 0..n {
        let mut b = BitSet::new(n);
        if i == cfg.exit.index() {
            b.insert(i);
        } else {
            b.fill();
        }
        pdom.push(b);
    }
    let mut order = cfg.rpo();
    order.reverse(); // approximate reverse CFG RPO
    let mut changed = true;
    let mut scratch = BitSet::new(n);
    while changed {
        changed = false;
        for &node in &order {
            let i = node.index();
            if i == cfg.exit.index() {
                continue;
            }
            if cfg.succs[i].is_empty() {
                continue; // unreachable-to-exit node keeps ⊤
            }
            scratch.fill();
            for &s in &cfg.succs[i] {
                scratch.intersect_with(&pdom[s.index()]);
            }
            scratch.insert(i);
            if scratch != pdom[i] {
                std::mem::swap(&mut pdom[i], &mut scratch);
                changed = true;
            }
        }
    }
    pdom
}

/// Immediate postdominators derived from the postdominator sets.
pub fn immediate_postdominators(cfg: &Cfg, pdom: &[BitSet]) -> Vec<Option<NodeId>> {
    let n = cfg.len();
    let mut ipdom = vec![None; n];
    for i in 0..n {
        if i == cfg.exit.index() {
            continue;
        }
        // The immediate postdominator is the closest strict postdominator:
        // the one that every other strict postdominator postdominates.
        let strict: Vec<usize> = pdom[i].iter().filter(|&m| m != i).collect();
        'cand: for &c in &strict {
            for &o in &strict {
                if o != c && !pdom[c].contains(o) {
                    continue 'cand;
                }
            }
            ipdom[i] = Some(NodeId(c as u32));
            break;
        }
    }
    ipdom
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::{parse_program, ProgramUnit, StmtKind};

    fn setup(src: &str) -> (ProgramUnit, Cfg, ControlDeps) {
        let u = parse_program(src).unwrap().units.remove(0);
        let cfg = Cfg::build(&u);
        let cd = ControlDeps::compute(&cfg);
        (u, cfg, cd)
    }

    #[test]
    fn if_controls_its_arm() {
        let (u, _, cd) = setup(
            "program t\nif (x .gt. 0.0) then\ny = 1.0\nendif\nz = 2.0\nend\n",
        );
        let iff = u.body[0];
        let inner = match &u.stmt(iff).kind {
            StmtKind::If { arms, .. } => arms[0].1[0],
            _ => unreachable!(),
        };
        assert!(cd.pairs.contains(&(iff, inner)));
        // z after the IF is not controlled by it.
        let z = u.body[1];
        assert!(!cd.pairs.contains(&(iff, z)));
    }

    #[test]
    fn else_arm_also_controlled() {
        let (u, _, cd) = setup(
            "program t\nif (x .gt. 0.0) then\ny = 1.0\nelse\ny = 2.0\nendif\nend\n",
        );
        let iff = u.body[0];
        let (then_s, else_s) = match &u.stmt(iff).kind {
            StmtKind::If { arms, else_block } => {
                (arms[0].1[0], else_block.as_ref().unwrap()[0])
            }
            _ => unreachable!(),
        };
        assert!(cd.pairs.contains(&(iff, then_s)));
        assert!(cd.pairs.contains(&(iff, else_s)));
    }

    #[test]
    fn loop_controls_body_and_itself() {
        let (u, _, cd) = setup("program t\nreal a(5)\ndo i = 1, 5\na(i) = 0.0\nenddo\nend\n");
        let hdr = u.body[0];
        let body = u.loop_of(hdr).body[0];
        assert!(cd.pairs.contains(&(hdr, body)));
        assert!(cd.pairs.contains(&(hdr, hdr)), "loop header controls its own repetition");
    }

    #[test]
    fn nested_if_has_two_controllers() {
        let (u, _, cd) = setup(
            "program t\nif (a .gt. 0.0) then\nif (b .gt. 0.0) then\nx = 1.0\nendif\nendif\nend\n",
        );
        let outer = u.body[0];
        let inner = match &u.stmt(outer).kind {
            StmtKind::If { arms, .. } => arms[0].1[0],
            _ => unreachable!(),
        };
        let x = match &u.stmt(inner).kind {
            StmtKind::If { arms, .. } => arms[0].1[0],
            _ => unreachable!(),
        };
        assert!(cd.controllers_of(x).contains(&inner));
        assert!(cd.controllers_of(inner).contains(&outer));
    }

    #[test]
    fn straight_line_has_no_control_deps() {
        let (_, _, cd) = setup("program t\nx = 1.0\ny = 2.0\nend\n");
        assert!(cd.pairs.is_empty());
    }
}
