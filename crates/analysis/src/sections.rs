//! Bounded regular sections: array kill / exposed-read analysis.
//!
//! The paper lists "flow-insensitive MOD/REF, flow-sensitive KILL, bounded
//! regular sections" among Ped's analyses. This module supplies the section
//! domain and the flow-sensitive array walk the scalar passes already have
//! for scalars: per-dimension `[lo:hi:stride]` triples whose bounds are
//! canonical [`Affine`] forms, a ⊤/⊥ lattice per dimension, and two unions —
//! an over-approximate hull (`union_may`, for exposed reads and MOD/REF) and
//! an under-approximate merge (`union_must`, for KILL).
//!
//! The product of the walk is, per array and per loop iteration: the section
//! *definitely overwritten before any use* (KILL) and the section *possibly
//! read before being overwritten* (exposed). `exposed = ⊥` means every read
//! of the array in an iteration is preceded by a covering same-iteration
//! write — there is no cross-iteration flow, so carried true dependences on
//! the array can be dropped, and if the array is also dead after the loop it
//! is privatizable (the array analogue of the scalar `Private` class).

use crate::scalars::CallInfo;
use crate::symbolic::{to_affine, Affine};
use ped_fortran::visit::{stmt_accesses, AccessKind};
use ped_fortran::{Expr, LValue, ProgramUnit, StmtId, StmtKind, SymId};
use std::collections::{HashMap, HashSet};

/// One dimension's extent: `lo:hi:stride` with affine endpoints.
/// Empty iff `hi < lo` under any binding of the symbols — emptiness is
/// *representable*, which is what makes symbolic coverage zero-trip safe:
/// `[1:n]` covers `[1:n]` even when `n = 0`, because both are empty together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecRange {
    /// Inclusive lower bound.
    pub lo: Affine,
    /// Inclusive upper bound.
    pub hi: Affine,
    /// Element stride (≥ 1); 1 means dense.
    pub stride: i64,
}

impl SecRange {
    /// The single element `e`.
    pub fn point(e: Affine) -> SecRange {
        SecRange { lo: e.clone(), hi: e, stride: 1 }
    }

    /// Dense range `lo:hi`.
    pub fn dense(lo: Affine, hi: Affine) -> SecRange {
        SecRange { lo, hi, stride: 1 }
    }

    fn is_point(&self) -> bool {
        self.lo == self.hi
    }
}

/// One dimension of a section: a bounded range or ⊤ (unknown extent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecDim {
    /// Unknown: the subscript was non-affine, loop-variant, or symbolic in a
    /// way the expansion could not bound.
    Top,
    /// A bounded regular range.
    Range(SecRange),
}

/// A bounded regular section over one array: ⊥ (no elements) or a product of
/// per-dimension extents. `Dims` with every dimension ⊤ is the array-⊤.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ArraySection {
    /// No elements.
    #[default]
    Bottom,
    /// Rectangular product of per-dimension extents.
    Dims(Vec<SecDim>),
}

/// `a - b` when the difference is a known constant.
fn const_diff(a: &Affine, b: &Affine) -> Option<i64> {
    let d = a.sub(b);
    if d.is_const() {
        Some(d.konst)
    } else {
        None
    }
}

/// Substitute `rep` for `v` in `a`.
fn subst(a: &Affine, v: SymId, rep: &Affine) -> Affine {
    let mut out = a.clone();
    let c = out.take(v);
    if c == 0 {
        return out;
    }
    out.add(&rep.scale(c))
}

fn dim_union_may(a: &SecDim, b: &SecDim) -> SecDim {
    match (a, b) {
        (SecDim::Top, _) | (_, SecDim::Top) => SecDim::Top,
        (SecDim::Range(x), SecDim::Range(y)) => {
            if x == y {
                return a.clone();
            }
            match (const_diff(&y.lo, &x.lo), const_diff(&y.hi, &x.hi)) {
                (Some(dl), Some(dh)) => {
                    let lo = if dl >= 0 { x.lo.clone() } else { y.lo.clone() };
                    let hi = if dh >= 0 { y.hi.clone() } else { x.hi.clone() };
                    // Strides survive the hull only when both sides agree
                    // and their phases are congruent.
                    let stride = if x.stride == y.stride && dl % x.stride == 0 {
                        x.stride
                    } else {
                        1
                    };
                    SecDim::Range(SecRange { lo, hi, stride })
                }
                // Incomparable symbolic bounds: give up to ⊤.
                _ => SecDim::Top,
            }
        }
    }
}

impl ArraySection {
    /// The all-⊤ section of the given rank.
    pub fn top(rank: usize) -> ArraySection {
        ArraySection::Dims(vec![SecDim::Top; rank])
    }

    /// True iff no elements.
    pub fn is_bottom(&self) -> bool {
        matches!(self, ArraySection::Bottom)
    }

    /// True iff any dimension is ⊤.
    pub fn has_top(&self) -> bool {
        match self {
            ArraySection::Bottom => false,
            ArraySection::Dims(ds) => ds.iter().any(|d| matches!(d, SecDim::Top)),
        }
    }

    /// Over-approximate union (may-information: exposed reads, MOD/REF).
    /// Per-dimension hull; incomparable symbolic bounds go to ⊤.
    pub fn union_may(&self, other: &ArraySection) -> ArraySection {
        match (self, other) {
            (ArraySection::Bottom, _) => other.clone(),
            (_, ArraySection::Bottom) => self.clone(),
            (ArraySection::Dims(a), ArraySection::Dims(b)) => {
                if a.len() != b.len() {
                    return ArraySection::top(a.len().max(b.len()));
                }
                ArraySection::Dims(
                    a.iter().zip(b).map(|(x, y)| dim_union_may(x, y)).collect(),
                )
            }
        }
    }

    /// Under-approximate union (must-information: KILL). The result must be
    /// a subset of the true union, so two sections merge only when the union
    /// is provably a rectangle: all dimensions structurally equal except at
    /// most one, whose dense ranges provably overlap or are adjacent.
    /// Otherwise the side that covers the other wins, else `self` is kept.
    pub fn union_must(&self, other: &ArraySection) -> ArraySection {
        match (self, other) {
            (ArraySection::Bottom, _) => other.clone(),
            (_, ArraySection::Bottom) => self.clone(),
            (ArraySection::Dims(a), ArraySection::Dims(b)) => {
                if a.len() == b.len() {
                    let mut diff = None;
                    let mut multi = false;
                    for i in 0..a.len() {
                        if a[i] != b[i] {
                            if diff.is_some() {
                                multi = true;
                                break;
                            }
                            diff = Some(i);
                        }
                    }
                    if !multi {
                        match diff {
                            None => return self.clone(),
                            Some(i) => {
                                if let (SecDim::Range(x), SecDim::Range(y)) = (&a[i], &b[i]) {
                                    if let Some(m) = must_merge_dense(x, y) {
                                        let mut dims = a.clone();
                                        dims[i] = SecDim::Range(m);
                                        return ArraySection::Dims(dims);
                                    }
                                }
                            }
                        }
                    }
                }
                if self.covers(other, None) {
                    self.clone()
                } else if other.covers(self, None) {
                    other.clone()
                } else {
                    self.clone()
                }
            }
        }
    }

    /// Does `self` (a KILL section) cover every element `read` may touch?
    /// A ⊤ read dimension is covered only when the kill spans the declared
    /// extent (`decl`, resolved bounds per dimension). Zero-trip safe:
    /// structural equality covers even symbolic ranges, because both sides
    /// are empty under exactly the same bindings.
    pub fn covers(&self, read: &ArraySection, decl: Option<&[(i64, i64)]>) -> bool {
        match (read, self) {
            (ArraySection::Bottom, _) => true,
            (_, ArraySection::Bottom) => false,
            (ArraySection::Dims(r), ArraySection::Dims(k)) => {
                r.len() == k.len()
                    && r.iter().zip(k).enumerate().all(|(i, (rd, kd))| {
                        dim_covers(kd, rd, decl.and_then(|d| d.get(i).copied()))
                    })
            }
        }
    }

    /// Render with symbol names for diagnostics, e.g. `[1:32]` or
    /// `[1:jmax][k:k]` or `⊤` / `⊥`.
    pub fn render(&self, unit: &ProgramUnit) -> String {
        match self {
            ArraySection::Bottom => "⊥".into(),
            ArraySection::Dims(ds) => ds
                .iter()
                .map(|d| match d {
                    SecDim::Top => "[⊤]".into(),
                    SecDim::Range(r) => {
                        let s = if r.stride == 1 {
                            String::new()
                        } else {
                            format!(":{}", r.stride)
                        };
                        format!("[{}:{}{}]", affine_str(&r.lo, unit), affine_str(&r.hi, unit), s)
                    }
                })
                .collect::<Vec<_>>()
                .join(""),
        }
    }

    /// Over-approximate expansion over loop variable `v` ranging from `lo`
    /// by constant `step` to `hi`: the hull of the section instances across
    /// all iterations.
    pub fn expand_may(&self, v: SymId, lo: &Affine, hi: &Affine, step: i64) -> ArraySection {
        let dims = match self {
            ArraySection::Bottom => return ArraySection::Bottom,
            ArraySection::Dims(ds) => ds,
        };
        let (vmin, vmax) = if step > 0 { (lo, hi) } else { (hi, lo) };
        ArraySection::Dims(
            dims.iter()
                .map(|d| match d {
                    SecDim::Top => SecDim::Top,
                    SecDim::Range(r) => {
                        let cl = r.lo.coeff(v);
                        let ch = r.hi.coeff(v);
                        if cl == 0 && ch == 0 {
                            return d.clone();
                        }
                        let nlo =
                            if cl >= 0 { subst(&r.lo, v, vmin) } else { subst(&r.lo, v, vmax) };
                        let nhi =
                            if ch >= 0 { subst(&r.hi, v, vmax) } else { subst(&r.hi, v, vmin) };
                        // A point dimension keeps the per-iteration stride;
                        // anything else collapses to dense.
                        let stride = if r.is_point() && r.stride == 1 {
                            (cl * step).abs().max(1)
                        } else {
                            1
                        };
                        SecDim::Range(SecRange { lo: nlo, hi: nhi, stride })
                    }
                })
                .collect(),
        )
    }

    /// Under-approximate expansion over `v` (KILL across a whole inner
    /// loop). Returns ⊥ unless the union across iterations is provably the
    /// returned rectangle. `lo`/`hi` are the loop bounds, `step` constant.
    pub fn expand_must(&self, v: SymId, lo: &Affine, hi: &Affine, step: i64) -> ArraySection {
        let dims = match self {
            ArraySection::Bottom => return ArraySection::Bottom,
            ArraySection::Dims(ds) => ds,
        };
        // Trip count provably ≥ 1?
        let trip_pos = match const_diff(hi, lo) {
            Some(d) => (step > 0 && d >= 0) || (step < 0 && d <= 0),
            None => false,
        };
        // Affine value of v on the last executed iteration.
        let last: Option<Affine> = if step.abs() == 1 {
            Some(hi.clone())
        } else {
            match const_diff(hi, lo) {
                Some(d) if trip_pos => {
                    Some(lo.add(&Affine::constant(d / step * step)))
                }
                _ => None,
            }
        };
        let mut out = Vec::with_capacity(dims.len());
        // Without a guaranteed first trip, the expansion is sound only when
        // some expanded dimension is empty exactly when the loop is (a
        // positive-coefficient point dimension with step 1).
        let mut empty_encoded = trip_pos;
        for d in dims {
            let r = match d {
                SecDim::Range(r) => r,
                SecDim::Top => return ArraySection::Bottom,
            };
            let c = r.lo.coeff(v);
            if r.hi.coeff(v) != c {
                return ArraySection::Bottom;
            }
            if c == 0 {
                // Same sub-section every iteration.
                out.push(SecDim::Range(r.clone()));
                continue;
            }
            if r.is_point() && r.stride == 1 {
                if step == 1 && c > 0 {
                    // [e(lo) : e(hi)] — empty exactly when the loop is.
                    out.push(SecDim::Range(SecRange {
                        lo: subst(&r.lo, v, lo),
                        hi: subst(&r.hi, v, hi),
                        stride: c,
                    }));
                    empty_encoded = true;
                    continue;
                }
                if let Some(lastv) = &last {
                    if trip_pos {
                        let e1 = subst(&r.lo, v, lo);
                        let e2 = subst(&r.hi, v, lastv);
                        let (nlo, nhi) =
                            if c * step > 0 { (e1, e2) } else { (e2, e1) };
                        out.push(SecDim::Range(SecRange {
                            lo: nlo,
                            hi: nhi,
                            stride: (c * step).abs(),
                        }));
                        continue;
                    }
                }
                return ArraySection::Bottom;
            }
            // A moving non-point window tiles without gaps only when it
            // shifts by exactly one element per iteration and is dense with
            // provably non-negative width.
            if r.stride == 1 && (c * step).abs() == 1 && trip_pos {
                if let (Some(lastv), Some(w)) = (&last, const_diff(&r.hi, &r.lo)) {
                    if w >= 0 {
                        let a1 = subst(&r.lo, v, lo);
                        let a2 = subst(&r.lo, v, lastv);
                        let b1 = subst(&r.hi, v, lo);
                        let b2 = subst(&r.hi, v, lastv);
                        let nlo = if c * step > 0 { a1 } else { a2 };
                        let nhi = if c * step > 0 { b2 } else { b1 };
                        out.push(SecDim::Range(SecRange::dense(nlo, nhi)));
                        continue;
                    }
                }
            }
            return ArraySection::Bottom;
        }
        if !empty_encoded {
            return ArraySection::Bottom;
        }
        ArraySection::Dims(out)
    }
}

/// Must-merge of two dense ranges: the hull, when they provably overlap or
/// are adjacent (so the union is exactly the hull).
fn must_merge_dense(x: &SecRange, y: &SecRange) -> Option<SecRange> {
    if x.stride != 1 || y.stride != 1 {
        return None;
    }
    let dl = const_diff(&y.lo, &x.lo)?;
    let dh = const_diff(&y.hi, &x.hi)?;
    let g1 = const_diff(&y.lo, &x.hi)?; // y.lo - x.hi
    let g2 = const_diff(&x.lo, &y.hi)?; // x.lo - y.hi
    // Both provably non-empty, overlapping or adjacent.
    let xw = const_diff(&x.hi, &x.lo)?;
    let yw = const_diff(&y.hi, &y.lo)?;
    if xw >= 0 && yw >= 0 && g1 <= 1 && g2 <= 1 {
        let lo = if dl >= 0 { x.lo.clone() } else { y.lo.clone() };
        let hi = if dh >= 0 { y.hi.clone() } else { x.hi.clone() };
        Some(SecRange::dense(lo, hi))
    } else {
        None
    }
}

fn dim_covers(k: &SecDim, r: &SecDim, decl: Option<(i64, i64)>) -> bool {
    match (k, r) {
        (SecDim::Top, _) => false,
        (SecDim::Range(kr), SecDim::Range(rr)) => {
            if kr == rr {
                return true;
            }
            if kr.stride != 1 {
                return false;
            }
            matches!(
                (const_diff(&rr.lo, &kr.lo), const_diff(&kr.hi, &rr.hi)),
                (Some(a), Some(b)) if a >= 0 && b >= 0
            )
        }
        (SecDim::Range(kr), SecDim::Top) => {
            // A ⊤ read is any in-bounds element: the kill must span the
            // declared extent.
            kr.stride == 1
                && kr.lo.is_const()
                && kr.hi.is_const()
                && matches!(decl, Some((dlo, dhi)) if kr.lo.konst <= dlo && kr.hi.konst >= dhi)
        }
    }
}

fn affine_str(a: &Affine, unit: &ProgramUnit) -> String {
    let mut parts = Vec::new();
    for (v, c) in &a.terms {
        let name = unit.symbols.name(*v);
        match *c {
            1 => parts.push(name.to_string()),
            -1 => parts.push(format!("-{name}")),
            c => parts.push(format!("{c}*{name}")),
        }
    }
    if a.konst != 0 || parts.is_empty() {
        parts.push(a.konst.to_string());
    }
    let mut s = parts.join("+");
    if let Some(stripped) = s.strip_prefix("0+") {
        s = stripped.to_string();
    }
    s.replace("+-", "-")
}

/// Why an array's exposed-read section is not ⊥ (the self-diagnosing half of
/// the conservatism report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopReason {
    /// Bounded reads escaped the accumulated kill: a genuine kill gap
    /// (partial overwrite).
    KillGap,
    /// A subscript or bound could not be bounded (non-affine, loop-variant,
    /// or incomparable symbolic) — the section gave up to ⊤.
    SymbolicTop,
}

impl std::fmt::Display for TopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopReason::KillGap => write!(f, "kill-gap"),
            TopReason::SymbolicTop => write!(f, "symbolic-bound ⊤"),
        }
    }
}

/// Per-array facts of one abstract iteration (or of a whole unit body, for
/// interprocedural summaries).
#[derive(Debug, Clone, Default)]
pub struct ArrFacts {
    /// Elements definitely overwritten before any use (flow-sensitive KILL).
    pub kill: ArraySection,
    /// Elements possibly read before being overwritten (upward-exposed).
    pub exposed: ArraySection,
    /// Written anywhere (MOD).
    pub written: bool,
    /// Read anywhere (REF).
    pub read: bool,
    /// First reason the exposed set became non-⊥, if it did.
    pub reason: Option<TopReason>,
}

impl ArrFacts {
    fn note_read(&mut self, sec: &ArraySection, decl: Option<&[(i64, i64)]>) {
        self.read = true;
        if self.kill.covers(sec, decl) {
            return;
        }
        if self.reason.is_none() {
            self.reason = Some(if sec.has_top() {
                TopReason::SymbolicTop
            } else {
                TopReason::KillGap
            });
        }
        self.exposed = self.exposed.union_may(sec);
    }

    fn note_write(&mut self, sec: &ArraySection) {
        self.written = true;
        if !sec.has_top() {
            self.kill = self.kill.union_must(sec);
        }
    }
}

/// Analysis context for the structured array walk.
struct SecCtx<'a> {
    unit: &'a ProgramUnit,
    resolve: &'a dyn Fn(SymId) -> Option<i64>,
    calls: &'a dyn CallInfo,
    /// Scalars whose value varies inside the analyzed region: affine bounds
    /// may not mention them (except loop variables, handled by expansion).
    variant: HashSet<SymId>,
    /// Resolved declared extents per array, for ⊤-read coverage.
    decl: HashMap<SymId, Vec<(i64, i64)>>,
}

impl<'a> SecCtx<'a> {
    fn decl_of(&self, sym: SymId) -> Option<&[(i64, i64)]> {
        self.decl.get(&sym).map(|v| v.as_slice())
    }

    /// Affine form of `e` that only mentions iteration-fixed symbols (or
    /// in-scope loop variables, to be expanded by the caller).
    fn fixed_affine(&self, e: &Expr, fixed: &HashSet<SymId>) -> Option<Affine> {
        let a = to_affine(e, self.resolve)?;
        if a.vars().all(|v| fixed.contains(&v) || !self.variant.contains(&v)) {
            Some(a)
        } else {
            None
        }
    }

    /// Section touched by one subscripted access.
    fn section_of(&self, sym: SymId, subs: &[Expr], fixed: &HashSet<SymId>) -> ArraySection {
        let rank = self.unit.symbols.sym(sym).rank();
        if subs.len() != rank || rank == 0 {
            return ArraySection::top(rank.max(1));
        }
        ArraySection::Dims(
            subs.iter()
                .map(|e| match self.fixed_affine(e, fixed) {
                    Some(a) => SecDim::Range(SecRange::point(a)),
                    None => SecDim::Top,
                })
                .collect(),
        )
    }
}

/// Fold one branch/loop contribution's exposed section into the running
/// facts, honoring the kill accumulated so far in the current iteration.
fn merge_exposed(
    f: &mut ArrFacts,
    exp: &ArraySection,
    reason: Option<TopReason>,
    decl: Option<&[(i64, i64)]>,
) {
    if f.kill.covers(exp, decl) {
        return;
    }
    if f.reason.is_none() {
        f.reason = reason.or(Some(if exp.has_top() {
            TopReason::SymbolicTop
        } else {
            TopReason::KillGap
        }));
    }
    f.exposed = f.exposed.union_may(exp);
}

fn analyze_block(
    ctx: &SecCtx<'_>,
    block: &[StmtId],
    fixed: &HashSet<SymId>,
    out: &mut HashMap<SymId, ArrFacts>,
) {
    for &sid in block {
        let st = ctx.unit.stmt(sid);
        let is_call_stmt = matches!(st.kind, StmtKind::Call { .. });
        // Reads first: subscripted array reads in rhs/conditions/bounds.
        for acc in stmt_accesses(ctx.unit, sid) {
            if !ctx.unit.symbols.sym(acc.sym).is_array() {
                continue;
            }
            match acc.kind {
                AccessKind::Read => {
                    if let Some(subs) = &acc.subs {
                        let sec = ctx.section_of(acc.sym, subs, fixed);
                        out.entry(acc.sym)
                            .or_default()
                            .note_read(&sec, ctx.decl_of(acc.sym));
                    }
                }
                AccessKind::CallArg if !is_call_stmt => {
                    // Function reference inside an expression: worst case.
                    let rank = ctx.unit.symbols.sym(acc.sym).rank().max(1);
                    let f = out.entry(acc.sym).or_default();
                    f.note_read(&ArraySection::top(rank), ctx.decl_of(acc.sym));
                    f.written = true;
                }
                _ => {}
            }
        }
        match &st.kind {
            StmtKind::Assign { lhs: LValue::ArrayElem(sym, subs), .. } => {
                let sec = ctx.section_of(*sym, subs, fixed);
                out.entry(*sym).or_default().note_write(&sec);
            }
            StmtKind::Do(d) => {
                let mut inner_fixed = fixed.clone();
                inner_fixed.insert(d.var);
                let mut inner: HashMap<SymId, ArrFacts> = HashMap::new();
                analyze_block(ctx, &d.body, &inner_fixed, &mut inner);
                // Loop range in iteration-fixed terms; constant step.
                let bounds = (|| {
                    let lo = ctx.fixed_affine(&d.lo, fixed)?;
                    let hi = ctx.fixed_affine(&d.hi, fixed)?;
                    let step = match &d.step {
                        Some(e) => {
                            let a = ctx.fixed_affine(e, fixed)?;
                            if a.is_const() && a.konst != 0 {
                                a.konst
                            } else {
                                return None;
                            }
                        }
                        None => 1,
                    };
                    Some((lo, hi, step))
                })();
                for (sym, inf) in inner {
                    let f = out.entry(sym).or_default();
                    f.read |= inf.read;
                    f.written |= inf.written;
                    let (exp, kill) = match &bounds {
                        Some((lo, hi, step)) => (
                            inf.exposed.expand_may(d.var, lo, hi, *step),
                            inf.kill.expand_must(d.var, lo, hi, *step),
                        ),
                        None => {
                            let rank = ctx.unit.symbols.sym(sym).rank().max(1);
                            let exp = if inf.exposed.is_bottom() {
                                ArraySection::Bottom
                            } else {
                                ArraySection::top(rank)
                            };
                            (exp, ArraySection::Bottom)
                        }
                    };
                    merge_exposed(f, &exp, inf.reason, ctx.decl_of(sym));
                    f.kill = f.kill.union_must(&kill);
                }
            }
            StmtKind::If { arms, else_block } => {
                let mut branches: Vec<HashMap<SymId, ArrFacts>> = Vec::new();
                for (_, blk) in arms {
                    let mut m = HashMap::new();
                    analyze_block(ctx, blk, fixed, &mut m);
                    branches.push(m);
                }
                let has_else = else_block.is_some();
                if let Some(blk) = else_block {
                    let mut m = HashMap::new();
                    analyze_block(ctx, blk, fixed, &mut m);
                    branches.push(m);
                }
                let mut syms: HashSet<SymId> = HashSet::new();
                for b in &branches {
                    syms.extend(b.keys().copied());
                }
                for sym in syms {
                    let f = out.entry(sym).or_default();
                    let empty = ArrFacts::default();
                    let per: Vec<&ArrFacts> =
                        branches.iter().map(|b| b.get(&sym).unwrap_or(&empty)).collect();
                    f.read |= per.iter().any(|p| p.read);
                    f.written |= per.iter().any(|p| p.written);
                    let mut exp = ArraySection::Bottom;
                    let mut reason = None;
                    for p in &per {
                        exp = exp.union_may(&p.exposed);
                        reason = reason.or(p.reason);
                    }
                    merge_exposed(f, &exp, reason, ctx.decl_of(sym));
                    // Must-kill across branches: only with an else and
                    // structurally identical kills on every branch.
                    if has_else
                        && !per.is_empty()
                        && !per[0].kill.is_bottom()
                        && per.iter().all(|p| p.kill == per[0].kill)
                    {
                        f.kill = f.kill.union_must(&per[0].kill);
                    }
                }
            }
            StmtKind::Call { .. } => {
                // Candidate arrays: call-argument arrays plus COMMON arrays.
                let mut cand: Vec<SymId> = stmt_accesses(ctx.unit, sid)
                    .into_iter()
                    .filter(|a| {
                        a.kind == AccessKind::CallArg
                            && ctx.unit.symbols.sym(a.sym).is_array()
                    })
                    .map(|a| a.sym)
                    .collect();
                for (id, sym) in ctx.unit.symbols.iter() {
                    if sym.common.is_some() && sym.is_array() {
                        cand.push(id);
                    }
                }
                cand.sort();
                cand.dedup();
                for sym in cand {
                    let eff = ctx.calls.array_effect(ctx.unit, sid, sym);
                    if !eff.may_read && !eff.may_write {
                        continue;
                    }
                    let rank = ctx.unit.symbols.sym(sym).rank().max(1);
                    let f = out.entry(sym).or_default();
                    if eff.may_read {
                        let exp = eff.exposed.clone().unwrap_or(ArraySection::top(rank));
                        f.read = true;
                        merge_exposed(f, &exp, None, ctx.decl_of(sym));
                    }
                    if eff.may_write {
                        f.written = true;
                        if let Some(k) = &eff.kill {
                            if !k.has_top() {
                                f.kill = f.kill.union_must(k);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Scalars (and loop indices) written anywhere in `block`, including
/// conservatively through calls.
fn variant_scalars(
    unit: &ProgramUnit,
    block: &[StmtId],
    calls: &dyn CallInfo,
) -> HashSet<SymId> {
    let mut out = HashSet::new();
    ped_fortran::visit::for_each_stmt(unit, &block.to_vec(), &mut |sid| {
        for acc in stmt_accesses(unit, sid) {
            if acc.subs.is_none() && acc.kind.may_write() {
                out.insert(acc.sym);
            }
        }
        if matches!(unit.stmt(sid).kind, StmtKind::Call { .. }) {
            out.extend(calls.mods(unit, sid));
        }
    });
    out.retain(|s| !unit.symbols.sym(*s).is_array());
    out
}

/// Resolved declared extents for every array of the unit (dimensions whose
/// bounds fold to constants; partially-resolvable arrays keep the resolvable
/// prefix semantics by storing only fully-resolved declarations).
fn resolved_decls(
    unit: &ProgramUnit,
    resolve: &dyn Fn(SymId) -> Option<i64>,
) -> HashMap<SymId, Vec<(i64, i64)>> {
    let mut out = HashMap::new();
    for (id, sym) in unit.symbols.iter() {
        if !sym.is_array() {
            continue;
        }
        let mut dims = Vec::with_capacity(sym.dims.len());
        let mut ok = true;
        for d in &sym.dims {
            let lo = to_affine(&d.lo, resolve).filter(|a| a.is_const());
            let hi = d
                .hi
                .as_ref()
                .and_then(|e| to_affine(e, resolve))
                .filter(|a| a.is_const());
            match (lo, hi) {
                (Some(l), Some(h)) => dims.push((l.konst, h.konst)),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.insert(id, dims);
        }
    }
    out
}

/// Classification of one array with respect to one loop, distilled from the
/// section walk. The sections themselves stay internal; what the rest of the
/// stack consumes are the verdicts plus rendered descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayClass {
    /// Written somewhere in the loop body.
    pub written: bool,
    /// Read somewhere in the loop body.
    pub read: bool,
    /// No upward-exposed reads: every read is covered by a same-iteration
    /// kill. Implies no cross-iteration flow through the array.
    pub exposed_bottom: bool,
    /// Safe to give each iteration a private copy: written, never exposed,
    /// and dead after the loop.
    pub privatizable: bool,
    /// Carried true dependences on this array are provably spurious.
    pub no_carried_flow: bool,
    /// Live after the loop exits.
    pub live_after: bool,
    /// Why `exposed` is not ⊥, when it is not.
    pub reason: Option<TopReason>,
    /// Rendered KILL section (diagnostics).
    pub kill_desc: String,
    /// Rendered exposed section (diagnostics).
    pub exposed_desc: String,
}

/// Classify every array referenced inside the loop with header `header`:
/// one abstract iteration's kill/exposed walk, expanded over inner loops,
/// refined through `calls` at call sites.
pub fn classify_arrays(
    unit: &ProgramUnit,
    header: StmtId,
    live_after: &dyn Fn(SymId) -> bool,
    resolve: &dyn Fn(SymId) -> Option<i64>,
    calls: &dyn CallInfo,
) -> HashMap<SymId, ArrayClass> {
    let d = unit.loop_of(header);
    let ctx = SecCtx {
        unit,
        resolve,
        calls,
        variant: variant_scalars(unit, &d.body, calls),
        decl: resolved_decls(unit, resolve),
    };
    let fixed = HashSet::new();
    let mut facts: HashMap<SymId, ArrFacts> = HashMap::new();
    analyze_block(&ctx, &d.body, &fixed, &mut facts);
    facts
        .into_iter()
        .map(|(sym, f)| {
            let exposed_bottom = f.exposed.is_bottom();
            let live = live_after(sym);
            let class = ArrayClass {
                written: f.written,
                read: f.read,
                exposed_bottom,
                privatizable: f.written && exposed_bottom && !live,
                no_carried_flow: f.written && exposed_bottom,
                live_after: live,
                reason: if exposed_bottom { None } else { f.reason },
                kill_desc: f.kill.render(unit),
                exposed_desc: f.exposed.render(unit),
            };
            (sym, class)
        })
        .collect()
}

/// Whole-unit array flow for interprocedural summaries: kill / exposed
/// sections of each array over the unit body, in terms of the unit's own
/// symbols (formals and COMMON members).
pub fn unit_array_flow(
    unit: &ProgramUnit,
    resolve: &dyn Fn(SymId) -> Option<i64>,
    calls: &dyn CallInfo,
) -> HashMap<SymId, ArrFacts> {
    let ctx = SecCtx {
        unit,
        resolve,
        calls,
        variant: variant_scalars(unit, &unit.body, calls),
        decl: resolved_decls(unit, resolve),
    };
    let fixed = HashSet::new();
    let mut facts = HashMap::new();
    analyze_block(&ctx, &unit.body, &fixed, &mut facts);
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalars::ConservativeCalls;
    use ped_fortran::parse_program;

    fn classify(src: &str, arr: &str) -> ArrayClass {
        let prog = parse_program(src).unwrap();
        let u = &prog.units[0];
        let header = *u.body.iter().find(|&&s| u.is_loop(s)).unwrap();
        let cfg = crate::cfg::Cfg::build(u);
        let live = crate::liveness::Liveness::compute(u, &cfg);
        let consts = crate::constants::ConstEnv::compute(u, &cfg);
        let resolve = |s: SymId| {
            if let Some(ped_fortran::symbols::Const::Int(v)) = u.symbols.sym(s).param.as_ref() {
                return Some(*v);
            }
            let _ = &consts;
            None
        };
        let classes = classify_arrays(
            u,
            header,
            &|s| live.live_after_loop(u, &cfg, header, s),
            &resolve,
            &ConservativeCalls,
        );
        classes[&u.symbols.lookup(arr).unwrap()].clone()
    }

    #[test]
    fn fully_killed_workspace_is_privatizable() {
        // slab2d's shape: w fully overwritten by the first inner loop,
        // read afterwards, dead after the outer loop.
        let c = classify(
            "program t\nreal w(32), a(16,32)\ndo is = 1, 16\ndo ip = 1, 32\n\
             w(ip) = real(ip) * 2.0\nenddo\ndo ip = 1, 32\na(is,ip) = w(ip)\nenddo\n\
             enddo\nend\n",
            "w",
        );
        assert!(c.exposed_bottom, "exposed: {}", c.exposed_desc);
        assert!(c.privatizable && c.no_carried_flow);
        assert_eq!(c.kill_desc, "[1:32]");
    }

    #[test]
    fn partial_kill_is_exposed_with_kill_gap() {
        // Only 1..31 overwritten; w(32) is read from the previous iteration.
        let c = classify(
            "program t\nreal w(32), a(16,32)\ndo is = 1, 16\ndo ip = 1, 31\n\
             w(ip) = real(ip) * 2.0\nenddo\ndo ip = 1, 32\na(is,ip) = w(ip)\nenddo\n\
             enddo\nend\n",
            "w",
        );
        assert!(!c.exposed_bottom);
        assert!(!c.privatizable && !c.no_carried_flow);
        assert_eq!(c.reason, Some(TopReason::KillGap));
    }

    #[test]
    fn symbolic_bounds_cover_structurally() {
        // Kill [1:n] covers read [1:n] even though n is unknown (zero-trip
        // safe: both empty together).
        let c = classify(
            "program t\nreal w(100), a(100,100)\nn = 50\ndo i = 1, 100\n\
             do j = 1, n\nw(j) = a(i,j)\nenddo\ndo j = 1, n\na(j,i) = w(j) + 1.0\nenddo\n\
             enddo\nend\n",
            "w",
        );
        assert!(c.exposed_bottom, "exposed: {}", c.exposed_desc);
        assert!(c.no_carried_flow);
    }

    #[test]
    fn nonaffine_subscript_gives_symbolic_top() {
        let c = classify(
            "program t\nreal w(32)\ninteger ind(32)\ndo i = 1, 16\n\
             do j = 1, 32\nw(j) = 1.0\nenddo\nx = w(ind(i))\nprint *, x\nenddo\nend\n",
            "w",
        );
        // The read w(ind(i)) is ⊤ in its only dimension, but the kill spans
        // the full declared extent [1:32], so it is still covered.
        assert!(c.exposed_bottom, "exposed: {}", c.exposed_desc);
    }

    #[test]
    fn nonaffine_read_beyond_kill_is_symbolic_top() {
        let c = classify(
            "program t\nreal w(32)\ninteger ind(32)\ndo i = 1, 16\n\
             do j = 2, 32\nw(j) = 1.0\nenddo\nx = w(ind(i))\nprint *, x\nenddo\nend\n",
            "w",
        );
        assert!(!c.exposed_bottom);
        assert_eq!(c.reason, Some(TopReason::SymbolicTop));
    }

    #[test]
    fn conditional_write_does_not_kill() {
        let c = classify(
            "program t\nreal w(8), a(8,8)\ndo i = 1, 8\nif (a(i,1) .gt. 0.0) then\n\
             do j = 1, 8\nw(j) = 0.0\nenddo\nendif\ndo j = 1, 8\na(i,j) = w(j)\nenddo\n\
             enddo\nend\n",
            "w",
        );
        assert!(!c.exposed_bottom);
        assert!(!c.privatizable);
    }

    #[test]
    fn call_in_body_is_conservative() {
        let c = classify(
            "program t\nreal w(8)\ndo i = 1, 8\ndo j = 1, 8\nw(j) = 0.0\nenddo\n\
             call f(w)\nenddo\nend\nsubroutine f(v)\nreal v(8)\nv(1) = v(2)\nreturn\nend\n",
            "w",
        );
        // ConservativeCalls: the call may read anywhere; kill [1:8] spans
        // the declared extent so the ⊤ read is covered, but the call's
        // unknown write leaves no further kill — still exposed ⊥.
        assert!(c.exposed_bottom, "exposed: {}", c.exposed_desc);
    }

    #[test]
    fn union_must_merges_adjacent_and_covers() {
        let a = ArraySection::Dims(vec![SecDim::Range(SecRange::dense(
            Affine::constant(1),
            Affine::constant(4),
        ))]);
        let b = ArraySection::Dims(vec![SecDim::Range(SecRange::dense(
            Affine::constant(5),
            Affine::constant(9),
        ))]);
        let m = a.union_must(&b);
        let want = ArraySection::Dims(vec![SecDim::Range(SecRange::dense(
            Affine::constant(1),
            Affine::constant(9),
        ))]);
        assert_eq!(m, want);
        let read = ArraySection::Dims(vec![SecDim::Range(SecRange::dense(
            Affine::constant(2),
            Affine::constant(8),
        ))]);
        assert!(m.covers(&read, None));
        // Disjoint ranges must not merge into the hull.
        let c = ArraySection::Dims(vec![SecDim::Range(SecRange::dense(
            Affine::constant(20),
            Affine::constant(30),
        ))]);
        let nm = a.union_must(&c);
        assert!(!nm.covers(&c, None) || !nm.covers(&a, None));
    }
}
