//! Live-variable analysis.
//!
//! Ped uses liveness to decide whether a privatized scalar needs its final
//! value copied out (`lastprivate`) and whether deleting a statement is
//! safe. Classic backward may-analysis over symbols.

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitSet, Direction, Meet, Solution};
use ped_fortran::visit::{stmt_accesses, AccessKind};
use ped_fortran::{ProgramUnit, StmtId, SymId};

/// Live-variable solution for one unit.
#[derive(Debug, Clone)]
pub struct Liveness {
    sol: Solution,
    nsyms: usize,
}

impl Liveness {
    /// Compute liveness. Dummy arguments and COMMON members are treated as
    /// live at unit exit (their values escape to the caller).
    pub fn compute(unit: &ProgramUnit, cfg: &Cfg) -> Liveness {
        let nsyms = unit.symbols.len().max(1);
        let mut gen = vec![BitSet::new(nsyms); cfg.len()];
        let mut kill = vec![BitSet::new(nsyms); cfg.len()];
        for (i, stmt) in cfg.stmt.iter().enumerate() {
            let Some(sid) = stmt else { continue };
            for acc in stmt_accesses(unit, *sid) {
                match acc.kind {
                    AccessKind::Read => gen[i].insert(acc.sym.index()),
                    AccessKind::Write => {
                        if acc.subs.is_none() {
                            kill[i].insert(acc.sym.index());
                        } else {
                            // Array-element write: the rest of the array may
                            // still be read later, so it also counts as a
                            // use of the array (and never a kill).
                            gen[i].insert(acc.sym.index());
                        }
                    }
                    AccessKind::CallArg => gen[i].insert(acc.sym.index()),
                }
            }
        }
        // A symbol both read and written by one statement (x = x + 1) must
        // stay in gen; the solver computes in = gen ∪ (out \ kill), which
        // already gives reads priority. Remove kills that are also gens to
        // keep the transfer conservative for same-statement read+write.
        for i in 0..cfg.len() {
            let g = gen[i].clone();
            for b in g.iter() {
                kill[i].remove(b);
            }
        }

        let mut boundary = BitSet::new(nsyms);
        for (id, sym) in unit.symbols.iter() {
            if sym.arg_index.is_some() || sym.common.is_some() {
                boundary.insert(id.index());
            }
        }
        let sol = solve(cfg, &gen, &kill, Direction::Backward, Meet::Union, &boundary);
        Liveness { sol, nsyms }
    }

    /// Is `sym` live on entry to `stmt`?
    pub fn live_in(&self, cfg: &Cfg, stmt: StmtId, sym: SymId) -> bool {
        cfg.node_opt(stmt)
            .map(|n| self.sol.inn[n.index()].contains(sym.index()))
            .unwrap_or(false)
    }

    /// Is `sym` live on exit from `stmt`?
    ///
    /// For a DO statement this asks "live after the loop completes or on the
    /// next header evaluation"; use it on the loop header to decide whether
    /// a loop-written scalar escapes the loop.
    pub fn live_out(&self, cfg: &Cfg, stmt: StmtId, sym: SymId) -> bool {
        cfg.node_opt(stmt)
            .map(|n| self.sol.out[n.index()].contains(sym.index()))
            .unwrap_or(false)
    }

    /// Is `sym` live after the loop exits — i.e. live at some CFG successor
    /// of the loop header other than the loop body?
    pub fn live_after_loop(&self, unit: &ProgramUnit, cfg: &Cfg, header: StmtId, sym: SymId) -> bool {
        let Some(hn) = cfg.node_opt(header) else { return false };
        let body_first = match &unit.stmt(header).kind {
            ped_fortran::StmtKind::Do(d) => {
                d.body.iter().find_map(|&s| cfg.node_opt(s))
            }
            _ => None,
        };
        cfg.succs[hn.index()]
            .iter()
            .filter(|&&s| Some(s) != body_first)
            .any(|&s| self.sol.inn[s.index()].contains(sym.index()))
    }

    /// Number of symbols tracked.
    pub fn width(&self) -> usize {
        self.nsyms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn setup(src: &str) -> (ProgramUnit, Cfg, Liveness) {
        let u = parse_program(src).unwrap().units.remove(0);
        let cfg = Cfg::build(&u);
        let lv = Liveness::compute(&u, &cfg);
        (u, cfg, lv)
    }

    #[test]
    fn dead_after_last_use() {
        let (u, cfg, lv) = setup("program t\nx = 1.0\ny = x\nz = y\nprint *, z\nend\n");
        let x = u.symbols.lookup("x").unwrap();
        assert!(lv.live_in(&cfg, u.body[1], x));
        assert!(!lv.live_out(&cfg, u.body[1], x));
    }

    #[test]
    fn args_live_at_exit() {
        let (u, cfg, lv) = setup("subroutine s(r)\nr = 1.0\nend\n");
        let r = u.symbols.lookup("r").unwrap();
        assert!(lv.live_out(&cfg, u.body[0], r), "dummy arg escapes to caller");
    }

    #[test]
    fn loop_temporary_not_live_after_loop() {
        let (u, cfg, lv) = setup(
            "program t\nreal a(10)\ndo i = 1, 10\nt1 = 2.0\na(i) = t1\nenddo\nprint *, a(1)\nend\n",
        );
        let t1 = u.symbols.lookup("t1").unwrap();
        let header = u.body[1 - 1]; // first executable is the DO? body[0] is do
        let header = if u.is_loop(header) { header } else { u.body[1] };
        assert!(!lv.live_after_loop(&u, &cfg, header, t1));
        // But t1 is live inside the loop between its def and use.
        let body = &u.loop_of(header).body;
        assert!(lv.live_in(&cfg, body[1], t1));
    }

    #[test]
    fn sum_live_after_loop() {
        let (u, cfg, lv) = setup(
            "program t\ns = 0.0\ndo i = 1, 10\ns = s + 1.0\nenddo\nprint *, s\nend\n",
        );
        let s = u.symbols.lookup("s").unwrap();
        let header = u.body[1];
        assert!(lv.live_after_loop(&u, &cfg, header, s));
    }

    #[test]
    fn read_write_same_stmt_stays_live() {
        let (u, cfg, lv) = setup("program t\nx = 0.0\nx = x + 1.0\nend\n");
        let x = u.symbols.lookup("x").unwrap();
        assert!(lv.live_in(&cfg, u.body[1], x));
        assert!(lv.live_out(&cfg, u.body[0], x));
    }
}
