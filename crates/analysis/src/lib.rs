//! # ped-analysis — scalar program analysis for the ParaScope Editor
//!
//! Ped's dependence analysis is only as precise as the scalar analyses
//! feeding it. This crate implements the supporting analyses named in the
//! paper:
//!
//! * control-flow graphs for structured units ([`cfg`]);
//! * a generic iterative bit-vector data-flow solver ([`dataflow`]);
//! * reaching definitions and def-use chains ([`defuse`]) — "def-use chains
//!   expose dependences among scalar variables as well as linking all
//!   accesses to each array for dependence testing";
//! * scalar constant propagation ([`constants`]);
//! * live-variable analysis ([`liveness`]);
//! * symbolic analysis and canonical affine forms ([`symbolic`]) — the
//!   input language of the dependence tests;
//! * postdominators and control dependence ([`controldep`]) following
//!   Ferrante, Ottenstein and Warren;
//! * loop-level scalar classification ([`scalars`]): privatizable scalars
//!   ("killed on every iteration"), reduction recognition, and
//!   loop-invariance — the facts Ped's variable pane displays.

pub mod cfg;
pub mod constants;
pub mod controldep;
pub mod dataflow;
pub mod defuse;
pub mod liveness;
pub mod scalars;
pub mod sections;
pub mod symbolic;

pub use cfg::{Cfg, NodeId};
pub use constants::ConstEnv;
pub use defuse::DefUse;
pub use symbolic::Affine;

use ped_fortran::ProgramUnit;

/// Bundle of the per-unit scalar analyses most consumers need together.
pub struct UnitAnalysis {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Reaching definitions / def-use chains.
    pub defuse: DefUse,
    /// Constant propagation results.
    pub consts: ConstEnv,
    /// Live variables.
    pub live: liveness::Liveness,
}

impl UnitAnalysis {
    /// Run all scalar analyses on one unit.
    pub fn run(unit: &ProgramUnit) -> UnitAnalysis {
        let cfg = Cfg::build(unit);
        let defuse = DefUse::compute(unit, &cfg);
        let consts = ConstEnv::compute(unit, &cfg);
        let live = liveness::Liveness::compute(unit, &cfg);
        UnitAnalysis { cfg, defuse, consts, live }
    }
}
