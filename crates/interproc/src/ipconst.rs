//! Interprocedural constant propagation.
//!
//! "Interprocedural constants are inherited from a procedure's callers and
//! directly incorporated into its intraprocedural counterpart." For every
//! call site we evaluate each actual argument with the caller's
//! intraprocedural constant facts (the *jump function*); the callee's dummy
//! argument is a constant when every call site passes the same value. The
//! result seeds each unit's [`ped_analysis::ConstEnv`].

use crate::callgraph::CallGraph;
use ped_analysis::cfg::Cfg;
use ped_analysis::constants::{eval, ConstEnv, Facts};
use ped_fortran::symbols::Const;
use ped_fortran::Program;

/// Per-unit entry facts (dummy arguments known constant at every call site).
pub fn interproc_constants(program: &Program, cg: &CallGraph) -> Vec<Facts> {
    let n = program.units.len();
    let cfgs: Vec<Cfg> = program.units.iter().map(Cfg::build).collect();
    let mut seeds: Vec<Facts> = vec![Facts::new(); n];

    // Lattice per (unit, formal): ⊤ (no call seen) → Known → ⊥. We track ⊥
    // explicitly so a later agreeing call cannot resurrect a constant.
    #[derive(Clone, Copy, PartialEq)]
    enum V {
        Known(Const),
        Bottom,
    }

    // Each round recomputes every callee's formal facts from scratch using
    // the current seeds (so chains main→mid→leaf converge regardless of
    // unit order), then compares. If the bound is hit without convergence,
    // return no seeds — the safe answer.
    for _ in 0..2 * n + 4 {
        let mut states: Vec<std::collections::HashMap<ped_fortran::SymId, V>> =
            vec![Default::default(); n];
        for (ui, unit) in program.units.iter().enumerate() {
            let env = ConstEnv::compute_seeded(unit, &cfgs[ui], &seeds[ui]);
            for &si in &cg.sites_of_unit[ui] {
                let site = &cg.sites[si];
                let Some(ci) = site.callee else { continue };
                let callee = &program.units[ci];
                for (pos, actual) in site.args.iter().enumerate() {
                    let Some(&formal) = callee.args.get(pos) else { continue };
                    if callee.symbols.sym(formal).is_array() {
                        continue;
                    }
                    let val = eval(unit, env.at(site.stmt), actual);
                    let new = match (states[ci].get(&formal).copied(), val) {
                        (Some(V::Bottom), _) => V::Bottom,
                        (None, Some(c)) => V::Known(c),
                        (None, None) => V::Bottom,
                        (Some(V::Known(a)), Some(b)) if a == b => V::Known(a),
                        (Some(V::Known(_)), _) => V::Bottom,
                    };
                    states[ci].insert(formal, new);
                }
            }
        }
        let new_seeds: Vec<Facts> = (0..n)
            .map(|ui| {
                states[ui]
                    .iter()
                    .filter_map(|(&s, &v)| match v {
                        V::Known(c) => Some((s, c)),
                        V::Bottom => None,
                    })
                    .collect()
            })
            .collect();
        if new_seeds == seeds {
            return seeds;
        }
        seeds = new_seeds;
    }
    vec![Facts::new(); n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn seeds(src: &str) -> (Program, Vec<Facts>) {
        let p = parse_program(src).unwrap();
        let cg = CallGraph::build(&p);
        let s = interproc_constants(&p, &cg);
        (p, s)
    }

    #[test]
    fn single_site_constant() {
        let (p, s) = seeds(
            "program t\ncall f(100)\nend\nsubroutine f(n)\ninteger n\nm = n\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        let n = p.units[fi].symbols.lookup("n").unwrap();
        assert_eq!(s[fi].get(&n), Some(&Const::Int(100)));
    }

    #[test]
    fn agreeing_sites_keep_constant() {
        let (p, s) = seeds(
            "program t\ncall f(8)\ncall f(8)\nend\nsubroutine f(n)\ninteger n\nm = n\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        let n = p.units[fi].symbols.lookup("n").unwrap();
        assert_eq!(s[fi].get(&n), Some(&Const::Int(8)));
    }

    #[test]
    fn disagreeing_sites_lose_constant() {
        let (p, s) = seeds(
            "program t\ncall f(8)\ncall f(9)\nend\nsubroutine f(n)\ninteger n\nm = n\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        let n = p.units[fi].symbols.lookup("n").unwrap();
        assert_eq!(s[fi].get(&n), None);
    }

    #[test]
    fn constant_flows_through_chain() {
        // main passes 64 to mid, mid forwards its formal to leaf.
        let (p, s) = seeds(
            "program t\ncall mid(64)\nend\nsubroutine mid(k)\ninteger k\ncall leaf(k)\nend\n\
             subroutine leaf(n)\ninteger n\nm = n\nend\n",
        );
        let li = p.unit_index("leaf").unwrap();
        let n = p.units[li].symbols.lookup("n").unwrap();
        assert_eq!(s[li].get(&n), Some(&Const::Int(64)));
    }

    #[test]
    fn computed_jump_function() {
        // The actual is an expression over caller constants.
        let (p, s) = seeds(
            "program t\ninteger m\nparameter (m = 10)\ncall f(m * 2 + 1)\nend\n\
             subroutine f(n)\ninteger n\nk = n\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        let n = p.units[fi].symbols.lookup("n").unwrap();
        assert_eq!(s[fi].get(&n), Some(&Const::Int(21)));
    }

    #[test]
    fn variable_actual_is_bottom() {
        let (p, s) = seeds(
            "program t\nread_in = 5.0\nn = int(read_in)\ncall f(n)\nend\n\
             subroutine f(n)\ninteger n\nk = n\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        let n = p.units[fi].symbols.lookup("n").unwrap();
        // int(real) does not fold in eval → bottom.
        assert_eq!(s[fi].get(&n), None);
    }
}
