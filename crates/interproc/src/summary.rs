//! Per-procedure side-effect summaries.
//!
//! A summary describes a procedure's effects on its *interface locations*
//! ([`Loc`]): dummy arguments by position and COMMON members by (block,
//! offset). Four strengths of information, matching the paper's §4:
//!
//! * **MOD/REF** (flow-insensitive, Banning): may-write / may-read;
//! * **USE/KILL** (flow-sensitive, Callahan): scalars read before written
//!   on some path / scalars definitely written on every path — KILL is what
//!   lets a scalar assigned inside a callee be privatized in a caller's
//!   loop (the paper's `nxsns` case);
//! * **regular sections** (Havlak & Kennedy): per-dimension exact
//!   subscripts for array effects, so a call that writes `a(*, j)` does not
//!   conflict across iterations of a `j` loop (the paper's "sections" row).
//!
//! Summaries propagate bottom-up through the call graph to a fixed point;
//! COMMON locations are global names and transfer unchanged, dummy-argument
//! locations bind through actual arguments.

use crate::callgraph::{CallGraph, CallSite};
use ped_analysis::scalars::{conservative_array_effect, ArrayCallEffect, CallInfo};
use ped_analysis::sections::{ArraySection, SecRange};
use ped_analysis::symbolic::{to_affine, Affine};
use ped_fortran::visit::{stmt_accesses, AccessKind};
use ped_fortran::{Expr, LValue, Program, ProgramUnit, StmtId, StmtKind, SymId};
use std::collections::{HashMap, HashSet};

/// An interface location of a procedure.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Loc {
    /// Dummy argument by position.
    Arg(usize),
    /// COMMON member by (block name, offset) — global storage, so the same
    /// `Loc` denotes the same memory in every unit.
    Common(String, usize),
}

/// Map a unit's symbol to its interface location, if it has one.
pub fn loc_of(unit: &ProgramUnit, sym: SymId) -> Option<Loc> {
    let s = unit.symbols.sym(sym);
    if let Some(i) = s.arg_index {
        return Some(Loc::Arg(i));
    }
    s.common.as_ref().map(|c| Loc::Common(c.block.clone(), c.index))
}

/// Resolve an interface location back to a unit's symbol.
pub fn sym_of(unit: &ProgramUnit, loc: &Loc) -> Option<SymId> {
    match loc {
        Loc::Arg(i) => unit.args.get(*i).copied(),
        Loc::Common(b, o) => unit
            .symbols
            .iter()
            .find(|(_, s)| {
                s.common.as_ref().map(|c| (c.block.as_str(), c.index)) == Some((b.as_str(), *o))
            })
            .map(|(id, _)| id),
    }
}

/// One dimension of a regular section.
#[derive(Debug, Clone, PartialEq)]
pub enum SecDim {
    /// The dimension is accessed at exactly this subscript (an expression
    /// over the owning unit's call-invariant scalars).
    Exact(Expr),
    /// Whole dimension (or unknown).
    Any,
}

/// A bounded regular section for one array location.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Per-dimension description.
    pub dims: Vec<SecDim>,
}

impl Section {
    /// The whole-array section of a given rank.
    pub fn whole(rank: usize) -> Section {
        Section { dims: vec![SecDim::Any; rank] }
    }

    /// Dimension-wise merge (Exact subscripts must agree, else Any).
    pub fn merge(&self, other: &Section) -> Section {
        if self.dims.len() != other.dims.len() {
            return Section::whole(self.dims.len());
        }
        Section {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| match (a, b) {
                    (SecDim::Exact(x), SecDim::Exact(y)) if x == y => SecDim::Exact(x.clone()),
                    _ => SecDim::Any,
                })
                .collect(),
        }
    }

    /// True if at least one dimension is exact (i.e. the section actually
    /// refines the whole array).
    pub fn is_refined(&self) -> bool {
        self.dims.iter().any(|d| matches!(d, SecDim::Exact(_)))
    }
}

/// The complete summary of one unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UnitSummary {
    /// May-write locations.
    pub mods: HashSet<Loc>,
    /// May-read locations (flow-insensitive).
    pub refs: HashSet<Loc>,
    /// Scalars possibly read before written (upward-exposed).
    pub uses: HashSet<Loc>,
    /// Scalars definitely written on every path to return.
    pub kills: HashSet<Loc>,
    /// Array write sections per location.
    pub mod_secs: HashMap<Loc, Section>,
    /// Array read sections per location.
    pub ref_secs: HashMap<Loc, Section>,
    /// Bounded regular sections definitely overwritten before any use on
    /// every path (flow-sensitive array KILL), in unit-local affine terms.
    /// Absence means "kills nothing" — always a sound under-approximation.
    pub kill_secs: HashMap<Loc, ArraySection>,
    /// Upward-exposed array read sections. A present `⊥` means every read
    /// of the array is covered by a prior same-path write; *absence* for an
    /// array in `refs` means unknown (⊤).
    pub use_secs: HashMap<Loc, ArraySection>,
    /// Transitively reaches an unresolved (external) call.
    pub calls_external: bool,
}

impl UnitSummary {
    /// Content fingerprint of the summary: equal summaries hash equal, and
    /// any change to MOD/REF/USE/KILL sets, sections, or externality moves
    /// the value (modulo 64-bit collisions). Sets and maps are hashed in
    /// sorted order so the value is independent of insertion history. The
    /// session layer compares fingerprints across an edit to decide which
    /// cached dependence graphs are still valid.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for set in [&self.mods, &self.refs, &self.uses, &self.kills] {
            let mut locs: Vec<&Loc> = set.iter().collect();
            locs.sort();
            locs.hash(&mut h);
            0xa5u8.hash(&mut h); // separator between sections of the hash
        }
        for map in [&self.mod_secs, &self.ref_secs] {
            // Section contains Exprs (no Ord/Hash): hash the Debug form,
            // which is deterministic for a given AST.
            let mut entries: Vec<(&Loc, String)> =
                map.iter().map(|(l, s)| (l, format!("{s:?}"))).collect();
            entries.sort();
            entries.hash(&mut h);
            0xa5u8.hash(&mut h);
        }
        for map in [&self.kill_secs, &self.use_secs] {
            let mut entries: Vec<(&Loc, String)> =
                map.iter().map(|(l, s)| (l, format!("{s:?}"))).collect();
            entries.sort();
            entries.hash(&mut h);
            0xa5u8.hash(&mut h);
        }
        self.calls_external.hash(&mut h);
        h.finish()
    }
}

/// Compute all unit summaries to a fixed point.
pub fn compute_summaries(program: &Program, cg: &CallGraph) -> Vec<UnitSummary> {
    let mut sums: Vec<UnitSummary> = vec![UnitSummary::default(); program.units.len()];
    // Monotone growth ⇒ the fixpoint terminates; bound rounds defensively.
    for _round in 0..program.units.len() + 2 {
        let mut changed = false;
        for ui in 0..program.units.len() {
            let new = summarize_unit(program, cg, ui, &sums);
            if new != sums[ui] {
                sums[ui] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Scalars of a unit that are never written inside it (call-invariant), the
/// precondition for using them in section subscripts.
fn invariant_scalars(unit: &ProgramUnit) -> HashSet<SymId> {
    let mut written = HashSet::new();
    ped_fortran::visit::for_each_stmt(unit, &unit.body, &mut |sid| {
        for acc in stmt_accesses(unit, sid) {
            if acc.kind.may_write() {
                written.insert(acc.sym);
            }
        }
    });
    unit.symbols
        .iter()
        .filter(|(id, s)| !s.is_array() && !written.contains(id))
        .map(|(id, _)| id)
        .collect()
}

fn expr_uses_only(e: &Expr, allowed: &HashSet<SymId>, unit: &ProgramUnit) -> bool {
    let mut ok = true;
    ped_fortran::visit::walk_expr(e, &mut |x| match x {
        Expr::Var(s) if !allowed.contains(s) && unit.symbols.sym(*s).param.is_none() => {
            ok = false;
        }
        Expr::ArrayRef { .. } | Expr::Call { .. } => ok = false,
        _ => {}
    });
    ok
}

pub(crate) fn summarize_unit(
    program: &Program,
    cg: &CallGraph,
    ui: usize,
    sums: &[UnitSummary],
) -> UnitSummary {
    let unit = &program.units[ui];
    let mut out = UnitSummary::default();
    let invariant = invariant_scalars(unit);

    // ---- flow-insensitive MOD/REF and local sections --------------------
    ped_fortran::visit::for_each_stmt(unit, &unit.body, &mut |sid| {
        for acc in stmt_accesses(unit, sid) {
            let Some(loc) = loc_of(unit, acc.sym) else { continue };
            let is_array = unit.symbols.sym(acc.sym).is_array();
            match acc.kind {
                AccessKind::Read => {
                    out.refs.insert(loc.clone());
                    if is_array {
                        let sec = local_section(unit, &acc.subs, &invariant);
                        merge_sec(&mut out.ref_secs, loc, sec);
                    }
                }
                AccessKind::Write => {
                    out.mods.insert(loc.clone());
                    if is_array {
                        let sec = local_section(unit, &acc.subs, &invariant);
                        merge_sec(&mut out.mod_secs, loc, sec);
                    }
                }
                AccessKind::CallArg => {} // handled through call sites below
            }
        }
    });

    // ---- call-site propagation ------------------------------------------
    for &si in &cg.sites_of_unit[ui] {
        let site = &cg.sites[si];
        match site.callee {
            None => {
                out.calls_external = true;
                // Worst case: every passed interface location and every
                // COMMON member of this unit is read and written.
                for a in &site.args {
                    if let Some(sym) = base_sym(a) {
                        if let Some(loc) = loc_of(unit, sym) {
                            out.mods.insert(loc.clone());
                            out.refs.insert(loc.clone());
                            out.uses.insert(loc.clone());
                            if unit.symbols.sym(sym).is_array() {
                                let rank = unit.symbols.sym(sym).rank();
                                merge_sec(&mut out.mod_secs, loc.clone(), Section::whole(rank));
                                merge_sec(&mut out.ref_secs, loc, Section::whole(rank));
                            }
                        }
                    }
                }
                for (id, s) in unit.symbols.iter() {
                    if s.common.is_some() {
                        let loc = loc_of(unit, id).expect("common has a loc");
                        out.mods.insert(loc.clone());
                        out.refs.insert(loc.clone());
                        out.uses.insert(loc.clone());
                        if s.is_array() {
                            merge_sec(&mut out.mod_secs, loc.clone(), Section::whole(s.rank()));
                            merge_sec(&mut out.ref_secs, loc, Section::whole(s.rank()));
                        }
                    }
                }
            }
            Some(ci) => {
                let callee = &program.units[ci];
                let csum = &sums[ci];
                out.calls_external |= csum.calls_external;
                for loc in &csum.mods {
                    for bound in bind_loc(program, unit, site, callee, loc) {
                        // Bound sections (argument arrays).
                        let sec = csum
                            .mod_secs
                            .get(loc)
                            .map(|s| bind_section(program, unit, site, callee, s, &invariant));
                        if let (Some(sym), Some(sec)) =
                            (sym_of(unit, &bound), sec.clone().flatten())
                        {
                            if unit.symbols.sym(sym).is_array() {
                                merge_sec(&mut out.mod_secs, bound.clone(), sec);
                            }
                        } else if let Some(sym) = sym_of(unit, &bound) {
                            if unit.symbols.sym(sym).is_array() {
                                let rank = unit.symbols.sym(sym).rank();
                                merge_sec(
                                    &mut out.mod_secs,
                                    bound.clone(),
                                    Section::whole(rank),
                                );
                            }
                        }
                        out.mods.insert(bound);
                    }
                }
                for loc in &csum.refs {
                    for bound in bind_loc(program, unit, site, callee, loc) {
                        let sec = csum
                            .ref_secs
                            .get(loc)
                            .map(|s| bind_section(program, unit, site, callee, s, &invariant));
                        if let (Some(sym), Some(sec)) =
                            (sym_of(unit, &bound), sec.clone().flatten())
                        {
                            if unit.symbols.sym(sym).is_array() {
                                merge_sec(&mut out.ref_secs, bound.clone(), sec);
                            }
                        } else if let Some(sym) = sym_of(unit, &bound) {
                            if unit.symbols.sym(sym).is_array() {
                                let rank = unit.symbols.sym(sym).rank();
                                merge_sec(
                                    &mut out.ref_secs,
                                    bound.clone(),
                                    Section::whole(rank),
                                );
                            }
                        }
                        out.refs.insert(bound);
                    }
                }
                // Callee `uses` are folded in by the flow-sensitive walk
                // below, which respects kill ordering across consecutive
                // calls (a scalar SET kills before a later USE reads is not
                // upward-exposed here).
            }
        }
    }

    // ---- flow-sensitive USE/KILL ----------------------------------------
    let fk = flow_scalars(program, cg, ui, sums);
    for sym in fk.exposed {
        if let Some(loc) = loc_of(unit, sym) {
            if !unit.symbols.sym(sym).is_array() {
                out.uses.insert(loc);
            }
        }
    }
    for sym in fk.killed {
        if let Some(loc) = loc_of(unit, sym) {
            if !unit.symbols.sym(sym).is_array() {
                out.kills.insert(loc);
            }
        }
    }
    // KILL implies MOD; USE implies REF.
    out.mods.extend(out.kills.iter().cloned());
    out.refs.extend(out.uses.iter().cloned());

    // ---- flow-sensitive array KILL / exposed sections -------------------
    let acalls = SummaryCalls { program, cg, ui, sums };
    let resolve = |s: SymId| match unit.symbols.sym(s).param {
        Some(ped_fortran::symbols::Const::Int(v)) => Some(v),
        _ => None,
    };
    let aflow = ped_analysis::sections::unit_array_flow(unit, &resolve, &acalls);
    // An exit anywhere but the end of the body breaks "overwritten on every
    // path to return" for the straight-line walk: publish no array KILL.
    let straight = exits_only_at_end(unit);
    for (sym, f) in aflow {
        if !unit.symbols.sym(sym).is_array() {
            continue;
        }
        let Some(loc) = loc_of(unit, sym) else { continue };
        if f.read {
            out.use_secs.insert(loc.clone(), f.exposed.clone());
        }
        if straight && !f.kill.is_bottom() && !f.kill.has_top() {
            out.kill_secs.insert(loc, f.kill);
        }
    }
    out
}

/// True when every `RETURN`/`STOP` of the unit is the final top-level
/// statement — the precondition for the array walk's kills to hold on every
/// path to exit.
fn exits_only_at_end(unit: &ProgramUnit) -> bool {
    let is_exit = |sid: StmtId| {
        matches!(unit.stmt(sid).kind, StmtKind::Return | StmtKind::Stop)
    };
    let mut total = 0usize;
    ped_fortran::visit::for_each_stmt(unit, &unit.body, &mut |sid| {
        if is_exit(sid) {
            total += 1;
        }
    });
    let mut top_at_end = 0usize;
    for (i, &sid) in unit.body.iter().enumerate() {
        if is_exit(sid) {
            if i + 1 != unit.body.len() {
                return false;
            }
            top_at_end += 1;
        }
    }
    total == top_at_end
}

/// Call effects for the summary-time array walk: scalars stay conservative
/// (precision there comes from `flow_scalars`), arrays go through the
/// current summaries so sectioned KILL/USE propagates up the call graph.
struct SummaryCalls<'a> {
    program: &'a Program,
    cg: &'a CallGraph,
    ui: usize,
    sums: &'a [UnitSummary],
}

impl CallInfo for SummaryCalls<'_> {
    fn kills(&self, _unit: &ProgramUnit, _stmt: StmtId) -> HashSet<SymId> {
        HashSet::new()
    }
    fn mods(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId> {
        ped_analysis::scalars::conservative_call_scalars(unit, stmt)
    }
    fn refs(&self, unit: &ProgramUnit, stmt: StmtId) -> HashSet<SymId> {
        ped_analysis::scalars::conservative_call_scalars(unit, stmt)
    }
    fn array_effect(&self, unit: &ProgramUnit, stmt: StmtId, sym: SymId) -> ArrayCallEffect {
        array_effect_from_summaries(
            self.program,
            self.cg,
            self.ui,
            self.sums,
            unit,
            stmt,
            sym,
        )
    }
}

/// Sectioned effect of the calls at `stmt` on the caller's array `sym`,
/// translated from callee summaries into caller affine terms. Shared by the
/// summary fixpoint (bottom-up propagation) and the [`crate::oracle`].
pub fn array_effect_from_summaries(
    program: &Program,
    cg: &CallGraph,
    ui: usize,
    sums: &[UnitSummary],
    unit: &ProgramUnit,
    stmt: StmtId,
    sym: SymId,
) -> ArrayCallEffect {
    let conservative = conservative_array_effect(unit, stmt, sym);
    let rank = unit.symbols.sym(sym).rank();
    let mut eff = ArrayCallEffect {
        may_read: false,
        may_write: false,
        kill: None,
        exposed: Some(ArraySection::Bottom),
    };
    let mut bindings = 0usize;
    for site in cg.sites_at(ui, stmt) {
        let Some(ci) = site.callee else { return conservative };
        let callee = &program.units[ci];
        let sum = &sums[ci];
        let mut locs: Vec<Loc> = site
            .args
            .iter()
            .enumerate()
            .filter(|(_, a)| base_sym(a) == Some(sym))
            .map(|(i, _)| Loc::Arg(i))
            .collect();
        if let Some(l @ Loc::Common(..)) = loc_of(unit, sym) {
            locs.push(l);
        }
        if locs.is_empty() {
            continue;
        }
        if sum.calls_external {
            return conservative;
        }
        bindings += locs.len();
        for loc in locs {
            let reads = sum.refs.contains(&loc);
            let writes = sum.mods.contains(&loc);
            eff.may_read |= reads;
            eff.may_write |= writes;
            // Precise sections only through an alias-free, rank-preserving
            // binding: a bare-variable actual (or the COMMON block itself).
            let precise = match &loc {
                Loc::Arg(i) => {
                    matches!(site.args.get(*i), Some(Expr::Var(_)))
                        && sym_of(callee, &loc)
                            .is_some_and(|f| callee.symbols.sym(f).rank() == rank)
                }
                Loc::Common(..) => {
                    sym_of(callee, &loc)
                        .is_some_and(|f| callee.symbols.sym(f).rank() == rank)
                }
            };
            if reads {
                let exp = if precise {
                    sum.use_secs
                        .get(&loc)
                        .and_then(|s| translate_section(s, unit, site, callee))
                } else {
                    None
                };
                eff.exposed = match (eff.exposed.take(), exp) {
                    (Some(acc), Some(e)) => Some(acc.union_may(&e)),
                    _ => None,
                };
            }
            if writes && precise {
                if let Some(k) = sum
                    .kill_secs
                    .get(&loc)
                    .and_then(|s| translate_section(s, unit, site, callee))
                {
                    if !k.has_top() {
                        eff.kill = Some(match eff.kill.take() {
                            Some(acc) => acc.union_must(&k),
                            None => k,
                        });
                    }
                }
            }
        }
    }
    // Aliased bindings (the same array bound twice, or an argument that is
    // also COMMON-visible) defeat sectioned reasoning.
    if bindings > 1 {
        eff.kill = None;
        if eff.may_read {
            eff.exposed = None;
        }
    }
    eff
}

/// Rewrite a callee-local affine section into caller terms at a call site:
/// formals substitute their actual-argument affine forms, COMMON members map
/// to the caller's aliasing symbol, PARAMETERs fold to constants.
fn translate_section(
    sec: &ArraySection,
    caller: &ProgramUnit,
    site: &CallSite,
    callee: &ProgramUnit,
) -> Option<ArraySection> {
    use ped_analysis::sections::SecDim as SD;
    let dims = match sec {
        ArraySection::Bottom => return Some(ArraySection::Bottom),
        ArraySection::Dims(ds) => ds,
    };
    let out = dims
        .iter()
        .map(|d| match d {
            SD::Top => Some(SD::Top),
            SD::Range(r) => Some(SD::Range(SecRange {
                lo: translate_affine(&r.lo, caller, site, callee)?,
                hi: translate_affine(&r.hi, caller, site, callee)?,
                stride: r.stride,
            })),
        })
        .collect::<Option<Vec<_>>>()?;
    Some(ArraySection::Dims(out))
}

fn translate_affine(
    a: &Affine,
    caller: &ProgramUnit,
    site: &CallSite,
    callee: &ProgramUnit,
) -> Option<Affine> {
    let caller_resolve = |s: SymId| match caller.symbols.sym(s).param {
        Some(ped_fortran::symbols::Const::Int(v)) => Some(v),
        _ => None,
    };
    let mut out = Affine::constant(a.konst);
    for (v, c) in &a.terms {
        if let Some(ped_fortran::symbols::Const::Int(k)) = callee.symbols.sym(*v).param {
            out = out.add(&Affine::constant(k * c));
            continue;
        }
        let rep = match loc_of(callee, *v)? {
            Loc::Arg(i) => to_affine(site.args.get(i)?, &caller_resolve)?,
            common => Affine::var(sym_of(caller, &common)?),
        };
        out = out.add(&rep.scale(*c));
    }
    Some(out)
}

fn merge_sec(map: &mut HashMap<Loc, Section>, loc: Loc, sec: Section) {
    match map.get_mut(&loc) {
        Some(existing) => *existing = existing.merge(&sec),
        None => {
            map.insert(loc, sec);
        }
    }
}

/// Section of one local array access: each subscript is `Exact` when it is
/// built only from call-invariant scalars and constants.
fn local_section(
    unit: &ProgramUnit,
    subs: &Option<Vec<Expr>>,
    invariant: &HashSet<SymId>,
) -> Section {
    match subs {
        None => Section { dims: Vec::new() },
        Some(subs) => Section {
            dims: subs
                .iter()
                .map(|e| {
                    if expr_uses_only(e, invariant, unit) {
                        SecDim::Exact(e.clone())
                    } else {
                        SecDim::Any
                    }
                })
                .collect(),
        },
    }
}

/// Base symbol of an actual argument expression (`x` or `a(…)`).
pub fn base_sym(e: &Expr) -> Option<SymId> {
    match e {
        Expr::Var(s) => Some(*s),
        Expr::ArrayRef { sym, .. } => Some(*sym),
        _ => None,
    }
}

/// Bind a callee interface location to caller interface locations at a call
/// site. COMMON locations are global and transfer unchanged; argument
/// locations follow the actual argument when it has an interface location
/// itself (effects on caller locals stay invisible at the interface — the
/// oracle re-binds per call site for intra-unit queries).
fn bind_loc(
    _program: &Program,
    caller: &ProgramUnit,
    site: &CallSite,
    _callee: &ProgramUnit,
    loc: &Loc,
) -> Vec<Loc> {
    match loc {
        Loc::Common(b, o) => vec![Loc::Common(b.clone(), *o)],
        Loc::Arg(i) => match site.args.get(*i).and_then(base_sym) {
            Some(sym) => loc_of(caller, sym).into_iter().collect(),
            None => Vec::new(),
        },
    }
}

/// Substitute callee-formal scalars in a section with the caller's actual
/// expressions. Returns `None` when any exact dimension fails to translate
/// (caller treats the effect as whole-array).
fn bind_section(
    program: &Program,
    caller: &ProgramUnit,
    site: &CallSite,
    callee: &ProgramUnit,
    sec: &Section,
    caller_invariant: &HashSet<SymId>,
) -> Option<Section> {
    let _ = program;
    let dims = sec
        .dims
        .iter()
        .map(|d| match d {
            SecDim::Any => Some(SecDim::Any),
            SecDim::Exact(e) => {
                let translated = subst_expr(e, caller, site, callee)?;
                if expr_uses_only(&translated, caller_invariant, caller) {
                    Some(SecDim::Exact(translated))
                } else {
                    Some(SecDim::Any)
                }
            }
        })
        .collect::<Option<Vec<_>>>()?;
    Some(Section { dims })
}

/// Rewrite an expression over callee formals into caller terms.
fn subst_expr(
    e: &Expr,
    caller: &ProgramUnit,
    site: &CallSite,
    callee: &ProgramUnit,
) -> Option<Expr> {
    Some(match e {
        Expr::Int(v) => Expr::Int(*v),
        Expr::Real(v) => Expr::Real(*v),
        Expr::Double(v) => Expr::Double(*v),
        Expr::Logical(b) => Expr::Logical(*b),
        Expr::Var(s) => {
            if let Some(c) = callee.symbols.sym(*s).param {
                match c {
                    ped_fortran::symbols::Const::Int(v) => return Some(Expr::Int(v)),
                    ped_fortran::symbols::Const::Real(v) => return Some(Expr::Real(v)),
                    ped_fortran::symbols::Const::Logical(b) => {
                        return Some(Expr::Logical(b))
                    }
                }
            }
            match loc_of(callee, *s)? {
                Loc::Arg(i) => site.args.get(i)?.clone(),
                common => Expr::Var(sym_of(caller, &common)?),
            }
        }
        Expr::Un { op, e } => Expr::Un {
            op: *op,
            e: Box::new(subst_expr(e, caller, site, callee)?),
        },
        Expr::Bin { op, l, r } => Expr::Bin {
            op: *op,
            l: Box::new(subst_expr(l, caller, site, callee)?),
            r: Box::new(subst_expr(r, caller, site, callee)?),
        },
        _ => return None,
    })
}

/// Result of the flow-sensitive scalar walk over a unit body.
struct FlowScalars {
    exposed: HashSet<SymId>,
    killed: HashSet<SymId>,
}

/// Structured definite-assignment walk over the unit body, using current
/// callee summaries at call statements.
fn flow_scalars(
    program: &Program,
    cg: &CallGraph,
    ui: usize,
    sums: &[UnitSummary],
) -> FlowScalars {
    let unit = &program.units[ui];
    let mut exposed = HashSet::new();
    let mut assigned = HashSet::new();
    let mut exits: Vec<HashSet<SymId>> = Vec::new();
    walk(
        program,
        cg,
        ui,
        sums,
        &unit.body,
        &mut assigned,
        &mut exposed,
        &mut exits,
    );
    exits.push(assigned);
    let killed = exits
        .iter()
        .skip(1)
        .fold(exits[0].clone(), |acc, s| acc.intersection(s).copied().collect());
    return FlowScalars { exposed, killed };

    #[allow(clippy::too_many_arguments)]
    fn walk(
        program: &Program,
        cg: &CallGraph,
        ui: usize,
        sums: &[UnitSummary],
        block: &[StmtId],
        assigned: &mut HashSet<SymId>,
        exposed: &mut HashSet<SymId>,
        exits: &mut Vec<HashSet<SymId>>,
    ) {
        let unit = &program.units[ui];
        for &sid in block {
            let st = unit.stmt(sid);
            let is_call = matches!(st.kind, StmtKind::Call { .. });
            for acc in stmt_accesses(unit, sid) {
                if acc.subs.is_some() || unit.symbols.sym(acc.sym).is_array() {
                    continue;
                }
                match acc.kind {
                    AccessKind::Read if !assigned.contains(&acc.sym) => {
                        exposed.insert(acc.sym);
                    }
                    AccessKind::CallArg if !is_call && !assigned.contains(&acc.sym) => {
                        exposed.insert(acc.sym);
                    }
                    _ => {}
                }
            }
            match &st.kind {
                StmtKind::Assign { lhs: LValue::Var(s), .. } => {
                    assigned.insert(*s);
                }
                StmtKind::Do(d) => {
                    assigned.insert(d.var);
                    let mut inner = assigned.clone();
                    walk(program, cg, ui, sums, &d.body, &mut inner, exposed, exits);
                }
                StmtKind::If { arms, else_block } => {
                    let entry = assigned.clone();
                    let mut result: Option<HashSet<SymId>> = None;
                    for (_, blk) in arms {
                        let mut a = entry.clone();
                        walk(program, cg, ui, sums, blk, &mut a, exposed, exits);
                        result = Some(match result {
                            None => a,
                            Some(r) => r.intersection(&a).copied().collect(),
                        });
                    }
                    match else_block {
                        Some(blk) => {
                            let mut a = entry.clone();
                            walk(program, cg, ui, sums, blk, &mut a, exposed, exits);
                            if let Some(r) = result {
                                *assigned = r.intersection(&a).copied().collect();
                            }
                        }
                        None => *assigned = entry,
                    }
                }
                StmtKind::Call { .. } => {
                    for site in cg.sites_at(ui, sid) {
                        match site.callee {
                            None => {
                                // External: may read anything it can see.
                                for a in &site.args {
                                    if let Some(sym) = base_sym(a) {
                                        if !unit.symbols.sym(sym).is_array()
                                            && !assigned.contains(&sym)
                                        {
                                            exposed.insert(sym);
                                        }
                                    }
                                }
                                for (id, s) in unit.symbols.iter() {
                                    if s.common.is_some()
                                        && !s.is_array()
                                        && !assigned.contains(&id)
                                    {
                                        exposed.insert(id);
                                    }
                                }
                            }
                            Some(ci) => {
                                let callee = &program.units[ci];
                                let csum = &sums[ci];
                                for loc in &csum.uses {
                                    for b in bind_loc(program, unit, site, callee, loc) {
                                        if let Some(sym) = sym_of(unit, &b) {
                                            if !assigned.contains(&sym) {
                                                exposed.insert(sym);
                                            }
                                        }
                                    }
                                }
                                for loc in &csum.kills {
                                    for b in bind_loc(program, unit, site, callee, loc) {
                                        if let Some(sym) = sym_of(unit, &b) {
                                            assigned.insert(sym);
                                        }
                                    }
                                }
                                // Direct scalar actual bound to a killed
                                // formal is assigned even if it is a caller
                                // local (no interface loc).
                                for loc in &csum.kills {
                                    if let Loc::Arg(i) = loc {
                                        if let Some(sym) =
                                            site.args.get(*i).and_then(base_sym)
                                        {
                                            if !unit.symbols.sym(sym).is_array() {
                                                assigned.insert(sym);
                                            }
                                        }
                                    }
                                }
                                for loc in &csum.uses {
                                    if let Loc::Arg(i) = loc {
                                        if let Some(sym) =
                                            site.args.get(*i).and_then(base_sym)
                                        {
                                            if !unit.symbols.sym(sym).is_array()
                                                && !assigned.contains(&sym)
                                            {
                                                exposed.insert(sym);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                StmtKind::Return | StmtKind::Stop => {
                    exits.push(assigned.clone());
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn setup(src: &str) -> (Program, CallGraph, Vec<UnitSummary>) {
        let p = parse_program(src).unwrap();
        let cg = CallGraph::build(&p);
        let sums = compute_summaries(&p, &cg);
        (p, cg, sums)
    }

    #[test]
    fn direct_mod_ref() {
        let (p, _, sums) = setup(
            "program t\ncall f(x, y)\nend\nsubroutine f(a, b)\nreal a, b\na = b + 1.0\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        assert!(sums[fi].mods.contains(&Loc::Arg(0)));
        assert!(!sums[fi].mods.contains(&Loc::Arg(1)));
        assert!(sums[fi].refs.contains(&Loc::Arg(1)));
        assert!(sums[fi].kills.contains(&Loc::Arg(0)), "a is assigned on every path");
        assert!(sums[fi].uses.contains(&Loc::Arg(1)));
        assert!(!sums[fi].uses.contains(&Loc::Arg(0)), "a is written before any read");
    }

    #[test]
    fn transitive_mod_through_chain() {
        let (p, _, sums) = setup(
            "program t\ncall outer(x)\nend\nsubroutine outer(u)\nreal u\ncall inner(u)\nend\n\
             subroutine inner(v)\nreal v\nv = 1.0\nend\n",
        );
        let oi = p.unit_index("outer").unwrap();
        assert!(sums[oi].mods.contains(&Loc::Arg(0)));
        assert!(sums[oi].kills.contains(&Loc::Arg(0)), "kill flows through the chain");
    }

    #[test]
    fn conditional_write_not_killed() {
        let (p, _, sums) = setup(
            "subroutine f(a, c)\nreal a, c\nif (c .gt. 0.0) then\na = 1.0\nendif\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        assert!(sums[fi].mods.contains(&Loc::Arg(0)));
        assert!(!sums[fi].kills.contains(&Loc::Arg(0)));
    }

    #[test]
    fn common_effects_are_global() {
        let (p, _, sums) = setup(
            "program t\ncommon /blk/ g, h\ncall f()\nend\nsubroutine f()\n\
             common /blk/ p, q\np = q + 1.0\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        assert!(sums[fi].mods.contains(&Loc::Common("blk".into(), 0)));
        assert!(sums[fi].refs.contains(&Loc::Common("blk".into(), 1)));
        // Main's symbol g aliases p through the block.
        let main = &p.units[0];
        let g = main.symbols.lookup("g").unwrap();
        assert_eq!(loc_of(main, g), Some(Loc::Common("blk".into(), 0)));
    }

    #[test]
    fn external_call_poisons() {
        let (p, _, sums) = setup("subroutine f(a)\nreal a\ncall unknown(a)\nend\n");
        let fi = p.unit_index("f").unwrap();
        assert!(sums[fi].calls_external);
        assert!(sums[fi].mods.contains(&Loc::Arg(0)));
    }

    #[test]
    fn array_section_exact_column() {
        // The callee writes column jc of a 2-d array: section (Any, Exact(jc)).
        let (p, _, sums) = setup(
            "subroutine colop(a, n, jc)\ninteger n, jc\nreal a(n, n)\ndo i = 1, n\n\
             a(i, jc) = 0.0\nenddo\nend\n",
        );
        let fi = p.unit_index("colop").unwrap();
        let sec = &sums[fi].mod_secs[&Loc::Arg(0)];
        assert_eq!(sec.dims.len(), 2);
        assert!(matches!(sec.dims[0], SecDim::Any), "loop-variant subscript");
        assert!(matches!(sec.dims[1], SecDim::Exact(_)), "jc is call-invariant");
        assert!(sec.is_refined());
    }

    #[test]
    fn section_binding_to_caller() {
        let (p, _, sums) = setup(
            "subroutine caller(b, m, j)\ninteger m, j\nreal b(m, m)\n\
             call colop(b, m, j + 1)\nend\nsubroutine colop(a, n, jc)\ninteger n, jc\n\
             real a(n, n)\ndo i = 1, n\na(i, jc) = 0.0\nenddo\nend\n",
        );
        let ci = p.unit_index("caller").unwrap();
        let sec = &sums[ci].mod_secs[&Loc::Arg(0)];
        // Second dim should be exact `j + 1` in caller terms.
        match &sec.dims[1] {
            SecDim::Exact(e) => {
                let s = ped_fortran::printer::print_expr(&p.units[ci], e);
                assert_eq!(s, "j + 1");
            }
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn section_merges_conflicting_columns_to_any() {
        let (p, _, sums) = setup(
            "subroutine f(a, j, k)\ninteger j, k\nreal a(10, 10)\na(1, j) = 0.0\n\
             a(2, k) = 0.0\nend\n",
        );
        let fi = p.unit_index("f").unwrap();
        let sec = &sums[fi].mod_secs[&Loc::Arg(0)];
        assert!(matches!(sec.dims[1], SecDim::Any), "j and k disagree");
        assert!(matches!(sec.dims[0], SecDim::Any), "1 and 2 disagree");
    }

    #[test]
    fn array_kill_section_through_call() {
        // The callee unconditionally overwrites v(1:n) before reading it:
        // kill [1:n] in formal terms, exposed ⊥.
        let (p, _, sums) = setup(
            "program t\nreal w(64), x(64)\ndo k = 1, 8\ncall sweep(w, x, 64)\nenddo\nend\n\
             subroutine sweep(v, u, n)\ninteger n\nreal v(n), u(n)\ndo j = 1, n\n\
             v(j) = u(j) * 2.0\nenddo\ndo j = 1, n\nu(j) = v(j) + 1.0\nenddo\nreturn\nend\n",
        );
        let si = p.unit_index("sweep").unwrap();
        let kill = sums[si].kill_secs.get(&Loc::Arg(0)).expect("v has a kill section");
        assert!(!kill.is_bottom() && !kill.has_top());
        let exposed = sums[si].use_secs.get(&Loc::Arg(0)).expect("v is read");
        assert!(exposed.is_bottom(), "reads of v are covered: {exposed:?}");
        // u is exposed (read before its overwrite).
        let eu = sums[si].use_secs.get(&Loc::Arg(1)).expect("u is read");
        assert!(!eu.is_bottom());
        // And the caller-side effect translates: w gets a kill, exposed ⊥.
        let (cg2, main) = (CallGraph::build(&p), 0usize);
        let mut call = None;
        ped_fortran::visit::for_each_stmt(&p.units[main], &p.units[main].body, &mut |s| {
            if matches!(p.units[main].stmt(s).kind, StmtKind::Call { .. }) {
                call = Some(s);
            }
        });
        let call = call.unwrap();
        let w = p.units[main].symbols.lookup("w").unwrap();
        let eff = array_effect_from_summaries(&p, &cg2, main, &sums, &p.units[main], call, w);
        assert!(eff.may_write && eff.may_read);
        assert!(eff.kill.is_some(), "kill survives translation");
        assert_eq!(eff.exposed, Some(ArraySection::Bottom));
    }

    #[test]
    fn partial_array_kill_not_summarized() {
        let (p, _, sums) = setup(
            "subroutine halfset(v, n)\ninteger n\nreal v(n)\ndo j = 2, n\nv(j) = 0.0\nenddo\n\
             s = v(1)\nreturn\nend\n",
        );
        let si = p.unit_index("halfset").unwrap();
        // Kill [2:n] exists, but v(1) is exposed.
        let exposed = sums[si].use_secs.get(&Loc::Arg(0)).expect("v is read");
        assert!(!exposed.is_bottom());
    }

    #[test]
    fn use_through_call_respects_kill_order() {
        // g kills t before f reads it… caller: call set(t); call use(t):
        // t must not be upward-exposed in the caller.
        let (p, _, sums) = setup(
            "subroutine top(t)\nreal t\ncall set(t)\ncall usee(t)\nend\n\
             subroutine set(x)\nreal x\nx = 1.0\nend\n\
             subroutine usee(y)\nreal y\nz = y\nend\n",
        );
        let ti = p.unit_index("top").unwrap();
        assert!(!sums[ti].uses.contains(&Loc::Arg(0)), "killed by SET before USEE reads");
        assert!(sums[ti].kills.contains(&Loc::Arg(0)));
    }
}
