//! # ped-interproc — interprocedural analysis for the ParaScope Editor
//!
//! "In ParaScope, analysis of interprocedural … constants, symbolics and
//! array sections improve the precision of its dependence analysis." The
//! workshop evaluation singled out interprocedural array side-effect
//! analysis as *crucial*. This crate implements the program-level analyses:
//!
//! * [`callgraph`] — call sites and the unit call graph;
//! * [`summary`] — per-procedure side-effect summaries: flow-insensitive
//!   MOD/REF (Banning), flow-sensitive scalar USE/KILL (Callahan), and
//!   bounded regular sections for arrays (Havlak & Kennedy), all propagated
//!   to a fixed point through the call graph with formal→actual binding;
//! * [`ipconst`] — interprocedural constant propagation via jump functions
//!   (constants inherited from callers, meet over all call sites);
//! * [`oracle`] — adapters plugging the summaries into `ped-dep`'s
//!   [`ped_dep::graph::SideEffects`] and `ped-analysis`'s
//!   [`ped_analysis::scalars::CallInfo`], with per-capability feature flags
//!   (the Table 3 experiment toggles each analysis off to measure its
//!   contribution).

pub mod callgraph;
pub mod incremental;
pub mod ipconst;
pub mod oracle;
pub mod summary;

pub use callgraph::{CallGraph, CallSite};
pub use incremental::EditProbe;
pub use oracle::{IpAnalysis, IpFlags, IpOracle};
pub use summary::{Loc, Section, SecDim, UnitSummary};
