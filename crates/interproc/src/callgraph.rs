//! Call-graph construction.
//!
//! One node per program unit; one [`CallSite`] per `CALL` statement or
//! user-function reference. Callees are resolved by name within the
//! program; unresolved names are *external* (worst-case effects). The
//! fixpoint analyses iterate over units directly, so cycles (recursion)
//! need no special casing — only monotone summaries.

use ped_fortran::visit::{for_each_expr_of_stmt, for_each_stmt};
use ped_fortran::{Expr, Program, StmtId, StmtKind};

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the calling unit in `program.units`.
    pub caller: usize,
    /// The statement containing the call.
    pub stmt: StmtId,
    /// Callee unit index; `None` for external procedures.
    pub callee: Option<usize>,
    /// Callee name (lower case).
    pub callee_name: String,
    /// Actual argument expressions.
    pub args: Vec<Expr>,
    /// True when this is a function reference inside an expression rather
    /// than a CALL statement.
    pub in_expr: bool,
}

/// The program call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All call sites.
    pub sites: Vec<CallSite>,
    /// Site indices per caller unit.
    pub sites_of_unit: Vec<Vec<usize>>,
    /// Caller unit indices per callee unit.
    pub callers_of: Vec<Vec<usize>>,
}

impl CallGraph {
    /// An empty graph over `n` units.
    pub(crate) fn empty(n: usize) -> CallGraph {
        CallGraph {
            sites: Vec::new(),
            sites_of_unit: vec![Vec::new(); n],
            callers_of: vec![Vec::new(); n],
        }
    }

    /// Build the call graph of a program.
    pub fn build(program: &Program) -> CallGraph {
        let mut cg = CallGraph::empty(program.units.len());
        for ui in 0..program.units.len() {
            for site in scan_unit_sites(program, ui) {
                cg.push_site(site);
            }
        }
        cg
    }

    /// Append a site, maintaining the per-unit and per-callee indexes.
    pub(crate) fn push_site(&mut self, site: CallSite) {
        let idx = self.sites.len();
        let caller = site.caller;
        let callee = site.callee;
        self.sites.push(site);
        self.sites_of_unit[caller].push(idx);
        if let Some(c) = callee {
            if !self.callers_of[c].contains(&caller) {
                self.callers_of[c].push(caller);
            }
        }
    }

    /// Call sites at a given statement of a unit.
    pub fn sites_at(&self, unit_idx: usize, stmt: StmtId) -> Vec<&CallSite> {
        self.sites_of_unit[unit_idx]
            .iter()
            .map(|&i| &self.sites[i])
            .filter(|s| s.stmt == stmt)
            .collect()
    }

    /// True when any call site in the program fails to resolve.
    pub fn has_external_calls(&self) -> bool {
        self.sites.iter().any(|s| s.callee.is_none())
    }

    /// All units transitively callable from `unit` (sorted; includes `unit`
    /// itself only when it is reachable through a cycle). This is the set
    /// of units whose summaries the given unit's analysis results can
    /// depend on.
    pub fn reachable_callees(&self, unit: usize) -> Vec<usize> {
        let mut seen = vec![false; self.sites_of_unit.len()];
        let mut stack: Vec<usize> = self.sites_of_unit[unit]
            .iter()
            .filter_map(|&si| self.sites[si].callee)
            .collect();
        let mut out = Vec::new();
        while let Some(c) = stack.pop() {
            if seen[c] {
                continue;
            }
            seen[c] = true;
            out.push(c);
            stack.extend(
                self.sites_of_unit[c].iter().filter_map(|&si| self.sites[si].callee),
            );
        }
        out.sort_unstable();
        out
    }
}

/// All call sites of one unit, in the statement pre-order `build` records
/// them (a CALL statement's own site precedes any function references in
/// its arguments). The incremental fast path rescans a single edited unit
/// with this and compares the result against the sites already indexed.
pub fn scan_unit_sites(program: &Program, ui: usize) -> Vec<CallSite> {
    let unit = &program.units[ui];
    let mut out = Vec::new();
    for_each_stmt(unit, &unit.body, &mut |sid| {
        let st = unit.stmt(sid);
        if let StmtKind::Call { name, args } = &st.kind {
            out.push(CallSite {
                caller: ui,
                stmt: sid,
                callee: program.unit_index(name),
                callee_name: name.to_string(),
                args: args.clone(),
                in_expr: false,
            });
        }
        for_each_expr_of_stmt(&st.kind, &mut |e| {
            if let Expr::Call { name, args } = e {
                if name != "__any__" {
                    out.push(CallSite {
                        caller: ui,
                        stmt: sid,
                        callee: program.unit_index(name),
                        callee_name: name.to_string(),
                        args: args.clone(),
                        in_expr: true,
                    });
                }
            }
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    fn program(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn resolves_internal_calls() {
        let p = program(
            "program t\ncall f(x)\nend\nsubroutine f(a)\nreal a\na = g(a)\nreturn\nend\n\
             real function g(b)\nreal b\ng = b + 1.0\nend\n",
        );
        let cg = CallGraph::build(&p);
        assert_eq!(cg.sites.len(), 2);
        assert_eq!(cg.sites[0].callee, p.unit_index("f"));
        assert!(!cg.sites[0].in_expr);
        assert_eq!(cg.sites[1].callee, p.unit_index("g"));
        assert!(cg.sites[1].in_expr);
        assert!(!cg.has_external_calls());
        assert_eq!(cg.callers_of[p.unit_index("f").unwrap()], vec![0]);
    }

    #[test]
    fn external_call_detected() {
        let p = program("program t\ncall mystery(x)\nend\n");
        let cg = CallGraph::build(&p);
        assert!(cg.has_external_calls());
        assert_eq!(cg.sites[0].callee, None);
    }

    #[test]
    fn sites_at_statement() {
        let p = program("program t\ncall f(x)\ncall f(y)\nend\nsubroutine f(a)\nreturn\nend\n");
        let cg = CallGraph::build(&p);
        let main = &p.units[0];
        assert_eq!(cg.sites_at(0, main.body[0]).len(), 1);
        assert_eq!(cg.sites_at(0, main.body[1]).len(), 1);
    }
}
