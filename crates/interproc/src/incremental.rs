//! Summary-preserving fast path across an edit of one unit.
//!
//! Most steering transformations (unroll, reverse, interchange, strip
//! mine…) rearrange a loop's interior without changing what the unit reads
//! or writes through its interface, which call sites it contains, or which
//! constants it feeds its callees. For those edits rerunning the
//! whole-program fixpoint is pure waste — nothing any *other* unit's
//! analysis consumes has moved. [`IpAnalysis::edit_probe`] captures the
//! edited unit's fixpoint contribution while the pre-edit AST is still
//! alive; after the edit [`IpAnalysis::try_update_unit`] verifies the
//! contribution is bit-identical and patches the call graph in place
//! (post-edit statement ids) instead of recomputing.
//!
//! Soundness: the global fixpoint is a pure function of every unit's body.
//! If the edited unit's call-site sequence (callee, call form, argument
//! text), the constants its jump functions produce, and its own
//! MOD/REF/USE/KILL/section summary are all unchanged, then every input the
//! other units' summaries and constant seeds depend on is unchanged, so the
//! old fixpoint is still *the* fixpoint and may be kept verbatim.

use crate::callgraph::{scan_unit_sites, CallGraph, CallSite};
use crate::oracle::IpAnalysis;
use crate::summary::summarize_unit;
use ped_analysis::cfg::Cfg;
use ped_analysis::constants::{eval, ConstEnv, Facts};
use ped_fortran::Program;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// What one unit contributed to the interprocedural fixpoint before an
/// edit. Must be captured pre-edit: the jump functions evaluate actual
/// arguments against the *old* body's constant environment.
#[derive(Debug, Clone)]
pub struct EditProbe {
    /// The unit about to be edited.
    pub unit_idx: usize,
    /// Hash of the constants this unit's call sites feed each callee.
    jump_sig: u64,
}

/// Hash of a site sequence's shape: callee name, call form, and the exact
/// argument expressions — everything except the statement ids, which
/// transforms renumber freely without semantic effect.
fn sites_sig(sites: &[&CallSite]) -> u64 {
    let mut h = DefaultHasher::new();
    for s in sites {
        s.callee_name.hash(&mut h);
        s.in_expr.hash(&mut h);
        format!("{:?}", s.args).hash(&mut h);
        0xa5u8.hash(&mut h);
    }
    h.finish()
}

/// Hash of the jump-function outputs of a unit's call sites: the constant
/// (or non-constant) value of every actual argument under the unit's
/// seeded constant environment.
fn jump_sig(program: &Program, unit_idx: usize, sites: &[&CallSite], seeds: &Facts) -> u64 {
    let unit = &program.units[unit_idx];
    let cfg = Cfg::build(unit);
    let env = ConstEnv::compute_seeded(unit, &cfg, seeds);
    let mut h = DefaultHasher::new();
    for s in sites {
        s.callee_name.hash(&mut h);
        for a in &s.args {
            format!("{:?}", eval(unit, env.at(s.stmt), a)).hash(&mut h);
        }
        0xa5u8.hash(&mut h);
    }
    h.finish()
}

impl IpAnalysis {
    /// Capture the pre-edit fixpoint contribution of `unit_idx`.
    pub fn edit_probe(&self, program: &Program, unit_idx: usize) -> EditProbe {
        let sites: Vec<&CallSite> = self.cg.sites_of_unit[unit_idx]
            .iter()
            .map(|&i| &self.cg.sites[i])
            .collect();
        EditProbe {
            unit_idx,
            jump_sig: jump_sig(program, unit_idx, &sites, &self.const_seeds[unit_idx]),
        }
    }

    /// Try to absorb an edit of one unit without rerunning the
    /// whole-program fixpoint. Returns `true` when the analysis was patched
    /// in place (call sites re-keyed to post-edit statement ids, summaries
    /// and constant seeds kept); `false` means the edit changed the unit's
    /// visible contribution and the caller must run a full `analyze`.
    pub fn try_update_unit(&mut self, program: &Program, probe: &EditProbe) -> bool {
        let ui = probe.unit_idx;
        if program.units.len() != self.summaries.len() || ui >= self.summaries.len() {
            return false;
        }
        let new_sites = scan_unit_sites(program, ui);
        let new_refs: Vec<&CallSite> = new_sites.iter().collect();
        let old_refs: Vec<&CallSite> =
            self.cg.sites_of_unit[ui].iter().map(|&i| &self.cg.sites[i]).collect();
        if sites_sig(&old_refs) != sites_sig(&new_refs) {
            return false;
        }
        if jump_sig(program, ui, &new_refs, &self.const_seeds[ui]) != probe.jump_sig {
            return false;
        }
        // Re-key the graph to post-edit statement ids before re-summarizing
        // (the flow-sensitive USE/KILL walk looks sites up by id), keeping
        // `build`'s per-caller grouping so downstream orderings are stable.
        let mut cg = CallGraph::empty(program.units.len());
        for caller in 0..program.units.len() {
            if caller == ui {
                for site in &new_sites {
                    cg.push_site(site.clone());
                }
            } else {
                for &si in &self.cg.sites_of_unit[caller] {
                    cg.push_site(self.cg.sites[si].clone());
                }
            }
        }
        let new_sum = summarize_unit(program, &cg, ui, &self.summaries);
        if new_sum != self.summaries[ui] {
            return false;
        }
        self.cg = cg;
        self.summaries[ui] = new_sum;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    const TWO_UNITS: &str = "program t\nreal x(10)\ninteger i\ndo i = 1, 10\n\
         x(i) = 0.0\nenddo\ncall f(x, 10)\nend\n\
         subroutine f(a, n)\ninteger n, i\nreal a(n)\ndo i = 1, n\na(i) = a(i) + 1.0\nenddo\nend\n";

    fn reversed_caller() -> &'static str {
        // Same program with the caller's loop reversed: summary-equivalent.
        "program t\nreal x(10)\ninteger i\ndo i = 10, 1, -1\n\
         x(i) = 0.0\nenddo\ncall f(x, 10)\nend\n\
         subroutine f(a, n)\ninteger n, i\nreal a(n)\ndo i = 1, n\na(i) = a(i) + 1.0\nenddo\nend\n"
    }

    #[test]
    fn summary_preserving_edit_is_absorbed() {
        let p0 = parse_program(TWO_UNITS).unwrap();
        let mut ip = IpAnalysis::analyze(&p0);
        let probe = ip.edit_probe(&p0, 0);
        let fps_before = ip.visible_fingerprints(&p0);

        let p1 = parse_program(reversed_caller()).unwrap();
        assert!(ip.try_update_unit(&p1, &probe), "reversal preserves the summary");
        let fresh = IpAnalysis::analyze(&p1);
        assert_eq!(ip.summaries, fresh.summaries);
        assert_eq!(ip.visible_fingerprints(&p1), fps_before);
        // Sites were re-keyed to the new AST's statement ids.
        assert_eq!(ip.cg.sites.len(), fresh.cg.sites.len());
        for (a, b) in ip.cg.sites.iter().zip(&fresh.cg.sites) {
            assert_eq!(a.stmt, b.stmt);
            assert_eq!(a.callee, b.callee);
        }
    }

    #[test]
    fn summary_changing_edit_is_rejected() {
        let p0 = parse_program(TWO_UNITS).unwrap();
        let mut ip = IpAnalysis::analyze(&p0);
        let probe = ip.edit_probe(&p0, 1);
        // Callee now also reads a neighbouring element: REF section changes.
        let p1 = parse_program(
            "program t\nreal x(10)\ninteger i\ndo i = 1, 10\nx(i) = 0.0\nenddo\n\
             call f(x, 10)\nend\nsubroutine f(a, n)\ninteger n, i\nreal a(n)\n\
             do i = 1, n\na(i) = a(1) + 1.0\nenddo\nend\n",
        )
        .unwrap();
        assert!(!ip.try_update_unit(&p1, &probe));
    }

    #[test]
    fn changed_constant_argument_is_rejected() {
        let p0 = parse_program(TWO_UNITS).unwrap();
        let mut ip = IpAnalysis::analyze(&p0);
        let probe = ip.edit_probe(&p0, 0);
        // The caller now passes a different constant: jump functions move.
        let p1 = parse_program(
            "program t\nreal x(10)\ninteger i\ndo i = 1, 10\nx(i) = 0.0\nenddo\n\
             call f(x, 5)\nend\nsubroutine f(a, n)\ninteger n, i\nreal a(n)\n\
             do i = 1, n\na(i) = a(i) + 1.0\nenddo\nend\n",
        )
        .unwrap();
        assert!(!ip.try_update_unit(&p1, &probe));
    }
}
