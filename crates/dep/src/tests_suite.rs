//! The hierarchical subscript test suite.
//!
//! Each test takes the affine forms of one subscript position of a
//! reference pair and the loop-nest context, and returns a [`Verdict`]:
//! proven independent, a constraint on directions/distances, or unknown.
//! The tests appear in increasing cost order, exactly the "hierarchical
//! suite … starting with inexpensive tests" of the paper:
//!
//! 1. **ZIV** — neither side uses a loop index;
//! 2. **strong SIV** — `a·i + c₁` vs `a·i + c₂`: exact distance;
//! 3. **weak-zero SIV** — `a·i + c₁` vs `c₂`: a single iteration touches
//!    the element;
//! 4. **weak-crossing SIV** — `a·i + c₁` vs `-a·i + c₂`: a crossing point;
//! 5. **exact SIV** — general `a₁·i + c₁` vs `a₂·i + c₂` via extended GCD
//!    over the iteration box;
//! 6. **GCD** (MIV) — divisibility over all coefficients;
//! 7. **Banerjee** (MIV) — real-valued bounds of the dependence function
//!    under a direction vector, evaluated exactly by vertex enumeration of
//!    the constrained iteration region.
//!
//! Symbolic terms that appear identically on both sides cancel in the
//! affine difference, so `a(jlow + i)` vs `a(jlow + i - 1)` is a strong-SIV
//! pair with distance 1 — the symbolic-subscript capability the paper's
//! users depended on.

use crate::nest::NestCtx;
use crate::vectors::{DirSet, Direction};
use ped_analysis::symbolic::Affine;
use ped_fortran::SymId;

/// Result of one subscript test.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No dependence can arise from this subscript.
    Independent,
    /// Dependence possible, constrained as given.
    Constraint(Constraint),
    /// The test could not conclude anything.
    Unknown,
}

/// A constraint contributed by one subscript.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Per-level direction sets (length = nest depth).
    pub dirs: Vec<DirSet>,
    /// Per-level distances when exactly known.
    pub dist: Vec<Option<i64>>,
    /// True when produced by an exact test (proves the dependence exists
    /// whenever the directions are realizable).
    pub exact: bool,
}

impl Constraint {
    fn unconstrained(n: usize, exact: bool) -> Constraint {
        Constraint { dirs: vec![DirSet::ANY; n], dist: vec![None; n], exact }
    }
}

/// One subscript position of a pair, decomposed against the nest.
#[derive(Debug, Clone)]
pub struct SubscriptPair {
    /// Source-side coefficients per nest level.
    pub a: Vec<i64>,
    /// Sink-side coefficients per nest level.
    pub b: Vec<i64>,
    /// `rest(source) - rest(sink)` with index terms removed; `None` when
    /// the symbolic parts do not cancel to a constant.
    pub delta: Option<i64>,
    /// Levels referenced by either side.
    pub levels: Vec<usize>,
}

/// Decompose an affine pair against the nest's index variables.
/// Returns `None` if either side is non-affine (caller treats the subscript
/// as untestable).
pub fn decompose(src: &Affine, sink: &Affine, index_vars: &[SymId]) -> SubscriptPair {
    let mut a = Vec::with_capacity(index_vars.len());
    let mut b = Vec::with_capacity(index_vars.len());
    let mut rs = src.clone();
    let mut rk = sink.clone();
    for &v in index_vars {
        a.push(rs.take(v));
        b.push(rk.take(v));
    }
    let d = rs.sub(&rk);
    let delta = d.is_const().then_some(d.konst);
    let levels = (0..index_vars.len()).filter(|&k| a[k] != 0 || b[k] != 0).collect();
    SubscriptPair { a, b, delta, levels }
}

/// Complexity class of a subscript pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Complexity {
    /// Zero index variables.
    Ziv,
    /// Exactly one index variable (at this level).
    Siv(usize),
    /// More than one index variable.
    Miv,
}

impl SubscriptPair {
    /// Classify by the number of index variables involved.
    pub fn complexity(&self) -> Complexity {
        match self.levels.as_slice() {
            [] => Complexity::Ziv,
            [k] => Complexity::Siv(*k),
            _ => Complexity::Miv,
        }
    }
}

// ------------------------------------------------------------- ZIV ----

/// ZIV test: no index variable on either side.
pub fn ziv(p: &SubscriptPair, nest: &NestCtx) -> Verdict {
    debug_assert_eq!(p.complexity(), Complexity::Ziv);
    match p.delta {
        Some(0) => Verdict::Constraint(Constraint::unconstrained(nest.depth(), true)),
        Some(_) => Verdict::Independent,
        None => Verdict::Unknown, // differing symbolic terms
    }
}

// ------------------------------------------------------------- SIV ----

/// Dispatch the SIV tests for the single involved level `k`.
pub fn siv(p: &SubscriptPair, nest: &NestCtx, k: usize) -> (Verdict, SivKind) {
    let (a, b) = (p.a[k], p.b[k]);
    if a == b && a != 0 {
        (strong_siv(p, nest, k), SivKind::Strong)
    } else if a != 0 && b == 0 {
        (weak_zero_siv(p, nest, k, true), SivKind::WeakZero)
    } else if a == 0 && b != 0 {
        (weak_zero_siv(p, nest, k, false), SivKind::WeakZero)
    } else if a == -b && a != 0 {
        (weak_crossing_siv(p, nest, k), SivKind::WeakCrossing)
    } else {
        (exact_siv(p, nest, k), SivKind::Exact)
    }
}

/// Which SIV variant ran (for provenance display).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SivKind {
    /// Equal coefficients.
    Strong,
    /// One coefficient zero.
    WeakZero,
    /// Opposite coefficients.
    WeakCrossing,
    /// General coefficients (extended-GCD box test).
    Exact,
}

/// Strong SIV: `a·I + r₁ = a·J + r₂` ⇒ distance `J − I = (r₁−r₂)/a`.
fn strong_siv(p: &SubscriptPair, nest: &NestCtx, k: usize) -> Verdict {
    let a = p.a[k];
    let Some(delta) = p.delta else { return Verdict::Unknown };
    if delta % a != 0 {
        return Verdict::Independent;
    }
    let dist = delta / a; // J - I
    // |dist| must fit in the iteration space when the trip count is known.
    if let Some(trip) = nest.loops[k].trip_count() {
        if dist.abs() > (trip - 1).max(0) {
            return Verdict::Independent;
        }
    }
    let dir = match dist.cmp(&0) {
        std::cmp::Ordering::Greater => DirSet::LT,
        std::cmp::Ordering::Equal => DirSet::EQ,
        std::cmp::Ordering::Less => DirSet::GT,
    };
    let mut c = Constraint::unconstrained(nest.depth(), true);
    c.dirs[k] = dir;
    c.dist[k] = Some(dist);
    Verdict::Constraint(c)
}

/// Weak-zero SIV: one side does not move with the loop; the moving side
/// touches the common element in exactly one iteration.
fn weak_zero_siv(p: &SubscriptPair, nest: &NestCtx, k: usize, src_moves: bool) -> Verdict {
    let coef = if src_moves { p.a[k] } else { p.b[k] };
    let Some(delta) = p.delta else { return Verdict::Unknown };
    // src moves: coef·I = r₂ − r₁ = −delta ⇒ I = −delta/coef
    // sink moves: coef·J = r₁ − r₂ = delta ⇒ J = delta/coef
    let num = if src_moves { -delta } else { delta };
    if num % coef != 0 {
        return Verdict::Independent;
    }
    let iter = num / coef;
    let l = &nest.loops[k];
    if let (Some(lo), Some(hi)) = (l.lo_const, l.hi_const) {
        if iter < lo.min(hi) || iter > hi.max(lo) {
            return Verdict::Independent;
        }
        // In bounds: the dependence is pinned at `iter`; any direction
        // between it and the free index remains possible.
        return Verdict::Constraint(Constraint::unconstrained(nest.depth(), true));
    }
    // Bounds unknown: the fixed iteration may not exist.
    let mut c = Constraint::unconstrained(nest.depth(), false);
    c.exact = false;
    Verdict::Constraint(c)
}

/// Weak-crossing SIV: `a·I + r₁ = −a·J + r₂` ⇒ `I + J = (r₂−r₁)/a`.
fn weak_crossing_siv(p: &SubscriptPair, nest: &NestCtx, k: usize) -> Verdict {
    let a = p.a[k];
    let Some(delta) = p.delta else { return Verdict::Unknown };
    let num = -delta; // r₂ − r₁
    if num % a != 0 {
        return Verdict::Independent;
    }
    let sum = num / a; // I + J
    let l = &nest.loops[k];
    if let (Some(lo), Some(hi)) = (l.lo_const, l.hi_const) {
        if sum < 2 * lo || sum > 2 * hi {
            return Verdict::Independent;
        }
        return Verdict::Constraint(Constraint::unconstrained(nest.depth(), true));
    }
    let mut c = Constraint::unconstrained(nest.depth(), false);
    c.exact = false;
    Verdict::Constraint(c)
}

/// Exact SIV: `a·I − b·J = r₂ − r₁` solved over the iteration box by the
/// extended Euclidean algorithm, with per-direction feasibility.
fn exact_siv(p: &SubscriptPair, nest: &NestCtx, k: usize) -> Verdict {
    let (a, b) = (p.a[k], p.b[k]);
    let Some(delta) = p.delta else { return Verdict::Unknown };
    let c = -delta; // a·I − b·J = r₂ − r₁ = −delta
    let (g, x0, y0) = ext_gcd(a, -b);
    if g == 0 {
        // Both coefficients zero cannot reach here (handled as ZIV).
        return Verdict::Unknown;
    }
    if c % g != 0 {
        return Verdict::Independent;
    }
    let l = &nest.loops[k];
    let (Some(lo), Some(hi)) = (l.lo_const, l.hi_const) else {
        let mut con = Constraint::unconstrained(nest.depth(), false);
        con.exact = false;
        return Verdict::Constraint(con);
    };
    // Particular solution scaled by c/g; general solution:
    //   I = i0 + (−b/g)·t,  J = j0 − (a/g)·t
    let scale = c / g;
    let i0 = x0 as i128 * scale as i128;
    let j0 = y0 as i128 * scale as i128;
    let di = (-b / g) as i128;
    let dj = -(a / g) as i128;
    // Feasibility of I,J ∈ [lo,hi] with an optional direction constraint,
    // via interval intersection over t (both I and J are affine in t).
    let feasible = |rel: Option<Direction>| -> bool {
        let mut t_lo = i128::MIN / 4;
        let mut t_hi = i128::MAX / 4;
        let mut add = |coef: i128, base: i128, lo: i128, hi: i128| -> bool {
            // lo ≤ base + coef·t ≤ hi  ⇔  a1 ≤ coef·t ≤ b1
            if coef == 0 {
                return base >= lo && base <= hi;
            }
            let (mut a1, mut b1) = (lo - base, hi - base);
            if coef < 0 {
                // Negate both sides so the divisor becomes positive.
                let t = a1;
                a1 = -b1;
                b1 = -t;
            }
            t_lo = t_lo.max(div_ceil(a1, coef.abs()));
            t_hi = t_hi.min(div_floor(b1, coef.abs()));
            true
        };
        if !add(di, i0, lo as i128, hi as i128) {
            return false;
        }
        if !add(dj, j0, lo as i128, hi as i128) {
            return false;
        }
        // Direction constraint on I − J = (i0 − j0) + (di − dj)·t.
        // (Not collapsible into guards: `add` narrows t_lo/t_hi as a side
        // effect, and a failed guard would fall through to the wrong arm.)
        #[allow(clippy::collapsible_match)]
        match rel {
            None => {}
            Some(Direction::Lt) => {
                // I − J ≤ −1
                if !add(di - dj, i0 - j0, i128::MIN / 8, -1) {
                    return false;
                }
            }
            Some(Direction::Eq) => {
                if !add(di - dj, i0 - j0, 0, 0) {
                    return false;
                }
            }
            Some(Direction::Gt) => {
                if !add(di - dj, i0 - j0, 1, i128::MAX / 8) {
                    return false;
                }
            }
        }
        t_lo <= t_hi
    };
    if !feasible(None) {
        return Verdict::Independent;
    }
    let mut dirs = DirSet::NONE;
    for d in [Direction::Lt, Direction::Eq, Direction::Gt] {
        if feasible(Some(d)) {
            dirs = dirs.union(DirSet::single(d));
        }
    }
    if dirs.is_empty() {
        return Verdict::Independent;
    }
    let mut con = Constraint::unconstrained(nest.depth(), true);
    con.dirs[k] = dirs;
    Verdict::Constraint(con)
}

/// Extended GCD: returns `(g, x, y)` with `a·x + b·y = g = gcd(|a|,|b|)`.
pub fn ext_gcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        if a == 0 {
            return (0, 0, 0);
        }
        return (a.abs(), a.signum(), 0);
    }
    let (g, x1, y1) = ext_gcd(b, a % b);
    (g, y1, x1 - (a / b) * y1)
}

fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

// ------------------------------------------------------------- MIV ----

/// GCD test over a full MIV subscript: independence when the gcd of all
/// coefficients does not divide the constant difference.
pub fn gcd_test(p: &SubscriptPair) -> Verdict {
    let Some(delta) = p.delta else { return Verdict::Unknown };
    let mut g: i64 = 0;
    for k in 0..p.a.len() {
        g = gcd(g, p.a[k]);
        g = gcd(g, p.b[k]);
    }
    if g == 0 {
        return Verdict::Unknown;
    }
    if delta % g != 0 {
        Verdict::Independent
    } else {
        Verdict::Unknown
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Banerjee bounds test: is `Σ aₖ·Iₖ − Σ bₖ·Jₖ = −delta` solvable over the
/// real relaxation of the iteration region restricted by the direction
/// sets? Returns `Verdict::Independent` when the target falls outside the
/// attainable interval. Per-level contributions are bounded exactly by
/// vertex enumeration of the (triangular / square) region each direction
/// induces.
pub fn banerjee(p: &SubscriptPair, nest: &NestCtx, dirs: &[DirSet]) -> Verdict {
    let Some(delta) = p.delta else { return Verdict::Unknown };
    let target = -delta;
    let mut min: i64 = 0;
    let mut max: i64 = 0;
    let mut min_known = true;
    let mut max_known = true;
    for (k, &dir) in dirs.iter().enumerate().take(nest.depth()) {
        let (a, b) = (p.a[k], p.b[k]);
        if a == 0 && b == 0 {
            continue;
        }
        let (cmin, cmax) = level_bounds(a, b, &nest.loops[k], dir);
        // An empty level region (e.g. `<` in a single-trip loop) means no
        // iteration pair satisfies the direction vector at all.
        if cmin == Some(i64::MAX) {
            return Verdict::Independent;
        }
        match cmin {
            Some(v) => min = min.saturating_add(v),
            None => min_known = false,
        }
        match cmax {
            Some(v) => max = max.saturating_add(v),
            None => max_known = false,
        }
    }
    if (min_known && target < min) || (max_known && target > max) {
        return Verdict::Independent;
    }
    Verdict::Unknown
}

/// Exact min/max of `a·I − b·J` with `I, J` in the loop's range under the
/// direction restriction. `Some(i64::MAX)` as the min marks an empty
/// region. `None` means unbounded/unknown (symbolic bounds).
fn level_bounds(a: i64, b: i64, l: &crate::nest::LoopCtx, dir: DirSet) -> (Option<i64>, Option<i64>) {
    if let (Some(lo), Some(hi)) = (l.lo_const, l.hi_const) {
        if hi < lo {
            return (Some(i64::MAX), Some(i64::MIN));
        }
        let f = |i: i64, j: i64| a * i - b * j;
        let mut pts: Vec<(i64, i64)> = Vec::new();
        if dir.contains(Direction::Eq) {
            pts.push((lo, lo));
            pts.push((hi, hi));
        }
        if dir.contains(Direction::Lt) && hi > lo {
            pts.push((lo, lo + 1));
            pts.push((lo, hi));
            pts.push((hi - 1, hi));
        }
        if dir.contains(Direction::Gt) && hi > lo {
            pts.push((lo + 1, lo));
            pts.push((hi, lo));
            pts.push((hi, hi - 1));
        }
        if pts.is_empty() {
            return (Some(i64::MAX), Some(i64::MIN));
        }
        let min = pts.iter().map(|&(i, j)| f(i, j)).min().expect("nonempty");
        let max = pts.iter().map(|&(i, j)| f(i, j)).max().expect("nonempty");
        (Some(min), Some(max))
    } else {
        // Symbolic bounds: only the a == b special cases stay bounded.
        if a == b {
            if dir == DirSet::EQ {
                return (Some(0), Some(0));
            }
            if dir == DirSet::LT {
                // a(I − J) with I − J ≤ −1.
                return if a > 0 { (None, Some(-a)) } else { (Some(-a), None) };
            }
            if dir == DirSet::GT {
                return if a > 0 { (Some(a), None) } else { (None, Some(a)) };
            }
        }
        (None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::LoopCtx;
    use ped_analysis::symbolic::Affine;
    use ped_fortran::StmtId;

    fn loop_ctx(var: u32, lo: i64, hi: i64) -> LoopCtx {
        LoopCtx {
            header: StmtId(var),
            var: SymId(var),
            lo: Some(Affine::constant(lo)),
            hi: Some(Affine::constant(hi)),
            lo_const: Some(lo),
            hi_const: Some(hi),
            step: Some(1),
        }
    }

    fn nest1(lo: i64, hi: i64) -> NestCtx<'static> {
        NestCtx { loops: vec![loop_ctx(0, lo, hi)], resolve: Box::new(|_| None) }
    }

    fn nest2() -> NestCtx<'static> {
        NestCtx {
            loops: vec![loop_ctx(0, 1, 10), loop_ctx(1, 1, 10)],
            resolve: Box::new(|_| None),
        }
    }

    fn aff(coeffs: &[(u32, i64)], k: i64) -> Affine {
        let mut a = Affine::constant(k);
        for &(v, c) in coeffs {
            a = a.add(&Affine::var(SymId(v)).scale(c));
        }
        a
    }

    #[test]
    fn ziv_const_distinct_independent() {
        let n = nest1(1, 10);
        let p = decompose(&aff(&[], 1), &aff(&[], 2), &n.index_vars());
        assert_eq!(ziv(&p, &n), Verdict::Independent);
    }

    #[test]
    fn ziv_symbolic_cancel() {
        // a(m+1) vs a(m+1): symbolic parts cancel → dependent (equal).
        let n = nest1(1, 10);
        let m = 77;
        let p = decompose(&aff(&[(m, 1)], 1), &aff(&[(m, 1)], 1), &n.index_vars());
        assert!(matches!(ziv(&p, &n), Verdict::Constraint(_)));
        // a(m+1) vs a(m+2) → independent even though m is unknown.
        let p2 = decompose(&aff(&[(m, 1)], 1), &aff(&[(m, 1)], 2), &n.index_vars());
        assert_eq!(ziv(&p2, &n), Verdict::Independent);
        // a(m) vs a(k): distinct symbols → unknown.
        let p3 = decompose(&aff(&[(m, 1)], 0), &aff(&[(99, 1)], 0), &n.index_vars());
        assert_eq!(ziv(&p3, &n), Verdict::Unknown);
    }

    #[test]
    fn strong_siv_distance() {
        // a(i) vs a(i-1): src i, sink i-1 ⇒ delta = 0 − (−1) = 1, dist 1.
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, 1)], -1), &n.index_vars());
        let (v, kind) = siv(&p, &n, 0);
        assert_eq!(kind, SivKind::Strong);
        match v {
            Verdict::Constraint(c) => {
                assert_eq!(c.dist[0], Some(1));
                assert_eq!(c.dirs[0], DirSet::LT);
                assert!(c.exact);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn strong_siv_distance_exceeds_trip() {
        // a(i) vs a(i+100) in a 10-trip loop: independent.
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, 1)], 100), &n.index_vars());
        assert_eq!(siv(&p, &n, 0).0, Verdict::Independent);
    }

    #[test]
    fn strong_siv_indivisible() {
        // a(2i) vs a(2i+1): never equal.
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 2)], 0), &aff(&[(0, 2)], 1), &n.index_vars());
        assert_eq!(siv(&p, &n, 0).0, Verdict::Independent);
    }

    #[test]
    fn strong_siv_symbolic_delta_unknown() {
        // a(i) vs a(i+m): unknown (m unresolved).
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, 1), (5, 1)], 0), &n.index_vars());
        assert_eq!(siv(&p, &n, 0).0, Verdict::Unknown);
    }

    #[test]
    fn weak_zero_in_and_out_of_bounds() {
        // a(i) vs a(5) in i=1..10: dependent (pinned at i=5).
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[], 5), &n.index_vars());
        let (v, kind) = siv(&p, &n, 0);
        assert_eq!(kind, SivKind::WeakZero);
        assert!(matches!(v, Verdict::Constraint(c) if c.exact));
        // a(i) vs a(20): out of range.
        let p2 = decompose(&aff(&[(0, 1)], 0), &aff(&[], 20), &n.index_vars());
        assert_eq!(siv(&p2, &n, 0).0, Verdict::Independent);
    }

    #[test]
    fn weak_crossing() {
        // a(i) vs a(11-i), i = 1..10: crossing at 5.5 ⇒ i+j = 11 within
        // [2,20] ⇒ dependent.
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, -1)], 11), &n.index_vars());
        let (v, kind) = siv(&p, &n, 0);
        assert_eq!(kind, SivKind::WeakCrossing);
        assert!(matches!(v, Verdict::Constraint(_)));
        // a(i) vs a(21-i): writes touch 1..10, reads 11..20 ⇒ independent.
        let p2 = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, -1)], 21), &n.index_vars());
        assert_eq!(siv(&p2, &n, 0).0, Verdict::Independent);
    }

    #[test]
    fn exact_siv_box() {
        // a(2i+1) vs a(3j): 2I + 1 = 3J over [1,10]²: I=1,J=1; I=4,J=3 …
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 2)], 1), &aff(&[(0, 3)], 0), &n.index_vars());
        let (v, kind) = siv(&p, &n, 0);
        assert_eq!(kind, SivKind::Exact);
        assert!(matches!(v, Verdict::Constraint(_)));
        // a(2i) vs a(2j+1) handled by strong? no: coefficients equal → would
        // be strong; use a(4i) vs a(2j+1): 4I − 2J = 1 unsolvable (parity).
        let p2 = decompose(&aff(&[(0, 4)], 0), &aff(&[(0, 2)], 1), &n.index_vars());
        assert_eq!(siv(&p2, &n, 0).0, Verdict::Independent);
    }

    #[test]
    fn exact_siv_direction_narrowing() {
        // a(i) vs a(2j): I = 2J over [1,10]² forces I > J except I=J=0
        // (excluded) ⇒ only Gt (I>J) remains… I=2J ⇒ I−J = J ≥ 1 ⇒ Gt.
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, 2)], 0), &n.index_vars());
        match siv(&p, &n, 0).0 {
            Verdict::Constraint(c) => assert_eq!(c.dirs[0], DirSet::GT),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gcd_miv() {
        // a(2i + 4j) vs a(2i + 4j + 1): gcd 2 ∤ 1 ⇒ independent.
        let n = nest2();
        let p = decompose(
            &aff(&[(0, 2), (1, 4)], 0),
            &aff(&[(0, 2), (1, 4)], 1),
            &n.index_vars(),
        );
        assert_eq!(gcd_test(&p), Verdict::Independent);
        let p2 = decompose(
            &aff(&[(0, 2), (1, 4)], 0),
            &aff(&[(0, 2), (1, 4)], 2),
            &n.index_vars(),
        );
        assert_eq!(gcd_test(&p2), Verdict::Unknown);
    }

    #[test]
    fn banerjee_prunes_direction() {
        // a(i+j) vs a(i+j+25) over [1,10]²: max of (I₁+J₁)−(I₂+J₂) style…
        // target −delta = 25; attainable range of ΣaI − ΣbJ under ANY is
        // [(1+1)−(10+10), (10+10)−(1+1)] = [−18, 18] ⇒ independent.
        let n = nest2();
        let p = decompose(
            &aff(&[(0, 1), (1, 1)], 0),
            &aff(&[(0, 1), (1, 1)], 25),
            &n.index_vars(),
        );
        assert_eq!(banerjee(&p, &n, &[DirSet::ANY, DirSet::ANY]), Verdict::Independent);
        // With delta 5 it stays possible.
        let p2 = decompose(
            &aff(&[(0, 1), (1, 1)], 0),
            &aff(&[(0, 1), (1, 1)], 5),
            &n.index_vars(),
        );
        assert_eq!(banerjee(&p2, &n, &[DirSet::ANY, DirSet::ANY]), Verdict::Unknown);
    }

    #[test]
    fn banerjee_direction_specific() {
        // Source a(i) vs sink a(i+1): equality needs I = J + 1, i.e. I > J.
        // Under `<` (I < J) it is impossible ⇒ independent; under `>` it is
        // exactly realizable ⇒ unknown (dependence possible).
        let n = nest1(1, 10);
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, 1)], 1), &n.index_vars());
        assert_eq!(banerjee(&p, &n, &[DirSet::LT]), Verdict::Independent);
        assert_eq!(banerjee(&p, &n, &[DirSet::GT]), Verdict::Unknown);
    }

    #[test]
    fn banerjee_symbolic_equal_coeff() {
        // Unknown bounds, source a(i) vs sink a(i+1): target I − J = 1.
        // At `=` contribution is exactly 0 ⇒ independent even with
        // symbolic bounds; at `<` contribution ≤ −1 ⇒ independent; at `>`
        // contribution ≥ 1 reaches the target ⇒ unknown.
        let mut n = nest1(1, 10);
        n.loops[0].lo_const = None;
        n.loops[0].hi_const = None;
        let p = decompose(&aff(&[(0, 1)], 0), &aff(&[(0, 1)], 1), &n.index_vars());
        assert_eq!(banerjee(&p, &n, &[DirSet::EQ]), Verdict::Independent);
        assert_eq!(banerjee(&p, &n, &[DirSet::LT]), Verdict::Independent);
        assert_eq!(banerjee(&p, &n, &[DirSet::GT]), Verdict::Unknown);
    }

    #[test]
    fn ext_gcd_identity() {
        for (a, b) in [(6, 4), (-6, 4), (7, 3), (12, 18), (5, 0)] {
            let (g, x, y) = ext_gcd(a, b);
            assert_eq!(a * x + b * y, g, "a={a} b={b}");
            assert_eq!(g, gcd(a, b));
        }
    }

    #[test]
    fn decompose_levels() {
        let n = nest2();
        let p = decompose(&aff(&[(0, 2)], 0), &aff(&[(1, 3)], 1), &n.index_vars());
        assert_eq!(p.levels, vec![0, 1]);
        assert_eq!(p.complexity(), Complexity::Miv);
        assert_eq!(p.a, vec![2, 0]);
        assert_eq!(p.b, vec![0, 3]);
        assert_eq!(p.delta, Some(-1));
    }

    /// Shrunken property-test regression (once checked in as a proptest
    /// regression seed): src `0 + 0·i + 0·j`, sink `0 − 1·i + 0·j + m`
    /// with explicit `Mul(Int(0), Var)` terms, over a 2-deep `1..5` nest.
    /// The zero coefficients must fold away (src is ZIV-constant 0, sink is
    /// weak-zero SIV in `i`) and the symbolic `m` must keep the outcome
    /// conservative: every dependence the brute-force oracle realizes for
    /// `m = 1` has to be covered by the reported vectors.
    #[test]
    fn zero_coefficient_symbolic_pair_regression() {
        use crate::oracle::{covers, enumerate_deps, OracleLoop};
        use ped_fortran::{BinOp, Expr};

        let term = |c: i64, v: u32| {
            Expr::bin(BinOp::Mul, Expr::Int(c), Expr::Var(SymId(v)))
        };
        let src = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Add, Expr::Int(0), term(0, 0)),
            term(0, 1),
        );
        let sink = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Add, Expr::Int(0), term(-1, 0)),
                term(0, 1),
            ),
            Expr::Var(SymId(9)),
        );
        let nest = NestCtx {
            loops: vec![loop_ctx(0, 1, 5), loop_ctx(1, 1, 5)],
            resolve: Box::new(|_| None),
        };
        let outcome = crate::driver::test_pair(
            std::slice::from_ref(&src),
            std::slice::from_ref(&sink),
            &nest,
        );
        assert!(!outcome.independent, "m unknown: a dependence must be assumed");

        let oracle_nest = [
            OracleLoop { var: SymId(0), lo: 1, hi: 5, step: 1 },
            OracleLoop { var: SymId(1), lo: 1, hi: 5, step: 1 },
        ];
        let mut syms = std::collections::HashMap::new();
        syms.insert(SymId(9), 1);
        let real = enumerate_deps(
            std::slice::from_ref(&src),
            std::slice::from_ref(&sink),
            &oracle_nest,
            &syms,
        )
        .unwrap();
        assert!(!real.is_empty(), "0 = −i + m has solutions for m = 1");
        let reported: Vec<crate::vectors::DirVector> =
            outcome.vectors.iter().map(|v| v.dirs.clone()).collect();
        for r in &real {
            assert!(covers(&reported, r), "{r:?} not covered by {reported:?}");
        }
    }
}
