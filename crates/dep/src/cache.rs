//! Memoized subscript-pair testing.
//!
//! Whole-program analysis tests the same shapes over and over: `a(i)` vs
//! `a(i-1)` under a `1..n` loop appears in every stencil of every unit.
//! [`PairCache`] memoizes [`test_pair`] outcomes under a *canonical* key so
//! identical pairs — across loops, units, and symbol tables — are tested
//! once. The map is sharded behind mutexes so `analyze_all`'s worker
//! threads share one cache without serializing on a single lock.
//!
//! ## Key soundness
//!
//! The entire test suite (ZIV → SIV variants → GCD → Banerjee) consumes
//! only the *resolved* affine forms of the subscripts and, per nest level,
//! `(lo_const, hi_const, step)` — see `tests_suite`; the `resolve` hook
//! acts solely through `NestCtx::affine` and the constant bounds, both of
//! which are applied *before* the key is formed. Within an affine form,
//! index variables are rewritten to their nest level and every other
//! symbol to its first-appearance ordinal across the whole pair, so key
//! equality implies a symbol-renaming isomorphism between the two queries
//! — and every test is invariant under such renamings. Collisions can
//! therefore never conflate distinct outcomes; a too-strict key only
//! costs a miss.

use crate::driver::{test_pair, PairOutcome};
use crate::nest::NestCtx;
use ped_fortran::{Expr, SymId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// One subscript position in canonical form. `konst` is the constant part,
/// `idx[k]` the coefficient of the level-`k` index variable, and `syms`
/// maps first-appearance ordinals of free symbols to their coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CanonAffine {
    konst: i64,
    idx: Vec<i64>,
    syms: Vec<(u32, i64)>,
}

/// The full memoization key: per-level constant bounds and step, plus the
/// canonicalized subscript vectors (`None` = non-affine position, for which
/// the driver's behavior is fixed regardless of the expression).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PairKey {
    levels: Vec<(Option<i64>, Option<i64>, Option<i64>)>,
    src: Vec<Option<CanonAffine>>,
    sink: Vec<Option<CanonAffine>>,
}

fn canon_subs(
    subs: &[Expr],
    nest: &NestCtx<'_>,
    index_vars: &[SymId],
    ordinals: &mut HashMap<SymId, u32>,
) -> Vec<Option<CanonAffine>> {
    subs.iter()
        .map(|e| {
            nest.affine(e).map(|a| {
                let mut idx = vec![0i64; index_vars.len()];
                let mut syms = Vec::new();
                for (&v, &c) in &a.terms {
                    if let Some(level) = index_vars.iter().position(|&iv| iv == v) {
                        idx[level] = c;
                    } else {
                        let next = ordinals.len() as u32;
                        let o = *ordinals.entry(v).or_insert(next);
                        syms.push((o, c));
                    }
                }
                syms.sort_unstable();
                CanonAffine { konst: a.konst, idx, syms }
            })
        })
        .collect()
}

fn make_key(src_subs: &[Expr], sink_subs: &[Expr], nest: &NestCtx<'_>) -> PairKey {
    let index_vars = nest.index_vars();
    let mut ordinals: HashMap<SymId, u32> = HashMap::new();
    PairKey {
        levels: nest.loops.iter().map(|l| (l.lo_const, l.hi_const, l.step)).collect(),
        src: canon_subs(src_subs, nest, &index_vars, &mut ordinals),
        sink: canon_subs(sink_subs, nest, &index_vars, &mut ordinals),
    }
}

/// Hit/miss counters of a [`PairCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that ran the full test suite.
    pub misses: u64,
}

impl CacheStats {
    /// Hits as a fraction of all queries (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memo table for [`test_pair`] outcomes.
pub struct PairCache {
    shards: [Mutex<HashMap<PairKey, PairOutcome>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PairCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PairCache {
    /// An empty cache.
    pub fn new() -> PairCache {
        PairCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Answer a pair query from the cache, running [`test_pair`] on a miss.
    /// Equivalent to `test_pair(src_subs, sink_subs, nest)` in all cases.
    pub fn test_pair(
        &self,
        src_subs: &[Expr],
        sink_subs: &[Expr],
        nest: &NestCtx<'_>,
    ) -> PairOutcome {
        let key = make_key(src_subs, sink_subs, nest);
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let shard = &self.shards[(h.finish() as usize) % SHARDS];
        if let Some(hit) = shard.lock().unwrap().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        // Test outside the lock: misses dominate early and the suite can be
        // expensive (Banerjee enumeration). Recheck under the lock before
        // inserting — a racing thread may have tested the same key while we
        // did; the first writer wins and the loser counts a hit, so stats
        // never drift under `analyze_all`'s worker threads.
        let outcome = test_pair(src_subs, sink_subs, nest);
        let mut shard = shard.lock().unwrap();
        if let Some(winner) = shard.get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return winner;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard.insert(key, outcome.clone());
        outcome
    }

    /// Current hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct memoized keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::LoopCtx;
    use ped_analysis::symbolic::Affine;
    use ped_fortran::builder::ex;
    use ped_fortran::StmtId;

    fn nest(vars: &[(u32, i64, i64)]) -> NestCtx<'static> {
        NestCtx {
            loops: vars
                .iter()
                .map(|&(v, lo, hi)| LoopCtx {
                    header: StmtId(v),
                    var: SymId(v),
                    lo: Some(Affine::constant(lo)),
                    hi: Some(Affine::constant(hi)),
                    lo_const: Some(lo),
                    hi_const: Some(hi),
                    step: Some(1),
                })
                .collect(),
            resolve: Box::new(|_| None),
        }
    }

    fn var(v: u32) -> Expr {
        Expr::Var(SymId(v))
    }

    #[test]
    fn cached_outcome_matches_direct() {
        let cache = PairCache::new();
        let n = nest(&[(0, 1, 100)]);
        let src = [var(0)];
        let sink = [ex::sub(var(0), ex::int(1))];
        let direct = test_pair(&src, &sink, &n);
        let first = cache.test_pair(&src, &sink, &n);
        let second = cache.test_pair(&src, &sink, &n);
        assert_eq!(direct, first);
        assert_eq!(direct, second);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn renamed_symbols_share_an_entry() {
        // a(i) vs a(i-1) under SymId(0) and the same shape under SymId(3):
        // index variables canonicalize to their level, so both queries hit
        // one entry.
        let cache = PairCache::new();
        let n0 = nest(&[(0, 1, 100)]);
        let n3 = nest(&[(3, 1, 100)]);
        let o0 = cache.test_pair(&[var(0)], &[ex::sub(var(0), ex::int(1))], &n0);
        let o3 = cache.test_pair(&[var(3)], &[ex::sub(var(3), ex::int(1))], &n3);
        assert_eq!(o0, o3);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });

        // Free symbols canonicalize by first appearance: m+i / m+i-1 under
        // SymId(9) and SymId(7) coincide too.
        let shape = |m: u32| {
            ([ex::add(var(m), var(0))], [ex::sub(ex::add(var(m), var(0)), ex::int(1))])
        };
        let (s9, k9) = shape(9);
        let (s7, k7) = shape(7);
        let a = cache.test_pair(&s9, &k9, &n0);
        let b = cache.test_pair(&s7, &k7, &n0);
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn distinct_bounds_do_not_collide() {
        // a(i+j) vs a(i+j+25) is independent over [1,10]² but NOT over
        // [1,30]²: the bounds are part of the key.
        let cache = PairCache::new();
        let small = nest(&[(0, 1, 10), (1, 1, 10)]);
        let large = nest(&[(0, 1, 30), (1, 1, 30)]);
        let src = [ex::add(var(0), var(1))];
        let sink = [ex::add(ex::add(var(0), var(1)), ex::int(25))];
        assert!(cache.test_pair(&src, &sink, &small).independent);
        assert!(!cache.test_pair(&src, &sink, &large).independent);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn distinct_free_symbols_do_not_collide() {
        // a(i+m) vs a(i+m) depends on the *same* m (distance 0) while
        // a(i+m) vs a(i+p) does not cancel; ordinals keep them apart.
        let cache = PairCache::new();
        let n = nest(&[(0, 1, 100)]);
        let same = cache.test_pair(
            &[ex::add(var(0), var(9))],
            &[ex::add(var(0), var(9))],
            &n,
        );
        let diff = cache.test_pair(
            &[ex::add(var(0), var(9))],
            &[ex::add(var(0), var(7))],
            &n,
        );
        assert_ne!(same, diff);
        assert_eq!(cache.stats().misses, 2);
        assert!(same.proven);
        assert!(!diff.proven);
    }

    #[test]
    fn non_affine_positions_are_cacheable() {
        let cache = PairCache::new();
        let n = nest(&[(0, 1, 100)]);
        let src = [ex::idx(SymId(5), vec![var(0)])]; // ind(i): non-affine
        let sink = [var(0)];
        let direct = test_pair(&src, &sink, &n);
        assert_eq!(cache.test_pair(&src, &sink, &n), direct);
        assert_eq!(cache.test_pair(&src, &sink, &n), direct);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn threads_share_one_cache() {
        let cache = PairCache::new();
        let hits: Vec<_> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let n = nest(&[(0, 1, 50)]);
                        for _ in 0..50 {
                            cache.test_pair(&[var(0)], &[ex::sub(var(0), ex::int(2))], &n);
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        drop(hits);
        let st = cache.stats();
        // Double-checked insertion: exactly one thread pays the miss, every
        // racing loser recounts as a hit.
        assert_eq!(st, CacheStats { hits: 199, misses: 1 });
        assert_eq!(cache.len(), 1);
    }
}
