//! Loop-nest contexts for dependence testing.
//!
//! A [`NestCtx`] captures the loops shared by a pair of references: index
//! variables, bounds (numeric when resolvable, affine-symbolic otherwise),
//! and steps. The `resolve` hook is where intraprocedural constants,
//! interprocedural constants, and **user assertions** feed the tests — the
//! paper's three-pronged attack on symbolic subscripts.

use ped_analysis::symbolic::{to_affine, Affine};
use ped_fortran::{Expr, ProgramUnit, StmtId, SymId};
use std::collections::HashMap;

/// One loop of the shared nest (outermost first).
#[derive(Debug, Clone)]
pub struct LoopCtx {
    /// The DO statement.
    pub header: StmtId,
    /// Index variable.
    pub var: SymId,
    /// Lower bound as affine form (None when non-affine).
    pub lo: Option<Affine>,
    /// Upper bound as affine form.
    pub hi: Option<Affine>,
    /// Constant lower bound if known.
    pub lo_const: Option<i64>,
    /// Constant upper bound if known.
    pub hi_const: Option<i64>,
    /// Constant step (only constant steps are tested precisely; 1 if absent).
    pub step: Option<i64>,
}

impl LoopCtx {
    /// Trip count if both bounds and step are constant.
    pub fn trip_count(&self) -> Option<i64> {
        let (lo, hi, st) = (self.lo_const?, self.hi_const?, self.step?);
        if st == 0 {
            return None;
        }
        let n = (hi - lo + st) / st;
        Some(n.max(0))
    }
}

/// The common nest of a reference pair plus the symbol resolver.
pub struct NestCtx<'a> {
    /// Loops, outermost first.
    pub loops: Vec<LoopCtx>,
    /// Integer-constant resolver for symbolic terms.
    pub resolve: Box<dyn Fn(SymId) -> Option<i64> + 'a>,
}

impl<'a> NestCtx<'a> {
    /// Build the context for the loops with the given headers. The resolver
    /// is layered over the unit's `PARAMETER` constants.
    pub fn from_headers(
        unit: &'a ProgramUnit,
        headers: &[StmtId],
        resolve: Box<dyn Fn(SymId) -> Option<i64> + 'a>,
    ) -> NestCtx<'a> {
        let resolve: Box<dyn Fn(SymId) -> Option<i64> + 'a> = Box::new(move |s| {
            unit.symbols.sym(s).param.and_then(|c| c.as_int()).or_else(|| resolve(s))
        });
        let loops = headers
            .iter()
            .map(|&h| {
                let d = unit.loop_of(h);
                let lo = to_affine(&d.lo, &*resolve);
                let hi = to_affine(&d.hi, &*resolve);
                let step = match &d.step {
                    None => Some(1),
                    Some(e) => to_affine(e, &*resolve).and_then(|a| a.is_const().then_some(a.konst)),
                };
                LoopCtx {
                    header: h,
                    var: d.var,
                    lo_const: lo.as_ref().and_then(|a| a.is_const().then_some(a.konst)),
                    hi_const: hi.as_ref().and_then(|a| a.is_const().then_some(a.konst)),
                    lo,
                    hi,
                    step,
                }
            })
            .collect();
        NestCtx { loops, resolve }
    }

    /// Number of common loops.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Position of a loop variable in the nest.
    pub fn level_of(&self, var: SymId) -> Option<usize> {
        self.loops.iter().position(|l| l.var == var)
    }

    /// Index variables of the nest.
    pub fn index_vars(&self) -> Vec<SymId> {
        self.loops.iter().map(|l| l.var).collect()
    }

    /// Convert a subscript expression to affine form using the resolver.
    pub fn affine(&self, e: &Expr) -> Option<Affine> {
        to_affine(e, &*self.resolve)
    }
}

/// Convenience resolver over a fixed map (used in tests and by assertions).
pub fn map_resolver(map: HashMap<SymId, i64>) -> Box<dyn Fn(SymId) -> Option<i64>> {
    Box::new(move |s| map.get(&s).copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ped_fortran::parse_program;

    #[test]
    fn bounds_extracted() {
        let u = parse_program(
            "program t\ninteger n\nparameter (n = 20)\nreal a(n,n)\ndo i = 1, n\n\
             do j = 2, n - 1\na(i,j) = 0.0\nenddo\nenddo\nend\n",
        )
        .unwrap()
        .units
        .remove(0);
        let outer = u.body[0];
        let inner = u.loop_of(outer).body[0];
        let ctx = NestCtx::from_headers(&u, &[outer, inner], Box::new(|_| None));
        assert_eq!(ctx.depth(), 2);
        assert_eq!(ctx.loops[0].lo_const, Some(1));
        assert_eq!(ctx.loops[0].hi_const, Some(20), "PARAMETER resolves");
        assert_eq!(ctx.loops[1].lo_const, Some(2));
        assert_eq!(ctx.loops[1].hi_const, Some(19));
        assert_eq!(ctx.loops[0].trip_count(), Some(20));
    }

    #[test]
    fn symbolic_bound_left_symbolic() {
        let u = parse_program(
            "subroutine s(a, n)\ninteger n\nreal a(n)\ndo i = 1, n\na(i) = 0.0\nenddo\nend\n",
        )
        .unwrap()
        .units
        .remove(0);
        let h = u.body[0];
        let ctx = NestCtx::from_headers(&u, &[h], Box::new(|_| None));
        assert_eq!(ctx.loops[0].hi_const, None);
        assert!(ctx.loops[0].hi.is_some(), "still affine in n");
        // A resolver (assertion `n = 64`) makes it constant.
        let n = u.symbols.lookup("n").unwrap();
        let ctx2 = NestCtx::from_headers(
            &u,
            &[h],
            Box::new(move |s| if s == n { Some(64) } else { None }),
        );
        assert_eq!(ctx2.loops[0].hi_const, Some(64));
    }

    #[test]
    fn trip_count_with_step() {
        let u = parse_program(
            "program t\nreal a(10)\ndo i = 1, 10, 3\na(i) = 0.0\nenddo\nend\n",
        )
        .unwrap()
        .units
        .remove(0);
        let ctx = NestCtx::from_headers(&u, &[u.body[0]], Box::new(|_| None));
        assert_eq!(ctx.loops[0].trip_count(), Some(4)); // 1,4,7,10
    }
}
